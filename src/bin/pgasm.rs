//! `pgasm` — command-line interface to the cluster-then-assemble
//! pipeline.
//!
//! ```text
//! pgasm generate --kind maize --out reads.fastq [--genome-out g.fasta]
//! pgasm cluster  --reads reads.fastq [--ranks 4] [--out clusters.txt]
//! pgasm assemble --reads reads.fastq --out contigs.fasta
//! ```
//!
//! Reads are FASTQ (quality drives Lucy-style trimming); `generate`
//! produces synthetic projects with the maize/drosophila/sargasso
//! presets so the whole pipeline can be driven without external data.

use pgasm::cluster::{AlignKernel, ClusterParams, Pipeline, PipelineConfig};
use pgasm::preprocess::PreprocessConfig;
use pgasm::seq::fasta::{write_fasta, write_fastq, FastaRecord, FastqRecord};
use pgasm::seq::DnaSeq;
use pgasm::simgen::vector::VECTOR_SEQ;
use pgasm::simgen::{presets, ReadSet};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => generate(&opts),
        "cluster" => cluster(&opts),
        "assemble" => assemble(&opts),
        "analyze" => analyze(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "pgasm — parallel cluster-then-assemble genome assembly

USAGE:
  pgasm generate --kind <maize|drosophila|sargasso> --out <reads.fastq>
                 [--genome-out <genome.fasta>] [--scale <f64>] [--seed <u64>]
  pgasm cluster  --reads <reads.fastq> [--out <clusters.txt>] [--ranks <p>]
                 [--w <n>] [--psi <n>] [--min-identity <f>] [--min-overlap <n>]
                 [--kernel <legacy|two-phase|simd>] [--band <n>]
                 [--no-adaptive-band]
                 [--no-preprocess] [--metrics-json <report.json>]
                 [--trace-json <out.trace.json>]
                 [--cache-dir <dir>] [--no-cache]
                 [--fault-plan <spec>] [--stall-timeout <events>]
                 [--checkpoint-every <n> --checkpoint <base>]
                 [--resume <base>]
  pgasm assemble --reads <reads.fastq> --out <contigs.fasta>
                 [--assembly-threads <n>] [same options]
  pgasm analyze  --trace-json <run.trace.json> [--metrics-json <report.json>]
                 [--out <analysis.json>] [--top <k>] [--coverage-tol <f>]

generate writes a synthetic sequencing project (reads as FASTQ; optionally
the reference genome(s) as FASTA). cluster runs preprocessing + clustering
and writes one cluster per line. assemble additionally runs the per-cluster
serial assembler and writes contigs as FASTA. With --ranks <p> (p >= 2) the
clustering AND assembly phases both run distributed on p simulated ranks:
assembly schedules whole clusters largest-first onto worker ranks and ships
contigs back, so per-rank idle time and per-tag traffic cover both phases;
--assembly-threads <n> (default 4) sizes the OS-thread assembly loop used
when --ranks is absent. --metrics-json writes the structured run report
(per-stage wall/CPU spans, Table-1 counters, and — with --ranks — per-rank
idle time and per-tag communication) as JSON. --trace-json records per-rank
timestamped events (stage, master, worker, comm, gst, align, assemble
categories) and writes Chrome trace-event JSON — open it at
ui.perfetto.dev, one track per rank. --cache-dir <dir> enables the
content-addressed artifact cache: a repeated run over the same reads and
parameters reloads the preprocess output and (serial runs) the GST from
<dir> instead of recomputing them — the cache_hit / cache_miss /
cache_bytes_* counters in --metrics-json show what happened; any change
to inputs or parameters recomputes, and a corrupted cache file safely
degrades to a cold run. --no-cache ignores --cache-dir for this run.
--fault-plan <spec> arms deterministic failure injection in the simulated
communicator (needs --ranks): a semicolon-separated list of clauses, e.g.
'seed:42; kill:rank=2,event=500; drop:src=1,dst=0,tag=3,nth=2;
delay:src=0,dst=2,tag=5,nth=1,by=3' — kill removes a rank when its local
fault clock reaches <event> (kill:any picks a seeded worker), drop loses
the nth matching message, delay re-delivers it <by> receives later.
Clauses take stage=cluster|assemble|any (default cluster). Workers hold
leases on tasks, so the engine detects the death, re-queues the lease,
and a survivor finishes the work — the final clustering and contigs are
byte-identical to a fault-free run; the faults: line and the metrics-json
faults section report dead_ranks / recovered_tasks / drops / delays.
--stall-timeout <events> overrides the death-detection horizon (master
events with no progress before a silent rank is declared dead).
--checkpoint-every <n> --checkpoint <base> makes the master snapshot its
task state every n completions to <base>.cluster.pgck /
<base>.assemble.pgck (atomic tmp+rename). If a fault plan kills the
master mid-stage, pgasm exits nonzero and tells you to rerun with
--resume <base>, which reloads the snapshot and finishes only the
remaining work — output identical to an uninterrupted run.
--kernel selects the pairwise overlap aligner: the legacy single-pass
banded kernel, the two-phase (score-only + gated traceback) kernel, or
the vectorised phase-1 kernel (default). --band <n> sets the half-width
of the alignment band around the seed diagonal. The simd kernel also
shrinks the band per row around cells that can still reach the
acceptance floor (X-drop); --no-adaptive-band disables the shrink — the
clustering is identical either way, the adaptive run just skips DP cells
(reported as align_cells_saved_adaptive / align_band_rows_shrunk, with
the build's lane width in simd_lanes).

analyze consumes the artifacts a traced run wrote (--trace-json, and
optionally --metrics-json for alpha-beta modelled comm time and tag
labels) and prints per-rank wall-time attribution {compute, wait-blocked,
barrier, comm-modelled, idle-unattributed}, the reconstructed critical
path through master/worker/comm events (send->recv edges paired per
source/destination/tag), and the top-k idle gaps with the awaited message
tag blamed. --out writes the same analysis as machine JSON
(pgasm.analysis format, gateable by bench_diff). --coverage-tol <f> exits
nonzero when any rank's attribution categories sum outside wall*(1 +- f)
or the critical path comes back empty — the CI consistency gate.";

#[derive(Default)]
struct Opts {
    flags: HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(name) = a.strip_prefix("--") {
                if name == "no-preprocess" || name == "no-cache" || name == "no-adaptive-band" {
                    flags.insert(name.to_string(), "true".to_string());
                    i += 1;
                } else {
                    let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
                    flags.insert(name.to_string(), value.clone());
                    i += 2;
                }
            } else {
                return Err(format!("unexpected argument '{a}'"));
            }
        }
        Ok(Opts { flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name).ok_or_else(|| format!("--{name} is required"))
    }

    fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            Some(v) => v.parse().map_err(|_| format!("--{name}: cannot parse '{v}'")),
            None => Ok(default),
        }
    }
}

fn generate(opts: &Opts) -> Result<(), String> {
    let kind = opts.require("kind")?;
    let out = opts.require("out")?.to_string();
    let scale: f64 = opts.parse_or("scale", 1.0)?;
    let seed: u64 = opts.parse_or("seed", 42)?;
    let dataset = match kind {
        "maize" => presets::maize_like((200_000.0 * scale) as usize, (400.0 * scale) as usize, seed),
        "drosophila" => presets::drosophila_like((100_000.0 * scale) as usize, 8.8, seed),
        "sargasso" => {
            presets::sargasso_like(((16.0 * scale) as usize).max(2), (1_500.0 * scale) as usize, seed)
        }
        other => return Err(format!("unknown --kind '{other}' (maize|drosophila|sargasso)")),
    };
    let records: Vec<FastqRecord> = dataset
        .reads
        .seqs
        .iter()
        .zip(&dataset.reads.quals)
        .zip(&dataset.reads.provenance)
        .enumerate()
        .map(|(i, ((seq, qual), prov))| FastqRecord {
            header: format!(
                "read{} kind={} genome={} span={}..{}{}",
                i,
                prov.kind.label(),
                prov.genome,
                prov.start,
                prov.end,
                if prov.reverse { " strand=-" } else { " strand=+" }
            ),
            seq: seq.clone(),
            qual: qual.clone(),
        })
        .collect();
    let f = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    write_fastq(BufWriter::new(f), &records).map_err(|e| format!("write {out}: {e}"))?;
    println!("{}: wrote {} reads ({} bp) to {out}", dataset.name, records.len(), dataset.total_bases());
    if let Some(gpath) = opts.get("genome-out") {
        let grecords: Vec<FastaRecord> = dataset
            .genomes
            .iter()
            .enumerate()
            .map(|(i, g)| FastaRecord { header: format!("genome{} len={}", i, g.len()), seq: g.seq.clone() })
            .collect();
        let f = File::create(gpath).map_err(|e| format!("create {gpath}: {e}"))?;
        write_fasta(BufWriter::new(f), &grecords, 80).map_err(|e| format!("write {gpath}: {e}"))?;
        println!("wrote {} genome(s) to {gpath}", grecords.len());
    }
    Ok(())
}

fn read_reads(path: &str) -> Result<ReadSet, String> {
    let f = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let records =
        pgasm::seq::fasta::read_fastq(BufReader::new(f)).map_err(|e| format!("parse {path}: {e}"))?;
    let mut reads = ReadSet::default();
    for r in records {
        reads.provenance.push(pgasm::simgen::Provenance {
            genome: 0,
            start: 0,
            end: r.seq.len() as u32,
            reverse: false,
            kind: pgasm::simgen::ReadKind::Wgs,
        });
        reads.seqs.push(r.seq);
        reads.quals.push(r.qual);
    }
    if reads.is_empty() {
        return Err(format!("{path}: no reads"));
    }
    Ok(reads)
}

fn pipeline_config(opts: &Opts) -> Result<PipelineConfig, String> {
    let mut cluster = ClusterParams::default();
    cluster.gst.w = opts.parse_or("w", cluster.gst.w)?;
    cluster.gst.psi = opts.parse_or("psi", cluster.gst.psi)?;
    cluster.criteria.min_identity = opts.parse_or("min-identity", cluster.criteria.min_identity)?;
    cluster.criteria.min_overlap = opts.parse_or("min-overlap", cluster.criteria.min_overlap)?;
    cluster.kernel = match opts.get("kernel") {
        None => cluster.kernel,
        Some("legacy") => AlignKernel::Legacy,
        Some("two-phase") => AlignKernel::TwoPhase,
        Some("simd") => AlignKernel::Simd,
        Some(other) => return Err(format!("unknown --kernel '{other}' (legacy|two-phase|simd)")),
    };
    cluster.band = opts.parse_or("band", cluster.band)?;
    if cluster.band == 0 {
        return Err("--band must be >= 1".to_string());
    }
    cluster.adaptive_band = opts.get("no-adaptive-band").is_none();
    let ranks: usize = opts.parse_or("ranks", 0)?;
    let preprocess =
        if opts.get("no-preprocess").is_some() { None } else { Some(PreprocessConfig::default()) };
    let cache_dir = if opts.get("no-cache").is_some() {
        None
    } else {
        opts.get("cache-dir").map(std::path::PathBuf::from)
    };
    let mut recovery = pgasm::cluster::StageRecovery::default();
    if let Some(spec) = opts.get("fault-plan") {
        recovery.faults = pgasm::mpisim::FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
    }
    if let Some(t) = opts.get("stall-timeout") {
        let t: u64 = t.parse().map_err(|_| format!("--stall-timeout: cannot parse '{t}'"))?;
        recovery.stall_timeout = Some(t);
    }
    if let Some(n) = opts.get("checkpoint-every") {
        let n: u64 = n.parse().map_err(|_| format!("--checkpoint-every: cannot parse '{n}'"))?;
        recovery.checkpoint_every = Some(n);
        let base = opts.require("checkpoint")?;
        recovery.checkpoint_path = Some(std::path::PathBuf::from(base));
    }
    if let Some(base) = opts.get("resume") {
        recovery.resume_from = Some(std::path::PathBuf::from(base));
    }
    if (!recovery.faults.is_empty() || recovery.checkpoint_every.is_some() || recovery.resume_from.is_some())
        && ranks < 2
    {
        return Err("--fault-plan / --checkpoint-every / --resume need --ranks <p> (p >= 2): \
                    fault tolerance lives in the distributed engine"
            .to_string());
    }
    Ok(PipelineConfig {
        preprocess,
        cluster,
        parallel_ranks: if ranks >= 2 { Some(ranks) } else { None },
        assembly_threads: opts.parse_or("assembly-threads", 4)?,
        cache_dir,
        trace: if opts.get("trace-json").is_some() {
            pgasm::telemetry::trace::TraceSpec::on()
        } else {
            pgasm::telemetry::trace::TraceSpec::off()
        },
        recovery,
        ..Default::default()
    })
}

fn run_pipeline(opts: &Opts, label: &str) -> Result<(pgasm::cluster::PipelineReport, ReadSet), String> {
    let reads = read_reads(opts.require("reads")?)?;
    let config = pipeline_config(opts)?;
    let caching = config.cache_dir.is_some();
    let pipeline = Pipeline::new(config);
    let mut ctx = pgasm::telemetry::RunContext::new(label);
    let report = pipeline.run_with_context(&reads, &[DnaSeq::from(VECTOR_SEQ)], &[], &mut ctx);
    if caching {
        use pgasm::telemetry::names;
        println!(
            "cache: {} hit(s), {} miss(es), {} bytes written, {} bytes read",
            ctx.counter(names::CACHE_HIT),
            ctx.counter(names::CACHE_MISS),
            ctx.counter(names::CACHE_BYTES_WRITTEN),
            ctx.counter(names::CACHE_BYTES_READ)
        );
    }
    {
        use pgasm::telemetry::names;
        let dead = ctx.counter(names::DEAD_RANKS);
        let recovered = ctx.counter(names::RECOVERED_TASKS);
        if dead > 0 || recovered > 0 {
            println!(
                "faults: {dead} dead rank(s), {recovered} task(s) recovered, \
                 {} message(s) dropped, {} delayed, {} checkpoint byte(s)",
                ctx.counter(names::FAULT_MSGS_DROPPED),
                ctx.counter(names::FAULT_MSGS_DELAYED),
                ctx.counter(names::CKPT_BYTES)
            );
        }
    }
    if let Some(path) = opts.get("trace-json") {
        let doc = ctx.trace_document();
        doc.write_chrome_json(std::path::Path::new(path)).map_err(|e| format!("write {path}: {e}"))?;
        println!(
            "wrote {} trace track(s), {} categories to {path} (open at ui.perfetto.dev)",
            doc.tracks.len(),
            doc.categories().len()
        );
        let dropped_events: u64 = doc.tracks.iter().map(|t| t.dropped_events).sum();
        println!(
            "telemetry: {} trace event(s) dropped, {} gauge sample(s) dropped, sampler overhead {:.3} ms",
            dropped_events,
            ctx.series_dropped_samples(),
            ctx.series_overhead_ns() as f64 / 1e6
        );
    }
    if let Some(path) = opts.get("metrics-json") {
        let run_report = ctx.finish();
        run_report.write_json(std::path::Path::new(path)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote run report to {path}");
    }
    if let Some(stage) = &report.interrupted {
        return Err(format!(
            "stage '{stage}' was interrupted by a master kill before it completed; \
             rerun with --resume <base> (the base passed to --checkpoint) to finish \
             from the last checkpoint"
        ));
    }
    Ok((report, reads))
}

fn analyze(opts: &Opts) -> Result<(), String> {
    use pgasm::telemetry::{analyze, Json, RunReport};
    let trace_path = opts.require("trace-json")?;
    let text = std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    let tracks = analyze::parse_chrome_trace(&doc).map_err(|e| format!("{trace_path}: {e}"))?;
    let metrics = match opts.get("metrics-json") {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
            Some(RunReport::from_json_str(&text).map_err(|e| format!("{p}: {e}"))?)
        }
        None => None,
    };
    let top: usize = opts.parse_or("top", 5)?;
    let analysis = analyze::analyze(&tracks, metrics.as_ref(), top);
    print!("{}", analysis.render());
    if let Some(out) = opts.get("out") {
        std::fs::write(out, analysis.to_json().pretty()).map_err(|e| format!("write {out}: {e}"))?;
        println!("wrote analysis to {out}");
    }
    if let Some(tol) = opts.get("coverage-tol") {
        let tol: f64 = tol.parse().map_err(|_| format!("--coverage-tol: cannot parse '{tol}'"))?;
        let err = analysis.max_coverage_error();
        if err > tol {
            return Err(format!(
                "attribution coverage off by {:.1}% (> {:.1}% tolerance) on some rank",
                err * 100.0,
                tol * 100.0
            ));
        }
        if analysis.critical_path.is_empty() {
            return Err("critical path is empty".to_string());
        }
        println!(
            "coverage check ok: max attribution error {:.2}% (tolerance {:.1}%), {} critical-path segment(s)",
            err * 100.0,
            tol * 100.0,
            analysis.critical_path.len()
        );
    }
    Ok(())
}

/// Human-readable name of the alignment kernel this run used (the
/// `--kernel` flag, or the build default when the flag is absent).
fn kernel_label(opts: &Opts) -> Result<&'static str, String> {
    let k = match opts.get("kernel") {
        None => ClusterParams::default().kernel,
        Some("legacy") => AlignKernel::Legacy,
        Some("two-phase") => AlignKernel::TwoPhase,
        Some("simd") => AlignKernel::Simd,
        Some(other) => return Err(format!("unknown --kernel '{other}' (legacy|two-phase|simd)")),
    };
    Ok(match k {
        AlignKernel::Legacy => "legacy",
        AlignKernel::TwoPhase => "two-phase",
        AlignKernel::Simd => "simd",
    })
}

fn cluster(opts: &Opts) -> Result<(), String> {
    let (report, _reads) = run_pipeline(opts, "pgasm cluster")?;
    let s = report.cluster_stats;
    println!(
        "clustered {} fragments: {} clusters, {} singletons (largest {:.1}%)",
        report.origin.len(),
        report.clustering.num_non_singletons(),
        report.clustering.num_singletons(),
        report.clustering.max_cluster_fraction() * 100.0
    );
    println!(
        "pairs: {} generated, {} aligned ({:.0}% savings), {} accepted",
        s.generated,
        s.aligned,
        s.savings() * 100.0,
        s.accepted
    );
    println!(
        "kernel: {} ({} lanes), {} DP cells (phase1 {}, phase2 {}), {} early exits, {} tracebacks skipped",
        kernel_label(opts)?,
        pgasm::align::simd::effective_lanes(),
        s.dp_cells,
        s.dp_cells_phase1,
        s.dp_cells_phase2,
        s.early_exits,
        s.tracebacks_skipped
    );
    println!("adaptive band: {} cells saved, {} rows shrunk", s.cells_saved_adaptive, s.band_rows_shrunk);
    if let Some(out) = opts.get("out") {
        use std::io::Write;
        let mut f = BufWriter::new(File::create(out).map_err(|e| format!("create {out}: {e}"))?);
        for cluster in &report.clustering.clusters {
            let reads: Vec<String> =
                cluster.iter().map(|&frag| format!("read{}", report.origin[frag as usize])).collect();
            writeln!(f, "{}", reads.join("\t")).map_err(|e| format!("write {out}: {e}"))?;
        }
        println!("wrote cluster membership to {out}");
    }
    Ok(())
}

fn assemble(opts: &Opts) -> Result<(), String> {
    let out = opts.require("out")?.to_string();
    let (report, _reads) = run_pipeline(opts, "pgasm assemble")?;
    let mut records = Vec::new();
    for (ci, assembly) in report.assemblies.iter().enumerate() {
        for (j, contig) in assembly.contigs.iter().enumerate() {
            records.push(FastaRecord {
                header: format!("contig_{ci}_{j} len={} reads={}", contig.seq.len(), contig.placements.len()),
                seq: contig.seq.clone(),
            });
        }
    }
    let f = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    write_fasta(BufWriter::new(f), &records, 80).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "assembled {} clusters into {} contigs ({} bp total, {:.2} contigs/cluster); wrote {out}",
        report.assemblies.len(),
        records.len(),
        records.iter().map(|r| r.seq.len()).sum::<usize>(),
        report.contigs_per_cluster()
    );
    Ok(())
}
