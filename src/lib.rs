//! # pgasm — parallel cluster-then-assemble genome assembly
//!
//! A Rust reproduction of Kalyanaraman, Emrich, Schnable & Aluru,
//! *Assembling genomes on large-scale parallel computers* (IPPS 2006;
//! extended in J. Parallel Distrib. Comput. 67, 2007).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`seq`] — DNA sequences, fragment storage, k-mers, FASTA I/O.
//! - [`align`] — alignment kernels and candidate-pair filters.
//! - [`gst`] — generalized suffix tree and on-demand promising-pair
//!   generation in decreasing maximal-match order.
//! - [`mpisim`] — the message-passing substrate (ranks-as-threads, p2p
//!   and collective operations, traffic accounting, BlueGene/L cost
//!   model).
//! - [`simgen`] — synthetic genomes, sampling strategies (WGS, MF, HC,
//!   BAC, environmental), error and vector models with ground truth.
//! - [`preprocess`] — Lucy-style trimming, vector screening, repeat
//!   masking.
//! - [`cluster`] — the paper's contribution: serial and master–worker
//!   parallel clustering, and the end-to-end pipeline.
//! - [`assemble`] — the per-cluster serial OLC assembler (CAP3 stand-in).
//! - [`telemetry`] — the run-report layer: hierarchical span timers,
//!   counters, per-rank channels, and their JSON encoding.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use pgasm_align as align;
pub use pgasm_assemble as assemble;
pub use pgasm_core as cluster;
pub use pgasm_gst as gst;
pub use pgasm_mpisim as mpisim;
pub use pgasm_preprocess as preprocess;
pub use pgasm_seq as seq;
pub use pgasm_simgen as simgen;
pub use pgasm_telemetry as telemetry;
