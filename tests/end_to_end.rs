//! End-to-end integration: simgen → preprocess → cluster → assemble →
//! validate, across crates, with realistic artefacts (errors, vector,
//! repeats) at test scale.

use pgasm::align::AcceptCriteria;
use pgasm::cluster::validation::validate_clusters;
use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig};
use pgasm::gst::GstConfig;
use pgasm::preprocess::PreprocessConfig;
use pgasm::seq::DnaSeq;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::simgen::vector::VECTOR_SEQ;
use pgasm::simgen::ReadKind;

fn test_params() -> ClusterParams {
    ClusterParams {
        gst: GstConfig { w: 10, psi: 18 },
        criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 35 },
        ..Default::default()
    }
}

fn island_genome(seed: u64, repeats: bool) -> Genome {
    Genome::generate(
        &GenomeSpec {
            length: 16_000,
            repeat_fraction: if repeats { 0.25 } else { 0.0 },
            repeat_families: 2,
            repeat_len: (120, 400),
            repeat_identity: 0.99,
            islands: 3,
            island_len: (1_200, 2_000),
        },
        seed,
    )
}

#[test]
fn clean_island_pipeline_reconstructs_regions() {
    let genome = island_genome(1, false);
    let mut cfg = SamplerConfig::clean();
    cfg.island_bias = 1.0;
    cfg.read_len = (150, 250);
    let mut sampler = Sampler::new(&genome, cfg, 2);
    let reads = sampler.enriched(90, ReadKind::Mf);
    let pipeline = Pipeline::new(PipelineConfig {
        preprocess: None,
        cluster: test_params(),
        parallel_ranks: None,
        assembly_threads: 2,
        ..Default::default()
    });
    let report = pipeline.run(&reads, &[], &[]);
    assert!(report.clustering.num_non_singletons() >= 2);
    // Every contig from clean reads is a genome substring.
    let fwd = String::from_utf8(genome.seq.to_ascii()).unwrap();
    let rc = String::from_utf8(genome.seq.reverse_complement().to_ascii()).unwrap();
    let mut checked = 0;
    for a in &report.assemblies {
        for contig in &a.contigs {
            let s = String::from_utf8(contig.seq.to_ascii()).unwrap();
            assert!(fwd.contains(&s) || rc.contains(&s), "contig is not a genome substring");
            checked += 1;
        }
    }
    assert!(checked >= 2, "expected at least two contigs, got {checked}");
    // Ground truth: every cluster maps to one region.
    let v = validate_clusters(&report.clustering, &report.origin, &reads.provenance, 1_000);
    assert!(v.specificity() > 0.99, "specificity {}", v.specificity());
}

#[test]
fn noisy_reads_with_vector_still_cluster() {
    let genome = island_genome(3, true);
    let mut cfg = SamplerConfig::default_scaled();
    cfg.island_bias = 1.0;
    cfg.read_len = (150, 250);
    let mut sampler = Sampler::new(&genome, cfg, 4);
    let reads = sampler.enriched(80, ReadKind::Hc);
    let pipeline = Pipeline::new(PipelineConfig {
        preprocess: Some(PreprocessConfig { stat_repeats: None, min_unmasked_run: 40, ..Default::default() }),
        cluster: test_params(),
        parallel_ranks: None,
        assembly_threads: 2,
        ..Default::default()
    });
    let report = pipeline.run(&reads, &[DnaSeq::from(VECTOR_SEQ)], &genome.repeat_library);
    let pp = report.preprocess.as_ref().expect("preprocessing ran");
    let survivors: usize = pp.after.values().map(|v| v.0).sum();
    assert!(survivors >= 40, "too few survivors: {survivors}");
    assert!(report.clustering.num_non_singletons() >= 1);
    // Clusters must still be single-region despite errors and masking.
    let v = validate_clusters(&report.clustering, &report.origin, &reads.provenance, 1_500);
    assert!(v.specificity() >= 0.8, "specificity {}", v.specificity());
}

#[test]
fn parallel_pipeline_equals_serial_with_artifacts() {
    let genome = island_genome(5, true);
    let mut cfg = SamplerConfig::default_scaled();
    cfg.island_bias = 1.0;
    cfg.read_len = (150, 250);
    let mut sampler = Sampler::new(&genome, cfg, 6);
    let reads = sampler.enriched(60, ReadKind::Mf);
    let make = |ranks: Option<usize>| {
        Pipeline::new(PipelineConfig {
            preprocess: Some(PreprocessConfig {
                stat_repeats: None,
                min_unmasked_run: 40,
                ..Default::default()
            }),
            cluster: test_params(),
            parallel_ranks: ranks,
            assembly_threads: 1,
            ..Default::default()
        })
        .run(&reads, &[DnaSeq::from(VECTOR_SEQ)], &genome.repeat_library)
    };
    let serial = make(None);
    let parallel = make(Some(3));
    assert_eq!(serial.clustering, parallel.clustering);
    assert_eq!(serial.total_contigs(), parallel.total_contigs());
}

#[test]
fn repeat_masking_prevents_chaining() {
    // Reads from two distinct islands joined only by a shared repeat
    // must end up in different clusters when masking is on.
    let mut genome_seq = pgasm::seq::DnaSeq::new();
    let g1 = Genome::generate(
        &GenomeSpec {
            length: 3_000,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (10, 20),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        10,
    );
    let repeat = Genome::generate(
        &GenomeSpec {
            length: 400,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (10, 20),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        11,
    );
    let g2 = Genome::generate(
        &GenomeSpec {
            length: 3_000,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (10, 20),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        12,
    );
    // Layout: [island1][repeat]....gap....[repeat][island2]
    genome_seq.extend_from(&g1.seq);
    genome_seq.extend_from(&repeat.seq);
    genome_seq.extend_from(&g2.seq);
    genome_seq.extend_from(&repeat.seq);
    genome_seq.extend_from(&g1.seq.reverse_complement());
    let genome = Genome {
        seq: genome_seq,
        repeats: vec![],
        islands: vec![],
        repeat_library: vec![repeat.seq.clone()],
    };
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (150, 250);
    // ~6x coverage: enough that reads land inside both repeat copies
    // and chain the islands whenever masking is off.
    let mut sampler = Sampler::new(&genome, cfg, 13);
    let reads = sampler.wgs(300);
    let run = |known: &[DnaSeq]| {
        Pipeline::new(PipelineConfig {
            preprocess: Some(PreprocessConfig {
                stat_repeats: None,
                min_unmasked_run: 40,
                ..Default::default()
            }),
            cluster: test_params(),
            parallel_ranks: None,
            assembly_threads: 1,
            ..Default::default()
        })
        .run(&reads, &[], known)
    };
    let masked = run(std::slice::from_ref(&repeat.seq));
    let unmasked = run(&[]);
    assert!(
        masked.clustering.max_cluster_fraction() < unmasked.clustering.max_cluster_fraction(),
        "masking should shrink the largest cluster: {} vs {}",
        masked.clustering.max_cluster_fraction(),
        unmasked.clustering.max_cluster_fraction()
    );
}
