//! Property tests for the alignment kernels and the scaffolder.

use pgasm::align::overlap::{overlap_align_quality, OverlapKind};
use pgasm::align::{banded_overlap_align, overlap_align, Scoring};
use pgasm::assemble::scaffold::{scaffold, MateLink, ReadPlacement, ScaffoldConfig};
use pgasm::seq::DnaSeq;
use proptest::prelude::*;
use std::collections::HashMap;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, len).prop_map(DnaSeq::from_codes)
}

/// A pair of sequences sharing a planted suffix–prefix overlap.
fn overlapping_pair() -> impl Strategy<Value = (DnaSeq, DnaSeq, usize)> {
    (dna(30..80), dna(20..60), dna(30..80)).prop_map(|(left, shared, right)| {
        let mut a = left;
        a.extend_from(&shared);
        let mut b = shared.clone();
        b.extend_from(&right);
        (a, b, shared.len())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identity is always a fraction; ranges lie within the sequences;
    /// the overlap length bounds both spans.
    #[test]
    fn overlap_result_wellformed((a, b, _) in overlapping_pair()) {
        let r = overlap_align(a.codes(), b.codes(), &Scoring::DEFAULT);
        prop_assert!((0.0..=1.0).contains(&r.identity));
        prop_assert!(r.a_range.0 <= r.a_range.1 && r.a_range.1 <= a.len());
        prop_assert!(r.b_range.0 <= r.b_range.1 && r.b_range.1 <= b.len());
        prop_assert!(r.a_range.1 - r.a_range.0 <= r.overlap_len);
        prop_assert!(r.b_range.1 - r.b_range.0 <= r.overlap_len);
    }

    /// A planted overlap is found with identity 1.0 and at least the
    /// shared length.
    #[test]
    fn planted_overlap_found((a, b, shared) in overlapping_pair()) {
        let r = overlap_align(a.codes(), b.codes(), &Scoring::DEFAULT);
        prop_assert!(r.overlap_len >= shared, "found {} < planted {shared}", r.overlap_len);
        prop_assert!(r.identity > 0.99);
        prop_assert!(matches!(r.kind, OverlapKind::SuffixPrefix | OverlapKind::AContained | OverlapKind::BContained));
    }

    /// A band wider than both sequences makes the banded DP equal the
    /// full DP, for any seed diagonal near the true one.
    #[test]
    fn wide_band_equals_full((a, b, shared) in overlapping_pair(), wobble in -3i64..=3) {
        let s = Scoring::DEFAULT;
        let full = overlap_align(a.codes(), b.codes(), &s);
        let diag = (a.len() - shared) as i64 + wobble;
        let band = a.len() + b.len();
        let banded = banded_overlap_align(a.codes(), b.codes(), diag, band, &s);
        prop_assert_eq!(full.score, banded.score);
        prop_assert_eq!(full.overlap_len, banded.overlap_len);
        prop_assert_eq!(full.a_range, banded.a_range);
        prop_assert_eq!(full.b_range, banded.b_range);
    }

    /// Swapping the inputs mirrors the geometry: suffix–prefix becomes
    /// prefix–suffix and the ranges swap.
    #[test]
    fn swap_symmetry((a, b, _) in overlapping_pair()) {
        let s = Scoring::DEFAULT;
        let ab = overlap_align(a.codes(), b.codes(), &s);
        let ba = overlap_align(b.codes(), a.codes(), &s);
        prop_assert_eq!(ab.score, ba.score);
        prop_assert_eq!(ab.overlap_len, ba.overlap_len);
        prop_assert_eq!(ab.a_range, ba.b_range);
        prop_assert_eq!(ab.b_range, ba.a_range);
    }

    /// Uniform qualities leave identity exactly where the unweighted
    /// computation puts it (weights cancel).
    #[test]
    fn uniform_quality_is_neutral((a, b, _) in overlapping_pair(), q in 5u8..50) {
        let s = Scoring::DEFAULT;
        let plain = overlap_align(a.codes(), b.codes(), &s);
        let qa = vec![q; a.len()];
        let qb = vec![q; b.len()];
        let weighted = overlap_align_quality(a.codes(), b.codes(), Some((&qa, &qb)), &s);
        prop_assert!((plain.identity - weighted.identity).abs() < 1e-9);
        prop_assert_eq!(plain.overlap_len, weighted.overlap_len);
    }
}

/// Random scaffolding scenario: contigs laid on a line with random
/// gaps and orientations, mates sampled across each junction.
fn scaffold_scenario() -> impl Strategy<Value = (Vec<usize>, Vec<bool>, Vec<i64>)> {
    (
        proptest::collection::vec(600usize..2_000, 2..6),
        proptest::collection::vec(any::<bool>(), 5),
        proptest::collection::vec(50i64..400, 5),
    )
        .prop_map(|(lens, flips, gaps)| {
            let n = lens.len();
            (lens, flips[..n].to_vec(), gaps[..n.saturating_sub(1)].to_vec())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mates across every junction reconstruct the true contig order,
    /// orientations (up to global flip), and gaps (within tolerance).
    #[test]
    fn scaffold_recovers_layout((lens, flips, gaps) in scaffold_scenario()) {
        let n = lens.len();
        // Genome offsets of each contig.
        let mut starts = vec![0i64; n];
        for i in 1..n {
            starts[i] = starts[i - 1] + lens[i - 1] as i64 + gaps[i - 1];
        }
        // For each junction, two mate pairs: read1 near the end of
        // contig i (genome-forward), read2 inside contig i+1 (genome-
        // reverse read). Translate genome placements into each contig's
        // own frame per its orientation flag.
        let read_len = 100usize;
        let mut placements: HashMap<usize, ReadPlacement> = HashMap::new();
        let mut links = Vec::new();
        let mut rid = 0usize;
        let place = |contig: usize, genome_off: i64, genome_fwd_read: bool,
                     lens: &[usize], flips: &[bool], starts: &[i64]| -> ReadPlacement {
            let off_in_contig = (genome_off - starts[contig]) as usize;
            // A genome-forward read appears unflipped in a genome-forward
            // contig; everything inverts when the contig was assembled
            // reverse-complemented (flips[contig]).
            let (offset, flipped) = if !flips[contig] {
                (off_in_contig, !genome_fwd_read)
            } else {
                (lens[contig] - off_in_contig - read_len, genome_fwd_read)
            };
            ReadPlacement { contig, offset, flipped, len: read_len }
        };
        for j in 0..n - 1 {
            for k in 0..2 {
                // read1 starts read_len*(k+2) before contig j's end.
                let r1_genome = starts[j] + lens[j] as i64 - (read_len as i64) * (k as i64 + 2);
                // insert spans the junction into contig j+1.
                let r2_genome_end = starts[j + 1] + (read_len as i64) * (k as i64 + 2);
                let insert = (r2_genome_end - r1_genome) as u32;
                let p1 = place(j, r1_genome, true, &lens, &flips, &starts);
                // read2 is the genome-reverse read ending at r2_genome_end.
                let p2 = place(j + 1, r2_genome_end - read_len as i64, false, &lens, &flips, &starts);
                placements.insert(rid, p1);
                placements.insert(rid + 1, p2);
                links.push(MateLink { read1: rid, read2: rid + 1, insert });
                rid += 2;
            }
        }
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        prop_assert_eq!(scaffolds.len(), 1, "all contigs must chain: {:?}", scaffolds);
        let s = &scaffolds[0];
        prop_assert_eq!(s.parts.len(), n);
        let order: Vec<usize> = s.parts.iter().map(|p| p.contig).collect();
        let forward: Vec<usize> = (0..n).collect();
        let reverse: Vec<usize> = (0..n).rev().collect();
        prop_assert!(order == forward || order == reverse, "order {:?}", order);
        if order == forward {
            for (j, part) in s.parts.iter().enumerate().skip(1) {
                let err = (part.gap_before - gaps[j - 1]).abs();
                prop_assert!(err <= 2, "gap {} vs true {}", part.gap_before, gaps[j - 1]);
            }
            // Orientation recovered relative to ground truth (global
            // flip allowed; compare the pattern).
            let got: Vec<bool> = s.parts.iter().map(|p| p.flipped).collect();
            let expect: Vec<bool> = flips.clone();
            let inverted: Vec<bool> = flips.iter().map(|f| !f).collect();
            prop_assert!(got == expect || got == inverted, "flips {:?} vs {:?}", got, expect);
        }
    }
}
