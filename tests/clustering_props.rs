//! Cross-crate property tests of the clustering invariants:
//!
//! 1. the final clustering equals the connected components of the
//!    accepted-overlap graph computed by brute force (all pairs, full
//!    alignment) — i.e. the heuristics change *work*, never *results*;
//! 2. the heuristic engine never aligns more pairs than the exhaustive
//!    engine;
//! 3. parallel master–worker clustering equals serial clustering.

use pgasm::align::{overlap_align, AcceptCriteria, Scoring};
use pgasm::cluster::clustering::cluster_exhaustive;
use pgasm::cluster::{cluster_parallel, cluster_serial, ClusterParams, MasterWorkerConfig, UnionFind};
use pgasm::gst::GstConfig;
use pgasm::seq::{DnaSeq, FragmentStore};
use proptest::prelude::*;

fn params() -> ClusterParams {
    ClusterParams {
        gst: GstConfig { w: 6, psi: 12 },
        criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 20 },
        // Band wider than any test sequence: the engine's banded DP then
        // computes exactly the full-matrix alignment the reference uses.
        band: 4096,
        ..Default::default()
    }
}

/// Random fragment sets with planted chains of overlaps.
fn fragment_set() -> impl Strategy<Value = FragmentStore> {
    (
        proptest::collection::vec(proptest::collection::vec(0u8..4, 60..120), 3..9),
        proptest::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 0..6),
        any::<bool>(),
    )
        .prop_map(|(seqs, chains, flip)| {
            let mut seqs: Vec<DnaSeq> = seqs.into_iter().map(DnaSeq::from_codes).collect();
            // Plant overlaps: make dst start with the last 40 bases of src.
            for (src, dst) in chains {
                let si = src.index(seqs.len());
                let di = dst.index(seqs.len());
                if si == di {
                    continue;
                }
                let tail: Vec<u8> = {
                    let s = &seqs[si];
                    s.codes()[s.len().saturating_sub(40)..].to_vec()
                };
                let mut joined = DnaSeq::from_codes(tail);
                joined.extend_from(&seqs[di]);
                seqs[di] = if flip { joined.reverse_complement() } else { joined };
            }
            FragmentStore::from_seqs(seqs)
        })
}

/// Brute-force reference: connected components over *all* fragment
/// pairs whose best overlap alignment (any strand combination) passes
/// the acceptance criteria, restricted to pairs that share a maximal
/// match ≥ ψ (the promising-pair definition).
fn reference_components(store: &FragmentStore, p: &ClusterParams) -> Vec<Vec<u32>> {
    let n = store.num_fragments();
    let scoring = Scoring::DEFAULT;
    let mut uf = UnionFind::new(n);
    for i in 0..n as u32 {
        for j in i + 1..n as u32 {
            let a = store.get(pgasm::seq::SeqId(i));
            let b = store.get(pgasm::seq::SeqId(j));
            let b_rc = DnaSeq::from_codes(b.to_vec()).reverse_complement();
            // Promising = shares a maximal match of length ≥ ψ on either
            // strand combination.
            let fwd_matches = pgasm::gst::brute::maximal_matches(a, b, p.gst.psi);
            let rc_matches = pgasm::gst::brute::maximal_matches(a, b_rc.codes(), p.gst.psi);
            let mut accepted = false;
            if !fwd_matches.is_empty() {
                let r = overlap_align(a, b, &scoring);
                accepted |= p.criteria.accepts(r.identity, r.overlap_len);
            }
            if !accepted && !rc_matches.is_empty() {
                let r = overlap_align(a, b_rc.codes(), &scoring);
                accepted |= p.criteria.accepts(r.identity, r.overlap_len);
            }
            if accepted {
                uf.union(i, j);
            }
        }
    }
    uf.sets()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serial_clustering_matches_reference_components(store in fragment_set()) {
        let p = params();
        let (clustering, stats) = cluster_serial(&store, &p);
        let reference = reference_components(&store, &p);
        prop_assert_eq!(&clustering.clusters, &reference);
        prop_assert!(stats.aligned <= stats.generated);
        prop_assert!(stats.accepted <= stats.aligned);
    }

    #[test]
    fn heuristic_never_does_more_work(store in fragment_set()) {
        let p = params();
        let (heur, hs) = cluster_serial(&store, &p);
        let (exh, es) = cluster_exhaustive(&store, &p);
        prop_assert_eq!(heur, exh);
        prop_assert!(hs.aligned <= es.aligned);
        prop_assert_eq!(hs.generated, es.generated);
    }

    #[test]
    fn parallel_equals_serial(store in fragment_set()) {
        let p = params();
        let (serial, _) = cluster_serial(&store, &p);
        let cfg = MasterWorkerConfig { batch: 4, pending_cap: 64, ..Default::default() };
        let report = cluster_parallel(&store, 3, &p, &cfg);
        prop_assert_eq!(report.clustering.clusters, serial.clusters);
    }
}
