//! End-to-end telemetry: the pipeline's run report is serialisable and
//! self-consistent, and the Table-1 work counters are engine-independent
//! — a serial run and a master–worker run on the same seed tally the
//! same pairs generated / aligned / accepted.

use pgasm::cluster::{
    cluster_parallel, cluster_serial, ClusterParams, MasterWorkerConfig, Pipeline, PipelineConfig,
};
use pgasm::gst::{GenMode, GstConfig};
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::telemetry::{names, RunContext, RunReport};

fn test_store(seed: u64, n: usize) -> pgasm::seq::FragmentStore {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 9_000,
            repeat_fraction: 0.1,
            repeat_families: 2,
            repeat_len: (80, 160),
            repeat_identity: 0.99,
            islands: 0,
            island_len: (1, 2),
        },
        seed,
    );
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (130, 210);
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    sampler.wgs(n).to_store()
}

/// §7's protocol reorders alignment work across workers, so counters
/// could legitimately drift in the plain engine (the cluster-check skip
/// depends on merge timing). Geometric mode aligns *every* generated
/// pair and resolves deterministically, making generated / aligned /
/// accepted schedule-independent — they must match the serial run
/// exactly, per rank-summed telemetry too.
#[test]
fn work_counters_identical_between_serial_and_parallel() {
    let store = test_store(11, 60);
    let params = ClusterParams {
        gst: GstConfig { w: 8, psi: 14 },
        mode: GenMode::AllMatches,
        resolve_inconsistent: true,
        ..Default::default()
    };
    let (serial_clustering, serial_stats) = cluster_serial(&store, &params);
    let config = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
    let report = cluster_parallel(&store, 3, &params, &config);

    assert_eq!(report.clustering, serial_clustering);
    assert_eq!(report.stats.generated, serial_stats.generated);
    assert_eq!(report.stats.aligned, serial_stats.aligned);
    assert_eq!(report.stats.accepted, serial_stats.accepted);

    // The same totals fall out of the per-rank telemetry channels.
    let worker_sum = |key: &str| -> u64 { report.ranks[1..].iter().map(|r| r.counter(key)).sum() };
    assert_eq!(worker_sum(names::PAIRS_GENERATED), serial_stats.generated);
    assert_eq!(worker_sum(names::PAIRS_ALIGNED), serial_stats.aligned);
    assert_eq!(worker_sum(names::PAIRS_ACCEPTED), serial_stats.accepted);
}

/// Per-tag `modelled_seconds` is priced on the *sender* only, so the
/// cross-rank sum reproduces the α–β cost of the run's total sent
/// traffic exactly once — the receiving rank's row for the same tag
/// contributes nothing. (Before this, both ends priced every message
/// and cross-rank sums double-counted network time.)
#[test]
fn modelled_seconds_sum_prices_each_message_once() {
    use pgasm::mpisim::CostModel;
    let store = test_store(31, 50);
    let params = ClusterParams { gst: GstConfig { w: 8, psi: 14 }, ..Default::default() };
    let config = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
    let report = cluster_parallel(&store, 4, &params, &config);

    let model = CostModel::BLUEGENE_L;
    let mut from_rows = 0.0;
    let mut alpha_beta = 0.0;
    for rank in &report.ranks {
        for t in &rank.comm {
            from_rows += t.modelled_seconds;
            alpha_beta +=
                t.msgs_sent as f64 * model.latency_s + t.bytes_sent as f64 / model.bandwidth_bytes_per_s;
            if t.msgs_sent == 0 {
                assert_eq!(t.modelled_seconds, 0.0, "receive-only row '{}' must not be priced", t.label);
            }
        }
    }
    assert!(alpha_beta > 0.0);
    assert!((from_rows - alpha_beta).abs() < 1e-12, "{from_rows} vs {alpha_beta}");
}

#[test]
fn pipeline_run_report_survives_json_round_trip() {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 9_000,
            repeat_fraction: 0.0,
            repeat_families: 0,
            repeat_len: (50, 60),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        22,
    );
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (130, 210);
    let mut sampler = Sampler::new(&genome, cfg, 23);
    let reads = sampler.wgs(50);
    let config = PipelineConfig {
        preprocess: None,
        cluster: ClusterParams { gst: GstConfig { w: 10, psi: 18 }, ..Default::default() },
        parallel_ranks: Some(3),
        master_worker: MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() },
        assembly_threads: 2,
        ..Default::default()
    };
    let mut ctx = RunContext::new("e2e");
    let report = Pipeline::new(config).run_with_context(&reads, &[], &[], &mut ctx);
    let run = ctx.finish();

    // Stage graph shape and counter consistency.
    let names: Vec<&str> = run.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["preprocess", "cluster", "assemble"]);
    assert_eq!(run.counter(names::PAIRS_GENERATED), report.cluster_stats.generated);
    assert_eq!(run.ranks.len(), 3);
    assert!(run.ranks.iter().all(|r| !r.comm.is_empty()));

    // Lossless JSON round trip of the full document.
    let text = run.to_json_string();
    let back = RunReport::from_json_str(&text).unwrap();
    assert_eq!(back, run);
    // Spot-check a span and a rank counter survive re-parsing.
    assert_eq!(back.wall("cluster"), run.wall("cluster"));
    assert_eq!(
        back.ranks[1].counter(names::BATCH_ROUND_TRIPS),
        run.ranks[1].counter(names::BATCH_ROUND_TRIPS)
    );
}
