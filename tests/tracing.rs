//! End-to-end tracing: a traced pipeline run yields a well-formed
//! Chrome trace document (one track per rank, ≥ 4 categories, ordered
//! timestamps), and the event-derived blocked time agrees with the
//! simulator's own `wait_ns`/`barrier_ns` accounting.

use pgasm::cluster::{cluster_parallel_traced, ClusterParams, MasterWorkerConfig, Pipeline, PipelineConfig};
use pgasm::gst::GstConfig;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::telemetry::{names, Json, RunContext, TraceSpec};

fn test_reads(seed: u64, n: usize) -> pgasm::simgen::ReadSet {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 12_000,
            repeat_fraction: 0.1,
            repeat_families: 2,
            repeat_len: (80, 160),
            repeat_identity: 0.99,
            islands: 0,
            island_len: (1, 2),
        },
        seed,
    );
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (130, 210);
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    sampler.wgs(n)
}

#[test]
fn traced_pipeline_exports_valid_chrome_trace() {
    let reads = test_reads(7, 80);
    let ranks = 3;
    let config = PipelineConfig {
        preprocess: None,
        cluster: ClusterParams { gst: GstConfig { w: 10, psi: 18 }, ..Default::default() },
        parallel_ranks: Some(ranks),
        master_worker: MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() },
        assembly_threads: 2,
        trace: TraceSpec::on(),
        ..Default::default()
    };
    let mut ctx = RunContext::new("traced");
    Pipeline::new(config).run_with_context(&reads, &[], &[], &mut ctx);
    let doc = ctx.trace_document();

    // One track per clustering rank, the pipeline's own track, and one
    // track per distributed-assembly rank (offset ids `ranks+1..`).
    assert_eq!(doc.tracks.len(), 2 * ranks + 1);
    let mut rank_ids: Vec<usize> = doc.tracks.iter().map(|t| t.rank).collect();
    rank_ids.sort_unstable();
    assert_eq!(rank_ids, vec![0, 1, 2, 3, 4, 5, 6]);
    assert!(doc.tracks.iter().any(|t| t.label == "master"));
    assert!(doc.tracks.iter().any(|t| t.label == "pipeline"));
    assert!(doc.tracks.iter().any(|t| t.label == "asm_master"));

    // The acceptance bar: at least four distinct event categories.
    let cats = doc.categories();
    assert!(cats.len() >= 4, "only {cats:?}");
    for want in ["comm", "master", "stage", "worker", "assemble"] {
        assert!(cats.contains(&want), "missing category '{want}' in {cats:?}");
    }

    // The exported JSON parses and is ordered per track.
    let json = doc.to_chrome_json().pretty();
    let parsed = Json::parse(&json).unwrap();
    assert!(parsed.get("schema_version").and_then(Json::as_u64).is_some());
    let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
    assert!(events.len() > doc.tracks.len(), "no real events beyond metadata");
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        assert!(ts >= *last_ts.get(&tid).unwrap_or(&0.0), "track {tid} not monotonic");
        last_ts.insert(tid, ts);
    }

    // The run report folds in the trace digest.
    let run = ctx.finish();
    let trace = run.trace.expect("traced run carries a trace summary");
    assert!(trace.window_seconds > 0.0);
    assert!(!trace.master_occupancy.is_empty());
    assert!(run.ranks.iter().all(|r| r.idle_gaps.is_some()));
}

/// The `wait`/`barrier` trace spans bracket exactly the regions the
/// simulator charges to `wait_ns`/`barrier_ns`, so the two independent
/// accountings of blocked time must agree within 5% (the spans strictly
/// contain the timed region, so event-derived time can only be the
/// slightly larger one).
#[test]
fn event_blocked_time_matches_wait_ns_accounting() {
    let store = test_reads(19, 120).to_store();
    let params = ClusterParams { gst: GstConfig { w: 10, psi: 18 }, ..Default::default() };
    let config = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
    let report = cluster_parallel_traced(&store, 4, &params, &config, TraceSpec::on());

    assert_eq!(report.traces.len(), 4);
    let event_blocked: u64 = report.traces.iter().map(|t| t.blocked_ns()).sum();
    let counter_blocked: u64 = report
        .ranks
        .iter()
        .map(|r| r.counter(names::WAIT_NS_TOTAL) + r.counter(names::BARRIER_NS_TOTAL))
        .sum();
    assert!(counter_blocked > 0, "a master-worker run must block somewhere");
    assert!(
        event_blocked >= counter_blocked,
        "trace spans contain the timed region: {event_blocked} < {counter_blocked}"
    );
    let ratio = event_blocked as f64 / counter_blocked as f64;
    assert!(ratio < 1.05, "event-derived blocked time off by {:.2}% (> 5%)", (ratio - 1.0) * 100.0);
    assert_eq!(report.traces.iter().map(|t| t.dropped_events).sum::<u64>(), 0, "default capacity overran");
}

/// The disabled tracer must cost < 1% of a smoke clustering run's wall
/// time. A direct traced/untraced A/B is scheduler noise, so bound it
/// deterministically: (events a traced run records) × (measured
/// per-call cost of a disabled tracer) against the untraced wall time.
#[test]
fn disabled_tracer_overhead_is_under_one_percent_of_smoke_run() {
    let store = test_reads(29, 150).to_store();
    let params = ClusterParams { gst: GstConfig { w: 10, psi: 18 }, ..Default::default() };
    let config = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };

    // How many trace-call sites does this workload actually execute?
    let traced = cluster_parallel_traced(&store, 4, &params, &config, TraceSpec::on());
    let call_sites: u64 = traced.traces.iter().map(|t| t.events.len() as u64 + t.dropped_events).sum::<u64>();
    assert!(call_sites > 0);

    // Measured cost of one disabled call in this build profile.
    let mut off = TraceSpec::off().tracer(0, "probe");
    let reps: u32 = 1_000_000;
    let start = std::time::Instant::now();
    for _ in 0..reps {
        off.instant(pgasm::telemetry::TraceCategory::Comm, "probe");
    }
    let per_call = start.elapsed().as_secs_f64() / reps as f64;
    assert!(off.finish().events.is_empty());

    // Wall time of the same workload with tracing off.
    let start = std::time::Instant::now();
    cluster_parallel_traced(&store, 4, &params, &config, TraceSpec::off());
    let wall = start.elapsed().as_secs_f64();

    let overhead = call_sites as f64 * per_call;
    assert!(
        overhead < 0.01 * wall,
        "disabled tracing would cost {overhead:.6}s over {call_sites} call sites \
         on a {wall:.3}s run (>= 1%)"
    );
}

/// Tracing off is the default and must leave no trace artifacts at all
/// — no tracks, no summary, no per-rank histograms.
#[test]
fn untraced_run_carries_no_trace_artifacts() {
    let store = test_reads(23, 60).to_store();
    let params = ClusterParams { gst: GstConfig { w: 10, psi: 18 }, ..Default::default() };
    let config = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
    let report = cluster_parallel_traced(&store, 3, &params, &config, TraceSpec::off());
    assert!(report.traces.iter().all(|t| t.events.is_empty() && t.dropped_events == 0));
}
