//! Fault-tolerance integration matrix: killing any single worker during
//! clustering or assembly leaves the final contigs byte-identical to a
//! fault-free run, dropped/late result reports are deduplicated by the
//! lease journal, and a master kill under checkpointing resumes to the
//! exact same output.
//!
//! Kill events are *self-aiming*: a probe run with an armed
//! never-firing plan reads each rank's `fault_events` clock depth for
//! the stage under test, and the real kill targets the midpoint of the
//! victim's lifetime, rounded to an AR-send round entry (events are
//! 1 mod 4 there, so the victim holds an unacknowledged lease and the
//! master must recover it).

use pgasm::align::AcceptCriteria;
use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig, PipelineReport, StageRecovery};
use pgasm::gst::GstConfig;
use pgasm::mpisim::{FaultPlan, FaultStage, KillTarget};
use pgasm::preprocess::PreprocessConfig;
use pgasm::seq::DnaSeq;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::simgen::vector::VECTOR_SEQ;
use pgasm::simgen::{ReadKind, ReadSet};
use pgasm::telemetry::{RunContext, RunReport};
use std::path::PathBuf;

fn fixture_reads(seed: u64) -> (ReadSet, Genome) {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 10_000,
            repeat_fraction: 0.2,
            repeat_families: 2,
            repeat_len: (120, 300),
            repeat_identity: 0.99,
            islands: 3,
            island_len: (900, 1_500),
        },
        seed,
    );
    let mut cfg = SamplerConfig::default_scaled();
    cfg.island_bias = 1.0;
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    (sampler.enriched(80, ReadKind::Hc), genome)
}

fn config(p: usize, recovery: StageRecovery) -> PipelineConfig {
    PipelineConfig {
        preprocess: Some(PreprocessConfig { stat_repeats: None, min_unmasked_run: 40, ..Default::default() }),
        cluster: ClusterParams {
            gst: GstConfig { w: 10, psi: 18 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 35 },
            ..Default::default()
        },
        parallel_ranks: Some(p),
        assembly_threads: 2,
        recovery,
        ..Default::default()
    }
}

fn run(config: PipelineConfig, reads: &ReadSet, genome: &Genome) -> (PipelineReport, RunReport) {
    let mut ctx = RunContext::new("fault-tolerance-test");
    let report = Pipeline::new(config).run_with_context(
        reads,
        &[DnaSeq::from(VECTOR_SEQ)],
        &genome.repeat_library,
        &mut ctx,
    );
    (report, ctx.finish())
}

/// Every contig of every assembly, as raw ASCII — byte-level equality.
fn contig_bytes(report: &PipelineReport) -> Vec<Vec<u8>> {
    report.assemblies.iter().flat_map(|a| a.contigs.iter().map(|c| c.seq.to_ascii())).collect()
}

/// Per-rank fault-clock depth for `stage`, measured by a probe run whose
/// plan is armed in that stage only but can never fire. Because the
/// `fault_events` counter is folded only by the armed stage, the merged
/// per-rank channels report exactly that stage's clock.
fn probe_depths(p: usize, stage: FaultStage, reads: &ReadSet, genome: &Genome) -> Vec<u64> {
    let recovery = StageRecovery {
        faults: FaultPlan::default().with_kill(KillTarget::Rank(0), u64::MAX, stage),
        ..StageRecovery::default()
    };
    let (_, run_report) = run(config(p, recovery), reads, genome);
    run_report.ranks.iter().map(|r| r.counter(pgasm::telemetry::names::FAULT_EVENTS)).collect()
}

/// Round `mid` down to an AR-send round entry (events are 1 mod 4
/// there); floor 5 so at least one full round completed first.
fn ar_send_event_near(mid: u64) -> u64 {
    (mid.saturating_sub(mid % 4) + 1).max(5)
}

/// Kill each worker in turn during `stage` and require byte-identical
/// contigs, exactly one dead rank, and (across the victims) recovered
/// leases.
fn kill_matrix(stage: FaultStage, seed: u64) {
    let (reads, genome) = fixture_reads(seed);
    for p in [4usize, 8] {
        let (baseline, base_run) = run(config(p, StageRecovery::default()), &reads, &genome);
        assert!(base_run.faults.is_none(), "fault-free run must omit the faults section");
        let expected = contig_bytes(&baseline);
        assert!(!expected.is_empty(), "fixture must assemble something");
        let depths = probe_depths(p, stage, &reads, &genome);
        let mut recovered_any = false;
        for (victim, &depth) in depths.iter().enumerate().skip(1) {
            let at = ar_send_event_near(depth / 2);
            assert!(depth >= at, "victim {victim} at p={p} only reaches event {depth} in {stage:?}");
            let recovery = StageRecovery {
                faults: FaultPlan::default().with_kill(KillTarget::Rank(victim), at, stage),
                ..StageRecovery::default()
            };
            let (report, run_report) = run(config(p, recovery), &reads, &genome);
            assert!(report.interrupted.is_none(), "a worker kill must not interrupt the run");
            assert_eq!(
                contig_bytes(&report),
                expected,
                "contigs changed after killing worker {victim} at event {at} (p={p}, {stage:?})"
            );
            let faults = run_report.faults.expect("armed run must report a faults section");
            assert_eq!(faults.kills_injected, 1);
            assert_eq!(faults.dead_ranks, 1, "victim {victim} at p={p} was not detected");
            recovered_any |= faults.recovered_tasks > 0;
        }
        assert!(recovered_any, "no kill at p={p} recovered a lease in {stage:?}");
    }
}

// The two full victim × rank-count matrices below are ~26 pipeline
// runs; `ci.sh` runs them in release (`--include-ignored`), where the
// whole matrix takes seconds instead of minutes.
#[test]
#[ignore = "full kill matrix is heavy under the dev profile; ci.sh runs it in release"]
fn killing_any_worker_during_clustering_preserves_the_contigs() {
    kill_matrix(FaultStage::Cluster, 7);
}

#[test]
#[ignore = "full kill matrix is heavy under the dev profile; ci.sh runs it in release"]
fn killing_any_worker_during_assembly_preserves_the_contigs() {
    kill_matrix(FaultStage::Assemble, 9);
}

/// Always-on slice of the kill matrix: one seeded victim per stage at
/// p = 4, cheap enough for the dev-profile workspace test run.
#[test]
fn killing_a_worker_in_each_stage_preserves_the_contigs() {
    let (reads, genome) = fixture_reads(21);
    let p = 4;
    let (baseline, _) = run(config(p, StageRecovery::default()), &reads, &genome);
    let expected = contig_bytes(&baseline);
    assert!(!expected.is_empty(), "fixture must assemble something");
    let mut recovered_any = false;
    for stage in [FaultStage::Cluster, FaultStage::Assemble] {
        let depths = probe_depths(p, stage, &reads, &genome);
        let victim = 1 + (depths.iter().sum::<u64>() as usize % (p - 1));
        let at = ar_send_event_near(depths[victim] / 2);
        let recovery = StageRecovery {
            faults: FaultPlan::default().with_kill(KillTarget::Rank(victim), at, stage),
            ..StageRecovery::default()
        };
        let (report, run_report) = run(config(p, recovery), &reads, &genome);
        assert_eq!(contig_bytes(&report), expected, "contigs changed ({stage:?}, victim {victim})");
        let faults = run_report.faults.expect("faults section");
        assert_eq!(faults.dead_ranks, 1);
        recovered_any |= faults.recovered_tasks > 0;
    }
    assert!(recovered_any, "no kill recovered a lease");
}

#[test]
fn dropped_result_report_trips_liveness_and_recovers() {
    let (reads, genome) = fixture_reads(11);
    let p = 4;
    let (baseline, _) = run(config(p, StageRecovery::default()), &reads, &genome);

    // Worker 1's second result report (tag 1 = W2M AR) vanishes on the
    // wire. Its lease can never be retired, so the stall timeout
    // declares the silent worker dead and a survivor redoes the batch.
    // The plan goes through the CLI grammar on purpose.
    let recovery = StageRecovery {
        faults: FaultPlan::parse("drop:src=1,dst=0,tag=1,nth=2").expect("grammar"),
        stall_timeout: Some(50_000),
        ..StageRecovery::default()
    };
    let (report, run_report) = run(config(p, recovery), &reads, &genome);
    assert_eq!(contig_bytes(&report), contig_bytes(&baseline));
    let faults = run_report.faults.expect("faults section");
    assert_eq!(faults.msgs_dropped, 1);
    assert_eq!(faults.kills_injected, 0, "nobody was actually killed");
    assert_eq!(faults.dead_ranks, 1, "liveness must declare the silent worker dead");
    assert!(faults.recovered_tasks > 0);
}

#[test]
fn delayed_result_report_is_absorbed_once_not_twice() {
    let (reads, genome) = fixture_reads(13);
    let p = 4;
    let (baseline, _) = run(config(p, StageRecovery::default()), &reads, &genome);

    // Worker 1's second result report is overtaken by three later
    // deliveries; the lease journal retires it exactly once.
    let recovery = StageRecovery {
        faults: FaultPlan::parse("delay:src=1,dst=0,tag=1,nth=2,by=3").expect("grammar"),
        ..StageRecovery::default()
    };
    let (report, run_report) = run(config(p, recovery), &reads, &genome);
    assert_eq!(contig_bytes(&report), contig_bytes(&baseline));
    let faults = run_report.faults.expect("faults section");
    assert_eq!(faults.msgs_delayed, 1);
    assert_eq!(faults.dead_ranks, 0);
}

/// Scratch directory for checkpoint files, removed on drop.
struct CkptDir(PathBuf);

impl CkptDir {
    fn new(tag: &str) -> CkptDir {
        let dir = std::env::temp_dir().join(format!("pgasm-test-ft-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        CkptDir(dir)
    }
}

impl Drop for CkptDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kill the master mid-`stage` with checkpointing armed, then resume
/// from the snapshot base and require byte-identical contigs.
fn checkpoint_resume(stage: FaultStage, stage_name: &str, seed: u64, tag: &str) {
    let (reads, genome) = fixture_reads(seed);
    let p = 4;
    let dir = CkptDir::new(tag);
    let base = dir.0.join("run");

    let (baseline, _) = run(config(p, StageRecovery::default()), &reads, &genome);
    let depths = probe_depths(p, stage, &reads, &genome);
    let at = (depths[0] / 2).max(8);

    let interrupted = StageRecovery {
        faults: FaultPlan::default().with_kill(KillTarget::Rank(0), at, stage),
        checkpoint_every: Some(1),
        checkpoint_path: Some(base.clone()),
        ..StageRecovery::default()
    };
    let (r1, run1) = run(config(p, interrupted), &reads, &genome);
    assert_eq!(
        r1.interrupted.as_deref(),
        Some(stage_name),
        "master kill at event {at} must interrupt the {stage_name} stage"
    );
    let snapshot: PathBuf = {
        let mut s = base.as_os_str().to_os_string();
        s.push(format!(".{stage_name}.pgck"));
        PathBuf::from(s)
    };
    assert!(snapshot.exists(), "master must have snapshotted before dying");
    assert!(run1.faults.expect("faults section").ckpt_bytes > 0);

    // Resume, fault-free: stages before the snapshot recompute
    // deterministically, the interrupted stage reloads the journal and
    // finishes only the remaining work.
    let resume = StageRecovery { resume_from: Some(base), ..StageRecovery::default() };
    let (r2, run2) = run(config(p, resume), &reads, &genome);
    assert!(r2.interrupted.is_none());
    assert_eq!(contig_bytes(&r2), contig_bytes(&baseline), "resumed contigs differ from a clean run");
    assert!(run2.faults.is_none(), "the resumed run itself is fault-free");
}

#[test]
fn master_kill_during_clustering_resumes_to_identical_contigs() {
    checkpoint_resume(FaultStage::Cluster, "cluster", 17, "ck-cluster");
}

#[test]
fn master_kill_during_assembly_resumes_to_identical_contigs() {
    checkpoint_resume(FaultStage::Assemble, "assemble", 19, "ck-assemble");
}
