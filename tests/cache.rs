//! Artifact-cache integration: cold runs populate the cache, warm runs
//! reload the preprocess output and GST with byte-identical contigs,
//! parameter changes invalidate exactly the affected entries, and
//! corrupted cache files degrade to a cold run instead of wrong output.

use pgasm::align::AcceptCriteria;
use pgasm::cluster::{ClusterParams, Pipeline, PipelineConfig, PipelineReport};
use pgasm::gst::GstConfig;
use pgasm::preprocess::PreprocessConfig;
use pgasm::seq::DnaSeq;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};
use pgasm::simgen::vector::VECTOR_SEQ;
use pgasm::simgen::{ReadKind, ReadSet};
use pgasm::telemetry::{names, RunContext, RunReport};
use std::path::{Path, PathBuf};

/// Per-test scratch cache directory, removed on drop.
struct CacheDir(PathBuf);

impl CacheDir {
    fn new(tag: &str) -> CacheDir {
        let dir = std::env::temp_dir().join(format!("pgasm-test-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CacheDir(dir)
    }
}

impl Drop for CacheDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn fixture_reads(seed: u64) -> (ReadSet, Genome) {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 16_000,
            repeat_fraction: 0.2,
            repeat_families: 2,
            repeat_len: (120, 300),
            repeat_identity: 0.99,
            islands: 3,
            island_len: (1_200, 2_000),
        },
        seed,
    );
    let mut cfg = SamplerConfig::default_scaled();
    cfg.island_bias = 1.0;
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    (sampler.enriched(120, ReadKind::Hc), genome)
}

fn cached_config(dir: &Path) -> PipelineConfig {
    PipelineConfig {
        preprocess: Some(PreprocessConfig { stat_repeats: None, min_unmasked_run: 40, ..Default::default() }),
        cluster: ClusterParams {
            gst: GstConfig { w: 10, psi: 18 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 35 },
            ..Default::default()
        },
        parallel_ranks: None,
        assembly_threads: 2,
        cache_dir: Some(dir.to_path_buf()),
        ..Default::default()
    }
}

fn run(config: PipelineConfig, reads: &ReadSet, genome: &Genome) -> (PipelineReport, RunReport) {
    let mut ctx = RunContext::new("cache-test");
    let report = Pipeline::new(config).run_with_context(
        reads,
        &[DnaSeq::from(VECTOR_SEQ)],
        &genome.repeat_library,
        &mut ctx,
    );
    (report, ctx.finish())
}

/// Every contig of every assembly, as raw ASCII — byte-level equality.
fn contig_bytes(report: &PipelineReport) -> Vec<Vec<u8>> {
    report.assemblies.iter().flat_map(|a| a.contigs.iter().map(|c| c.seq.to_ascii())).collect()
}

#[test]
fn warm_run_hits_cache_with_byte_identical_contigs() {
    let dir = CacheDir::new("warm");
    let (reads, genome) = fixture_reads(7);

    let (cold, cold_run) = run(cached_config(&dir.0), &reads, &genome);
    // Cold: all three artifacts miss, then persist.
    assert_eq!(cold_run.counter(names::CACHE_HIT), 0);
    assert_eq!(cold_run.counter(names::CACHE_MISS), 3);
    assert!(cold_run.counter(names::CACHE_BYTES_WRITTEN) > 0);
    // Cold cache-enabled serial runs expose the GST build as a span.
    assert!(cold_run.span("cluster").unwrap().find("cluster/gst_build").is_some());

    let (warm, warm_run) = run(cached_config(&dir.0), &reads, &genome);
    // Warm: preprocess + GST + contigs all load; nothing is recomputed
    // or rewritten — the assemble stage is skipped outright.
    assert_eq!(warm_run.counter(names::CACHE_HIT), 3);
    assert_eq!(warm_run.counter(names::CACHE_MISS), 0);
    assert_eq!(warm_run.counter(names::CACHE_BYTES_WRITTEN), 0);
    assert!(warm_run.counter(names::CACHE_BYTES_READ) > 0);
    assert!(
        warm_run.span("cluster").unwrap().find("cluster/gst_build").is_none(),
        "warm run must not rebuild the GST"
    );

    assert_eq!(warm.clustering, cold.clustering);
    assert_eq!(warm.preprocess, cold.preprocess);
    assert_eq!(contig_bytes(&warm), contig_bytes(&cold));
    assert!(!contig_bytes(&cold).is_empty(), "fixture must assemble something");
}

#[test]
fn unrelated_flag_change_still_hits() {
    let dir = CacheDir::new("unrelated");
    let (reads, genome) = fixture_reads(8);
    let (cold, _) = run(cached_config(&dir.0), &reads, &genome);

    // assembly_threads affects no artifact key — not even the contigs
    // (the thread count never changes the output bytes).
    let mut config = cached_config(&dir.0);
    config.assembly_threads = 7;
    let (warm, warm_run) = run(config, &reads, &genome);
    assert_eq!(warm_run.counter(names::CACHE_HIT), 3);
    assert_eq!(warm_run.counter(names::CACHE_MISS), 0);
    assert_eq!(contig_bytes(&warm), contig_bytes(&cold));
}

#[test]
fn params_change_recomputes_affected_stage() {
    let dir = CacheDir::new("params");
    let (reads, genome) = fixture_reads(9);
    let (_, cold_run) = run(cached_config(&dir.0), &reads, &genome);
    assert_eq!(cold_run.counter(names::CACHE_MISS), 3);

    // A GST parameter change invalidates the GST entry only: the
    // preprocess artifact still hits.
    let mut config = cached_config(&dir.0);
    config.cluster.gst.psi = 22;
    let (_, run1) = run(config, &reads, &genome);
    assert_eq!(run1.counter(names::CACHE_HIT), 1, "preprocess should still hit");
    // The psi change cascades past the GST: the clustering it yields
    // differs, so the contigs entry (keyed on the clustering) misses
    // along with the tree.
    assert_eq!(run1.counter(names::CACHE_MISS), 2, "gst and contigs must recompute");

    // A preprocess parameter change always invalidates the preprocess
    // entry. The GST entry is content-addressed on the preprocess
    // *output*, not its parameters: this tweak (min run 40 → 60)
    // rejects no additional fragments, so the fragment set — and the
    // GST key — is unchanged and the tree still reloads.
    let mut config = cached_config(&dir.0);
    config.preprocess =
        Some(PreprocessConfig { stat_repeats: None, min_unmasked_run: 60, ..Default::default() });
    let (rep2, run2) = run(config, &reads, &genome);
    assert_eq!(run2.counter(names::CACHE_MISS), 1, "preprocess must recompute");
    assert_eq!(run2.counter(names::CACHE_HIT), 2, "unchanged output keeps the GST and contigs warm");

    // A preprocess change that *does* alter the surviving set cascades:
    // the GST keys off a different fragment digest and recomputes too.
    let mut config = cached_config(&dir.0);
    config.preprocess =
        Some(PreprocessConfig { stat_repeats: None, min_unmasked_run: 100_000, ..Default::default() });
    let (rep3, run3) = run(config, &reads, &genome);
    assert!(
        rep3.origin.len() < rep2.origin.len(),
        "fixture must actually lose fragments ({} vs {})",
        rep3.origin.len(),
        rep2.origin.len()
    );
    assert_eq!(run3.counter(names::CACHE_HIT), 0);
    assert_eq!(run3.counter(names::CACHE_MISS), 3);
}

#[test]
fn truncated_cache_files_degrade_to_cold_run() {
    let dir = CacheDir::new("truncate");
    let (reads, genome) = fixture_reads(10);
    let (cold, _) = run(cached_config(&dir.0), &reads, &genome);

    // Truncate every cache entry to half its size.
    let mut entries = 0;
    for entry in std::fs::read_dir(&dir.0).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        entries += 1;
    }
    assert_eq!(entries, 3, "expected preprocess, gst, and contigs entries");

    // The run must neither panic nor trust the damaged entries — full
    // recompute, identical results, and repaired cache files.
    let (recovered, rec_run) = run(cached_config(&dir.0), &reads, &genome);
    assert_eq!(rec_run.counter(names::CACHE_HIT), 0);
    assert_eq!(rec_run.counter(names::CACHE_MISS), 3);
    assert!(rec_run.counter(names::CACHE_BYTES_WRITTEN) > 0, "entries must be rewritten");
    assert_eq!(contig_bytes(&recovered), contig_bytes(&cold));

    // And the rewrite healed the cache: the next run is warm again.
    let (_, healed_run) = run(cached_config(&dir.0), &reads, &genome);
    assert_eq!(healed_run.counter(names::CACHE_HIT), 3);
    assert_eq!(healed_run.counter(names::CACHE_MISS), 0);
}

#[test]
fn uncached_and_cached_results_agree() {
    let dir = CacheDir::new("parity");
    let (reads, genome) = fixture_reads(11);
    let mut uncached = cached_config(&dir.0);
    uncached.cache_dir = None;
    let (plain, plain_run) = run(uncached, &reads, &genome);
    assert_eq!(plain_run.counter(names::CACHE_HIT) + plain_run.counter(names::CACHE_MISS), 0);

    let (cold, _) = run(cached_config(&dir.0), &reads, &genome);
    let (warm, _) = run(cached_config(&dir.0), &reads, &genome);
    assert_eq!(contig_bytes(&plain), contig_bytes(&cold));
    assert_eq!(contig_bytes(&plain), contig_bytes(&warm));
    assert_eq!(plain.clustering, warm.clustering);
}
