//! Adversarial master–worker configurations: degenerate batch sizes,
//! pending buffers smaller than a batch (backpressure — the regime
//! where a zero flow-control grant used to livelock the protocol), and
//! rank counts close to (or exceeding) the fragment count. Every
//! configuration must terminate and reproduce the serial clustering
//! bit-for-bit, in plain and geometric modes, with coalescing on and
//! off.

use pgasm::cluster::{cluster_parallel, cluster_serial, ClusterParams, MasterWorkerConfig};
use pgasm::gst::GstConfig;
use pgasm::mpisim::CoalescePolicy;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};

fn test_reads(seed: u64, n: usize) -> pgasm::seq::FragmentStore {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 6_000,
            repeat_fraction: 0.1,
            repeat_families: 2,
            repeat_len: (80, 160),
            repeat_identity: 0.99,
            islands: 0,
            island_len: (1, 2),
        },
        seed,
    );
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (120, 200);
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    sampler.wgs(n).to_store()
}

fn params(geometric: bool) -> ClusterParams {
    ClusterParams { gst: GstConfig { w: 8, psi: 14 }, resolve_inconsistent: geometric, ..Default::default() }
}

/// Run one adversarial configuration in both modes and both coalescing
/// arms, asserting serial equivalence (which implies termination).
fn check(store: &pgasm::seq::FragmentStore, p: usize, cfg: &MasterWorkerConfig) {
    for geometric in [false, true] {
        let params = params(geometric);
        let (serial, _) = cluster_serial(store, &params);
        for coalesce in [None, Some(CoalescePolicy::default())] {
            let cfg = MasterWorkerConfig { coalesce, ..*cfg };
            let report = cluster_parallel(store, p, &params, &cfg);
            assert_eq!(
                report.clustering,
                serial,
                "p = {p}, batch = {}, pending_cap = {}, geometric = {geometric}, coalesce = {}",
                cfg.batch,
                cfg.pending_cap,
                coalesce.is_some()
            );
        }
    }
}

/// `batch = 1`: every allocation carries one pair, maximising protocol
/// round-trips (and envelope traffic when coalescing).
#[test]
fn batch_of_one() {
    let store = test_reads(41, 24);
    check(&store, 3, &MasterWorkerConfig { batch: 1, pending_cap: 16, ..Default::default() });
}

/// `pending_cap < batch`: the pending buffer saturates immediately, so
/// the flow-control grant is capacity-clamped every round. Before the
/// `r >= 1` clamp this livelocked — active workers were granted zero
/// pairs to generate and spun in empty report/grant round-trips.
#[test]
fn pending_cap_smaller_than_batch() {
    let store = test_reads(42, 30);
    check(&store, 4, &MasterWorkerConfig { batch: 8, pending_cap: 3, ..Default::default() });
}

/// Both degenerate at once: single-pair batches through a single-slot
/// buffer.
#[test]
fn single_slot_buffer_single_pair_batches() {
    let store = test_reads(43, 20);
    check(&store, 3, &MasterWorkerConfig { batch: 1, pending_cap: 1, ..Default::default() });
}

/// More protocol participants than useful work: p close to (and
/// exceeding) the fragment count. Most workers own little or nothing of
/// the GST and park almost immediately; termination must still reach
/// everyone.
#[test]
fn ranks_near_fragment_count() {
    let store = test_reads(44, 8);
    let n = store.num_fragments();
    assert_eq!(n, 8);
    for p in [n - 1, n, n + 2] {
        check(&store, p, &MasterWorkerConfig { batch: 4, pending_cap: 32, ..Default::default() });
    }
}

/// A single fragment leaves every worker with an empty generator: the
/// protocol degenerates to one empty round per worker plus termination.
#[test]
fn single_fragment_many_ranks() {
    let store = pgasm::seq::FragmentStore::from_seqs(vec![pgasm::seq::DnaSeq::from(
        "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT",
    )]);
    for p in [2usize, 5] {
        check(&store, p, &MasterWorkerConfig { batch: 1, pending_cap: 1, ..Default::default() });
    }
}
