//! Distributed-assembly integration: the engine-hosted assembly phase
//! produces byte-identical contigs to the threaded in-process path at
//! several rank counts, and largest-first (LPT) dispatch strictly beats
//! contiguous chunking on a heavy-tailed workload where the dominant
//! cluster sets the critical path.

use pgasm::align::AcceptCriteria;
use pgasm::assemble::AssemblyConfig;
use pgasm::cluster::pipeline::assemble_clusters_q;
use pgasm::cluster::{
    assemble_parallel, cluster_serial, AssignPolicy, ClusterParams, Clustering, DistAssembleReport,
};
use pgasm::gst::GstConfig;
use pgasm::seq::{DnaSeq, FragmentStore};
use pgasm::telemetry::names;

fn genome(seed: u64, len: usize) -> String {
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
        })
        .collect()
}

fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
    let b = g.as_bytes();
    let mut out = Vec::new();
    let mut at = 0;
    while at + read <= b.len() {
        out.push(DnaSeq::from_ascii(&b[at..at + read]));
        at += step;
    }
    out
}

/// One dominant island (~64 reads, cost proxy 2016) plus 14 small ones
/// (5 reads, cost proxy 10 each): 15 non-singleton clusters, so at
/// p = 8 static chunking packs ⌈15/7⌉ = 3 clusters per grant and the
/// dominant cluster's chunk always carries extra work, while LPT hands
/// the dominant cluster out alone first.
fn fixture() -> (FragmentStore, Clustering) {
    let mut reads = tile(&genome(7, 4000), 200, 60);
    for seed in 100..114 {
        reads.extend(tile(&genome(seed, 600), 200, 90));
    }
    let store = FragmentStore::from_seqs(reads);
    let params = ClusterParams {
        gst: GstConfig { w: 8, psi: 16 },
        criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
        ..Default::default()
    };
    let (clustering, _) = cluster_serial(&store, &params);
    assert_eq!(clustering.num_non_singletons(), 15, "fixture yields 1 giant + 14 small clusters");
    (store, clustering)
}

#[test]
fn distributed_assembly_is_byte_identical_to_threaded() {
    let (store, clustering) = fixture();
    let cfg = AssemblyConfig::default();
    let threaded = assemble_clusters_q(&store, None, &clustering, &cfg, 4);
    assert!(!threaded.is_empty());
    for p in [2usize, 4, 8] {
        for policy in [AssignPolicy::Lpt, AssignPolicy::Static] {
            let dist = assemble_parallel(&store, None, &clustering, &cfg, p, policy);
            assert_eq!(dist.assemblies, threaded, "p = {p}, policy = {policy:?}");
        }
    }
}

/// max / mean of the deterministic per-worker cost-unit counter.
fn imbalance(report: &DistAssembleReport) -> f64 {
    let costs: Vec<u64> = report.ranks[1..].iter().map(|r| r.counter(names::ASM_COST_UNITS)).collect();
    let max = costs.iter().copied().max().unwrap_or(0) as f64;
    let mean = costs.iter().sum::<u64>() as f64 / costs.len().max(1) as f64;
    max / mean.max(1e-9)
}

#[test]
fn lpt_strictly_beats_static_chunking_at_p8() {
    let (store, clustering) = fixture();
    let cfg = AssemblyConfig::default();
    let lpt = assemble_parallel(&store, None, &clustering, &cfg, 8, AssignPolicy::Lpt);
    let stat = assemble_parallel(&store, None, &clustering, &cfg, 8, AssignPolicy::Static);
    // Same total work either way, so comparing max/mean compares the
    // worst-loaded worker directly.
    let (lpt_ratio, stat_ratio) = (imbalance(&lpt), imbalance(&stat));
    assert!(
        lpt_ratio < stat_ratio,
        "LPT must strictly beat static chunking here: max/mean {lpt_ratio:.3} vs {stat_ratio:.3}"
    );
    // LPT's critical path is exactly the dominant cluster: the worker
    // that drew it gets nothing else while the tail back-fills.
    let lpt_max: u64 = lpt.ranks[1..].iter().map(|r| r.counter(names::ASM_COST_UNITS)).max().unwrap_or(0);
    let giant: u64 =
        clustering.non_singletons().map(|m| (m.len() as u64) * (m.len() as u64 - 1) / 2).max().unwrap_or(0);
    assert_eq!(lpt_max, giant, "the dominant cluster rides alone under LPT");
}
