//! Property tests for the two-phase overlap kernel: it must be
//! observationally identical to the legacy banded kernel on every pair
//! it fully evaluates, and its early exit must never fire on a pair the
//! acceptance criteria would accept. The vectorised kernel rides the
//! same bars, plus two of its own: the scalar fallback is bit-identical
//! to the vector path on arbitrary byte sequences, and the adaptive
//! X-drop shrink never drops a pair the fixed band accepts.

use pgasm::align::overlap::overlap_align_quality_with;
use pgasm::align::{
    banded_overlap_align, overlap_align_quality, overlap_align_simd, overlap_align_two_phase, AcceptCriteria,
    AlignScratch, Scoring, SimdOpts,
};
use pgasm::seq::DnaSeq;
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..4, len).prop_map(DnaSeq::from_codes)
}

/// Like `dna` but with masked positions (code 4 never matches anything,
/// itself included).
fn masked_dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    proptest::collection::vec(0u8..5, len).prop_map(DnaSeq::from_codes)
}

/// A pair of sequences sharing a planted suffix–prefix overlap.
fn overlapping_pair() -> impl Strategy<Value = (DnaSeq, DnaSeq, usize)> {
    (dna(30..80), dna(20..60), dna(30..80)).prop_map(|(left, shared, right)| {
        let mut a = left;
        a.extend_from(&shared);
        let mut b = shared.clone();
        b.extend_from(&right);
        (a, b, shared.len())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ungated, the two-phase kernel is the legacy banded kernel: same
    /// score, ranges, overlap length, identity — and the score-only
    /// pass visits exactly the legacy kernel's cell set.
    #[test]
    fn ungated_two_phase_matches_legacy(
        (a, b, shared) in overlapping_pair(),
        wobble in -3i64..=3,
        band in 8usize..64,
    ) {
        let s = Scoring::DEFAULT;
        let diag = (a.len() - shared) as i64 + wobble;
        let legacy = banded_overlap_align(a.codes(), b.codes(), diag, band, &s);
        let mut scratch = AlignScratch::new();
        let two = overlap_align_two_phase(a.codes(), b.codes(), diag, band, &s, None, None, &mut scratch);
        prop_assert_eq!(legacy.score, two.score);
        prop_assert_eq!(legacy.a_range, two.a_range);
        prop_assert_eq!(legacy.b_range, two.b_range);
        prop_assert_eq!(legacy.overlap_len, two.overlap_len);
        prop_assert!((legacy.identity - two.identity).abs() < 1e-12);
        prop_assert_eq!(legacy.cells, two.cells_phase1);
        prop_assert!(!two.early_exited);
    }

    /// Masked bases (which never match) change the scores but not the
    /// equivalence of the two kernels.
    #[test]
    fn masked_bases_keep_kernels_equivalent(
        a in masked_dna(20..120),
        b in masked_dna(20..120),
        diag in -20i64..=20,
    ) {
        let s = Scoring::DEFAULT;
        let legacy = banded_overlap_align(a.codes(), b.codes(), diag, 16, &s);
        let mut scratch = AlignScratch::new();
        let two = overlap_align_two_phase(a.codes(), b.codes(), diag, 16, &s, None, None, &mut scratch);
        prop_assert_eq!(legacy.score, two.score);
        prop_assert_eq!(legacy.a_range, two.a_range);
        prop_assert_eq!(legacy.b_range, two.b_range);
        prop_assert_eq!(legacy.overlap_len, two.overlap_len);
        prop_assert!((legacy.identity - two.identity).abs() < 1e-12);
    }

    /// With the acceptance gate on, any pair the legacy kernel's result
    /// would pass is returned bit-identically: the early exit never
    /// fires on an acceptable pair and its traceback is never skipped.
    #[test]
    fn gate_never_drops_an_acceptable_pair(
        (a, b, shared) in overlapping_pair(),
        wobble in -3i64..=3,
    ) {
        let s = Scoring::DEFAULT;
        let criteria = AcceptCriteria::CLUSTERING;
        let diag = (a.len() - shared) as i64 + wobble;
        let legacy = banded_overlap_align(a.codes(), b.codes(), diag, 24, &s);
        let mut scratch = AlignScratch::new();
        let two = overlap_align_two_phase(
            a.codes(), b.codes(), diag, 24, &s, Some(&criteria), None, &mut scratch,
        );
        if criteria.accepts(legacy.identity, legacy.overlap_len) {
            prop_assert!(!two.early_exited, "early exit fired on an acceptable pair");
            prop_assert!(!two.traceback_skipped, "traceback skipped on an acceptable pair");
            prop_assert_eq!(legacy.score, two.score);
            prop_assert_eq!(legacy.a_range, two.a_range);
            prop_assert_eq!(legacy.b_range, two.b_range);
            prop_assert_eq!(legacy.overlap_len, two.overlap_len);
            prop_assert!((legacy.identity - two.identity).abs() < 1e-12);
        } else {
            // The gate may only ever reject — and it must reject with a
            // result the criteria also reject.
            prop_assert!(!criteria.accepts(two.identity, two.overlap_len));
        }
        // Either way both kernels agree on the accept/reject decision.
        prop_assert_eq!(
            criteria.accepts(legacy.identity, legacy.overlap_len),
            criteria.accepts(two.identity, two.overlap_len)
        );
    }

    /// The quality-weighted path through the reusable scratch equals
    /// the plain entry point, and a band wider than both sequences
    /// makes the two-phase kernel reproduce the full quality DP.
    #[test]
    fn quality_path_matches(
        (a, b, shared) in overlapping_pair(),
        qa_base in 10u8..40,
        qb_base in 10u8..40,
    ) {
        let s = Scoring::DEFAULT;
        let qa = vec![qa_base; a.len()];
        let qb = vec![qb_base; b.len()];
        let fresh = overlap_align_quality(a.codes(), b.codes(), Some((&qa, &qb)), &s);
        let mut scratch = AlignScratch::new();
        // Warm the scratch on an unrelated pair first: reuse must not
        // leak state between alignments.
        let _ = overlap_align_quality_with(b.codes(), a.codes(), None, &s, &mut scratch);
        let reused = overlap_align_quality_with(a.codes(), b.codes(), Some((&qa, &qb)), &s, &mut scratch);
        prop_assert_eq!(fresh.score, reused.score);
        prop_assert_eq!(fresh.a_range, reused.a_range);
        prop_assert_eq!(fresh.b_range, reused.b_range);
        prop_assert!((fresh.identity - reused.identity).abs() < 1e-12);

        let diag = (a.len() - shared) as i64;
        let band = a.len() + b.len();
        let two = overlap_align_two_phase(
            a.codes(), b.codes(), diag, band, &s, None, Some((&qa, &qb)), &mut scratch,
        );
        prop_assert_eq!(fresh.score, two.score);
        prop_assert_eq!(fresh.overlap_len, two.overlap_len);
        prop_assert!((fresh.identity - two.identity).abs() < 1e-12);
    }

    /// Empty sequences are a no-op for every kernel.
    #[test]
    fn empty_sequences_yield_empty_results(a in dna(0..40), diag in -5i64..=5) {
        let s = Scoring::DEFAULT;
        let empty: &[u8] = &[];
        let mut scratch = AlignScratch::new();
        for (x, y) in [(a.codes(), empty), (empty, a.codes()), (empty, empty)] {
            let legacy = banded_overlap_align(x, y, diag, 8, &s);
            let two = overlap_align_two_phase(x, y, diag, 8, &s, None, None, &mut scratch);
            let simd = overlap_align_simd(x, y, diag, 8, &s, None, None, &mut scratch, SimdOpts::default());
            prop_assert_eq!(legacy.score, 0);
            prop_assert_eq!(two.score, 0);
            prop_assert_eq!(two.overlap_len, 0);
            prop_assert_eq!(two.cells, 0);
            prop_assert_eq!(simd.score, 0);
            prop_assert_eq!(simd.cells, 0);
        }
    }

    /// The SIMD kernel's scalar fallback is bit-identical to its vector
    /// path — the *whole result struct*, not just the verdict — on
    /// sequences drawn from the full u8 code space (bases, masked
    /// codes, and garbage bytes alike), at every length down to 0 and 1
    /// and with bands far wider than both sequences.
    #[test]
    fn simd_scalar_fallback_bit_identical_on_arbitrary_bytes(
        a in proptest::collection::vec(any::<u8>(), 0..90),
        b in proptest::collection::vec(any::<u8>(), 0..90),
        diag in -30i64..=30,
        band in 1usize..200,
        gated in any::<bool>(),
        adaptive in any::<bool>(),
    ) {
        let s = Scoring::DEFAULT;
        let criteria = AcceptCriteria::CLUSTERING;
        let gate = if gated { Some(&criteria) } else { None };
        let mut scratch = AlignScratch::new();
        let vec_r = overlap_align_simd(
            &a, &b, diag, band, &s, gate, None, &mut scratch,
            SimdOpts { force_scalar: false, adaptive },
        );
        let sc_r = overlap_align_simd(
            &a, &b, diag, band, &s, gate, None, &mut scratch,
            SimdOpts { force_scalar: true, adaptive },
        );
        prop_assert_eq!(vec_r, sc_r);
    }

    /// Ungated and non-adaptive, the SIMD kernel's phase 1 visits
    /// exactly the legacy banded kernel's cell set and reproduces its
    /// result — same bar the scalar two-phase kernel is held to.
    #[test]
    fn simd_ungated_matches_legacy_props(
        a in masked_dna(1..100),
        b in masked_dna(1..100),
        diag in -24i64..=24,
        band in 4usize..48,
    ) {
        let s = Scoring::DEFAULT;
        let legacy = banded_overlap_align(a.codes(), b.codes(), diag, band, &s);
        let mut scratch = AlignScratch::new();
        let simd = overlap_align_simd(
            a.codes(), b.codes(), diag, band, &s, None, None, &mut scratch, SimdOpts::default(),
        );
        prop_assert_eq!(legacy.score, simd.score);
        prop_assert_eq!(legacy.a_range, simd.a_range);
        prop_assert_eq!(legacy.b_range, simd.b_range);
        prop_assert_eq!(legacy.overlap_len, simd.overlap_len);
        prop_assert!((legacy.identity - simd.identity).abs() < 1e-12);
        prop_assert_eq!(legacy.cells, simd.cells_phase1);
        prop_assert_eq!(simd.cells_saved_adaptive, 0);
    }

    /// The adaptive X-drop shrink never drops a pair the fixed band
    /// accepts — and accepted pairs come back bit-identical, under the
    /// default scoring and under the harsh verification scoring whose
    /// steep off-diagonal decay makes the shrink actually engage.
    #[test]
    fn adaptive_band_never_drops_an_accepted_pair(
        (a, b, shared) in overlapping_pair(),
        wobble in -3i64..=3,
        band in 8usize..40,
        harsh in any::<bool>(),
    ) {
        let s = if harsh {
            Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 }
        } else {
            Scoring::DEFAULT
        };
        let criteria = AcceptCriteria::CLUSTERING;
        let diag = (a.len() - shared) as i64 + wobble;
        let mut scratch = AlignScratch::new();
        let fixed = overlap_align_simd(
            a.codes(), b.codes(), diag, band, &s, Some(&criteria), None, &mut scratch,
            SimdOpts { force_scalar: false, adaptive: false },
        );
        let adapt = overlap_align_simd(
            a.codes(), b.codes(), diag, band, &s, Some(&criteria), None, &mut scratch,
            SimdOpts { force_scalar: false, adaptive: true },
        );
        if criteria.accepts(fixed.identity, fixed.overlap_len) {
            prop_assert_eq!(fixed.score, adapt.score);
            prop_assert_eq!(fixed.a_range, adapt.a_range);
            prop_assert_eq!(fixed.b_range, adapt.b_range);
            prop_assert_eq!(fixed.overlap_len, adapt.overlap_len);
            prop_assert!((fixed.identity - adapt.identity).abs() < 1e-12);
        } else {
            prop_assert!(!criteria.accepts(adapt.identity, adapt.overlap_len));
        }
        // Savings accounting stays consistent either way: what the
        // adaptive run computed plus what it skipped never exceeds the
        // fixed band's phase-1 work.
        prop_assert!(adapt.cells_phase1 + adapt.cells_saved_adaptive <= fixed.cells_phase1);
    }
}
