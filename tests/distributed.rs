//! Distributed-substrate integration: the per-rank GST forests jointly
//! generate the serial pair stream, the master–worker protocol scales
//! worker counts without changing results, and the traffic accounting
//! stays consistent — all on simgen data with sequencing errors.

use pgasm::cluster::parallel_gst::{build_distributed_gst, compute_owners, rank_build_gst};
use pgasm::cluster::{cluster_parallel, cluster_serial, ClusterParams, MasterWorkerConfig};
use pgasm::gst::{GenMode, Gst, GstConfig, PairGenerator};
use pgasm::mpisim::CostModel;
use pgasm::simgen::genome::{Genome, GenomeSpec};
use pgasm::simgen::sampler::{Sampler, SamplerConfig};

fn test_reads(seed: u64, n: usize) -> pgasm::seq::FragmentStore {
    let genome = Genome::generate(
        &GenomeSpec {
            length: 8_000,
            repeat_fraction: 0.1,
            repeat_families: 2,
            repeat_len: (80, 200),
            repeat_identity: 0.99,
            islands: 0,
            island_len: (1, 2),
        },
        seed,
    );
    let mut cfg = SamplerConfig::clean();
    cfg.read_len = (120, 200);
    let mut sampler = Sampler::new(&genome, cfg, seed + 1);
    sampler.wgs(n).to_store()
}

#[test]
fn distributed_gst_pairs_equal_serial_on_simulated_reads() {
    let config = GstConfig { w: 8, psi: 14 };
    let ds = test_reads(1, 40).with_reverse_complements();
    let serial: Vec<_> = {
        let gst = Gst::build(&ds, config);
        let mut v: Vec<_> = PairGenerator::new(gst, GenMode::AllMatches, |_, _| false)
            .map(|p| (p.a.0, p.b.0, p.a_pos, p.b_pos, p.match_len))
            .collect();
        v.sort_unstable();
        v
    };
    for p in [2usize, 4] {
        let owner = compute_owners(&ds, p, 0);
        let (owner, ds_ref) = (&owner, &ds);
        let per_rank = pgasm::mpisim::run(p, move |comm| {
            let (gst, _text, _rep) = rank_build_gst(comm, ds_ref, owner, config, 0);
            PairGenerator::new(gst, GenMode::AllMatches, |_, _| false)
                .map(|pr| (pr.a.0, pr.b.0, pr.a_pos, pr.b_pos, pr.match_len))
                .collect::<Vec<_>>()
        });
        let mut combined: Vec<_> = per_rank.into_iter().flatten().collect();
        combined.sort_unstable();
        assert_eq!(combined, serial, "p = {p}");
    }
}

#[test]
fn gst_traffic_shrinks_per_rank_as_ranks_grow() {
    let ds = test_reads(2, 60).with_reverse_complements();
    let config = GstConfig { w: 8, psi: 14 };
    let r2 = build_distributed_gst(&ds, 2, config);
    let r8 = build_distributed_gst(&ds, 8, config);
    let max_bytes_2 = r2.per_rank.iter().map(|r| r.comm.bytes_recv).max().unwrap();
    let max_bytes_8 = r8.per_rank.iter().map(|r| r.comm.bytes_recv).max().unwrap();
    // With 4x the ranks, the heaviest rank receives less data.
    assert!(
        max_bytes_8 < max_bytes_2,
        "per-rank traffic should drop: p=2 max {max_bytes_2}, p=8 max {max_bytes_8}"
    );
}

#[test]
fn master_worker_scales_worker_count_without_changing_result() {
    let store = test_reads(3, 50);
    let params = ClusterParams { gst: GstConfig { w: 8, psi: 14 }, ..Default::default() };
    let (serial, serial_stats) = cluster_serial(&store, &params);
    for workers in [1usize, 3, 6] {
        let cfg = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
        let report = cluster_parallel(&store, workers + 1, &params, &cfg);
        assert_eq!(report.clustering, serial, "workers = {workers}");
        // Work totals agree with the serial run where order-independent.
        assert_eq!(report.stats.generated, serial_stats.generated, "workers = {workers}");
        assert_eq!(report.stats.accepted as usize + count_rejected(&report), report.stats.aligned as usize);
    }
}

fn count_rejected(report: &pgasm::cluster::ParallelClusterReport) -> usize {
    (report.stats.aligned - report.stats.accepted) as usize
}

#[test]
fn modelled_comm_time_is_finite_and_positive() {
    let store = test_reads(4, 30);
    let params = ClusterParams { gst: GstConfig { w: 8, psi: 14 }, ..Default::default() };
    let cfg = MasterWorkerConfig { batch: 8, pending_cap: 128, ..Default::default() };
    let report = cluster_parallel(&store, 3, &params, &cfg);
    let model = CostModel::BLUEGENE_L;
    for c in &report.comm {
        let t = model.comm_time(c);
        assert!(t.is_finite() && t >= 0.0);
    }
    // The master exchanged at least one message per worker.
    assert!(report.comm[0].msgs_recv >= 2);
}
