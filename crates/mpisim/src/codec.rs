//! Length-prefixed little-endian binary codec for message payloads.
//!
//! Deliberately tiny: the framework's messages are flat arrays of
//! integers and code bytes, so a handful of primitives suffices and the
//! wire size stays predictable (important for the cost model).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Convert a slice length to the `u32` wire prefix, panicking with a
/// clear message when it cannot be represented. The unchecked
/// `len as u32` it replaces would silently truncate the prefix and
/// encode a frame that decodes to garbage.
#[inline]
pub fn checked_len(len: usize) -> u32 {
    u32::try_from(len)
        .unwrap_or_else(|_| panic!("slice of {len} items exceeds the u32 length prefix (max {})", u32::MAX))
}

/// Encoder over a growable buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// New empty encoder.
    pub fn new() -> Self {
        Encoder { buf: BytesMut::new() }
    }

    /// New encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap) }
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Append an `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_u32_le(checked_len(v.len()));
        self.buf.put_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) -> &mut Self {
        self.buf.put_u32_le(checked_len(v.len()));
        for &x in v {
            self.buf.put_u32_le(x);
        }
        self
    }

    /// Finish and take the payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoder over a received payload.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wrap a payload.
    pub fn new(buf: Bytes) -> Self {
        Decoder { buf }
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> u32 {
        self.buf.get_u32_le()
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> u64 {
        self.buf.get_u64_le()
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> f64 {
        self.buf.get_f64_le()
    }

    /// Read a length-prefixed byte slice (zero-copy).
    pub fn get_bytes(&mut self) -> Bytes {
        let len = self.buf.get_u32_le() as usize;
        self.buf.split_to(len)
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid bytes —
    /// wire strings are always produced by [`Encoder::put_str`]).
    pub fn get_str(&mut self) -> String {
        String::from_utf8_lossy(&self.get_bytes()).into_owned()
    }

    /// Read a length-prefixed `u32` slice.
    pub fn get_u32_slice(&mut self) -> Vec<u32> {
        let len = self.buf.get_u32_le() as usize;
        (0..len).map(|_| self.buf.get_u32_le()).collect()
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut e = Encoder::new();
        e.put_u32(7).put_u64(1 << 40).put_f64(0.25);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u32(), 7);
        assert_eq!(d.get_u64(), 1 << 40);
        assert_eq!(d.get_f64(), 0.25);
        assert!(d.is_empty());
    }

    #[test]
    fn roundtrip_slices() {
        let mut e = Encoder::new();
        e.put_bytes(b"payload").put_u32_slice(&[1, 2, 3]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(&d.get_bytes()[..], b"payload");
        assert_eq!(d.get_u32_slice(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_slices() {
        let mut e = Encoder::new();
        e.put_bytes(b"").put_u32_slice(&[]);
        let mut d = Decoder::new(e.finish());
        assert!(d.get_bytes().is_empty());
        assert!(d.get_u32_slice().is_empty());
        assert!(d.is_empty());
    }

    #[test]
    fn roundtrip_str() {
        let mut e = Encoder::new();
        e.put_str("pgasm").put_str("");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_str(), "pgasm");
        assert_eq!(d.get_str(), "");
        assert!(d.is_empty());
    }

    #[test]
    fn length_prefix_boundary_is_exact() {
        // The guard must pass through every representable length
        // unchanged — `u32::MAX` itself is the last legal value…
        assert_eq!(checked_len(0), 0);
        assert_eq!(checked_len(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 length prefix")]
    fn length_prefix_overflow_panics_loudly() {
        // …and one past it must panic with a clear message instead of
        // truncating to 0 and encoding a corrupt frame.
        let _ = checked_len(u32::MAX as usize + 1);
    }

    #[test]
    fn interleaved_sequences() {
        let mut e = Encoder::new();
        for i in 0..10u32 {
            e.put_u32(i).put_bytes(&vec![i as u8; i as usize]);
        }
        let mut d = Decoder::new(e.finish());
        for i in 0..10u32 {
            assert_eq!(d.get_u32(), i);
            assert_eq!(d.get_bytes().len(), i as usize);
        }
    }
}
