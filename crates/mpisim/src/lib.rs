//! # pgasm-mpisim — distributed-memory message-passing substrate
//!
//! The paper runs on a 1024-node IBM BlueGene/L over MPI. This crate
//! simulates that environment on one machine: each *rank* is an OS
//! thread whose data is private by ownership, and all inter-rank sharing
//! flows through explicit byte messages — so the programming model (and
//! the traffic) is exactly that of a distributed-memory code.
//!
//! Provided:
//!
//! - [`comm`] — point-to-point `send`/`recv` with source/tag matching,
//!   barriers, and the collectives the paper uses: broadcast, gather,
//!   `alltoallv`, and the *custom* `alltoallv` built from `p − 1`
//!   point-to-point rounds that §6 introduces to bound send-buffer
//!   space. Optional sender-side small-message coalescing
//!   ([`CoalescePolicy`]): per-destination send queues shipped as
//!   framed envelopes that the receiver splits transparently, paying
//!   the α latency term once per envelope instead of once per message.
//! - [`codec`] — a small length-prefixed binary codec for message
//!   payloads (no external serialization framework needed).
//! - [`model`] — per-rank traffic statistics and an α–β (latency ×
//!   bandwidth) communication cost model with BlueGene/L parameters, so
//!   experiments can report *modelled* network time next to measured
//!   compute time, reproducing the communication/computation breakdown
//!   of the paper's Fig. 5.
//! - [`faults`] — deterministic, seeded failure injection: a
//!   [`FaultPlan`] can kill a rank at a scripted event count or
//!   drop/delay specific messages; failures surface to callers as
//!   recoverable [`CommError`]s through the fault-aware
//!   `send_ft`/`recv_ft`/`try_recv_ft` operations instead of hangs.

pub mod codec;
pub mod comm;
pub mod faults;
pub mod model;

pub use comm::{run, tag_label, CoalescePolicy, CoalesceStats, Comm, Event, Msg};
pub use faults::{CommError, FaultPlan, FaultStage, FaultStats, KillTarget};
pub use model::{thread_cpu_seconds, CommStats, CostModel};
