//! Deterministic, seeded fault injection for the simulated machine.
//!
//! A [`FaultPlan`] scripts failures against rank-local *event counts*
//! (one event per fault-aware communication call), never wall-clock
//! time, so a plan replays identically under any host scheduling. The
//! plan can
//!
//! - **kill** a rank once its event counter reaches a scripted value
//!   (`kill:rank=2,event=500` — or `kill:any,event=500`, where the
//!   victim worker is drawn from the plan's seed, not the clock);
//! - **drop** the *n*-th message matching a `(src,dst,tag)` triple at
//!   the sender (`drop:src=1,dst=0,tag=3,nth=2`);
//! - **delay** such a message by a scripted number of sender events
//!   (`delay:src=1,dst=0,tag=1,nth=2,by=40`), re-ordering it past
//!   later traffic the way a congested link would.
//!
//! Failures surface to callers as recoverable [`CommError`]s (a killed
//! rank's next fault-aware call returns `Err(CommError::Killed)`), and
//! a dying rank broadcasts a *death notice* to every peer so survivors
//! observe the failure as an event instead of a hang. Every injected
//! fault is recorded on the `fault` trace category and in the
//! [`FaultStats`] counters.
//!
//! Plans are scoped per pipeline stage (`stage=cluster|assemble`, or
//! any): [`FaultPlan::for_stage`] extracts the clauses a stage should
//! arm before handing the plan to its ranks.

use bytes::Bytes;

/// A recoverable communication failure surfaced by the fault-aware
/// operations (`send_ft` / `recv_ft` / `try_recv_ft`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The fault plan killed *this* rank at the given rank-local event
    /// count. The rank has already broadcast its death notice and lost
    /// its staged (coalesced) messages; the caller must unwind without
    /// further communication.
    Killed {
        /// The rank that died (the caller's own).
        rank: usize,
        /// The rank-local event count the kill tripped at.
        event: u64,
    },
    /// Every other rank has exited: a blocking receive can never be
    /// satisfied. Only reachable when fault tolerance is armed (the
    /// plain `recv` panics instead, preserving the fail-fast default).
    Disconnected,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Killed { rank, event } => {
                write!(f, "rank {rank} killed by fault plan at event {event}")
            }
            CommError::Disconnected => write!(f, "all peers exited"),
        }
    }
}

/// Which pipeline stage a fault clause is armed in. A stage installs
/// only the clauses scoped to it (or to [`FaultStage::Any`]), so one
/// plan string can script both engine phases without a kill firing
/// twice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultStage {
    /// Armed in every stage that installs the plan.
    Any,
    /// The clustering master–worker phase (the default scope).
    #[default]
    Cluster,
    /// The distributed assemble phase.
    Assemble,
}

/// Which rank a kill clause targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillTarget {
    /// A specific rank (0 = the master).
    Rank(usize),
    /// A worker rank drawn deterministically from the plan's seed.
    AnyWorker,
}

/// Kill one rank when its event counter reaches `at_event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The victim.
    pub target: KillTarget,
    /// Rank-local event count the kill trips at (checked at the entry
    /// of each fault-aware call, *before* any transmission, so a
    /// worker dies with its current round's report undelivered).
    pub at_event: u64,
    /// Stage scope.
    pub stage: FaultStage,
}

/// Drop or delay the `nth` message matching `(src, dst, tag)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgFaultSpec {
    /// Sending rank the clause is armed on.
    pub src: usize,
    /// Destination rank to match.
    pub dst: usize,
    /// Application tag to match.
    pub tag: u32,
    /// 1-based index among matching messages (1 = the first match).
    pub nth: u64,
    /// `None` = drop the message; `Some(k)` = hold it back and deliver
    /// it once the sender's event counter has advanced `k` further
    /// (checked at fault-aware call entries, so delivery lands after
    /// whatever the sender did in between — a *late* message).
    pub delay_by: Option<u64>,
    /// Stage scope.
    pub stage: FaultStage,
}

/// A deterministic failure script for one run. See the module docs for
/// the grammar; [`FaultPlan::parse`] builds one from the CLI string.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every randomised choice the plan makes (`kill:any`
    /// victim selection). Wall-clock time is never consulted.
    pub seed: u64,
    /// Scripted kills.
    pub kills: Vec<KillSpec>,
    /// Scripted message drops and delays.
    pub msg_faults: Vec<MsgFaultSpec>,
}

impl FaultPlan {
    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.msg_faults.is_empty()
    }

    /// The sub-plan a given stage should arm: clauses scoped to
    /// `stage` or to [`FaultStage::Any`].
    pub fn for_stage(&self, stage: FaultStage) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            kills: self
                .kills
                .iter()
                .copied()
                .filter(|k| k.stage == stage || k.stage == FaultStage::Any)
                .collect(),
            msg_faults: self
                .msg_faults
                .iter()
                .copied()
                .filter(|m| m.stage == stage || m.stage == FaultStage::Any)
                .collect(),
        }
    }

    /// Builder: add a kill clause (tests and benches).
    pub fn with_kill(mut self, target: KillTarget, at_event: u64, stage: FaultStage) -> Self {
        self.kills.push(KillSpec { target, at_event, stage });
        self
    }

    /// Builder: add a drop clause (tests and benches).
    pub fn with_drop(mut self, src: usize, dst: usize, tag: u32, nth: u64, stage: FaultStage) -> Self {
        self.msg_faults.push(MsgFaultSpec { src, dst, tag, nth, delay_by: None, stage });
        self
    }

    /// Builder: add a delay clause (tests and benches).
    pub fn with_delay(
        mut self,
        src: usize,
        dst: usize,
        tag: u32,
        nth: u64,
        by: u64,
        stage: FaultStage,
    ) -> Self {
        self.msg_faults.push(MsgFaultSpec { src, dst, tag, nth, delay_by: Some(by), stage });
        self
    }

    /// Parse a plan string: `;`-separated clauses, each
    /// `kind:key=value,...`.
    ///
    /// ```text
    /// seed:42
    /// kill:rank=2,event=500[,stage=cluster|assemble|any]
    /// kill:any,event=500                 (victim drawn from the seed)
    /// drop:src=1,dst=0,tag=3,nth=2[,stage=...]
    /// delay:src=1,dst=0,tag=1,nth=2,by=40[,stage=...]
    /// ```
    ///
    /// Unscoped clauses default to `stage=cluster`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, body) =
                clause.split_once(':').ok_or_else(|| format!("fault clause '{clause}' missing ':'"))?;
            match kind.trim() {
                "seed" => {
                    plan.seed = body.trim().parse().map_err(|_| format!("seed '{body}' is not a u64"))?;
                }
                "kill" => {
                    let kv = parse_kv(body)?;
                    let target = match get(&kv, "rank") {
                        Some("any") => KillTarget::AnyWorker,
                        Some(v) => KillTarget::Rank(
                            v.parse().map_err(|_| format!("kill rank '{v}' is not a rank id"))?,
                        ),
                        None if kv.iter().any(|(k, _)| k == "any") => KillTarget::AnyWorker,
                        None => return Err(format!("kill clause '{clause}' needs rank=<id>|any")),
                    };
                    let at_event = req_u64(&kv, "event", clause)?;
                    plan.kills.push(KillSpec { target, at_event, stage: parse_stage(&kv)? });
                }
                "drop" | "delay" => {
                    let kv = parse_kv(body)?;
                    let delay_by =
                        if kind.trim() == "delay" { Some(req_u64(&kv, "by", clause)?) } else { None };
                    plan.msg_faults.push(MsgFaultSpec {
                        src: req_u64(&kv, "src", clause)? as usize,
                        dst: req_u64(&kv, "dst", clause)? as usize,
                        tag: req_u64(&kv, "tag", clause)? as u32,
                        nth: req_u64(&kv, "nth", clause)?,
                        delay_by,
                        stage: parse_stage(&kv)?,
                    });
                }
                k => return Err(format!("unknown fault clause kind '{k}'")),
            }
        }
        Ok(plan)
    }
}

fn parse_kv(body: &str) -> Result<Vec<(String, String)>, String> {
    body.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(|p| match p.split_once('=') {
            Some((k, v)) => Ok((k.trim().to_string(), v.trim().to_string())),
            // A bare word ("any") is a flag with an empty value.
            None => Ok((p.to_string(), String::new())),
        })
        .collect()
}

fn get<'a>(kv: &'a [(String, String)], key: &str) -> Option<&'a str> {
    kv.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn req_u64(kv: &[(String, String)], key: &str, clause: &str) -> Result<u64, String> {
    get(kv, key)
        .ok_or_else(|| format!("clause '{clause}' missing {key}=<n>"))?
        .parse()
        .map_err(|_| format!("clause '{clause}': {key} is not a u64"))
}

fn parse_stage(kv: &[(String, String)]) -> Result<FaultStage, String> {
    match get(kv, "stage") {
        None => Ok(FaultStage::Cluster),
        Some("cluster") => Ok(FaultStage::Cluster),
        Some("assemble") => Ok(FaultStage::Assemble),
        Some("any") => Ok(FaultStage::Any),
        Some(s) => Err(format!("unknown stage '{s}' (cluster|assemble|any)")),
    }
}

/// Counters for the fault layer on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// 1 when the plan killed this rank.
    pub kills: u64,
    /// Messages the plan discarded at this sender.
    pub msgs_dropped: u64,
    /// Messages the plan held back at this sender.
    pub msgs_delayed: u64,
    /// Death notices this rank broadcast while dying.
    pub death_notices: u64,
    /// Sends blackholed because the destination was already dead.
    pub msgs_lost: u64,
    /// Fault-aware calls this rank made (its event-clock reading) —
    /// the coordinate `kill:…,event=` and `delay:…,by=` clauses are
    /// written in. Exposed so plans can be aimed from an observed run.
    pub events: u64,
}

/// splitmix64 — the repo's stable seeded mixer (same constants as the
/// GST bucket partitioner), used for every randomised plan choice.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic victim of a `kill:any` clause: a worker rank in
/// `1..size` drawn from the seed (exposed so tests and tools can
/// predict it).
pub fn any_worker_victim(seed: u64, size: usize) -> usize {
    assert!(size > 1, "kill:any needs at least one worker rank");
    1 + (splitmix64(seed) % (size as u64 - 1)) as usize
}

/// One armed message-fault clause with its match progress.
#[derive(Debug, Clone, Copy)]
struct MsgFaultState {
    spec: MsgFaultSpec,
    seen: u64,
    fired: bool,
}

/// What the fault filter decided for one outgoing message.
pub(crate) enum Verdict {
    Pass,
    Drop,
    Delay(u64),
}

/// Per-rank armed fault state, owned by the rank's `Comm`.
#[derive(Debug)]
pub(crate) struct FaultRuntime {
    rank: usize,
    /// Event count at which this rank dies, if scripted.
    kill_at: Option<u64>,
    /// Rank-local event counter (advances once per fault-aware call).
    events: u64,
    /// This rank has tripped its kill.
    pub(crate) dead: bool,
    /// Armed drop/delay clauses whose `src` is this rank.
    msg_faults: Vec<MsgFaultState>,
    /// Held-back messages: (release_event, dest, tag, payload).
    delayed: Vec<(u64, usize, u32, Bytes)>,
    pub(crate) stats: FaultStats,
}

impl FaultRuntime {
    pub(crate) fn new(plan: &FaultPlan, rank: usize, size: usize) -> FaultRuntime {
        let kill_at = plan
            .kills
            .iter()
            .filter(|k| match k.target {
                KillTarget::Rank(r) => r == rank,
                KillTarget::AnyWorker => any_worker_victim(plan.seed, size) == rank,
            })
            .map(|k| k.at_event)
            .min();
        let msg_faults = plan
            .msg_faults
            .iter()
            .filter(|m| m.src == rank)
            .map(|&spec| MsgFaultState { spec, seen: 0, fired: false })
            .collect();
        FaultRuntime {
            rank,
            kill_at,
            events: 0,
            dead: false,
            msg_faults,
            delayed: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Advance the event counter; report whether the kill trips at this
    /// event. Also returns any held messages now due for release.
    pub(crate) fn tick(&mut self) -> (bool, Vec<(usize, u32, Bytes)>) {
        self.events += 1;
        self.stats.events = self.events;
        if !self.dead && self.kill_at.is_some_and(|at| self.events >= at) {
            self.dead = true;
            self.stats.kills += 1;
            return (true, Vec::new());
        }
        let due = self.events;
        let mut released = Vec::new();
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= due {
                let (_, dest, tag, data) = self.delayed.remove(i);
                released.push((dest, tag, data));
            } else {
                i += 1;
            }
        }
        (false, released)
    }

    /// Decide the fate of one outgoing message.
    pub(crate) fn filter(&mut self, dest: usize, tag: u32) -> Verdict {
        for f in &mut self.msg_faults {
            if f.fired || f.spec.dst != dest || f.spec.tag != tag {
                continue;
            }
            f.seen += 1;
            if f.seen == f.spec.nth {
                f.fired = true;
                return match f.spec.delay_by {
                    None => {
                        self.stats.msgs_dropped += 1;
                        Verdict::Drop
                    }
                    Some(by) => {
                        self.stats.msgs_delayed += 1;
                        Verdict::Delay(self.events + by)
                    }
                };
            }
        }
        Verdict::Pass
    }

    /// Stash a delayed message until its release event.
    pub(crate) fn hold(&mut self, release_at: u64, dest: usize, tag: u32, data: Bytes) {
        self.delayed.push((release_at, dest, tag, data));
    }

    pub(crate) fn killed_error(&self) -> CommError {
        CommError::Killed { rank: self.rank, event: self.events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_clause_kind() {
        let plan = FaultPlan::parse(
            "seed:7; kill:rank=2,event=500; kill:any,event=9,stage=assemble; \
             drop:src=1,dst=0,tag=3,nth=2; delay:src=4,dst=0,tag=1,nth=1,by=40,stage=any",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(
            plan.kills,
            vec![
                KillSpec { target: KillTarget::Rank(2), at_event: 500, stage: FaultStage::Cluster },
                KillSpec { target: KillTarget::AnyWorker, at_event: 9, stage: FaultStage::Assemble },
            ]
        );
        assert_eq!(plan.msg_faults.len(), 2);
        assert_eq!(plan.msg_faults[0].delay_by, None);
        assert_eq!(plan.msg_faults[1].delay_by, Some(40));
        assert_eq!(plan.msg_faults[1].stage, FaultStage::Any);
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        assert!(FaultPlan::parse("explode:now").is_err());
        assert!(FaultPlan::parse("kill:event=5").is_err(), "kill without target");
        assert!(FaultPlan::parse("kill:rank=1").is_err(), "kill without event");
        assert!(FaultPlan::parse("drop:src=1,dst=0,tag=1").is_err(), "drop without nth");
        assert!(FaultPlan::parse("delay:src=1,dst=0,tag=1,nth=1").is_err(), "delay without by");
        assert!(FaultPlan::parse("kill:rank=1,event=2,stage=warp").is_err(), "unknown stage");
        assert!(FaultPlan::parse("seed:minus-one").is_err());
    }

    #[test]
    fn stage_scoping_extracts_the_right_clauses() {
        let plan = FaultPlan::parse(
            "kill:rank=1,event=5,stage=cluster; kill:rank=2,event=6,stage=assemble; \
             drop:src=1,dst=0,tag=1,nth=1,stage=any",
        )
        .unwrap();
        let cluster = plan.for_stage(FaultStage::Cluster);
        assert_eq!(cluster.kills.len(), 1);
        assert_eq!(cluster.kills[0].target, KillTarget::Rank(1));
        assert_eq!(cluster.msg_faults.len(), 1, "stage=any rides along");
        let assemble = plan.for_stage(FaultStage::Assemble);
        assert_eq!(assemble.kills.len(), 1);
        assert_eq!(assemble.kills[0].target, KillTarget::Rank(2));
        assert_eq!(assemble.msg_faults.len(), 1);
    }

    #[test]
    fn any_worker_victim_is_seed_deterministic_and_never_the_master() {
        for seed in 0..64u64 {
            for size in [2usize, 4, 8, 33] {
                let v = any_worker_victim(seed, size);
                assert!(v >= 1 && v < size, "victim {v} out of worker range at p={size}");
                assert_eq!(v, any_worker_victim(seed, size), "same seed, same victim");
            }
        }
        // Different seeds do reach different victims.
        let hits: std::collections::BTreeSet<usize> = (0..64).map(|s| any_worker_victim(s, 8)).collect();
        assert!(hits.len() > 1, "victim selection must actually vary with the seed");
    }

    #[test]
    fn runtime_kill_trips_exactly_once_at_the_scripted_event() {
        let plan = FaultPlan::default().with_kill(KillTarget::Rank(3), 4, FaultStage::Any);
        let mut rt = FaultRuntime::new(&plan, 3, 8);
        for _ in 0..3 {
            let (killed, _) = rt.tick();
            assert!(!killed);
        }
        let (killed, _) = rt.tick();
        assert!(killed, "kill trips at event 4");
        assert_eq!(rt.stats.kills, 1);
        // A rank the plan does not target never dies.
        let mut other = FaultRuntime::new(&plan, 2, 8);
        for _ in 0..100 {
            assert!(!other.tick().0);
        }
    }

    #[test]
    fn runtime_drop_and_delay_match_the_nth_message_only() {
        let plan = FaultPlan::default().with_drop(1, 0, 7, 2, FaultStage::Any).with_delay(
            1,
            0,
            9,
            1,
            3,
            FaultStage::Any,
        );
        let mut rt = FaultRuntime::new(&plan, 1, 4);
        assert!(matches!(rt.filter(0, 7), Verdict::Pass), "first match passes");
        assert!(matches!(rt.filter(0, 7), Verdict::Drop), "second match drops");
        assert!(matches!(rt.filter(0, 7), Verdict::Pass), "clause fires once");
        assert!(matches!(rt.filter(2, 9), Verdict::Pass), "wrong dst passes");
        let v = rt.filter(0, 9);
        assert!(matches!(v, Verdict::Delay(_)));
        rt.hold(rt.events + 3, 0, 9, Bytes::from_static(b"late"));
        // Not due yet, due after 3 ticks.
        assert!(rt.tick().1.is_empty());
        assert!(rt.tick().1.is_empty());
        let (_, released) = rt.tick();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].1, 9);
        assert_eq!(rt.stats.msgs_dropped, 1);
        assert_eq!(rt.stats.msgs_delayed, 1);
    }
}
