//! Traffic statistics and the α–β communication cost model.
//!
//! The simulator's ranks exchange messages over shared memory, so
//! *measured* communication time on the host says little about a real
//! interconnect. Instead every rank counts its traffic exactly
//! ([`CommStats`]) and experiments convert the counts into modelled
//! network time with a latency/bandwidth model parameterised for the
//! BlueGene/L — reproducing the communication/computation breakdown the
//! paper reports (Fig. 5) in a hardware-independent way.

use serde::{Deserialize, Serialize};

/// Per-rank communication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommStats {
    /// Messages sent.
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Nanoseconds blocked in `recv` waiting for a matching message.
    pub wait_ns: u64,
    /// Nanoseconds blocked in barriers.
    pub barrier_ns: u64,
}

impl CommStats {
    /// Component-wise sum (for aggregating ranks).
    pub fn merged(self, other: CommStats) -> CommStats {
        CommStats {
            msgs_sent: self.msgs_sent + other.msgs_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            msgs_recv: self.msgs_recv + other.msgs_recv,
            bytes_recv: self.bytes_recv + other.bytes_recv,
            wait_ns: self.wait_ns + other.wait_ns,
            barrier_ns: self.barrier_ns + other.barrier_ns,
        }
    }

    /// Total seconds this rank spent blocked (wait + barrier) — the
    /// measured idle time used for §7.2's idle-percentage analysis.
    pub fn blocked_seconds(&self) -> f64 {
        (self.wait_ns + self.barrier_ns) as f64 * 1e-9
    }
}

// The thread-CPU sampler lives in the telemetry crate (shared by every
// layer that times work); re-exported here so rank code keeps its
// historical import path.
pub use pgasm_telemetry::thread_cpu_seconds;

/// α–β interconnect model: a message of `b` bytes costs
/// `latency + b / bandwidth` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Per-message latency α, seconds.
    pub latency_s: f64,
    /// Link bandwidth β, bytes/second.
    pub bandwidth_bytes_per_s: f64,
}

impl CostModel {
    /// BlueGene/L-class torus parameters (co-processor mode): ≈ 4 µs
    /// short-message latency, ≈ 150 MB/s effective point-to-point
    /// bandwidth — the regime of the paper's 2005/2006 runs.
    pub const BLUEGENE_L: CostModel = CostModel { latency_s: 4.0e-6, bandwidth_bytes_per_s: 150.0e6 };

    /// A contemporary commodity cluster (for sensitivity comparisons):
    /// ≈ 1.5 µs latency, ≈ 10 GB/s.
    pub const MODERN_CLUSTER: CostModel = CostModel { latency_s: 1.5e-6, bandwidth_bytes_per_s: 10.0e9 };

    /// Modelled seconds to send the recorded traffic.
    pub fn send_time(&self, stats: &CommStats) -> f64 {
        stats.msgs_sent as f64 * self.latency_s + stats.bytes_sent as f64 / self.bandwidth_bytes_per_s
    }

    /// Modelled seconds for one rank's full traffic (send + receive; a
    /// rank pays latency on both ends in co-processor mode). This is a
    /// *per-rank occupancy* measure — summing it across ranks counts
    /// every transfer twice. For cross-rank totals use the per-tag
    /// histogram (`Comm::tag_stats`), which prices each message once on
    /// its sender.
    pub fn comm_time(&self, stats: &CommStats) -> f64 {
        (stats.msgs_sent + stats.msgs_recv) as f64 * self.latency_s
            + (stats.bytes_sent + stats.bytes_recv) as f64 / self.bandwidth_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            wait_ns: 5,
            barrier_ns: 7,
        };
        let b = CommStats {
            msgs_sent: 3,
            bytes_sent: 30,
            msgs_recv: 4,
            bytes_recv: 40,
            wait_ns: 1,
            barrier_ns: 2,
        };
        let m = a.merged(b);
        assert_eq!(m.msgs_sent, 4);
        assert_eq!(m.bytes_recv, 60);
        assert_eq!(m.barrier_ns, 9);
    }

    #[test]
    fn cost_scales_with_traffic() {
        let model = CostModel::BLUEGENE_L;
        let small = CommStats { msgs_sent: 1, bytes_sent: 1000, ..Default::default() };
        let large = CommStats { msgs_sent: 1, bytes_sent: 1_000_000, ..Default::default() };
        assert!(model.comm_time(&large) > model.comm_time(&small) * 100.0);
    }

    #[test]
    fn latency_dominates_small_messages() {
        let model = CostModel::BLUEGENE_L;
        let chatty = CommStats { msgs_sent: 10_000, bytes_sent: 10_000, ..Default::default() };
        let bulky = CommStats { msgs_sent: 1, bytes_sent: 10_000, ..Default::default() };
        assert!(model.comm_time(&chatty) > 10.0 * model.comm_time(&bulky));
    }

    #[test]
    fn blocked_seconds_converts_ns() {
        let s = CommStats { wait_ns: 1_500_000_000, barrier_ns: 500_000_000, ..Default::default() };
        assert!((s.blocked_seconds() - 2.0).abs() < 1e-9);
    }
}
