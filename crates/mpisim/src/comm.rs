//! Ranks, point-to-point messaging, collectives, and sender-side
//! small-message coalescing.

use crate::codec::{Decoder, Encoder};
use crate::faults::{CommError, FaultPlan, FaultRuntime, FaultStats, Verdict};
use crate::model::{CommStats, CostModel};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pgasm_telemetry::trace::{RankTrace, TraceCategory, Tracer};
use pgasm_telemetry::{names, GaugeId, GaugeSampler, RankSeries, TagStat};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u32 = 0xFFFF_0000;

const TAG_BCAST: u32 = RESERVED_TAG_BASE;
const TAG_GATHER: u32 = RESERVED_TAG_BASE + 1;
const TAG_ALLTOALL: u32 = RESERVED_TAG_BASE + 2;
const TAG_ALLTOALL_P2P: u32 = RESERVED_TAG_BASE + 3;
const TAG_REDUCE: u32 = RESERVED_TAG_BASE + 4;
const TAG_COALESCED: u32 = RESERVED_TAG_BASE + 5;
/// Death notice a dying rank broadcasts to every peer (empty payload).
/// Intercepted on ingest — application receives never see it; the
/// fault-aware receives surface it as [`Event::Death`].
const TAG_DEATH: u32 = RESERVED_TAG_BASE + 6;

/// Human-readable name for a tag: collectives get their primitive's
/// name, application tags render as `"tag<N>"` (callers owning an
/// application protocol can relabel rows in their reports).
pub fn tag_label(tag: u32) -> String {
    match tag {
        TAG_BCAST => "bcast".to_string(),
        TAG_GATHER => "gather".to_string(),
        TAG_ALLTOALL => "alltoall".to_string(),
        TAG_ALLTOALL_P2P => "alltoall_p2p".to_string(),
        TAG_REDUCE => "reduce".to_string(),
        TAG_COALESCED => "coalesced".to_string(),
        TAG_DEATH => names::TAG_DEATH.to_string(),
        t => format!("tag{t}"),
    }
}

/// Sender-side small-message coalescing policy. When set on a rank,
/// application `send`s are staged in per-destination queues and go out
/// as one framed envelope (tag `"coalesced"`) either when a threshold
/// trips or when the rank is about to block (`recv` with an empty
/// inbox, `barrier`) — so the α latency term is paid once per envelope
/// instead of once per logical message. The receiver splits envelopes
/// transparently, preserving per-sender FIFO order; `recv`/`try_recv`
/// callers never see them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescePolicy {
    /// Flush a destination's queue once its staged payload bytes reach
    /// this (past this size the β bandwidth term dominates anyway).
    pub max_bytes: usize,
    /// Flush a destination's queue once it stages this many messages.
    pub max_msgs: usize,
}

impl Default for CoalescePolicy {
    fn default() -> Self {
        CoalescePolicy { max_bytes: 16 * 1024, max_msgs: 32 }
    }
}

/// Counters for the coalescing layer on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalesceStats {
    /// Logical messages that travelled inside an envelope.
    pub msgs_coalesced: u64,
    /// Envelopes sent (each replaced ≥ 2 wire messages).
    pub envelopes_sent: u64,
    /// Non-empty queue flushes tripped by the byte threshold.
    pub flush_bytes: u64,
    /// Non-empty queue flushes tripped by the message-count threshold.
    pub flush_msgs: u64,
    /// Non-empty queue flushes forced by this rank blocking
    /// (`recv` on an empty inbox, `barrier`).
    pub flush_block: u64,
    /// Explicit flushes (`flush`/`flush_all`/`set_coalesce`) plus
    /// ordering flushes forced by a direct (collective) send to a
    /// destination with staged messages.
    pub flush_explicit: u64,
}

/// Why a destination queue was flushed.
#[derive(Clone, Copy)]
enum FlushReason {
    Bytes,
    Msgs,
    Block,
    Explicit,
}

/// Staged outgoing messages for one destination.
#[derive(Default)]
struct SendQueue {
    msgs: Vec<(u32, Bytes)>,
    bytes: usize,
}

/// Per-tag traffic counters (histogram row).
#[derive(Debug, Clone, Copy, Default)]
struct TagTraffic {
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_recv: u64,
    bytes_recv: u64,
}

/// One received message.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Payload.
    pub data: Bytes,
}

/// What a fault-aware receive delivered: an application message, or the
/// observation that a peer died. Death events are surfaced regardless
/// of the receive's src/tag filter — a failure is never something a
/// caller can opt out of seeing.
#[derive(Debug, Clone)]
pub enum Event {
    /// An application message matching the receive's filter.
    Msg(Msg),
    /// The given peer rank broadcast its death notice.
    Death(usize),
}

/// A rank's communicator handle. All methods take `&mut self`: a rank is
/// single-threaded, exactly like an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    backlog: VecDeque<Msg>,
    barrier: Arc<Barrier>,
    stats: CommStats,
    tag_traffic: BTreeMap<u32, TagTraffic>,
    coalesce: Option<CoalescePolicy>,
    queues: Vec<SendQueue>,
    cstats: CoalesceStats,
    tracer: Tracer,
    sampler: GaugeSampler,
    g_coalesce: GaugeId,
    /// Bytes currently staged across all destination queues (feeds the
    /// coalesce-queue gauge without re-summing per sample).
    staged_bytes: usize,
    /// Armed fault plan for this rank (`None` = fault-free run; the
    /// fault-aware operations then behave exactly like their plain
    /// counterparts).
    faults: Option<FaultRuntime>,
    /// Peers whose death notice this rank has ingested.
    dead_peers: Vec<bool>,
    /// Deaths ingested but not yet surfaced through a fault-aware
    /// receive.
    pending_deaths: VecDeque<usize>,
}

impl Comm {
    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's traffic statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Per-tag traffic histogram with α–β modelled seconds per row,
    /// ascending by tag. Collectives use distinct reserved tags, so
    /// this doubles as a per-collective communication breakdown.
    ///
    /// Each message is priced exactly once, on its *sending* rank (wire
    /// messages, so an envelope pays one α for its whole bundle) —
    /// summing `modelled_seconds` over all ranks therefore reproduces
    /// the α–β total for the run instead of double-counting every
    /// transfer on both endpoints. Receive-side rows still carry their
    /// message/byte counts for protocol visibility; their modelled time
    /// is zero.
    pub fn tag_stats(&self, model: &CostModel) -> Vec<TagStat> {
        self.tag_traffic
            .iter()
            .map(|(&tag, t)| TagStat {
                tag,
                label: tag_label(tag),
                msgs_sent: t.msgs_sent,
                bytes_sent: t.bytes_sent,
                msgs_recv: t.msgs_recv,
                bytes_recv: t.bytes_recv,
                modelled_seconds: t.msgs_sent as f64 * model.latency_s
                    + t.bytes_sent as f64 / model.bandwidth_bytes_per_s,
            })
            .collect()
    }

    /// Install (or clear) the sender-side coalescing policy. Anything
    /// staged under the previous policy is flushed first, so switching
    /// never reorders or drops traffic.
    pub fn set_coalesce(&mut self, policy: Option<CoalescePolicy>) {
        self.flush_all();
        self.coalesce = policy;
    }

    /// Snapshot of this rank's coalescing counters.
    pub fn coalesce_stats(&self) -> CoalesceStats {
        self.cstats
    }

    /// Install an event tracer for this rank. The default tracer is
    /// disabled, costing one branch per would-be event.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The rank's tracer, for layers above the comm substrate (the
    /// master–worker protocol, GST phases) to record their own events
    /// onto the same track.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Take the rank's finished trace out, leaving a disabled tracer
    /// behind. Call at the end of the rank body.
    pub fn take_trace(&mut self) -> RankTrace {
        std::mem::replace(&mut self.tracer, Tracer::disabled()).finish()
    }

    /// Install a periodic gauge sampler for this rank. Like the tracer,
    /// the default is disabled (one branch per would-be sample). The
    /// comm layer feeds its own coalesce-queue gauge; layers above
    /// register further gauges via [`Comm::sampler_mut`].
    pub fn set_sampler(&mut self, sampler: GaugeSampler) {
        self.sampler = sampler;
        self.g_coalesce = self.sampler.register(names::GAUGE_COALESCE_QUEUE_BYTES);
    }

    /// The rank's gauge sampler, for layers above the comm substrate to
    /// register and feed their own gauges on the same time base.
    pub fn sampler_mut(&mut self) -> &mut GaugeSampler {
        &mut self.sampler
    }

    /// Take the rank's recorded gauge series out, leaving a disabled
    /// sampler behind. Call at the end of the rank body.
    pub fn take_series(&mut self) -> RankSeries {
        self.sampler.take()
    }

    /// Arm `plan` on this rank. Every rank of the world must arm the
    /// same (stage-filtered) plan for consistent semantics: arming
    /// switches the rank's fault-aware operations from pass-through to
    /// injected mode and makes a vanished peer a counted loss instead
    /// of a panic.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultRuntime::new(plan, self.rank, self.size));
    }

    /// Whether a fault plan is armed on this rank.
    pub fn has_fault_plan(&self) -> bool {
        self.faults.is_some()
    }

    /// Snapshot of this rank's fault-layer counters (all zero when no
    /// plan is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Peers whose death notice this rank has observed.
    pub fn dead_peers(&self) -> &[bool] {
        &self.dead_peers
    }

    /// Advance this rank's fault clock by one event: trip a scripted
    /// kill (entry of every fault-aware call, *before* any transmission
    /// — a killed rank's current round never reaches the wire) and
    /// release any held-back messages that have come due.
    fn fault_tick(&mut self) -> Result<(), CommError> {
        let Some(f) = &mut self.faults else { return Ok(()) };
        if f.dead {
            return Err(f.killed_error());
        }
        let (killed, released) = f.tick();
        if killed {
            return Err(self.die());
        }
        for (dest, tag, data) in released {
            if self.dead_peers[dest] {
                if let Some(f) = &mut self.faults {
                    f.stats.msgs_lost += 1;
                }
            } else {
                self.send_raw(dest, tag, data);
            }
        }
        Ok(())
    }

    /// Crash this rank: staged (coalesced) messages are lost with it,
    /// and every peer gets a death notice so survivors observe the
    /// failure instead of hanging.
    fn die(&mut self) -> CommError {
        for q in &mut self.queues {
            q.msgs.clear();
            q.bytes = 0;
        }
        self.staged_bytes = 0;
        let err = self.faults.as_ref().expect("die() only under an armed plan").killed_error();
        let event = match err {
            CommError::Killed { event, .. } => event,
            CommError::Disconnected => 0,
        };
        self.tracer.instant_arg(TraceCategory::Fault, names::EV_FAULT_KILL, "event", event);
        for peer in 0..self.size {
            if peer == self.rank {
                continue;
            }
            self.stats.msgs_sent += 1;
            self.tag_traffic.entry(TAG_DEATH).or_default().msgs_sent += 1;
            let _ = self.senders[peer].send(Msg { src: self.rank, tag: TAG_DEATH, data: Bytes::new() });
            if let Some(f) = &mut self.faults {
                f.stats.death_notices += 1;
            }
        }
        err
    }

    /// Fault-aware send: like [`Comm::send`], but scripted faults apply
    /// (the plan may kill this rank at the call's entry, or drop/delay
    /// this message), sends to known-dead peers are counted losses
    /// instead of deliveries, and a tripped kill surfaces as
    /// `Err(CommError::Killed)`. Without an armed plan this is exactly
    /// `send`.
    pub fn send_ft(&mut self, dest: usize, tag: u32, data: Bytes) -> Result<(), CommError> {
        self.fault_tick()?;
        match self.faults.as_mut().map(|f| f.filter(dest, tag)) {
            Some(Verdict::Drop) => {
                self.tracer.instant_args(
                    TraceCategory::Fault,
                    names::EV_FAULT_DROP,
                    ("dst", dest as u64),
                    ("tag", tag as u64),
                );
                return Ok(());
            }
            Some(Verdict::Delay(release_at)) => {
                self.tracer.instant_args(
                    TraceCategory::Fault,
                    names::EV_FAULT_DELAY,
                    ("dst", dest as u64),
                    ("tag", tag as u64),
                );
                self.faults.as_mut().expect("armed").hold(release_at, dest, tag, data);
                return Ok(());
            }
            _ => {}
        }
        if let Some(faults) = self.faults.as_mut() {
            if self.dead_peers[dest] {
                faults.stats.msgs_lost += 1;
                return Ok(());
            }
        }
        self.send(dest, tag, data);
        Ok(())
    }

    /// Fault-aware blocking receive. Like [`Comm::recv`], but a peer's
    /// death notice is delivered as [`Event::Death`] — regardless of
    /// the src/tag filter — the scripted kill of *this* rank surfaces
    /// as `Err(CommError::Killed)`, and a fully-exited world returns
    /// `Err(CommError::Disconnected)` instead of panicking. Without an
    /// armed plan only `Event::Msg` values are ever produced.
    pub fn recv_ft(&mut self, src: Option<usize>, tag: Option<u32>) -> Result<Event, CommError> {
        self.fault_tick()?;
        if let Some(d) = self.pending_deaths.pop_front() {
            return Ok(Event::Death(d));
        }
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return Ok(Event::Msg(m));
        }
        self.flush_before_block();
        loop {
            let m = match self.receiver.try_recv() {
                Ok(m) => m,
                Err(_) => {
                    self.tracer.begin(TraceCategory::Comm, names::EV_WAIT);
                    let start = Instant::now();
                    let res = self.receiver.recv();
                    self.stats.wait_ns += start.elapsed().as_nanos() as u64;
                    self.tracer.end(TraceCategory::Comm, names::EV_WAIT);
                    match res {
                        Ok(m) => m,
                        Err(_) => return Err(CommError::Disconnected),
                    }
                }
            };
            let first_new = self.backlog.len();
            self.ingest(m);
            if let Some(d) = self.pending_deaths.pop_front() {
                return Ok(Event::Death(d));
            }
            if let Some(i) = (first_new..self.backlog.len()).find(|&i| matches(&self.backlog[i], src, tag)) {
                let m = self.backlog.remove(i).expect("index valid");
                self.note_recv(&m);
                return Ok(Event::Msg(m));
            }
        }
    }

    /// Fault-aware non-blocking receive; `Ok(None)` when nothing
    /// matching (and no death notice) is queued. Never flushes staged
    /// sends, like [`Comm::try_recv`].
    pub fn try_recv_ft(&mut self, src: Option<usize>, tag: Option<u32>) -> Result<Option<Event>, CommError> {
        self.fault_tick()?;
        if let Some(d) = self.pending_deaths.pop_front() {
            return Ok(Some(Event::Death(d)));
        }
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return Ok(Some(Event::Msg(m)));
        }
        while let Ok(m) = self.receiver.try_recv() {
            let first_new = self.backlog.len();
            self.ingest(m);
            if let Some(d) = self.pending_deaths.pop_front() {
                return Ok(Some(Event::Death(d)));
            }
            if let Some(i) = (first_new..self.backlog.len()).find(|&i| matches(&self.backlog[i], src, tag)) {
                let m = self.backlog.remove(i).expect("index valid");
                self.note_recv(&m);
                return Ok(Some(Event::Msg(m)));
            }
        }
        Ok(None)
    }

    /// Asynchronous send (like `MPI_Isend` with unbounded buffering).
    /// With a [`CoalescePolicy`] installed, the message is staged in
    /// the destination's queue instead of going on the wire at once;
    /// delivery is guaranteed by the flush points (thresholds, blocking
    /// operations, explicit [`Comm::flush_all`]).
    ///
    /// # Panics
    /// Panics on a reserved tag or an out-of-range destination.
    pub fn send(&mut self, dest: usize, tag: u32, data: Bytes) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag:#x} is reserved for collectives");
        assert!(dest < self.size, "destination {dest} out of range");
        if dest != self.rank {
            if let Some(policy) = self.coalesce {
                // The logical send happens now even though the wire
                // transfer is deferred; recording it here (rather than
                // at envelope flush) keeps send/recv instants paired
                // 1:1 per logical message for happens-before analysis.
                let len = data.len();
                self.note_send(dest, tag, len);
                let q = &mut self.queues[dest];
                q.bytes += len;
                q.msgs.push((tag, data));
                self.staged_bytes += len;
                self.sampler.sample(self.g_coalesce, self.staged_bytes as u64);
                if q.msgs.len() >= policy.max_msgs {
                    self.flush_dest(dest, FlushReason::Msgs);
                } else if self.queues[dest].bytes >= policy.max_bytes {
                    self.flush_dest(dest, FlushReason::Bytes);
                }
                return;
            }
        }
        self.send_raw(dest, tag, data);
    }

    /// Ship everything staged for `dest` now (one envelope, or a plain
    /// send when only a single message is staged).
    pub fn flush(&mut self, dest: usize) {
        self.flush_dest(dest, FlushReason::Explicit);
    }

    /// Ship every staged queue now. Call before returning from a rank
    /// body with coalescing still enabled; blocking operations flush
    /// automatically.
    pub fn flush_all(&mut self) {
        for dest in 0..self.size {
            self.flush_dest(dest, FlushReason::Explicit);
        }
    }

    fn flush_before_block(&mut self) {
        for dest in 0..self.size {
            self.flush_dest(dest, FlushReason::Block);
        }
    }

    fn flush_dest(&mut self, dest: usize, reason: FlushReason) {
        if self.queues.get(dest).is_none_or(|q| q.msgs.is_empty()) {
            return;
        }
        let msgs = std::mem::take(&mut self.queues[dest].msgs);
        self.staged_bytes -= self.queues[dest].bytes;
        self.queues[dest].bytes = 0;
        self.sampler.sample(self.g_coalesce, self.staged_bytes as u64);
        match reason {
            FlushReason::Bytes => self.cstats.flush_bytes += 1,
            FlushReason::Msgs => self.cstats.flush_msgs += 1,
            FlushReason::Block => self.cstats.flush_block += 1,
            FlushReason::Explicit => self.cstats.flush_explicit += 1,
        }
        if msgs.len() == 1 {
            // A lone message needs no envelope (and no framing bytes).
            let (tag, data) = msgs.into_iter().next().expect("len checked");
            self.transmit(dest, tag, data);
        } else {
            let framed: usize = msgs.iter().map(|(_, d)| d.len() + 8).sum();
            let mut e = Encoder::with_capacity(4 + framed);
            e.put_u32(crate::codec::checked_len(msgs.len()));
            for (tag, data) in &msgs {
                e.put_u32(*tag);
                e.put_bytes(data);
            }
            self.cstats.msgs_coalesced += msgs.len() as u64;
            self.cstats.envelopes_sent += 1;
            self.tracer.instant_args(
                TraceCategory::Comm,
                names::EV_COALESCE_FLUSH,
                ("msgs", msgs.len() as u64),
                ("bytes", (4 + framed) as u64),
            );
            self.transmit(dest, TAG_COALESCED, e.finish());
        }
    }

    /// Direct (uncoalesced) send used by the collectives. Flushes the
    /// destination's staged queue first so per-sender FIFO order holds
    /// even when application and collective traffic interleave.
    fn send_raw(&mut self, dest: usize, tag: u32, data: Bytes) {
        assert!(dest < self.size, "destination {dest} out of range");
        self.note_send(dest, tag, data.len());
        self.flush_dest(dest, FlushReason::Explicit);
        self.transmit(dest, tag, data);
    }

    /// Record a *logical* send instant (tag, payload bytes, peer).
    /// Emitted when the application hands the message over — staged or
    /// not — so every send pairs with exactly one receive-side `recv`
    /// instant; coalesced envelopes are wire detail the trace's
    /// happens-before layer never sees.
    fn note_send(&mut self, dest: usize, tag: u32, len: usize) {
        self.tracer.instant_args3(
            TraceCategory::Comm,
            names::EV_SEND,
            ("tag", tag as u64),
            ("bytes", len as u64),
            ("to", dest as u64),
        );
    }

    /// Put one message on the wire (or this rank's own backlog).
    fn transmit(&mut self, dest: usize, tag: u32, data: Bytes) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        let row = self.tag_traffic.entry(tag).or_default();
        row.msgs_sent += 1;
        row.bytes_sent += data.len() as u64;
        let msg = Msg { src: self.rank, tag, data };
        if dest == self.rank {
            // Self-sends bypass the channel. This also means a rank holds
            // no sender to itself, so when every *other* rank exits (or
            // panics), its channel disconnects and a blocked `recv`
            // fails fast instead of deadlocking the scope join.
            self.backlog.push_back(msg);
        } else if self.senders[dest].send(msg).is_err() {
            // With fault tolerance armed a dead peer is an expected
            // condition: the message is lost, the run continues. In a
            // fault-free run a vanished peer is a bug worth failing on.
            match &mut self.faults {
                Some(f) => f.stats.msgs_lost += 1,
                None => panic!("receiving rank exited before communication completed"),
            }
        }
    }

    /// Blocking receive matching the given source and/or tag (`None` is
    /// a wildcard). Non-matching messages are buffered for later
    /// receives, preserving per-sender FIFO order.
    ///
    /// `wait_ns` is charged only while the underlying channel is
    /// genuinely empty — draining and backlogging already-delivered
    /// non-matching messages is bookkeeping, not blocked time.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u32>) -> Msg {
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return m;
        }
        // About to wait on the network: release anything this rank has
        // staged first — the message we are waiting for may well be a
        // reply to it.
        self.flush_before_block();
        loop {
            let m = match self.receiver.try_recv() {
                Ok(m) => m,
                Err(_) => {
                    // The traced `wait` span brackets exactly the region
                    // `wait_ns` measures, so the two accountings agree.
                    self.tracer.begin(TraceCategory::Comm, names::EV_WAIT);
                    let start = Instant::now();
                    let m = self.receiver.recv().expect("all ranks exited");
                    self.stats.wait_ns += start.elapsed().as_nanos() as u64;
                    self.tracer.end(TraceCategory::Comm, names::EV_WAIT);
                    m
                }
            };
            let first_new = self.backlog.len();
            self.ingest(m);
            if let Some(i) = (first_new..self.backlog.len()).find(|&i| matches(&self.backlog[i], src, tag)) {
                let m = self.backlog.remove(i).expect("index valid");
                self.note_recv(&m);
                return m;
            }
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    /// Never flushes staged sends (it never blocks) — callers looping on
    /// `try_recv` fall through to a blocking `recv` (or `flush_all`)
    /// once the inbox runs dry.
    pub fn try_recv(&mut self, src: Option<usize>, tag: Option<u32>) -> Option<Msg> {
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return Some(m);
        }
        while let Ok(m) = self.receiver.try_recv() {
            let first_new = self.backlog.len();
            self.ingest(m);
            if let Some(i) = (first_new..self.backlog.len()).find(|&i| matches(&self.backlog[i], src, tag)) {
                let m = self.backlog.remove(i).expect("index valid");
                self.note_recv(&m);
                return Some(m);
            }
        }
        None
    }

    /// Move one wire message into the backlog, transparently splitting
    /// coalesced envelopes back into their constituent messages in send
    /// order (per-sender FIFO is preserved end to end).
    fn ingest(&mut self, m: Msg) {
        if m.tag == TAG_DEATH {
            // A peer's death notice: record it, queue it for the next
            // fault-aware receive, and keep it out of the application
            // backlog — plain receives never observe the fault layer.
            self.stats.msgs_recv += 1;
            self.tag_traffic.entry(TAG_DEATH).or_default().msgs_recv += 1;
            if !self.dead_peers[m.src] {
                self.dead_peers[m.src] = true;
                self.pending_deaths.push_back(m.src);
                self.tracer.instant_arg(TraceCategory::Fault, names::EV_RANK_DEAD, "peer", m.src as u64);
            }
            return;
        }
        if m.tag == TAG_COALESCED {
            let src = m.src;
            let mut d = Decoder::new(m.data);
            let count = d.get_u32();
            for _ in 0..count {
                let tag = d.get_u32();
                let data = d.get_bytes();
                self.backlog.push_back(Msg { src, tag, data });
            }
        } else {
            self.backlog.push_back(m);
        }
    }

    fn backlog_find(&self, src: Option<usize>, tag: Option<u32>) -> Option<usize> {
        self.backlog.iter().position(|m| matches(m, src, tag))
    }

    fn note_recv(&mut self, m: &Msg) {
        self.tracer.instant_args3(
            TraceCategory::Comm,
            names::EV_RECV,
            ("tag", m.tag as u64),
            ("bytes", m.data.len() as u64),
            ("from", m.src as u64),
        );
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += m.data.len() as u64;
        let row = self.tag_traffic.entry(m.tag).or_default();
        row.msgs_recv += 1;
        row.bytes_recv += m.data.len() as u64;
    }

    /// Synchronise all ranks (flushing staged sends first).
    pub fn barrier(&mut self) {
        self.flush_before_block();
        self.tracer.begin(TraceCategory::Comm, names::EV_BARRIER);
        let start = Instant::now();
        self.barrier.wait();
        self.stats.barrier_ns += start.elapsed().as_nanos() as u64;
        self.tracer.end(TraceCategory::Comm, names::EV_BARRIER);
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone
    /// receives the payload.
    pub fn broadcast(&mut self, root: usize, data: Option<Bytes>) -> Bytes {
        if self.rank == root {
            let data = data.expect("root must supply broadcast data");
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, TAG_BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(Some(root), Some(TAG_BCAST)).data
        }
    }

    /// Gather to `root`: returns `Some(payloads_by_rank)` at the root,
    /// `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        if self.rank == root {
            let mut out: Vec<Option<Bytes>> = vec![None; self.size];
            out[root] = Some(data);
            // Per-source receives: see all_to_allv_tagged for why
            // wildcard receives would race consecutive collectives.
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    let m = self.recv(Some(src), Some(TAG_GATHER));
                    *slot = Some(m.data);
                }
            }
            Some(out.into_iter().map(|b| b.expect("all ranks gathered")).collect())
        } else {
            self.send_raw(root, TAG_GATHER, data);
            None
        }
    }

    /// Collective all-to-all with per-destination payloads; returns the
    /// payloads received, indexed by source.
    pub fn all_to_allv(&mut self, bufs: Vec<Bytes>) -> Vec<Bytes> {
        self.all_to_allv_tagged(bufs, TAG_ALLTOALL)
    }

    /// The paper's customised `Alltoallv` (§6): `p − 1` explicit
    /// point-to-point rounds, rank `r` exchanging with `r ± round`, which
    /// bounds the space committed to send buffers to one destination at
    /// a time. Traffic totals match [`Comm::all_to_allv`]; only the
    /// schedule differs.
    pub fn all_to_allv_p2p(&mut self, mut bufs: Vec<Bytes>) -> Vec<Bytes> {
        assert_eq!(bufs.len(), self.size);
        let mut out: Vec<Option<Bytes>> = vec![None; self.size];
        out[self.rank] = Some(std::mem::take(&mut bufs[self.rank]));
        for round in 1..self.size {
            let to = (self.rank + round) % self.size;
            let from = (self.rank + self.size - round) % self.size;
            self.send_raw(to, TAG_ALLTOALL_P2P, std::mem::take(&mut bufs[to]));
            let m = self.recv(Some(from), Some(TAG_ALLTOALL_P2P));
            out[from] = Some(m.data);
        }
        out.into_iter().map(|b| b.expect("complete exchange")).collect()
    }

    fn all_to_allv_tagged(&mut self, mut bufs: Vec<Bytes>, tag: u32) -> Vec<Bytes> {
        assert_eq!(bufs.len(), self.size, "one payload per destination required");
        let mut out: Vec<Option<Bytes>> = vec![None; self.size];
        out[self.rank] = Some(std::mem::take(&mut bufs[self.rank]));
        for (dest, buf) in bufs.iter_mut().enumerate() {
            if dest != self.rank {
                self.send_raw(dest, tag, std::mem::take(buf));
            }
        }
        // Receive per explicit source: per-sender FIFO then keeps two
        // back-to-back collectives on the same tag from interleaving
        // (a wildcard receive could consume a fast rank's *next*-round
        // payload as this round's).
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                let m = self.recv(Some(src), Some(tag));
                *slot = Some(m.data);
            }
        }
        out.into_iter().map(|b| b.expect("complete exchange")).collect()
    }

    /// All-reduce of a `u64` by summation.
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// All-reduce of a `u64` by maximum.
    pub fn allreduce_max(&mut self, value: u64) -> u64 {
        self.allreduce(value, u64::max)
    }

    fn allreduce(&mut self, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        // Gather to rank 0, reduce, broadcast back.
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let m = self.recv(Some(src), Some(TAG_REDUCE));
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&m.data);
                acc = op(acc, u64::from_le_bytes(buf));
            }
            let out = Bytes::copy_from_slice(&acc.to_le_bytes());
            for dest in 1..self.size {
                self.send_raw(dest, TAG_REDUCE, out.clone());
            }
            acc
        } else {
            self.send_raw(0, TAG_REDUCE, payload);
            let m = self.recv(Some(0), Some(TAG_REDUCE));
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&m.data);
            u64::from_le_bytes(buf)
        }
    }
}

#[inline]
fn matches(m: &Msg, src: Option<usize>, tag: Option<u32>) -> bool {
    src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag)
}

/// Launch `p` ranks, run `f` on each, and return the per-rank results in
/// rank order. Panics in any rank propagate.
pub fn run<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    assert!(p > 0, "at least one rank required");
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let barrier = Arc::new(Barrier::new(p));
    let f = &f;
    // A rank must not hold a sender to itself (see `send_raw`); give it a
    // dangling sender whose receiver is dropped immediately.
    let (dangling_tx, _) = unbounded::<Msg>();
    let comms: Vec<Comm> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| {
            let mut senders = txs.clone();
            senders[rank] = dangling_tx.clone();
            Comm {
                rank,
                size: p,
                senders,
                receiver,
                backlog: VecDeque::new(),
                barrier: barrier.clone(),
                stats: CommStats::default(),
                tag_traffic: BTreeMap::new(),
                coalesce: None,
                queues: (0..p).map(|_| SendQueue::default()).collect(),
                cstats: CoalesceStats::default(),
                tracer: Tracer::disabled(),
                sampler: GaugeSampler::disabled(),
                g_coalesce: GaugeSampler::disabled().register(names::GAUGE_COALESCE_QUEUE_BYTES),
                staged_bytes: 0,
                faults: None,
                dead_peers: vec![false; p],
                pending_deaths: VecDeque::new(),
            }
        })
        .collect();
    drop(txs);
    drop(dangling_tx);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|mut comm| scope.spawn(move || f(&mut comm))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Preserve the original panic payload (message) of the
                // failing rank.
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let out = run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, Bytes::copy_from_slice(&[c.rank() as u8]));
            let m = c.recv(Some(prev), Some(7));
            m.data[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, Bytes::from_static(b"first"));
                c.send(1, 2, Bytes::from_static(b"second"));
                0
            } else {
                // Receive tag 2 before tag 1; the tag-1 message must be
                // buffered and still be deliverable.
                let b = c.recv(Some(0), Some(2));
                let a = c.recv(Some(0), Some(1));
                assert_eq!(&b.data[..], b"second");
                assert_eq!(&a.data[..], b"first");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                c.send(1, 5, Bytes::from_static(b"x"));
                c.barrier();
                true
            } else {
                assert!(c.try_recv(None, None).is_none());
                c.barrier();
                c.barrier();
                // Message must be in flight or queued now.
                let mut got = None;
                for _ in 0..1000 {
                    got = c.try_recv(Some(0), Some(5));
                    if got.is_some() {
                        break;
                    }
                    std::thread::yield_now();
                }
                got.is_some()
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn broadcast_delivers_everywhere() {
        let out = run(4, |c| {
            let data = if c.rank() == 2 { Some(Bytes::from_static(b"hello")) } else { None };
            let got = c.broadcast(2, data);
            got.to_vec()
        });
        for r in out {
            assert_eq!(r, b"hello");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(4, |c| {
            let payload = Bytes::copy_from_slice(&[c.rank() as u8 * 10]);
            c.gather(0, payload).map(|v| v.iter().map(|b| b[0]).collect::<Vec<u8>>())
        });
        assert_eq!(out[0], Some(vec![0, 10, 20, 30]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn alltoallv_exchanges_payloads() {
        let p = 4;
        let out = run(p, |c| {
            let bufs: Vec<Bytes> =
                (0..c.size()).map(|d| Bytes::copy_from_slice(&[(c.rank() * 10 + d) as u8])).collect();
            let got = c.all_to_allv(bufs);
            got.iter().map(|b| b[0]).collect::<Vec<u8>>()
        });
        for (rank, row) in out.iter().enumerate() {
            let expect: Vec<u8> = (0..p).map(|src| (src * 10 + rank) as u8).collect();
            assert_eq!(row, &expect, "rank {rank}");
        }
    }

    #[test]
    fn p2p_alltoallv_matches_collective() {
        let p = 5;
        let direct = run(p, |c| {
            let bufs: Vec<Bytes> = (0..c.size())
                .map(|d| Bytes::copy_from_slice(&[(c.rank() * c.size() + d) as u8; 3]))
                .collect();
            c.all_to_allv(bufs).iter().map(|b| b.to_vec()).collect::<Vec<_>>()
        });
        let rounds = run(p, |c| {
            let bufs: Vec<Bytes> = (0..c.size())
                .map(|d| Bytes::copy_from_slice(&[(c.rank() * c.size() + d) as u8; 3]))
                .collect();
            c.all_to_allv_p2p(bufs).iter().map(|b| b.to_vec()).collect::<Vec<_>>()
        });
        assert_eq!(direct, rounds);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run(4, |c| c.allreduce_sum(c.rank() as u64 + 1));
        assert_eq!(sums, vec![10, 10, 10, 10]);
        let maxes = run(4, |c| c.allreduce_max((c.rank() as u64) * 7));
        assert_eq!(maxes, vec![21, 21, 21, 21]);
    }

    #[test]
    fn tag_histogram_separates_collectives_and_app_tags() {
        let rows = run(3, |c| {
            c.broadcast(0, if c.rank() == 0 { Some(Bytes::from_static(b"abcd")) } else { None });
            let _ = c.allreduce_sum(1);
            if c.rank() == 0 {
                c.send(1, 7, Bytes::from_static(b"xy"));
            } else if c.rank() == 1 {
                c.recv(Some(0), Some(7));
            }
            (c.tag_stats(&CostModel::BLUEGENE_L), c.stats())
        });
        let (rows, aggregates): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        // Rank 0: bcast sends to 2 ranks, reduce traffic, app tag 7 send.
        let r0 = &rows[0];
        let bcast = r0.iter().find(|t| t.label == "bcast").expect("bcast row");
        assert_eq!(bcast.msgs_sent, 2);
        assert_eq!(bcast.bytes_sent, 8);
        let app = r0.iter().find(|t| t.label == "tag7").expect("app row");
        assert_eq!(app.msgs_sent, 1);
        assert_eq!(app.bytes_sent, 2);
        assert!(r0.iter().any(|t| t.label == "reduce"));
        // Rows are ascending by tag and modelled time is positive where
        // traffic flowed.
        assert!(r0.windows(2).all(|w| w[0].tag < w[1].tag));
        assert!(r0.iter().all(|t| t.modelled_seconds > 0.0));
        // Rank 1 saw the app message on the recv side.
        let app1 = rows[1].iter().find(|t| t.label == "tag7").expect("app row on 1");
        assert_eq!(app1.msgs_recv, 1);
        assert_eq!(app1.bytes_recv, 2);
        // On every rank the per-tag rows sum exactly to the aggregates.
        for (row, agg) in rows.iter().zip(&aggregates) {
            assert_eq!(row.iter().map(|t| t.msgs_sent).sum::<u64>(), agg.msgs_sent);
            assert_eq!(row.iter().map(|t| t.bytes_sent).sum::<u64>(), agg.bytes_sent);
            assert_eq!(row.iter().map(|t| t.msgs_recv).sum::<u64>(), agg.msgs_recv);
            assert_eq!(row.iter().map(|t| t.bytes_recv).sum::<u64>(), agg.bytes_recv);
        }
    }

    #[test]
    fn stats_count_traffic() {
        let stats = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, Bytes::from_static(b"12345"));
            } else {
                c.recv(Some(0), Some(3));
            }
            c.stats()
        });
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[0].bytes_sent, 5);
        assert_eq!(stats[1].msgs_recv, 1);
        assert_eq!(stats[1].bytes_recv, 5);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        run(2, |c| {
            if c.rank() == 0 {
                // Panics in `send` before anything is transmitted; rank 1
                // exits immediately so the panic propagates cleanly.
                c.send(1, RESERVED_TAG_BASE, Bytes::new());
            }
        });
    }

    #[test]
    fn self_send_is_received() {
        let out = run(2, |c| {
            let me = c.rank();
            c.send(me, 9, Bytes::copy_from_slice(&[me as u8]));
            c.recv(Some(me), Some(9)).data[0]
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn blocked_recv_fails_when_peer_panics() {
        run(2, |c| {
            if c.rank() == 0 {
                panic!("rank 0 died");
            } else {
                // Must not hang: rank 0's exit disconnects the channel.
                c.recv(Some(0), None);
            }
        });
    }

    #[test]
    fn coalesced_envelope_splits_in_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.set_coalesce(Some(CoalescePolicy::default()));
                c.send(1, 3, Bytes::from_static(b"aa"));
                c.send(1, 4, Bytes::from_static(b"bbb"));
                c.send(1, 3, Bytes::from_static(b"c"));
                c.flush_all();
                let s = c.stats();
                // One envelope on the wire, three logical messages in it.
                assert_eq!(s.msgs_sent, 1);
                let cs = c.coalesce_stats();
                assert_eq!(cs.envelopes_sent, 1);
                assert_eq!(cs.msgs_coalesced, 3);
                assert_eq!(cs.flush_explicit, 1);
                vec![]
            } else {
                // Tag-filtered receives see the logical stream, FIFO per
                // tag, envelope never visible.
                let m1 = c.recv(Some(0), Some(3));
                let m2 = c.recv(Some(0), Some(4));
                let m3 = c.recv(Some(0), Some(3));
                assert_eq!(c.stats().msgs_recv, 3);
                vec![m1.data.to_vec(), m2.data.to_vec(), m3.data.to_vec()]
            }
        });
        assert_eq!(out[1], vec![b"aa".to_vec(), b"bbb".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn coalesce_thresholds_trip_flushes() {
        run(2, |c| {
            if c.rank() == 0 {
                c.set_coalesce(Some(CoalescePolicy { max_bytes: 1 << 20, max_msgs: 2 }));
                c.send(1, 1, Bytes::from_static(b"x"));
                assert_eq!(c.stats().msgs_sent, 0, "first send stays staged");
                c.send(1, 1, Bytes::from_static(b"y"));
                assert_eq!(c.stats().msgs_sent, 1, "count threshold ships the envelope");
                assert_eq!(c.coalesce_stats().flush_msgs, 1);
                // Byte threshold: a large payload flushes immediately.
                c.set_coalesce(Some(CoalescePolicy { max_bytes: 4, max_msgs: 100 }));
                c.send(1, 2, Bytes::from_static(b"0123456789"));
                assert_eq!(c.coalesce_stats().flush_bytes, 1);
                // A lone staged message flushes as a plain tagged send,
                // not an envelope.
                assert_eq!(c.coalesce_stats().envelopes_sent, 1);
            } else {
                c.recv(Some(0), Some(1));
                c.recv(Some(0), Some(1));
                let m = c.recv(Some(0), Some(2));
                assert_eq!(&m.data[..], b"0123456789");
            }
        });
    }

    #[test]
    fn blocking_recv_flushes_staged_sends() {
        // Request/reply with coalescing on both sides: without the
        // flush-on-block rule this deadlocks (both requests stay staged).
        let out = run(2, |c| {
            c.set_coalesce(Some(CoalescePolicy::default()));
            let peer = 1 - c.rank();
            c.send(peer, 11, Bytes::copy_from_slice(&[c.rank() as u8]));
            let m = c.recv(Some(peer), Some(11));
            assert!(c.coalesce_stats().flush_block >= 1);
            m.data[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn barrier_flushes_staged_sends() {
        run(2, |c| {
            if c.rank() == 0 {
                c.set_coalesce(Some(CoalescePolicy::default()));
                c.send(1, 6, Bytes::from_static(b"pre-barrier"));
                c.barrier();
            } else {
                c.barrier();
                // The message was staged before the barrier, so it must
                // already be in the channel now.
                let m = c.try_recv(Some(0), Some(6)).expect("flushed by sender's barrier");
                assert_eq!(&m.data[..], b"pre-barrier");
            }
        });
    }

    #[test]
    fn collective_send_flushes_staged_queue_first() {
        run(2, |c| {
            if c.rank() == 0 {
                c.set_coalesce(Some(CoalescePolicy::default()));
                c.send(1, 8, Bytes::from_static(b"app"));
                // Broadcast goes through the direct path; the staged app
                // message must be shipped first to preserve FIFO.
                c.broadcast(0, Some(Bytes::from_static(b"bc")));
            } else {
                let first = c.recv(Some(0), None);
                assert_eq!(first.tag, 8, "staged app message arrives before the collective");
                let got = c.broadcast(0, None);
                assert_eq!(&got[..], b"bc");
            }
        });
    }

    #[test]
    fn draining_backlogged_messages_is_not_wait_time() {
        run(2, |c| {
            if c.rank() == 0 {
                for _ in 0..100 {
                    c.send(1, 1, Bytes::from_static(b"noise"));
                }
                c.send(1, 2, Bytes::from_static(b"signal"));
                c.barrier();
            } else {
                c.barrier();
                // Everything is already in the channel (sends happened
                // before the barrier): receiving the tag-2 message must
                // drain 100 non-matching messages without charging any
                // blocked time to this receive.
                let m = c.recv(Some(0), Some(2));
                assert_eq!(&m.data[..], b"signal");
                assert_eq!(c.stats().wait_ns, 0, "drain/backlog time billed as waiting");
            }
        });
    }

    #[test]
    fn sender_side_pricing_counts_each_message_once() {
        let rows = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, Bytes::from_static(b"12345678"));
            } else {
                c.recv(Some(0), Some(3));
            }
            c.tag_stats(&CostModel::BLUEGENE_L)
        });
        let model = CostModel::BLUEGENE_L;
        let expect = model.latency_s + 8.0 / model.bandwidth_bytes_per_s;
        let sender = rows[0].iter().find(|t| t.tag == 3).expect("send row");
        let receiver = rows[1].iter().find(|t| t.tag == 3).expect("recv row");
        assert!((sender.modelled_seconds - expect).abs() < 1e-15);
        assert_eq!(receiver.modelled_seconds, 0.0, "receive side is not priced again");
        assert_eq!(receiver.msgs_recv, 1);
        let total: f64 = rows.iter().flatten().map(|t| t.modelled_seconds).sum();
        assert!((total - expect).abs() < 1e-15, "cross-rank sum prices the message once");
    }

    #[test]
    fn ft_ops_without_a_plan_are_plain_ops() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send_ft(1, 3, Bytes::from_static(b"hi")).unwrap();
                assert!(!c.has_fault_plan());
                assert_eq!(c.fault_stats(), crate::faults::FaultStats::default());
                0
            } else {
                match c.recv_ft(Some(0), Some(3)).unwrap() {
                    Event::Msg(m) => m.data.len(),
                    Event::Death(_) => unreachable!("no plan, no deaths"),
                }
            }
        });
        assert_eq!(out, vec![0, 2]);
    }

    #[test]
    fn scripted_kill_surfaces_error_and_death_notices() {
        use crate::faults::{FaultStage, KillTarget};
        let plan = FaultPlan::default().with_kill(KillTarget::Rank(1), 2, FaultStage::Any);
        let out = run(3, move |c| {
            c.set_fault_plan(&plan);
            match c.rank() {
                1 => {
                    // First op passes, second trips the kill.
                    c.send_ft(0, 5, Bytes::from_static(b"one")).unwrap();
                    let err = c.send_ft(0, 5, Bytes::from_static(b"two")).unwrap_err();
                    assert_eq!(err, CommError::Killed { rank: 1, event: 2 });
                    // Every later op keeps failing.
                    assert!(c.recv_ft(None, None).is_err());
                    assert_eq!(c.fault_stats().kills, 1);
                    assert_eq!(c.fault_stats().death_notices, 2);
                    "killed"
                }
                0 => {
                    // The message sent before death arrives; the death is
                    // observed as an event.
                    let mut got_msg = false;
                    let mut got_death = false;
                    while !(got_msg && got_death) {
                        match c.recv_ft(None, None).unwrap() {
                            Event::Msg(m) => {
                                assert_eq!(&m.data[..], b"one");
                                got_msg = true;
                            }
                            Event::Death(peer) => {
                                assert_eq!(peer, 1);
                                got_death = true;
                            }
                        }
                    }
                    assert!(c.dead_peers()[1]);
                    // Sends to the dead peer blackhole instead of panic.
                    c.send_ft(1, 9, Bytes::from_static(b"into the void")).unwrap();
                    assert_eq!(c.fault_stats().msgs_lost, 1);
                    "survivor"
                }
                _ => match c.recv_ft(None, None).unwrap() {
                    Event::Death(1) => "observed",
                    e => panic!("expected death of rank 1, got {e:?}"),
                },
            }
        });
        assert_eq!(out, vec!["survivor", "killed", "observed"]);
    }

    #[test]
    fn scripted_drop_discards_exactly_the_nth_match() {
        use crate::faults::FaultStage;
        let plan = FaultPlan::default().with_drop(0, 1, 4, 2, FaultStage::Any);
        run(2, move |c| {
            c.set_fault_plan(&plan);
            if c.rank() == 0 {
                c.send_ft(1, 4, Bytes::from_static(b"a")).unwrap();
                c.send_ft(1, 4, Bytes::from_static(b"b")).unwrap(); // dropped
                c.send_ft(1, 4, Bytes::from_static(b"c")).unwrap();
                assert_eq!(c.fault_stats().msgs_dropped, 1);
            } else {
                let first = match c.recv_ft(Some(0), Some(4)).unwrap() {
                    Event::Msg(m) => m.data,
                    e => panic!("{e:?}"),
                };
                let second = match c.recv_ft(Some(0), Some(4)).unwrap() {
                    Event::Msg(m) => m.data,
                    e => panic!("{e:?}"),
                };
                assert_eq!(&first[..], b"a");
                assert_eq!(&second[..], b"c", "the 'b' message was dropped on the wire");
            }
        });
    }

    #[test]
    fn scripted_delay_reorders_past_later_traffic() {
        use crate::faults::FaultStage;
        // Hold the first tag-6 message for 2 sender events: the second
        // message overtakes it.
        let plan = FaultPlan::default().with_delay(0, 1, 6, 1, 2, FaultStage::Any);
        run(2, move |c| {
            c.set_fault_plan(&plan);
            if c.rank() == 0 {
                c.send_ft(1, 6, Bytes::from_static(b"early")).unwrap(); // held
                c.send_ft(1, 6, Bytes::from_static(b"later")).unwrap();
                // Two more events release the held message.
                c.send_ft(1, 7, Bytes::from_static(b"tick")).unwrap();
                c.send_ft(1, 7, Bytes::from_static(b"tick")).unwrap();
                assert_eq!(c.fault_stats().msgs_delayed, 1);
            } else {
                let order: Vec<Bytes> = (0..2)
                    .map(|_| match c.recv_ft(Some(0), Some(6)).unwrap() {
                        Event::Msg(m) => m.data,
                        e => panic!("{e:?}"),
                    })
                    .collect();
                assert_eq!(&order[0][..], b"later", "delayed message arrives out of order");
                assert_eq!(&order[1][..], b"early");
            }
        });
    }

    #[test]
    fn dying_rank_loses_its_staged_envelopes() {
        use crate::faults::{FaultStage, KillTarget};
        // Rank 1 stages two messages under coalescing, then its third
        // fault event kills it: the staged envelope must be lost (crash
        // semantics), leaving rank 0 only the death notice.
        let plan = FaultPlan::default().with_kill(KillTarget::Rank(1), 3, FaultStage::Any);
        run(2, move |c| {
            c.set_fault_plan(&plan);
            if c.rank() == 1 {
                c.set_coalesce(Some(CoalescePolicy::default()));
                c.send_ft(0, 2, Bytes::from_static(b"staged")).unwrap();
                c.send_ft(0, 2, Bytes::from_static(b"also staged")).unwrap();
                assert_eq!(c.stats().msgs_sent, 0, "both staged, nothing on the wire");
                assert!(c.send_ft(0, 2, Bytes::from_static(b"never")).is_err());
            } else {
                match c.recv_ft(None, None).unwrap() {
                    Event::Death(1) => {}
                    e => panic!("expected only the death notice, got {e:?}"),
                }
                assert!(c.try_recv_ft(None, None).unwrap().is_none(), "staged messages died with the rank");
            }
        });
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
