//! Ranks, point-to-point messaging, and collectives.

use crate::model::{CommStats, CostModel};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pgasm_telemetry::TagStat;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: u32 = 0xFFFF_0000;

const TAG_BCAST: u32 = RESERVED_TAG_BASE;
const TAG_GATHER: u32 = RESERVED_TAG_BASE + 1;
const TAG_ALLTOALL: u32 = RESERVED_TAG_BASE + 2;
const TAG_ALLTOALL_P2P: u32 = RESERVED_TAG_BASE + 3;
const TAG_REDUCE: u32 = RESERVED_TAG_BASE + 4;

/// Human-readable name for a tag: collectives get their primitive's
/// name, application tags render as `"tag<N>"` (callers owning an
/// application protocol can relabel rows in their reports).
pub fn tag_label(tag: u32) -> String {
    match tag {
        TAG_BCAST => "bcast".to_string(),
        TAG_GATHER => "gather".to_string(),
        TAG_ALLTOALL => "alltoall".to_string(),
        TAG_ALLTOALL_P2P => "alltoall_p2p".to_string(),
        TAG_REDUCE => "reduce".to_string(),
        t => format!("tag{t}"),
    }
}

/// Per-tag traffic counters (histogram row).
#[derive(Debug, Clone, Copy, Default)]
struct TagTraffic {
    msgs_sent: u64,
    bytes_sent: u64,
    msgs_recv: u64,
    bytes_recv: u64,
}

/// One received message.
#[derive(Debug, Clone)]
pub struct Msg {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Payload.
    pub data: Bytes,
}

/// A rank's communicator handle. All methods take `&mut self`: a rank is
/// single-threaded, exactly like an MPI process.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Msg>>,
    receiver: Receiver<Msg>,
    backlog: VecDeque<Msg>,
    barrier: Arc<Barrier>,
    stats: CommStats,
    tag_traffic: BTreeMap<u32, TagTraffic>,
}

impl Comm {
    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Snapshot of this rank's traffic statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Per-tag traffic histogram with α–β modelled seconds per row,
    /// ascending by tag. Collectives use distinct reserved tags, so
    /// this doubles as a per-collective communication breakdown.
    pub fn tag_stats(&self, model: &CostModel) -> Vec<TagStat> {
        self.tag_traffic
            .iter()
            .map(|(&tag, t)| TagStat {
                tag,
                label: tag_label(tag),
                msgs_sent: t.msgs_sent,
                bytes_sent: t.bytes_sent,
                msgs_recv: t.msgs_recv,
                bytes_recv: t.bytes_recv,
                modelled_seconds: (t.msgs_sent + t.msgs_recv) as f64 * model.latency_s
                    + (t.bytes_sent + t.bytes_recv) as f64 / model.bandwidth_bytes_per_s,
            })
            .collect()
    }

    /// Asynchronous send (like `MPI_Isend` with unbounded buffering).
    ///
    /// # Panics
    /// Panics on a reserved tag or an out-of-range destination.
    pub fn send(&mut self, dest: usize, tag: u32, data: Bytes) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag:#x} is reserved for collectives");
        self.send_raw(dest, tag, data);
    }

    fn send_raw(&mut self, dest: usize, tag: u32, data: Bytes) {
        assert!(dest < self.size, "destination {dest} out of range");
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        let row = self.tag_traffic.entry(tag).or_default();
        row.msgs_sent += 1;
        row.bytes_sent += data.len() as u64;
        let msg = Msg { src: self.rank, tag, data };
        if dest == self.rank {
            // Self-sends bypass the channel. This also means a rank holds
            // no sender to itself, so when every *other* rank exits (or
            // panics), its channel disconnects and a blocked `recv`
            // fails fast instead of deadlocking the scope join.
            self.backlog.push_back(msg);
        } else {
            self.senders[dest].send(msg).expect("receiving rank exited before communication completed");
        }
    }

    /// Blocking receive matching the given source and/or tag (`None` is
    /// a wildcard). Non-matching messages are buffered for later
    /// receives, preserving per-sender FIFO order.
    pub fn recv(&mut self, src: Option<usize>, tag: Option<u32>) -> Msg {
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return m;
        }
        let start = Instant::now();
        loop {
            let m = self.receiver.recv().expect("all ranks exited");
            if matches(&m, src, tag) {
                self.stats.wait_ns += start.elapsed().as_nanos() as u64;
                self.note_recv(&m);
                return m;
            }
            self.backlog.push_back(m);
        }
    }

    /// Non-blocking receive; `None` when no matching message is queued.
    pub fn try_recv(&mut self, src: Option<usize>, tag: Option<u32>) -> Option<Msg> {
        if let Some(i) = self.backlog_find(src, tag) {
            let m = self.backlog.remove(i).expect("index valid");
            self.note_recv(&m);
            return Some(m);
        }
        while let Ok(m) = self.receiver.try_recv() {
            if matches(&m, src, tag) {
                self.note_recv(&m);
                return Some(m);
            }
            self.backlog.push_back(m);
        }
        None
    }

    fn backlog_find(&self, src: Option<usize>, tag: Option<u32>) -> Option<usize> {
        self.backlog.iter().position(|m| matches(m, src, tag))
    }

    fn note_recv(&mut self, m: &Msg) {
        self.stats.msgs_recv += 1;
        self.stats.bytes_recv += m.data.len() as u64;
        let row = self.tag_traffic.entry(m.tag).or_default();
        row.msgs_recv += 1;
        row.bytes_recv += m.data.len() as u64;
    }

    /// Synchronise all ranks.
    pub fn barrier(&mut self) {
        let start = Instant::now();
        self.barrier.wait();
        self.stats.barrier_ns += start.elapsed().as_nanos() as u64;
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone
    /// receives the payload.
    pub fn broadcast(&mut self, root: usize, data: Option<Bytes>) -> Bytes {
        if self.rank == root {
            let data = data.expect("root must supply broadcast data");
            for dest in 0..self.size {
                if dest != root {
                    self.send_raw(dest, TAG_BCAST, data.clone());
                }
            }
            data
        } else {
            self.recv(Some(root), Some(TAG_BCAST)).data
        }
    }

    /// Gather to `root`: returns `Some(payloads_by_rank)` at the root,
    /// `None` elsewhere.
    pub fn gather(&mut self, root: usize, data: Bytes) -> Option<Vec<Bytes>> {
        if self.rank == root {
            let mut out: Vec<Option<Bytes>> = vec![None; self.size];
            out[root] = Some(data);
            // Per-source receives: see all_to_allv_tagged for why
            // wildcard receives would race consecutive collectives.
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    let m = self.recv(Some(src), Some(TAG_GATHER));
                    *slot = Some(m.data);
                }
            }
            Some(out.into_iter().map(|b| b.expect("all ranks gathered")).collect())
        } else {
            self.send_raw(root, TAG_GATHER, data);
            None
        }
    }

    /// Collective all-to-all with per-destination payloads; returns the
    /// payloads received, indexed by source.
    pub fn all_to_allv(&mut self, bufs: Vec<Bytes>) -> Vec<Bytes> {
        self.all_to_allv_tagged(bufs, TAG_ALLTOALL)
    }

    /// The paper's customised `Alltoallv` (§6): `p − 1` explicit
    /// point-to-point rounds, rank `r` exchanging with `r ± round`, which
    /// bounds the space committed to send buffers to one destination at
    /// a time. Traffic totals match [`Comm::all_to_allv`]; only the
    /// schedule differs.
    pub fn all_to_allv_p2p(&mut self, mut bufs: Vec<Bytes>) -> Vec<Bytes> {
        assert_eq!(bufs.len(), self.size);
        let mut out: Vec<Option<Bytes>> = vec![None; self.size];
        out[self.rank] = Some(std::mem::take(&mut bufs[self.rank]));
        for round in 1..self.size {
            let to = (self.rank + round) % self.size;
            let from = (self.rank + self.size - round) % self.size;
            self.send_raw(to, TAG_ALLTOALL_P2P, std::mem::take(&mut bufs[to]));
            let m = self.recv(Some(from), Some(TAG_ALLTOALL_P2P));
            out[from] = Some(m.data);
        }
        out.into_iter().map(|b| b.expect("complete exchange")).collect()
    }

    fn all_to_allv_tagged(&mut self, mut bufs: Vec<Bytes>, tag: u32) -> Vec<Bytes> {
        assert_eq!(bufs.len(), self.size, "one payload per destination required");
        let mut out: Vec<Option<Bytes>> = vec![None; self.size];
        out[self.rank] = Some(std::mem::take(&mut bufs[self.rank]));
        for (dest, buf) in bufs.iter_mut().enumerate() {
            if dest != self.rank {
                self.send_raw(dest, tag, std::mem::take(buf));
            }
        }
        // Receive per explicit source: per-sender FIFO then keeps two
        // back-to-back collectives on the same tag from interleaving
        // (a wildcard receive could consume a fast rank's *next*-round
        // payload as this round's).
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                let m = self.recv(Some(src), Some(tag));
                *slot = Some(m.data);
            }
        }
        out.into_iter().map(|b| b.expect("complete exchange")).collect()
    }

    /// All-reduce of a `u64` by summation.
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// All-reduce of a `u64` by maximum.
    pub fn allreduce_max(&mut self, value: u64) -> u64 {
        self.allreduce(value, u64::max)
    }

    fn allreduce(&mut self, value: u64, op: impl Fn(u64, u64) -> u64) -> u64 {
        // Gather to rank 0, reduce, broadcast back.
        let payload = Bytes::copy_from_slice(&value.to_le_bytes());
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let m = self.recv(Some(src), Some(TAG_REDUCE));
                let mut buf = [0u8; 8];
                buf.copy_from_slice(&m.data);
                acc = op(acc, u64::from_le_bytes(buf));
            }
            let out = Bytes::copy_from_slice(&acc.to_le_bytes());
            for dest in 1..self.size {
                self.send_raw(dest, TAG_REDUCE, out.clone());
            }
            acc
        } else {
            self.send_raw(0, TAG_REDUCE, payload);
            let m = self.recv(Some(0), Some(TAG_REDUCE));
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&m.data);
            u64::from_le_bytes(buf)
        }
    }
}

#[inline]
fn matches(m: &Msg, src: Option<usize>, tag: Option<u32>) -> bool {
    src.is_none_or(|s| s == m.src) && tag.is_none_or(|t| t == m.tag)
}

/// Launch `p` ranks, run `f` on each, and return the per-rank results in
/// rank order. Panics in any rank propagate.
pub fn run<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Send + Sync,
{
    assert!(p > 0, "at least one rank required");
    let mut txs = Vec::with_capacity(p);
    let mut rxs = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let barrier = Arc::new(Barrier::new(p));
    let f = &f;
    // A rank must not hold a sender to itself (see `send_raw`); give it a
    // dangling sender whose receiver is dropped immediately.
    let (dangling_tx, _) = unbounded::<Msg>();
    let comms: Vec<Comm> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, receiver)| {
            let mut senders = txs.clone();
            senders[rank] = dangling_tx.clone();
            Comm {
                rank,
                size: p,
                senders,
                receiver,
                backlog: VecDeque::new(),
                barrier: barrier.clone(),
                stats: CommStats::default(),
                tag_traffic: BTreeMap::new(),
            }
        })
        .collect();
    drop(txs);
    drop(dangling_tx);
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms.into_iter().map(|mut comm| scope.spawn(move || f(&mut comm))).collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Preserve the original panic payload (message) of the
                // failing rank.
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = run(1, |c| c.rank() + c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn ring_pass() {
        let out = run(4, |c| {
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 7, Bytes::copy_from_slice(&[c.rank() as u8]));
            let m = c.recv(Some(prev), Some(7));
            m.data[0] as usize
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, Bytes::from_static(b"first"));
                c.send(1, 2, Bytes::from_static(b"second"));
                0
            } else {
                // Receive tag 2 before tag 1; the tag-1 message must be
                // buffered and still be deliverable.
                let b = c.recv(Some(0), Some(2));
                let a = c.recv(Some(0), Some(1));
                assert_eq!(&b.data[..], b"second");
                assert_eq!(&a.data[..], b"first");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let out = run(2, |c| {
            if c.rank() == 0 {
                c.barrier();
                c.send(1, 5, Bytes::from_static(b"x"));
                c.barrier();
                true
            } else {
                assert!(c.try_recv(None, None).is_none());
                c.barrier();
                c.barrier();
                // Message must be in flight or queued now.
                let mut got = None;
                for _ in 0..1000 {
                    got = c.try_recv(Some(0), Some(5));
                    if got.is_some() {
                        break;
                    }
                    std::thread::yield_now();
                }
                got.is_some()
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn broadcast_delivers_everywhere() {
        let out = run(4, |c| {
            let data = if c.rank() == 2 { Some(Bytes::from_static(b"hello")) } else { None };
            let got = c.broadcast(2, data);
            got.to_vec()
        });
        for r in out {
            assert_eq!(r, b"hello");
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run(4, |c| {
            let payload = Bytes::copy_from_slice(&[c.rank() as u8 * 10]);
            c.gather(0, payload).map(|v| v.iter().map(|b| b[0]).collect::<Vec<u8>>())
        });
        assert_eq!(out[0], Some(vec![0, 10, 20, 30]));
        assert_eq!(out[1], None);
    }

    #[test]
    fn alltoallv_exchanges_payloads() {
        let p = 4;
        let out = run(p, |c| {
            let bufs: Vec<Bytes> =
                (0..c.size()).map(|d| Bytes::copy_from_slice(&[(c.rank() * 10 + d) as u8])).collect();
            let got = c.all_to_allv(bufs);
            got.iter().map(|b| b[0]).collect::<Vec<u8>>()
        });
        for (rank, row) in out.iter().enumerate() {
            let expect: Vec<u8> = (0..p).map(|src| (src * 10 + rank) as u8).collect();
            assert_eq!(row, &expect, "rank {rank}");
        }
    }

    #[test]
    fn p2p_alltoallv_matches_collective() {
        let p = 5;
        let direct = run(p, |c| {
            let bufs: Vec<Bytes> = (0..c.size())
                .map(|d| Bytes::copy_from_slice(&[(c.rank() * c.size() + d) as u8; 3]))
                .collect();
            c.all_to_allv(bufs).iter().map(|b| b.to_vec()).collect::<Vec<_>>()
        });
        let rounds = run(p, |c| {
            let bufs: Vec<Bytes> = (0..c.size())
                .map(|d| Bytes::copy_from_slice(&[(c.rank() * c.size() + d) as u8; 3]))
                .collect();
            c.all_to_allv_p2p(bufs).iter().map(|b| b.to_vec()).collect::<Vec<_>>()
        });
        assert_eq!(direct, rounds);
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run(4, |c| c.allreduce_sum(c.rank() as u64 + 1));
        assert_eq!(sums, vec![10, 10, 10, 10]);
        let maxes = run(4, |c| c.allreduce_max((c.rank() as u64) * 7));
        assert_eq!(maxes, vec![21, 21, 21, 21]);
    }

    #[test]
    fn tag_histogram_separates_collectives_and_app_tags() {
        let rows = run(3, |c| {
            c.broadcast(0, if c.rank() == 0 { Some(Bytes::from_static(b"abcd")) } else { None });
            let _ = c.allreduce_sum(1);
            if c.rank() == 0 {
                c.send(1, 7, Bytes::from_static(b"xy"));
            } else if c.rank() == 1 {
                c.recv(Some(0), Some(7));
            }
            (c.tag_stats(&CostModel::BLUEGENE_L), c.stats())
        });
        let (rows, aggregates): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
        // Rank 0: bcast sends to 2 ranks, reduce traffic, app tag 7 send.
        let r0 = &rows[0];
        let bcast = r0.iter().find(|t| t.label == "bcast").expect("bcast row");
        assert_eq!(bcast.msgs_sent, 2);
        assert_eq!(bcast.bytes_sent, 8);
        let app = r0.iter().find(|t| t.label == "tag7").expect("app row");
        assert_eq!(app.msgs_sent, 1);
        assert_eq!(app.bytes_sent, 2);
        assert!(r0.iter().any(|t| t.label == "reduce"));
        // Rows are ascending by tag and modelled time is positive where
        // traffic flowed.
        assert!(r0.windows(2).all(|w| w[0].tag < w[1].tag));
        assert!(r0.iter().all(|t| t.modelled_seconds > 0.0));
        // Rank 1 saw the app message on the recv side.
        let app1 = rows[1].iter().find(|t| t.label == "tag7").expect("app row on 1");
        assert_eq!(app1.msgs_recv, 1);
        assert_eq!(app1.bytes_recv, 2);
        // On every rank the per-tag rows sum exactly to the aggregates.
        for (row, agg) in rows.iter().zip(&aggregates) {
            assert_eq!(row.iter().map(|t| t.msgs_sent).sum::<u64>(), agg.msgs_sent);
            assert_eq!(row.iter().map(|t| t.bytes_sent).sum::<u64>(), agg.bytes_sent);
            assert_eq!(row.iter().map(|t| t.msgs_recv).sum::<u64>(), agg.msgs_recv);
            assert_eq!(row.iter().map(|t| t.bytes_recv).sum::<u64>(), agg.bytes_recv);
        }
    }

    #[test]
    fn stats_count_traffic() {
        let stats = run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 3, Bytes::from_static(b"12345"));
            } else {
                c.recv(Some(0), Some(3));
            }
            c.stats()
        });
        assert_eq!(stats[0].msgs_sent, 1);
        assert_eq!(stats[0].bytes_sent, 5);
        assert_eq!(stats[1].msgs_recv, 1);
        assert_eq!(stats[1].bytes_recv, 5);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_tags_rejected() {
        run(2, |c| {
            if c.rank() == 0 {
                // Panics in `send` before anything is transmitted; rank 1
                // exits immediately so the panic propagates cleanly.
                c.send(1, RESERVED_TAG_BASE, Bytes::new());
            }
        });
    }

    #[test]
    fn self_send_is_received() {
        let out = run(2, |c| {
            let me = c.rank();
            c.send(me, 9, Bytes::copy_from_slice(&[me as u8]));
            c.recv(Some(me), Some(9)).data[0]
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn blocked_recv_fails_when_peer_panics() {
        run(2, |c| {
            if c.rank() == 0 {
                panic!("rank 0 died");
            } else {
                // Must not hang: rank 0's exit disconnects the channel.
                c.recv(Some(0), None);
            }
        });
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run(4, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }
}
