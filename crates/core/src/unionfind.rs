//! Union–Find (disjoint sets) for cluster management.
//!
//! §4: "Operations on the set of clusters are performed using the
//! Union–Find data structure", giving find/merge in amortised
//! inverse-Ackermann time; §7.1: "implemented as an array of n
//! integers", which is what keeps the master's memory at O(n).

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    /// parent[i], with parent[i] == i for roots.
    parent: Vec<u32>,
    /// Rank upper bound per root.
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> UnionFind {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n], sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Root of `x` (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    /// Are `a` and `b` in the same set?
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merge the sets of `a` and `b`; returns true if a merge happened.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Materialise the sets as member lists (singletons included),
    /// ordered by smallest member.
    pub fn sets(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for i in 0..n as u32 {
            let r = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_values().collect();
        out.sort_by_key(|v| v[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1), "second union is a no-op");
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.same(0, 1));
        assert!(!uf.same(1, 2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, 2));
    }

    #[test]
    fn transitivity_via_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, 99));
    }

    #[test]
    fn sets_materialisation() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 2);
        uf.union(2, 4);
        uf.union(1, 5);
        let sets = uf.sets();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0], vec![0, 2, 4]);
        assert_eq!(sets[1], vec![1, 5]);
        assert_eq!(sets[2], vec![3]);
    }

    #[test]
    fn result_independent_of_union_order() {
        // The same edge set applied in any order yields the same
        // partition — the property that makes the paper's heuristic
        // ordering a pure optimisation (§4).
        let edges = [(0u32, 1u32), (2, 3), (1, 2), (5, 6), (7, 8), (6, 7)];
        let mut forward = UnionFind::new(10);
        for &(a, b) in &edges {
            forward.union(a, b);
        }
        let mut backward = UnionFind::new(10);
        for &(a, b) in edges.iter().rev() {
            backward.union(a, b);
        }
        assert_eq!(forward.sets(), backward.sets());
    }

    #[test]
    fn empty_unionfind() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
        assert!(uf.sets().is_empty());
    }
}
