//! Content-addressed artifact cache for expensive pipeline stages.
//!
//! A cache *key* is a stable 64-bit digest of everything a stage's
//! output depends on — input fragments, qualities, provenance, vector
//! and repeat libraries, and the stage's parameters. Identical inputs
//! re-running under the same parameters find their artifact on disk and
//! skip the stage; any change to an input or parameter changes the key
//! and the stage recomputes (a wrong *hit* would silently corrupt
//! results, so every ambiguity resolves toward a miss).
//!
//! Entries are self-describing files: a versioned header (magic,
//! container schema, artifact codec schema, kind, key, payload length,
//! payload checksum) followed by the artifact payload in its own
//! [`pgasm_seq::wire`] framing. Loading re-verifies all of it, so a
//! truncated, corrupted, foreign, or stale file degrades to a cold run
//! — never a panic, never a wrong artifact. Writes go to a
//! process-unique temp file first and are published with an atomic
//! rename, so a crashed or concurrent run can leave at worst a stale
//! temp file, not a half-written entry.

use pgasm_gst::GstConfig;
use pgasm_preprocess::PreprocessConfig;
use pgasm_seq::wire::{Reader, Writer};
use pgasm_seq::{DnaSeq, FragmentStore};
use pgasm_simgen::ReadSet;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic for cache entries.
pub const CACHE_MAGIC: [u8; 4] = *b"PGAC";

/// Container-format version; bump when the header layout changes.
/// Entries written by any other container version are rejected.
pub const CACHE_CONTAINER_SCHEMA: u32 = 1;

/// FNV-1a 64-bit — a stable, dependency-free hash whose value is
/// identical across runs, platforms, and compiler versions (unlike
/// `std::collections::hash_map::DefaultHasher`, which is randomly
/// seeded per process and would make every run a miss).
#[derive(Debug, Clone, Copy)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: Self::OFFSET_BASIS }
    }

    /// Fold raw bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian) into the state.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Fold a length-prefixed byte slice into the state. The prefix
    /// keeps adjacent variable-length fields unambiguous — without it,
    /// `("ab", "c")` and `("a", "bc")` would collide by construction.
    pub fn update_slice(&mut self, bytes: &[u8]) -> &mut Self {
        self.update_u64(bytes.len() as u64).update(bytes)
    }

    /// Fold a length-prefixed string into the state.
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update_slice(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a digest of a byte slice (payload checksums).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.update(bytes);
    h.finish()
}

/// Publish `chunks`, concatenated, at `path` atomically: the bytes are
/// written to a process-unique sibling temp file, fsynced, and renamed
/// into place, so readers only ever observe the old file, no file, or
/// the complete new file — never a torn write. Returns total bytes.
/// Shared by cache entries and master checkpoint snapshots.
pub fn atomic_write(path: &Path, chunks: &[&[u8]]) -> std::io::Result<u64> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    let total: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        for chunk in chunks {
            f.write_all(chunk)?;
        }
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result.map(|()| total)
}

fn update_seqs(h: &mut StableHasher, seqs: &[DnaSeq]) {
    h.update_u64(seqs.len() as u64);
    for s in seqs {
        h.update_slice(s.codes());
    }
}

fn update_store(h: &mut StableHasher, store: &FragmentStore) {
    h.update_u64(store.is_double_stranded() as u64);
    h.update_u64(store.num_seqs() as u64);
    for (_, codes) in store.iter() {
        h.update_slice(codes);
    }
}

/// Cache key of the preprocess stage: every input the
/// [`pgasm_preprocess::Preprocessor`] reads, plus its parameters.
/// The parameters enter through their `Debug` rendering — it covers
/// every field, so a new or changed knob can only change the key
/// (recompute), never silently alias an old entry.
pub fn preprocess_key(
    reads: &ReadSet,
    vectors: &[DnaSeq],
    known_repeats: &[DnaSeq],
    config: &PreprocessConfig,
) -> u64 {
    let mut h = StableHasher::new();
    h.update_str("preprocess");
    h.update_u64(reads.len() as u64);
    for ((seq, qual), prov) in reads.seqs.iter().zip(&reads.quals).zip(&reads.provenance) {
        h.update_slice(seq.codes());
        h.update_slice(qual.values());
        h.update_str(&format!("{prov:?}"));
    }
    update_seqs(&mut h, vectors);
    update_seqs(&mut h, known_repeats);
    h.update_str(&format!("{config:?}"));
    h.finish()
}

/// Cache key of a GST built over `store` (the double-stranded view the
/// serial clustering engine constructs) with `config`.
pub fn gst_key(store: &FragmentStore, config: &GstConfig) -> u64 {
    let mut h = StableHasher::new();
    h.update_str("gst");
    update_store(&mut h, store);
    h.update_str(&format!("{config:?}"));
    h.finish()
}

/// Cache key of the assembly stage's output: every input the
/// per-cluster assembler reads — the (soft-masked) fragments, their
/// quality tracks, the clustering partition — plus the assembler
/// parameters (via `Debug`, so any new knob changes the key).
pub fn contigs_key(
    store: &FragmentStore,
    quals: Option<&[pgasm_seq::QualityTrack]>,
    clustering: &crate::clustering::Clustering,
    config: &pgasm_assemble::AssemblyConfig,
) -> u64 {
    let mut h = StableHasher::new();
    h.update_str("contigs");
    update_store(&mut h, store);
    match quals {
        Some(qs) => {
            h.update_u64(1 + qs.len() as u64);
            for q in qs {
                h.update_slice(q.values());
            }
        }
        None => {
            h.update_u64(0);
        }
    }
    h.update_u64(clustering.clusters.len() as u64);
    for members in &clustering.clusters {
        h.update_u64(members.len() as u64);
        for &m in members {
            h.update_u64(m as u64);
        }
    }
    h.update_str(&format!("{config:?}"));
    h.finish()
}

/// A directory of cache entries, one file per `(kind, key)`.
#[derive(Debug)]
pub struct ArtifactCache {
    dir: PathBuf,
}

impl ArtifactCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: &Path) -> std::io::Result<ArtifactCache> {
        fs::create_dir_all(dir)?;
        Ok(ArtifactCache { dir: dir.to_path_buf() })
    }

    /// Path of the entry for `(kind, key)`.
    pub fn entry_path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}-{key:016x}.pgac"))
    }

    /// Load the payload stored for `(kind, key)` under artifact codec
    /// version `schema`. Returns `None` — a cache miss, never an error
    /// — when the entry is absent, truncated, corrupted, written by a
    /// different schema, or otherwise not *exactly* what was asked for.
    pub fn load(&self, kind: &str, schema: u32, key: u64) -> Option<Vec<u8>> {
        let bytes = fs::read(self.entry_path(kind, key)).ok()?;
        let mut r = Reader::new(&bytes);
        let mut magic = [0u8; 4];
        for m in magic.iter_mut() {
            *m = r.get_u8().ok()?;
        }
        if magic != CACHE_MAGIC
            || r.get_u32().ok()? != CACHE_CONTAINER_SCHEMA
            || r.get_u32().ok()? != schema
            || r.get_str().ok()? != kind
            || r.get_u64().ok()? != key
        {
            return None;
        }
        let payload_len = r.get_u64().ok()? as usize;
        let checksum = r.get_u64().ok()?;
        if r.remaining() != payload_len {
            return None;
        }
        let payload = r.get_raw(payload_len).ok()?.to_vec();
        if fnv1a(&payload) != checksum {
            return None;
        }
        Some(payload)
    }

    /// Persist `payload` for `(kind, key)` atomically: the full entry is
    /// written to a process-unique temp file, flushed, and renamed into
    /// place, so readers only ever observe absent or complete entries.
    /// Returns the total bytes written.
    pub fn store(&self, kind: &str, schema: u32, key: u64, payload: &[u8]) -> std::io::Result<u64> {
        let mut w = Writer::with_capacity(payload.len() + 64);
        for m in CACHE_MAGIC {
            w.put_u8(m);
        }
        w.put_u32(CACHE_CONTAINER_SCHEMA).put_u32(schema);
        w.put_str(kind);
        w.put_u64(key);
        w.put_u64(payload.len() as u64);
        w.put_u64(fnv1a(payload));
        let header = w.finish();
        atomic_write(&self.entry_path(kind, key), &[&header, payload])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("pgasm-cache-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let tmp = TempDir::new("roundtrip");
        let cache = ArtifactCache::open(&tmp.0).unwrap();
        let payload = b"artifact bytes".to_vec();
        let written = cache.store("gst", 1, 42, &payload).unwrap();
        assert!(written > payload.len() as u64, "header must be accounted");
        assert_eq!(cache.load("gst", 1, 42), Some(payload));
        // No temp files left behind.
        let stray: Vec<_> = fs::read_dir(&tmp.0)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp file leaked: {stray:?}");
    }

    #[test]
    fn mismatched_lookup_misses() {
        let tmp = TempDir::new("mismatch");
        let cache = ArtifactCache::open(&tmp.0).unwrap();
        cache.store("gst", 1, 42, b"payload").unwrap();
        assert!(cache.load("gst", 1, 43).is_none(), "different key");
        assert!(cache.load("preprocess", 1, 42).is_none(), "different kind");
        assert!(cache.load("gst", 2, 42).is_none(), "different schema");
    }

    #[test]
    fn kind_in_header_rejects_renamed_entry() {
        // A file renamed to another kind's path must still miss: the
        // header records what it actually is.
        let tmp = TempDir::new("rename");
        let cache = ArtifactCache::open(&tmp.0).unwrap();
        cache.store("gst", 1, 7, b"gst payload").unwrap();
        fs::rename(cache.entry_path("gst", 7), cache.entry_path("preprocess", 7)).unwrap();
        assert!(cache.load("preprocess", 1, 7).is_none());
    }

    #[test]
    fn truncated_and_garbage_entries_miss() {
        let tmp = TempDir::new("corrupt");
        let cache = ArtifactCache::open(&tmp.0).unwrap();
        cache.store("pp", 3, 9, b"some serialized artifact").unwrap();
        let path = cache.entry_path("pp", 9);
        let full = fs::read(&path).unwrap();
        // Every truncation point misses, never panics.
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(cache.load("pp", 3, 9).is_none(), "cut at {cut} hit");
        }
        // A flipped payload byte fails the checksum.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert!(cache.load("pp", 3, 9).is_none());
        // Pure garbage misses too.
        fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(cache.load("pp", 3, 9).is_none());
    }

    #[test]
    fn overwrite_replaces_entry() {
        let tmp = TempDir::new("overwrite");
        let cache = ArtifactCache::open(&tmp.0).unwrap();
        cache.store("gst", 1, 5, b"old").unwrap();
        cache.store("gst", 1, 5, b"new payload").unwrap();
        assert_eq!(cache.load("gst", 1, 5), Some(b"new payload".to_vec()));
    }

    #[test]
    fn stable_hasher_is_deterministic_and_prefix_safe() {
        let mut a = StableHasher::new();
        a.update_str("ab").update_str("c");
        let mut b = StableHasher::new();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish(), "length prefixes must disambiguate");
        // Known FNV-1a vector: empty input hashes to the offset basis.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn keys_change_with_params_and_inputs() {
        use pgasm_seq::QualityTrack;
        use pgasm_simgen::{Provenance, ReadKind};
        let seqs = vec![DnaSeq::from("ACGTACGTACGT")];
        let reads = ReadSet {
            quals: seqs.iter().map(|s| QualityTrack::uniform(s.len(), 40)).collect(),
            provenance: seqs
                .iter()
                .map(|_| Provenance { genome: 0, start: 0, end: 0, reverse: false, kind: ReadKind::Wgs })
                .collect(),
            seqs,
        };
        let cfg = PreprocessConfig::default();
        let base = preprocess_key(&reads, &[], &[], &cfg);
        assert_eq!(base, preprocess_key(&reads, &[], &[], &cfg), "key must be reproducible");
        let other_cfg = PreprocessConfig { mask_k: cfg.mask_k + 1, ..cfg.clone() };
        assert_ne!(base, preprocess_key(&reads, &[], &[], &other_cfg));
        assert_ne!(base, preprocess_key(&reads, &[DnaSeq::from("AC")], &[], &cfg));
        let mut more = reads.clone();
        more.seqs[0] = DnaSeq::from("TTTTTTTTTTTT");
        assert_ne!(base, preprocess_key(&more, &[], &[], &cfg));

        let store = FragmentStore::from_seqs(vec![DnaSeq::from("ACGTACGT")]).with_reverse_complements();
        let g1 = gst_key(&store, &GstConfig { w: 8, psi: 16 });
        let g2 = gst_key(&store, &GstConfig { w: 8, psi: 20 });
        assert_ne!(g1, g2, "psi is part of the key");
    }
}
