//! The greedy transitive clustering algorithm (paper §4, Fig. 3).
//!
//! Fragments belong to the same cluster iff connected by a chain of
//! accepted suffix–prefix overlaps. The engine consumes promising pairs
//! in decreasing maximal-match order and *aligns a pair only when its
//! fragments are currently in different clusters*; because transitive
//! closure is order-independent, the ordering only reduces work, never
//! changes the result (property-tested in `tests/`).

use crate::geometry::{overlap_edge, GeomUnion, GeomUnionFind};
use crate::unionfind::UnionFind;
use pgasm_align::{
    banded_overlap_align, overlap_align_simd, overlap_align_two_phase, AcceptCriteria, AlignKernel,
    AlignScratch, OverlapResult, Scoring, SimdOpts,
};
use pgasm_gst::{GenMode, Gst, GstConfig, PairGenerator, PromisingPair};
use pgasm_seq::{FragId, FragmentStore, SeqId};
use serde::{Deserialize, Serialize};

/// Clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// GST construction (w, ψ).
    pub gst: GstConfig,
    /// Alignment scoring.
    pub scoring: Scoring,
    /// Overlap acceptance (the *lenient* clustering criterion).
    pub criteria: AcceptCriteria,
    /// Band half-width for the seed-anchored banded alignment.
    pub band: usize,
    /// Pair generation mode.
    pub mode: GenMode,
    /// Keep only one strand-combination per fragment pair (the mirrored
    /// combination carries no extra information for clustering).
    pub canonical_strands: bool,
    /// §10 extension: resolve inconsistent overlaps during cluster
    /// formation. Every promising pair is aligned (the cluster-check
    /// shortcut is disabled — conflicts can only surface on same-cluster
    /// pairs), and accepted overlaps are applied in decreasing overlap
    /// length with a geometric consistency check: an edge whose implied
    /// relative placement contradicts the cluster's frame is dropped.
    /// Costs the alignment savings; trims repeat-induced chaining
    /// (off = the paper's published behaviour).
    pub resolve_inconsistent: bool,
    /// Translation tolerance (bases) for geometry consistency checks.
    pub geometry_tolerance: i64,
    /// Which alignment kernel decides pairs (the SIMD two-phase kernel
    /// in production; two-phase and legacy kept for the
    /// `ablation_align_kernel` / `ablation_simd_band` comparisons).
    pub kernel: AlignKernel,
    /// Per-row adaptive X-drop band shrinking (SIMD kernel only; inert
    /// for the others and whenever no acceptance floor exists).
    pub adaptive_band: bool,
    /// Pin the SIMD kernel to its bit-identical scalar fallback
    /// (ablation/debug aid; the `force-scalar` cargo feature of
    /// `pgasm-align` forces this regardless).
    pub simd_force_scalar: bool,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            gst: GstConfig::default(),
            scoring: Scoring::DEFAULT,
            criteria: AcceptCriteria::CLUSTERING,
            band: 24,
            mode: GenMode::DupElim,
            canonical_strands: true,
            resolve_inconsistent: false,
            geometry_tolerance: 48,
            kernel: AlignKernel::default(),
            adaptive_band: true,
            simd_force_scalar: false,
        }
    }
}

/// Work/result counters — the quantities of the paper's Tables 1 and 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Promising pairs generated.
    pub generated: u64,
    /// Pairs actually aligned (fragments were in different clusters).
    pub aligned: u64,
    /// Alignments passing the acceptance criteria.
    pub accepted: u64,
    /// Accepted alignments that merged two clusters (≤ n − 1).
    pub merges: u64,
    /// DP cells evaluated (alignment workload). Always
    /// `dp_cells_phase1 + dp_cells_phase2`, so it stays comparable with
    /// pre-split (single-pass-kernel) numbers.
    pub dp_cells: u64,
    /// DP cells of the score-only forward passes (all cells for
    /// single-pass kernels).
    pub dp_cells_phase1: u64,
    /// DP cells of the lazy traceback-window passes.
    pub dp_cells_phase2: u64,
    /// Alignments abandoned mid-pass by the early-exit bound.
    pub early_exits: u64,
    /// Alignments whose traceback pass was skipped after a full
    /// forward pass.
    pub tracebacks_skipped: u64,
    /// Accepted overlaps refused because their implied geometry
    /// contradicted the cluster (only with
    /// [`ClusterParams::resolve_inconsistent`]).
    pub inconsistent: u64,
    /// In-band phase-1 cells skipped by adaptive X-drop band shrinking
    /// (savings on top of `dp_cells`, which counts evaluated cells).
    pub cells_saved_adaptive: u64,
    /// Rows whose candidate range the adaptive shrink tightened.
    pub band_rows_shrunk: u64,
}

impl ClusterStats {
    /// Fraction of generated pairs whose alignment was skipped — the
    /// paper's "savings" row in Table 1.
    pub fn savings(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        1.0 - self.aligned as f64 / self.generated as f64
    }

    /// Merge counters (for aggregating worker ranks).
    pub fn merged(self, o: ClusterStats) -> ClusterStats {
        ClusterStats {
            generated: self.generated + o.generated,
            aligned: self.aligned + o.aligned,
            accepted: self.accepted + o.accepted,
            merges: self.merges + o.merges,
            dp_cells: self.dp_cells + o.dp_cells,
            dp_cells_phase1: self.dp_cells_phase1 + o.dp_cells_phase1,
            dp_cells_phase2: self.dp_cells_phase2 + o.dp_cells_phase2,
            early_exits: self.early_exits + o.early_exits,
            tracebacks_skipped: self.tracebacks_skipped + o.tracebacks_skipped,
            inconsistent: self.inconsistent + o.inconsistent,
            cells_saved_adaptive: self.cells_saved_adaptive + o.cells_saved_adaptive,
            band_rows_shrunk: self.band_rows_shrunk + o.band_rows_shrunk,
        }
    }

    /// Fold one alignment's work accounting into the counters.
    pub fn record_align(&mut self, r: &OverlapResult) {
        self.dp_cells += r.cells;
        self.dp_cells_phase1 += r.cells_phase1;
        self.dp_cells_phase2 += r.cells_phase2;
        self.early_exits += r.early_exited as u64;
        self.tracebacks_skipped += r.traceback_skipped as u64;
        self.cells_saved_adaptive += r.cells_saved_adaptive;
        self.band_rows_shrunk += r.band_rows_shrunk;
    }
}

/// A finished clustering of `n` fragments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Member lists (fragment ids) of every cluster, singletons
    /// included, ordered by smallest member.
    pub clusters: Vec<Vec<u32>>,
}

impl Clustering {
    /// Build from a union-find.
    pub fn from_unionfind(uf: &mut UnionFind) -> Clustering {
        Clustering { clusters: uf.sets() }
    }

    /// Clusters with ≥ 2 fragments.
    pub fn non_singletons(&self) -> impl Iterator<Item = &Vec<u32>> {
        self.clusters.iter().filter(|c| c.len() >= 2)
    }

    /// Number of singleton clusters.
    pub fn num_singletons(&self) -> usize {
        self.clusters.iter().filter(|c| c.len() == 1).count()
    }

    /// Number of non-singleton clusters.
    pub fn num_non_singletons(&self) -> usize {
        self.clusters.iter().filter(|c| c.len() >= 2).count()
    }

    /// Mean fragments per non-singleton cluster (0 when none).
    pub fn mean_cluster_size(&self) -> f64 {
        let (mut n, mut total) = (0usize, 0usize);
        for c in self.non_singletons() {
            n += 1;
            total += c.len();
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }

    /// Size of the largest cluster.
    pub fn max_cluster_size(&self) -> usize {
        self.clusters.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Largest cluster as a fraction of all fragments.
    pub fn max_cluster_fraction(&self) -> f64 {
        let total: usize = self.clusters.iter().map(|c| c.len()).sum();
        if total == 0 {
            0.0
        } else {
            self.max_cluster_size() as f64 / total as f64
        }
    }
}

/// The strand-canonicalisation skip: every fragment-pair overlap appears
/// twice in the double-stranded GST (once per mirrored strand
/// combination); keeping only pairs whose lower sequence id is a forward
/// strand selects exactly one representative.
#[inline]
pub fn canonical_skip(a: SeqId, b: SeqId) -> bool {
    debug_assert!(a < b);
    a.0 % 2 == 1
}

/// Same-fragment skip for a double-stranded store: sequences `2i` and
/// `2i + 1` are the two strands of fragment `i`.
#[inline]
pub fn same_fragment_skip(a: SeqId, b: SeqId) -> bool {
    a.0 / 2 == b.0 / 2
}

/// Decide one promising pair against the current clustering: align if
/// the fragments are apart, merge on acceptance. Shared by the serial
/// engine and the master–worker runtime (where the *decision* runs on
/// the master and the *alignment* on a worker).
pub struct PairDecider<'s> {
    /// The double-stranded store pairs reference.
    pub store: &'s FragmentStore,
    /// Parameters.
    pub params: ClusterParams,
}

impl<'s> PairDecider<'s> {
    /// Map a stored-sequence pair to fragment ids.
    pub fn fragments_of(&self, p: &PromisingPair) -> (FragId, FragId) {
        (self.store.seq_to_fragment(p.a).0, self.store.seq_to_fragment(p.b).0)
    }

    /// A scratch pre-sized for every sequence in this decider's store at
    /// the configured band, so the alignment loop never reallocates.
    pub fn new_scratch(&self) -> AlignScratch {
        let max_len = self.store.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
        AlignScratch::for_sequences(max_len, self.params.band)
    }

    /// Compute the banded suffix–prefix alignment for a pair with the
    /// configured kernel. The two-phase kernel is gated by
    /// `params.criteria`: pairs that cannot pass it come back with
    /// `traceback_skipped` set and empty ranges, which the acceptance
    /// check rejects (the geometry-aware engine only reads ranges of
    /// accepted alignments, which always run phase 2).
    pub fn align_full(&self, p: &PromisingPair, scratch: &mut AlignScratch) -> OverlapResult {
        let a = self.store.get(p.a);
        let b = self.store.get(p.b);
        let diag = p.a_pos as i64 - p.b_pos as i64;
        match self.params.kernel {
            AlignKernel::Legacy => banded_overlap_align(a, b, diag, self.params.band, &self.params.scoring),
            AlignKernel::TwoPhase => overlap_align_two_phase(
                a,
                b,
                diag,
                self.params.band,
                &self.params.scoring,
                Some(&self.params.criteria),
                None,
                scratch,
            ),
            AlignKernel::Simd => overlap_align_simd(
                a,
                b,
                diag,
                self.params.band,
                &self.params.scoring,
                Some(&self.params.criteria),
                None,
                scratch,
                SimdOpts {
                    force_scalar: self.params.simd_force_scalar || SimdOpts::default().force_scalar,
                    adaptive: self.params.adaptive_band,
                },
            ),
        }
    }

    /// The overlap-implied relative pose `x_a → x_b` (fragment-forward
    /// coordinates) for an accepted alignment of this pair.
    pub fn edge_of(&self, p: &PromisingPair, r: &OverlapResult) -> crate::geometry::AffineMap {
        let (_, strand_a) = self.store.seq_to_fragment(p.a);
        let (_, strand_b) = self.store.seq_to_fragment(p.b);
        overlap_edge(
            matches!(strand_a, pgasm_seq::Strand::Reverse),
            matches!(strand_b, pgasm_seq::Strand::Reverse),
            self.store.len_of(p.a),
            self.store.len_of(p.b),
            r.a_range.0,
            r.b_range.0,
        )
    }
}

/// Serial clustering of `store` (single-stranded input fragments).
/// Returns the clustering and the work statistics.
pub fn cluster_serial(store: &FragmentStore, params: &ClusterParams) -> (Clustering, ClusterStats) {
    cluster_serial_with_gst(store, params, None)
}

/// As [`cluster_serial`], optionally reusing a GST already built over
/// `store.with_reverse_complements()` — e.g. one loaded from the
/// artifact cache. The prebuilt tree must match the parameters and the
/// store it claims to index; a mismatch is a caller bug (a wrong tree
/// would silently produce a wrong clustering), so it panics.
pub fn cluster_serial_with_gst(
    store: &FragmentStore,
    params: &ClusterParams,
    prebuilt: Option<Gst>,
) -> (Clustering, ClusterStats) {
    assert!(!store.is_double_stranded(), "pass the original single-stranded fragments");
    let n = store.num_fragments();
    let ds = store.with_reverse_complements();
    let gst = match prebuilt {
        Some(g) => {
            assert_eq!(g.config(), params.gst, "prebuilt GST was built with different parameters");
            assert_eq!(g.num_seqs(), ds.num_seqs(), "prebuilt GST indexes a different fragment set");
            g
        }
        None => Gst::build(&ds, params.gst),
    };
    let canonical = params.canonical_strands;
    let generator = PairGenerator::new(gst, params.mode, move |a, b| {
        same_fragment_skip(a, b) || (canonical && canonical_skip(a, b))
    });
    let decider = PairDecider { store: &ds, params: *params };
    let mut scratch = decider.new_scratch();
    let mut stats = ClusterStats::default();
    if params.resolve_inconsistent {
        // Phase 1: align every pair, collecting accepted edges.
        let mut edges: Vec<(u32, u32, crate::geometry::AffineMap, u32)> = Vec::new();
        for pair in generator {
            stats.generated += 1;
            stats.aligned += 1;
            let (fa, fb) = decider.fragments_of(&pair);
            let r = decider.align_full(&pair, &mut scratch);
            stats.record_align(&r);
            if decider.params.criteria.accepts(r.identity, r.overlap_len) {
                stats.accepted += 1;
                edges.push((fa.0, fb.0, decider.edge_of(&pair, &r), r.overlap_len as u32));
            }
        }
        let clusters = apply_geometric_edges(n, edges, params.geometry_tolerance, &mut stats);
        return (clusters, stats);
    }
    let mut uf = UnionFind::new(n);
    for pair in generator {
        stats.generated += 1;
        let (fa, fb) = decider.fragments_of(&pair);
        if uf.same(fa.0, fb.0) {
            continue;
        }
        stats.aligned += 1;
        let r = decider.align_full(&pair, &mut scratch);
        stats.record_align(&r);
        if decider.params.criteria.accepts(r.identity, r.overlap_len) {
            stats.accepted += 1;
            if uf.union(fa.0, fb.0) {
                stats.merges += 1;
            }
        }
    }
    (Clustering::from_unionfind(&mut uf), stats)
}

/// Phase 2 of the geometric engine (shared with the master–worker
/// runtime): apply accepted overlap edges in decreasing overlap length,
/// merging consistently and dropping edges whose implied pose
/// contradicts the cluster frame. Deterministic given the edge set.
pub(crate) fn apply_geometric_edges(
    n: usize,
    mut edges: Vec<(u32, u32, crate::geometry::AffineMap, u32)>,
    tolerance: i64,
    stats: &mut ClusterStats,
) -> Clustering {
    edges.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut guf = GeomUnionFind::new(n);
    for (fa, fb, edge, _) in edges {
        match guf.union_with(fa, fb, &edge, tolerance) {
            GeomUnion::Merged => stats.merges += 1,
            GeomUnion::Consistent => {}
            GeomUnion::Inconsistent => stats.inconsistent += 1,
        }
    }
    Clustering { clusters: guf.sets() }
}

/// Reference clustering that aligns *every* generated pair (no
/// cluster-check shortcut) — used by tests and the ordering ablation to
/// show the heuristic changes work, not results.
pub fn cluster_exhaustive(store: &FragmentStore, params: &ClusterParams) -> (Clustering, ClusterStats) {
    assert!(!store.is_double_stranded());
    let n = store.num_fragments();
    let ds = store.with_reverse_complements();
    let gst = Gst::build(&ds, params.gst);
    let canonical = params.canonical_strands;
    let generator = PairGenerator::new(gst, params.mode, move |a, b| {
        same_fragment_skip(a, b) || (canonical && canonical_skip(a, b))
    });
    let mut uf = UnionFind::new(n);
    let mut stats = ClusterStats::default();
    let decider = PairDecider { store: &ds, params: *params };
    let mut scratch = decider.new_scratch();
    for pair in generator {
        stats.generated += 1;
        stats.aligned += 1;
        let r = decider.align_full(&pair, &mut scratch);
        stats.record_align(&r);
        if decider.params.criteria.accepts(r.identity, r.overlap_len) {
            stats.accepted += 1;
            let (fa, fb) = decider.fragments_of(&pair);
            if uf.union(fa.0, fb.0) {
                stats.merges += 1;
            }
        }
    }
    (Clustering::from_unionfind(&mut uf), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::DnaSeq;

    fn params() -> ClusterParams {
        ClusterParams {
            gst: GstConfig { w: 8, psi: 16 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
            ..Default::default()
        }
    }

    /// Deterministic pseudo-random genome (no rand dep in this crate).
    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
        let b = g.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read <= b.len() {
            out.push(DnaSeq::from_ascii(&b[at..at + read]));
            at += step;
        }
        out
    }

    #[test]
    fn two_islands_two_clusters() {
        let g1 = genome(1, 800);
        let g2 = genome(2, 800);
        let mut reads = tile(&g1, 200, 100);
        reads.extend(tile(&g2, 200, 100));
        let n1 = tile(&g1, 200, 100).len();
        let store = FragmentStore::from_seqs(reads);
        let (clustering, stats) = cluster_serial(&store, &params());
        assert_eq!(clustering.num_non_singletons(), 2, "{clustering:?}");
        assert_eq!(clustering.num_singletons(), 0);
        // First island's reads together, second island's together.
        let c0: Vec<u32> = (0..n1 as u32).collect();
        assert!(clustering.clusters.contains(&c0), "{:?}", clustering.clusters);
        assert!(stats.merges >= (store.num_fragments() - 2) as u64);
    }

    #[test]
    fn reverse_strand_reads_cluster_too() {
        let g = genome(3, 900);
        let mut reads = tile(&g, 220, 110);
        for (i, r) in reads.iter_mut().enumerate() {
            if i % 2 == 0 {
                *r = r.reverse_complement();
            }
        }
        let store = FragmentStore::from_seqs(reads);
        let (clustering, _) = cluster_serial(&store, &params());
        assert_eq!(clustering.num_non_singletons(), 1);
        assert_eq!(clustering.num_singletons(), 0);
    }

    #[test]
    fn unrelated_reads_stay_singletons() {
        let reads: Vec<DnaSeq> = (0..6).map(|i| DnaSeq::from(genome(100 + i, 250).as_str())).collect();
        let store = FragmentStore::from_seqs(reads);
        let (clustering, stats) = cluster_serial(&store, &params());
        assert_eq!(clustering.num_singletons(), 6);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn heuristic_matches_exhaustive_partition() {
        // The cluster-check shortcut must not change the partition.
        let g1 = genome(4, 1000);
        let g2 = genome(5, 600);
        let mut reads = tile(&g1, 200, 80);
        reads.extend(tile(&g2, 200, 80));
        let store = FragmentStore::from_seqs(reads);
        let p = params();
        let (heur, hstats) = cluster_serial(&store, &p);
        let (exh, estats) = cluster_exhaustive(&store, &p);
        assert_eq!(heur, exh);
        assert!(hstats.aligned <= estats.aligned, "heuristic must not align more");
        assert!(hstats.aligned < estats.aligned, "on overlapping data the shortcut should save work");
    }

    #[test]
    fn savings_metric() {
        let s = ClusterStats { generated: 100, aligned: 44, ..Default::default() };
        assert!((s.savings() - 0.56).abs() < 1e-12);
        assert_eq!(ClusterStats::default().savings(), 0.0);
    }

    #[test]
    fn clustering_summary_stats() {
        let c = Clustering { clusters: vec![vec![0, 1, 2], vec![3], vec![4, 5]] };
        assert_eq!(c.num_non_singletons(), 2);
        assert_eq!(c.num_singletons(), 1);
        assert!((c.mean_cluster_size() - 2.5).abs() < 1e-12);
        assert_eq!(c.max_cluster_size(), 3);
        assert!((c.max_cluster_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometry_resolution_rejects_conflicting_repeat_overlaps() {
        // Genome layout: [X][rep][Y][rep][Z] with reads cut exactly at
        // repeat boundaries:
        //   r1 = X + rep      r2 = rep + Y      r3 = Y + rep      r4 = rep + Z
        // True chain: r1–r2 (over rep), r2–r3 (over Y), r3–r4 (over rep).
        // Bogus edge: r1–r4 (their boundary repeats dovetail perfectly,
        // identity 1.0) claiming r4 sits right after X — contradicting
        // the chain, which places it |rep| + |Y| further.
        let x = genome(21, 160);
        let rep = genome(23, 120);
        let y = genome(22, 400);
        let z = genome(24, 160);
        let reads = vec![
            DnaSeq::from(format!("{x}{rep}").as_str()),
            DnaSeq::from(format!("{rep}{y}").as_str()),
            DnaSeq::from(format!("{y}{rep}").as_str()),
            DnaSeq::from(format!("{rep}{z}").as_str()),
        ];
        let store = FragmentStore::from_seqs(reads);
        let base = params();
        let (plain, plain_stats) = cluster_serial(&store, &base);
        assert_eq!(plain.max_cluster_size(), 4, "{plain_stats:?}");
        let resolved_params = ClusterParams { resolve_inconsistent: true, ..base };
        let (resolved, stats) = cluster_serial(&store, &resolved_params);
        assert!(stats.inconsistent >= 1, "bogus repeat edge not rejected: {stats:?}");
        // The true chain still holds the cluster together.
        assert_eq!(resolved.max_cluster_size(), 4);
    }

    #[test]
    fn masked_fragments_do_not_merge() {
        // Two reads overlapping only within a masked region must stay
        // apart — the mechanism that keeps repeats from chaining
        // clusters together.
        let g = genome(6, 600);
        let mut reads = tile(&g, 300, 150); // 3 reads, overlaps of 150
        for r in reads.iter_mut() {
            let l = r.len();
            r.mask_range(0, l / 2); // mask the first half of each read
        }
        // Read i's unmasked second half overlaps read i+1's *masked*
        // first half only.
        let store = FragmentStore::from_seqs(reads);
        let (clustering, stats) = cluster_serial(&store, &params());
        assert_eq!(clustering.num_singletons(), 3, "{clustering:?}");
        assert_eq!(stats.generated, 0, "masked overlaps should not even generate pairs");
    }
}
