//! Distributed per-cluster assembly (paper §8) — the second client of
//! the generic [`crate::engine`].
//!
//! "The subsequent assembly tasks are trivially parallel": once the
//! clustering partition is known, each non-singleton cluster can be
//! assembled independently. This module makes that phase a first-class
//! distributed stage on the mpisim rank model rather than a static
//! OS-thread loop: rank 0 (the master) owns the full task list and
//! schedules whole clusters onto worker ranks; workers assemble their
//! allocated clusters and ship the contigs back over the simulated
//! wire, so flow control, parking, coalescing, per-tag traffic
//! accounting, blocked-time attribution, and event tracing all apply
//! exactly as they do to clustering.
//!
//! Unlike clustering, assembly's task list is fully known up-front and
//! workers generate nothing: the master seeds the engine's pending
//! buffer and every worker's generator reports *passive* immediately —
//! a degenerate but fully legal instance of the protocol in which the
//! park/unpark service becomes the work-stealing mechanism.
//!
//! Scheduling: cluster sizes are heavy-tailed on real datasets (one
//! dominant island plus many small ones), so assignment order matters.
//! [`AssignPolicy::Lpt`] sorts clusters by decreasing candidate-pair
//! cost (longest-processing-time-first) and dispatches one cluster per
//! grant, which keeps the dominant cluster from landing *on top of* an
//! already-loaded rank; [`AssignPolicy::Static`] reproduces the old
//! contiguous chunking (natural order, one ⌈n/(p−1)⌉-cluster block per
//! worker) and exists as the ablation baseline.

use crate::checkpoint::{self as ckpt, StageRecovery};
use crate::clustering::Clustering;
use crate::engine::{
    run_master, run_master_ckpt, run_worker, CheckpointHook, EngineConfig, MasterReport, Task, TaskSink,
    TaskSource, TAG_M2W_AW, TAG_M2W_R, TAG_W2M_AR, TAG_W2M_NP,
};
use pgasm_assemble::{assemble_with_quality, Assembly, AssemblyConfig, Contig, Placement};
use pgasm_mpisim::codec::{checked_len, Decoder, Encoder};
use pgasm_mpisim::{thread_cpu_seconds, CoalescePolicy, CostModel};
use pgasm_seq::{DnaSeq, FragmentStore, QualityTrack, SeqId};
use pgasm_telemetry::trace::{RankTrace, TraceCategory, TraceSpec, Tracer};
use pgasm_telemetry::{names, RankReport, RankSeries};
use std::collections::BTreeMap;
use std::time::Instant;

/// How the master orders clusters for dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignPolicy {
    /// Longest-processing-time-first: sort clusters by decreasing
    /// candidate-pair cost and grant one cluster at a time, so large
    /// clusters are pinned early and the tail back-fills the gaps.
    Lpt,
    /// Contiguous chunking in natural order, one ⌈n/(p−1)⌉-cluster
    /// block per worker — the behaviour of the OS-thread loop this
    /// stage replaces, kept as the load-balance ablation baseline.
    Static,
}

/// Outcome of a distributed assembly run.
#[derive(Debug, Clone)]
pub struct DistAssembleReport {
    /// Per-non-singleton-cluster assemblies, index-parallel with
    /// `clustering.non_singletons()` — byte-identical to the threaded
    /// path's output.
    pub assemblies: Vec<Assembly>,
    /// Wall-clock seconds of the assemble phase (max over ranks).
    pub assemble_seconds: f64,
    /// Per-rank thread-CPU seconds (rank 0 = master).
    pub cpu_seconds: Vec<f64>,
    /// Per-worker idle fraction (blocked time / phase time).
    pub worker_idle_fraction: Vec<f64>,
    /// Fraction of the phase the master spent blocked awaiting reports.
    pub master_availability: f64,
    /// Per-rank telemetry channels (rank ids 0..p, mergeable with the
    /// clustering phase's channels via `RunContext::merge_ranks`).
    pub ranks: Vec<RankReport>,
    /// Per-rank event traces on offset track ids (`p+1..=2p`) so they
    /// never collide with the clustering ranks or the pipeline track.
    pub traces: Vec<RankTrace>,
    /// Per-rank gauge time series on the same offset ids; empty when
    /// tracing was off.
    pub series: Vec<RankSeries>,
    /// Clusters re-queued from dead workers' leases (0 fault-free).
    pub recovered_tasks: u64,
    /// Worker ranks the master marked dead during the phase.
    pub dead_ranks: u64,
    /// The fault plan killed the master: unassembled slots hold empty
    /// placeholder assemblies and the run should resume from the last
    /// checkpoint.
    pub killed: bool,
}

/// One whole cluster: its slot in the `non_singletons()` order plus its
/// member fragment ids.
#[derive(Debug, Clone)]
struct AssembleTask {
    slot: u32,
    members: Vec<u32>,
}

impl AssembleTask {
    /// Deterministic work proxy: the candidate overlap-pair count
    /// k·(k−1)/2 — quadratic in cluster size, like the assembler's
    /// all-pairs overlap stage, and independent of host scheduling.
    fn cost_units(&self) -> u64 {
        let k = self.members.len() as u64;
        k * (k - 1) / 2
    }
}

impl Task for AssembleTask {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.slot);
        e.put_u32_slice(&self.members);
    }

    fn decode(d: &mut Decoder) -> AssembleTask {
        AssembleTask { slot: d.get_u32(), members: d.get_u32_slice() }
    }

    fn encoded_size_hint(&self) -> usize {
        8 + 4 * self.members.len()
    }
}

fn encode_assembly(e: &mut Encoder, a: &Assembly) {
    e.put_u32(checked_len(a.contigs.len()));
    for c in &a.contigs {
        e.put_bytes(&c.seq.to_ascii());
        e.put_u32(checked_len(c.placements.len()));
        for pl in &c.placements {
            e.put_u32(pl.read as u32);
            e.put_u32(pl.offset as u32);
            e.put_u32(pl.flipped as u32);
        }
    }
    let singletons: Vec<u32> = a.singletons.iter().map(|&s| s as u32).collect();
    e.put_u32_slice(&singletons);
    e.put_u32(a.inconsistent_edges as u32);
}

fn decode_assembly(d: &mut Decoder) -> Assembly {
    let n_contigs = d.get_u32();
    let contigs = (0..n_contigs)
        .map(|_| {
            let seq = DnaSeq::from_ascii(&d.get_bytes());
            let n_placements = d.get_u32();
            let placements = (0..n_placements)
                .map(|_| Placement {
                    read: d.get_u32() as usize,
                    offset: d.get_u32() as usize,
                    flipped: d.get_u32() == 1,
                })
                .collect();
            Contig { seq, placements }
        })
        .collect();
    let singletons = d.get_u32_slice().into_iter().map(|s| s as usize).collect();
    Assembly { contigs, singletons, inconsistent_edges: d.get_u32() as usize }
}

/// Master-side client: collects shipped assemblies into their slots.
/// Workers never announce tasks, so `select` is vestigial here.
struct AssembleSource {
    results: Vec<Option<Assembly>>,
}

impl TaskSource<AssembleTask> for AssembleSource {
    fn absorb_results(&mut self, _src: usize, d: &mut Decoder) {
        let count = d.get_u32();
        for _ in 0..count {
            let slot = d.get_u32() as usize;
            self.results[slot] = Some(decode_assembly(d));
        }
    }

    fn select(&mut self, _task: &AssembleTask) -> bool {
        true
    }
}

impl AssembleSource {
    /// Serialize the completed slots — the only durable master state of
    /// this stage (the task list is recomputed from the clustering).
    fn snapshot(&self, rep: &MasterReport) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(rep.results_absorbed);
        e.put_u32(checked_len(self.results.len()));
        let done = self.results.iter().filter(|r| r.is_some()).count();
        e.put_u32(checked_len(done));
        for (slot, result) in self.results.iter().enumerate() {
            if let Some(a) = result {
                e.put_u32(slot as u32);
                encode_assembly(&mut e, a);
            }
        }
        e.finish().to_vec()
    }

    /// Restore completed slots from a snapshot. Returns `false` (no
    /// state restored) when the snapshot was taken over a different
    /// slot count — a different clustering — rather than mis-filling.
    fn restore(&mut self, payload: &[u8]) -> bool {
        let mut d = Decoder::new(payload.to_vec().into());
        d.get_u64();
        if d.get_u32() as usize != self.results.len() {
            return false;
        }
        let done = d.get_u32();
        for _ in 0..done {
            let slot = d.get_u32() as usize;
            self.results[slot] = Some(decode_assembly(&mut d));
        }
        true
    }
}

/// Worker-side client: assembles each allocated cluster and encodes the
/// contigs for shipment. The generator is empty from the start — all
/// tasks come seeded from the master.
struct AssembleSink<'a> {
    store: &'a FragmentStore,
    quals: Option<&'a [QualityTrack]>,
    config: &'a AssemblyConfig,
    clusters_assembled: u64,
    reads_assembled: u64,
    cost_units: u64,
    contig_bases: u64,
}

impl TaskSink<AssembleTask> for AssembleSink<'_> {
    fn run_batch(&mut self, tracer: &mut Tracer, batch: &mut Vec<AssembleTask>, e: &mut Encoder) {
        e.put_u32(checked_len(batch.len()));
        for task in batch.drain(..) {
            tracer.begin_arg(
                TraceCategory::Assemble,
                names::EV_ASSEMBLE_CLUSTER,
                "reads",
                task.members.len() as u64,
            );
            let reads: Vec<DnaSeq> = task.members.iter().map(|&f| self.store.get_seq(SeqId(f))).collect();
            let cluster_quals: Option<Vec<QualityTrack>> =
                self.quals.map(|qs| task.members.iter().map(|&f| qs[f as usize].clone()).collect());
            let assembly = assemble_with_quality(&reads, cluster_quals.as_deref(), self.config);
            tracer.end(TraceCategory::Assemble, names::EV_ASSEMBLE_CLUSTER);
            self.clusters_assembled += 1;
            self.reads_assembled += task.members.len() as u64;
            self.cost_units += task.cost_units();
            self.contig_bases += assembly.contigs.iter().map(|c| c.seq.len() as u64).sum::<u64>();
            let before = e.len();
            e.put_u32(task.slot);
            encode_assembly(e, &assembly);
            tracer.instant_arg(
                TraceCategory::Assemble,
                names::EV_ASSEMBLE_SHIP,
                "bytes",
                (e.len() - before) as u64,
            );
        }
    }

    fn generate(&mut self, _tracer: &mut Tracer, _r: usize, _out: &mut Vec<AssembleTask>) -> bool {
        false
    }
}

/// [`assemble_parallel_traced`] without event tracing.
pub fn assemble_parallel(
    store: &FragmentStore,
    quals: Option<&[QualityTrack]>,
    clustering: &Clustering,
    config: &AssemblyConfig,
    p: usize,
    policy: AssignPolicy,
) -> DistAssembleReport {
    assemble_parallel_traced(store, quals, clustering, config, p, policy, TraceSpec::off())
}

/// Assemble every non-singleton cluster on `p ≥ 2` simulated ranks:
/// the master seeds the engine with whole-cluster tasks (ordered per
/// `policy`), workers assemble and ship contigs back. The result vector
/// is index-parallel with `clustering.non_singletons()` and
/// byte-identical to the threaded `assemble_clusters_q` path.
pub fn assemble_parallel_traced(
    store: &FragmentStore,
    quals: Option<&[QualityTrack]>,
    clustering: &Clustering,
    config: &AssemblyConfig,
    p: usize,
    policy: AssignPolicy,
    trace: TraceSpec,
) -> DistAssembleReport {
    assemble_parallel_ft(store, quals, clustering, config, p, policy, trace, &StageRecovery::default())
}

/// [`assemble_parallel_traced`] under a [`StageRecovery`]: scripted
/// fault injection, master liveness timeout, and checkpoint/resume.
/// The default recovery makes this byte-identical to the plain run.
#[allow(clippy::too_many_arguments)]
pub fn assemble_parallel_ft(
    store: &FragmentStore,
    quals: Option<&[QualityTrack]>,
    clustering: &Clustering,
    config: &AssemblyConfig,
    p: usize,
    policy: AssignPolicy,
    trace: TraceSpec,
    recovery: &StageRecovery,
) -> DistAssembleReport {
    assert!(p >= 2, "distributed assembly needs at least 2 ranks");
    let mut tasks: Vec<AssembleTask> = clustering
        .non_singletons()
        .enumerate()
        .map(|(slot, members)| AssembleTask { slot: slot as u32, members: members.clone() })
        .collect();
    let n = tasks.len();
    let batch = match policy {
        // One cluster per grant: the master re-decides after every
        // completion, which is what lets LPT back-fill.
        AssignPolicy::Lpt => {
            tasks.sort_by_key(|t| (std::cmp::Reverse(t.cost_units()), t.slot));
            1
        }
        // The old thread-loop behaviour: contiguous blocks in natural
        // order, one block per worker.
        AssignPolicy::Static => n.div_ceil(p - 1).max(1),
    };
    let engine_cfg = EngineConfig { batch, pending_cap: n.max(1), stall_timeout: recovery.stall_timeout };
    let (tasks, engine_cfg) = (&tasks, &engine_cfg);

    struct RankOutcome {
        assemblies: Option<Vec<Assembly>>,
        wall: f64,
        cpu: f64,
        idle_fraction: f64,
        rank_report: RankReport,
        trace: RankTrace,
        series: RankSeries,
        recovered_tasks: u64,
        dead_ranks: u64,
        killed: bool,
    }

    let outcomes: Vec<RankOutcome> = pgasm_mpisim::run(p, move |comm| {
        // Track ids are offset past the clustering ranks (0..p-1) and
        // the pipeline's own track (p), so one traced run exports
        // cluster, pipeline, and assemble tracks side by side.
        let role = if comm.rank() == 0 { "asm_master" } else { "asm_worker" };
        comm.set_tracer(trace.tracer(p + 1 + comm.rank(), role));
        comm.set_sampler(trace.sampler(p + 1 + comm.rank(), role));
        if !recovery.faults.is_empty() {
            comm.set_fault_plan(&recovery.faults);
        }
        comm.set_coalesce(Some(CoalescePolicy::default()));
        let cpu0 = thread_cpu_seconds();
        let t0 = Instant::now();
        let mut em_summary = (0u64, 0u64, false);
        let (assemblies, mut counters) = if comm.rank() == 0 {
            let mut source = AssembleSource { results: vec![None; n] };
            if let Some(path) = &recovery.resume_from {
                if let Some(payload) = ckpt::read_checkpoint(path, ckpt::STAGE_ASSEMBLE) {
                    source.restore(&payload);
                }
            }
            // Already-completed slots (a resumed run) are not re-seeded;
            // the workers never see them again.
            let seed: Vec<AssembleTask> =
                tasks.iter().filter(|t| source.results[t.slot as usize].is_none()).cloned().collect();
            let em = match recovery.ckpt_spec() {
                Some((path, every)) => {
                    let mut write = |src: &mut AssembleSource, rep: &MasterReport| {
                        let payload = src.snapshot(rep);
                        ckpt::write_checkpoint(path, ckpt::STAGE_ASSEMBLE, &payload).unwrap_or(0)
                    };
                    run_master_ckpt(
                        comm,
                        engine_cfg,
                        &mut source,
                        seed,
                        Some(CheckpointHook { write: &mut write, every }),
                    )
                }
                None => run_master(comm, engine_cfg, &mut source, seed),
            };
            // A killed master leaves holes; placeholders keep the slot
            // indexing intact and `killed` tells the caller to resume.
            let assemblies = source
                .results
                .into_iter()
                .map(|r| {
                    if em.killed {
                        r.unwrap_or(Assembly {
                            contigs: Vec::new(),
                            singletons: Vec::new(),
                            inconsistent_edges: 0,
                        })
                    } else {
                        r.expect("every cluster assembled")
                    }
                })
                .collect::<Vec<_>>();
            let mut counters = BTreeMap::from([
                (names::ASM_PEAK_QUEUE_DEPTH.to_string(), em.peak_queue_depth),
                (names::ASM_BATCHES_DISPATCHED.to_string(), em.batches_dispatched),
            ]);
            for (name, value) in [
                (names::RECOVERED_TASKS, em.recovered_tasks),
                (names::DEAD_RANKS, em.dead_ranks),
                (names::CKPT_WRITES, em.ckpt_writes),
                (names::CKPT_BYTES, em.ckpt_bytes),
            ] {
                if value > 0 {
                    counters.insert(name.to_string(), value);
                }
            }
            em_summary = (em.recovered_tasks, em.dead_ranks, em.killed);
            (Some(assemblies), counters)
        } else {
            let mut sink = AssembleSink {
                store,
                quals,
                config,
                clusters_assembled: 0,
                reads_assembled: 0,
                cost_units: 0,
                contig_bases: 0,
            };
            let ew = run_worker(comm, engine_cfg, &mut sink);
            let counters = BTreeMap::from([
                (names::ASM_CLUSTERS_ASSEMBLED.to_string(), sink.clusters_assembled),
                (names::ASM_READS_ASSEMBLED.to_string(), sink.reads_assembled),
                (names::ASM_COST_UNITS.to_string(), sink.cost_units),
                (names::ASM_CONTIG_BASES.to_string(), sink.contig_bases),
                (names::ASM_BATCH_ROUND_TRIPS.to_string(), ew.round_trips),
            ]);
            (None, counters)
        };
        let wall = t0.elapsed().as_secs_f64();
        let cpu = thread_cpu_seconds() - cpu0;
        let stats = comm.stats();
        let blocked = (stats.wait_ns + stats.barrier_ns) as f64 * 1e-9;
        // Per-tag traffic with this phase's tags relabelled — the rows
        // merge into the run's per-rank channels next to the clustering
        // rows, staying attributable by label.
        let mut comm_rows = comm.tag_stats(&CostModel::BLUEGENE_L);
        for row in &mut comm_rows {
            row.label = match row.tag {
                TAG_W2M_AR => names::TAG_ASM_W2M_RES.to_string(),
                TAG_W2M_NP => names::TAG_ASM_W2M_RDY.to_string(),
                TAG_M2W_R => names::TAG_ASM_M2W_GRANT.to_string(),
                TAG_M2W_AW => names::TAG_ASM_M2W_TASK.to_string(),
                _ => std::mem::take(&mut row.label),
            };
        }
        let cs = comm.coalesce_stats();
        counters.insert(names::MSGS_COALESCED.to_string(), cs.msgs_coalesced);
        counters.insert(names::ENVELOPES_SENT.to_string(), cs.envelopes_sent);
        if comm.has_fault_plan() {
            let fs = comm.fault_stats();
            for (name, value) in [
                (names::FAULT_KILLS, fs.kills),
                (names::FAULT_MSGS_DROPPED, fs.msgs_dropped),
                (names::FAULT_MSGS_DELAYED, fs.msgs_delayed),
                (names::FAULT_DEATH_NOTICES, fs.death_notices),
                (names::FAULT_MSGS_LOST, fs.msgs_lost),
                (names::FAULT_EVENTS, fs.events),
            ] {
                if value > 0 {
                    counters.insert(name.to_string(), value);
                }
            }
        }
        RankOutcome {
            assemblies,
            wall,
            cpu,
            idle_fraction: if wall > 0.0 { (blocked / wall).min(1.0) } else { 0.0 },
            rank_report: RankReport {
                rank: comm.rank(),
                role: role.to_string(),
                cpu_seconds: cpu,
                idle_seconds: blocked,
                counters,
                comm: comm_rows,
                idle_gaps: None,
            },
            trace: comm.take_trace(),
            series: comm.take_series(),
            recovered_tasks: em_summary.0,
            dead_ranks: em_summary.1,
            killed: em_summary.2,
        }
    });

    DistAssembleReport {
        assemblies: outcomes[0].assemblies.clone().expect("master collected the assemblies"),
        assemble_seconds: outcomes.iter().map(|o| o.wall).fold(0.0, f64::max),
        cpu_seconds: outcomes.iter().map(|o| o.cpu).collect(),
        worker_idle_fraction: outcomes[1..].iter().map(|o| o.idle_fraction).collect(),
        master_availability: outcomes[0].idle_fraction,
        ranks: outcomes.iter().map(|o| o.rank_report.clone()).collect(),
        series: outcomes.iter().map(|o| o.series.clone()).collect(),
        recovered_tasks: outcomes[0].recovered_tasks,
        dead_ranks: outcomes[0].dead_ranks,
        killed: outcomes[0].killed,
        traces: outcomes.into_iter().map(|o| o.trace).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::{cluster_serial, ClusterParams};
    use crate::pipeline::assemble_clusters_q;
    use pgasm_align::AcceptCriteria;
    use pgasm_gst::GstConfig;

    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
        let b = g.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read <= b.len() {
            out.push(DnaSeq::from_ascii(&b[at..at + read]));
            at += step;
        }
        out
    }

    /// One dominant island plus several small ones — the heavy-tailed
    /// cluster-size shape real datasets produce.
    fn heavy_tailed_store() -> FragmentStore {
        let mut reads = tile(&genome(7, 4000), 200, 60);
        for seed in 20..26 {
            reads.extend(tile(&genome(seed, 600), 200, 90));
        }
        FragmentStore::from_seqs(reads)
    }

    fn params() -> ClusterParams {
        ClusterParams {
            gst: GstConfig { w: 8, psi: 16 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
            ..Default::default()
        }
    }

    #[test]
    fn distributed_matches_threaded_at_several_rank_counts() {
        let store = heavy_tailed_store();
        let (clustering, _) = cluster_serial(&store, &params());
        assert!(clustering.num_non_singletons() >= 3, "fixture produces several clusters");
        let cfg = AssemblyConfig::default();
        let threaded = assemble_clusters_q(&store, None, &clustering, &cfg, 4);
        for p in [2usize, 4, 8] {
            for policy in [AssignPolicy::Lpt, AssignPolicy::Static] {
                let dist = assemble_parallel(&store, None, &clustering, &cfg, p, policy);
                assert_eq!(dist.assemblies, threaded, "p = {p}, policy = {policy:?}");
            }
        }
    }

    #[test]
    fn rank_reports_cover_the_phase() {
        let store = heavy_tailed_store();
        let (clustering, _) = cluster_serial(&store, &params());
        let cfg = AssemblyConfig::default();
        let dist = assemble_parallel(&store, None, &clustering, &cfg, 4, AssignPolicy::Lpt);
        assert_eq!(dist.ranks.len(), 4);
        assert_eq!(dist.ranks[0].role, "asm_master");
        assert!(dist.ranks[1..].iter().all(|r| r.role == "asm_worker"));
        // Every cluster is assembled exactly once, across the workers.
        let clusters: u64 = dist.ranks[1..].iter().map(|r| r.counter(names::ASM_CLUSTERS_ASSEMBLED)).sum();
        assert_eq!(clusters as usize, clustering.num_non_singletons());
        let cost: u64 = dist.ranks[1..].iter().map(|r| r.counter(names::ASM_COST_UNITS)).sum();
        let expected: u64 =
            clustering.non_singletons().map(|m| (m.len() as u64) * (m.len() as u64 - 1) / 2).sum();
        assert_eq!(cost, expected);
        // The protocol rows are present and relabelled for this phase.
        let master = &dist.ranks[0];
        assert!(master.comm.iter().any(|t| t.label == names::TAG_ASM_W2M_RES && t.msgs_recv > 0));
        assert_eq!(master.counter(names::ASM_BATCHES_DISPATCHED) as usize, {
            // LPT grants one cluster per batch.
            clustering.num_non_singletons()
        });
        for r in &dist.ranks[1..] {
            assert!(r.counter(names::ASM_BATCH_ROUND_TRIPS) >= 1);
            assert!(r.comm.iter().any(|t| t.label == names::TAG_ASM_M2W_GRANT && t.msgs_recv > 0));
        }
        assert!(dist.assemble_seconds > 0.0);
        assert_eq!(dist.worker_idle_fraction.len(), 3);
    }

    #[test]
    fn lpt_beats_static_chunking_on_the_dominant_cluster() {
        // The deterministic cost proxy: with one dominant cluster at the
        // *end* of a contiguous chunk layout... actually anywhere — LPT
        // spreads the small clusters away from whichever rank holds the
        // giant, while static chunking gives some rank the giant plus
        // its whole neighbouring block.
        let store = heavy_tailed_store();
        let (clustering, _) = cluster_serial(&store, &params());
        let cfg = AssemblyConfig::default();
        let ratio = |policy: AssignPolicy| {
            let dist = assemble_parallel(&store, None, &clustering, &cfg, 8, policy);
            let loads: Vec<u64> = dist.ranks[1..].iter().map(|r| r.counter(names::ASM_COST_UNITS)).collect();
            let max = *loads.iter().max().unwrap() as f64;
            let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
            max / mean.max(1.0)
        };
        let lpt = ratio(AssignPolicy::Lpt);
        let stat = ratio(AssignPolicy::Static);
        assert!(
            lpt <= stat,
            "LPT must not load-balance worse than contiguous chunking: lpt {lpt:.3} vs static {stat:.3}"
        );
    }

    #[test]
    fn assembly_round_trips_through_the_wire_codec() {
        let a = Assembly {
            contigs: vec![Contig {
                seq: DnaSeq::from("ACGTACGT"),
                placements: vec![
                    Placement { read: 0, offset: 0, flipped: false },
                    Placement { read: 3, offset: 4, flipped: true },
                ],
            }],
            singletons: vec![1, 2],
            inconsistent_edges: 5,
        };
        let mut e = Encoder::new();
        encode_assembly(&mut e, &a);
        let mut d = Decoder::new(e.finish());
        assert_eq!(decode_assembly(&mut d), a);
        assert!(d.is_empty());
    }

    #[test]
    fn empty_clustering_terminates() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from(genome(9, 300).as_str())]);
        let (clustering, _) = cluster_serial(&store, &params());
        let dist =
            assemble_parallel(&store, None, &clustering, &AssemblyConfig::default(), 3, AssignPolicy::Lpt);
        assert!(dist.assemblies.is_empty());
    }

    use crate::checkpoint::StageRecovery;
    use pgasm_mpisim::{FaultPlan, FaultStage, KillTarget};

    #[test]
    fn killed_worker_still_assembles_every_cluster() {
        // Kill each worker in turn early in the protocol; the master
        // must re-queue the lost clusters onto survivors and the final
        // assemblies must byte-match the fault-free run.
        let store = heavy_tailed_store();
        let (clustering, _) = cluster_serial(&store, &params());
        let cfg = AssemblyConfig::default();
        let expected = assemble_parallel(&store, None, &clustering, &cfg, 4, AssignPolicy::Lpt).assemblies;
        let mut recovered_any = false;
        for victim in 1..4usize {
            let recovery = StageRecovery {
                faults: FaultPlan::default().with_kill(KillTarget::Rank(victim), 5, FaultStage::Any),
                ..StageRecovery::default()
            };
            let dist = assemble_parallel_ft(
                &store,
                None,
                &clustering,
                &cfg,
                4,
                AssignPolicy::Lpt,
                TraceSpec::off(),
                &recovery,
            );
            assert_eq!(dist.assemblies, expected, "victim {victim}");
            assert_eq!(dist.dead_ranks, 1, "victim {victim}");
            assert!(!dist.killed);
            recovered_any |= dist.recovered_tasks > 0;
        }
        assert!(recovered_any, "at least one victim died holding a leased cluster");
    }

    #[test]
    fn master_kill_checkpoint_resume_reproduces_assemblies() {
        let store = heavy_tailed_store();
        let (clustering, _) = cluster_serial(&store, &params());
        let cfg = AssemblyConfig::default();
        let expected = assemble_parallel(&store, None, &clustering, &cfg, 4, AssignPolicy::Lpt).assemblies;
        let dir = std::env::temp_dir().join(format!("pgasm-asm-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("assemble.pgck");
        let faulty = StageRecovery {
            faults: FaultPlan::default().with_kill(KillTarget::Rank(0), 40, FaultStage::Any),
            checkpoint_every: Some(1),
            checkpoint_path: Some(path.clone()),
            ..StageRecovery::default()
        };
        let r1 = assemble_parallel_ft(
            &store,
            None,
            &clustering,
            &cfg,
            4,
            AssignPolicy::Lpt,
            TraceSpec::off(),
            &faulty,
        );
        assert!(r1.killed, "the plan kills the master mid-protocol");
        let resume = StageRecovery { resume_from: Some(path.clone()), ..StageRecovery::default() };
        let r2 = assemble_parallel_ft(
            &store,
            None,
            &clustering,
            &cfg,
            4,
            AssignPolicy::Lpt,
            TraceSpec::off(),
            &resume,
        );
        assert_eq!(r2.assemblies, expected);
        assert!(!r2.killed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
