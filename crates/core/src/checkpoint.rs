//! Master checkpoint snapshots and per-stage recovery knobs.
//!
//! The engine's master periodically persists its client's state (the
//! Union–Find partition for clustering, the completed-assembly table
//! for assembly) so a run killed mid-stage can restart from the last
//! snapshot with `pgasm --resume` instead of from scratch. Workers hold
//! no durable state: on resume they regenerate their tasks from the
//! shared input and the restored master's selection dedup discards
//! whatever the snapshot already absorbed, which keeps the final
//! output byte-identical to a fault-free run.
//!
//! A checkpoint file is self-describing, mirroring the artifact cache
//! container: magic, version, stage tag, payload length, FNV-1a payload
//! checksum, payload. It is published with the cache's tmp + fsync +
//! rename machinery ([`crate::cache::atomic_write`]), so a crash during
//! a snapshot leaves the previous snapshot intact. Loading re-verifies
//! everything; any mismatch reads as "no checkpoint" rather than a
//! wrong restore.

use crate::cache::{atomic_write, fnv1a};
use pgasm_mpisim::{FaultPlan, FaultStage};
use pgasm_seq::wire::{Reader, Writer};
use std::fs;
use std::path::{Path, PathBuf};

/// File magic for checkpoint snapshots.
pub const CKPT_MAGIC: [u8; 4] = *b"PGCK";

/// Checkpoint container version; entries from any other version are
/// rejected (workers regenerate, so an old snapshot is never required).
pub const CKPT_VERSION: u32 = 1;

/// Persist one snapshot of `stage`'s master state at `path`, atomically.
/// Returns total bytes written.
pub fn write_checkpoint(path: &Path, stage: &str, payload: &[u8]) -> std::io::Result<u64> {
    let mut w = Writer::with_capacity(payload.len() + 64);
    for m in CKPT_MAGIC {
        w.put_u8(m);
    }
    w.put_u32(CKPT_VERSION);
    w.put_str(stage);
    w.put_u64(payload.len() as u64);
    w.put_u64(fnv1a(payload));
    let header = w.finish();
    atomic_write(path, &[&header, payload])
}

/// Load the payload of a checkpoint written for `stage`. Returns `None`
/// — never an error — when the file is absent, truncated, corrupted,
/// from another container version, or snapshots a different stage.
pub fn read_checkpoint(path: &Path, stage: &str) -> Option<Vec<u8>> {
    let bytes = fs::read(path).ok()?;
    let mut r = Reader::new(&bytes);
    let mut magic = [0u8; 4];
    for m in magic.iter_mut() {
        *m = r.get_u8().ok()?;
    }
    if magic != CKPT_MAGIC || r.get_u32().ok()? != CKPT_VERSION || r.get_str().ok()? != stage {
        return None;
    }
    let payload_len = r.get_u64().ok()? as usize;
    let checksum = r.get_u64().ok()?;
    if r.remaining() != payload_len {
        return None;
    }
    let payload = r.get_raw(payload_len).ok()?.to_vec();
    if fnv1a(&payload) != checksum {
        return None;
    }
    Some(payload)
}

/// Which stage a checkpoint file snapshots (its `stage` tag).
pub const STAGE_CLUSTER: &str = "cluster";
/// See [`STAGE_CLUSTER`].
pub const STAGE_ASSEMBLE: &str = "assemble";

/// Fault-tolerance knobs for one distributed stage run: what failures
/// to inject, how the master detects silence, and where snapshots go.
/// `Default` is a fully passive configuration — no injection, blocking
/// receives, no checkpointing — under which the engine byte-matches its
/// pre-fault-tolerance behaviour.
#[derive(Debug, Clone, Default)]
pub struct StageRecovery {
    /// Failures to inject (empty plan = none; the comm layer is not
    /// even armed, so fault-free runs pay nothing).
    pub faults: FaultPlan,
    /// Master liveness: declare the least-responsive worker dead after
    /// this many consecutive empty inbox polls. `None` blocks forever
    /// (the pre-fault-tolerance behaviour).
    pub stall_timeout: Option<u64>,
    /// Snapshot the master after every this many absorbed result
    /// reports; requires `checkpoint_path`.
    pub checkpoint_every: Option<u64>,
    /// Where snapshots are written (one file, overwritten atomically).
    pub checkpoint_path: Option<PathBuf>,
    /// Restore master state from this snapshot before starting.
    pub resume_from: Option<PathBuf>,
}

impl StageRecovery {
    /// This stage's checkpoint cadence and target, when both are set.
    pub fn ckpt_spec(&self) -> Option<(&Path, u64)> {
        match (&self.checkpoint_path, self.checkpoint_every) {
            (Some(path), Some(every)) if every > 0 => Some((path.as_path(), every)),
            _ => None,
        }
    }

    /// Narrow the fault plan to `stage`, keeping the other knobs.
    pub fn for_stage(&self, stage: FaultStage) -> StageRecovery {
        StageRecovery { faults: self.faults.for_stage(stage), ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_mpisim::KillTarget;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("pgasm-ckpt-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn checkpoint_round_trips_and_verifies_stage() {
        let tmp = TempDir::new("roundtrip");
        let path = tmp.0.join("run.pgck");
        let payload = b"master snapshot bytes".to_vec();
        let written = write_checkpoint(&path, STAGE_CLUSTER, &payload).unwrap();
        assert!(written > payload.len() as u64, "header must be accounted");
        assert_eq!(read_checkpoint(&path, STAGE_CLUSTER), Some(payload));
        assert!(read_checkpoint(&path, STAGE_ASSEMBLE).is_none(), "stage tag must match");
        // No temp files left behind.
        let stray: Vec<_> = fs::read_dir(&tmp.0)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp file leaked: {stray:?}");
    }

    #[test]
    fn overwrite_keeps_latest_snapshot() {
        let tmp = TempDir::new("overwrite");
        let path = tmp.0.join("run.pgck");
        write_checkpoint(&path, STAGE_ASSEMBLE, b"old").unwrap();
        write_checkpoint(&path, STAGE_ASSEMBLE, b"newer state").unwrap();
        assert_eq!(read_checkpoint(&path, STAGE_ASSEMBLE), Some(b"newer state".to_vec()));
    }

    #[test]
    fn damaged_checkpoints_read_as_absent() {
        let tmp = TempDir::new("damage");
        let path = tmp.0.join("run.pgck");
        write_checkpoint(&path, STAGE_CLUSTER, b"some serialized master state").unwrap();
        let full = fs::read(&path).unwrap();
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            assert!(read_checkpoint(&path, STAGE_CLUSTER).is_none(), "cut at {cut} loaded");
        }
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        assert!(read_checkpoint(&path, STAGE_CLUSTER).is_none(), "checksum must catch flips");
        assert!(read_checkpoint(&tmp.0.join("missing.pgck"), STAGE_CLUSTER).is_none());
    }

    #[test]
    fn recovery_defaults_are_passive_and_stage_filter_narrows() {
        let r = StageRecovery::default();
        assert!(r.faults.is_empty());
        assert!(r.stall_timeout.is_none());
        assert!(r.ckpt_spec().is_none());
        // Cadence without a path (or vice versa) stays off.
        let half = StageRecovery { checkpoint_every: Some(8), ..StageRecovery::default() };
        assert!(half.ckpt_spec().is_none());

        let plan = FaultPlan::default().with_kill(KillTarget::Rank(2), 100, FaultStage::Cluster).with_kill(
            KillTarget::Rank(3),
            50,
            FaultStage::Assemble,
        );
        let r = StageRecovery { faults: plan, stall_timeout: Some(10), ..StageRecovery::default() };
        let cluster = r.for_stage(FaultStage::Cluster);
        assert_eq!(cluster.faults.kills.len(), 1);
        assert_eq!(cluster.stall_timeout, Some(10), "other knobs survive the narrowing");
    }
}
