//! Ground-truth validation of clusterings.
//!
//! §9.1 validates the Drosophila clustering by BLAST-mapping fragments
//! to the published genome and checking that "27,830 out of 28,185
//! clusters post-masking (98.7%) map to a single benchmark sequence".
//! With synthetic data we hold exact provenance, so the same statistic
//! is computed directly: a cluster is *region-consistent* when all its
//! members come from one genome and their true intervals merge (with a
//! gap tolerance) into a single region.

use crate::clustering::Clustering;
use pgasm_simgen::Provenance;
use serde::{Deserialize, Serialize};

/// Validation summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Non-singleton clusters examined.
    pub clusters: usize,
    /// Clusters whose members map to a single genomic region.
    pub single_region: usize,
    /// Clusters mixing reads from different genomes (environmental
    /// samples: different species).
    pub cross_genome: usize,
}

impl ValidationReport {
    /// Fraction of clusters mapping to one region (1.0 when no clusters).
    pub fn specificity(&self) -> f64 {
        if self.clusters == 0 {
            1.0
        } else {
            self.single_region as f64 / self.clusters as f64
        }
    }
}

/// Validate a clustering against read provenance.
///
/// `origin[f]` maps fragment `f` (clustering element) to its original
/// read index in `provenance`. `gap_tolerance` allows true intervals to
/// be merged across small uncovered gaps (sequencing is sampled, not
/// contiguous).
pub fn validate_clusters(
    clustering: &Clustering,
    origin: &[usize],
    provenance: &[Provenance],
    gap_tolerance: u32,
) -> ValidationReport {
    let mut report = ValidationReport::default();
    for cluster in clustering.non_singletons() {
        report.clusters += 1;
        let mut intervals: Vec<(u32, u32, u32)> = cluster
            .iter()
            .map(|&f| {
                let p = &provenance[origin[f as usize]];
                (p.genome, p.start, p.end)
            })
            .collect();
        intervals.sort_unstable();
        let one_genome = intervals.windows(2).all(|w| w[0].0 == w[1].0);
        if !one_genome {
            report.cross_genome += 1;
            continue;
        }
        // Merge sorted intervals with tolerance; count regions.
        let mut regions = 1usize;
        let mut cur_end = intervals[0].2;
        for &(_, s, e) in &intervals[1..] {
            if s > cur_end.saturating_add(gap_tolerance) {
                regions += 1;
                cur_end = e;
            } else {
                cur_end = cur_end.max(e);
            }
        }
        if regions == 1 {
            report.single_region += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_simgen::ReadKind;

    fn prov(genome: u32, start: u32, end: u32) -> Provenance {
        Provenance { genome, start, end, reverse: false, kind: ReadKind::Wgs }
    }

    #[test]
    fn single_region_cluster_passes() {
        let clustering = Clustering { clusters: vec![vec![0, 1, 2]] };
        let provenance = vec![prov(0, 0, 500), prov(0, 400, 900), prov(0, 800, 1300)];
        let origin = vec![0, 1, 2];
        let r = validate_clusters(&clustering, &origin, &provenance, 50);
        assert_eq!(r.clusters, 1);
        assert_eq!(r.single_region, 1);
        assert!((r.specificity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn split_regions_fail() {
        let clustering = Clustering { clusters: vec![vec![0, 1]] };
        let provenance = vec![prov(0, 0, 500), prov(0, 5_000, 5_500)];
        let origin = vec![0, 1];
        let r = validate_clusters(&clustering, &origin, &provenance, 100);
        assert_eq!(r.single_region, 0);
    }

    #[test]
    fn cross_genome_counted_separately() {
        let clustering = Clustering { clusters: vec![vec![0, 1]] };
        let provenance = vec![prov(0, 0, 500), prov(1, 0, 500)];
        let origin = vec![0, 1];
        let r = validate_clusters(&clustering, &origin, &provenance, 100);
        assert_eq!(r.cross_genome, 1);
        assert_eq!(r.single_region, 0);
    }

    #[test]
    fn gap_tolerance_merges_near_intervals() {
        let clustering = Clustering { clusters: vec![vec![0, 1]] };
        let provenance = vec![prov(0, 0, 500), prov(0, 540, 900)];
        let origin = vec![0, 1];
        assert_eq!(validate_clusters(&clustering, &origin, &provenance, 50).single_region, 1);
        assert_eq!(validate_clusters(&clustering, &origin, &provenance, 10).single_region, 0);
    }

    #[test]
    fn singletons_ignored() {
        let clustering = Clustering { clusters: vec![vec![0], vec![1]] };
        let provenance = vec![prov(0, 0, 500), prov(0, 5_000, 5_500)];
        let origin = vec![0, 1];
        let r = validate_clusters(&clustering, &origin, &provenance, 50);
        assert_eq!(r.clusters, 0);
        assert!((r.specificity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn origin_indirection_respected() {
        // Fragment 0 is read 1 and vice versa.
        let clustering = Clustering { clusters: vec![vec![0, 1]] };
        let provenance = vec![prov(0, 5_000, 5_500), prov(0, 0, 500)];
        let origin = vec![1, 0]; // fragment i → read origin[i]
        let r = validate_clusters(&clustering, &origin, &provenance, 6_000);
        assert_eq!(r.single_region, 1);
    }
}
