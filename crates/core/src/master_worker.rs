//! The single-master / multiple-worker parallel clustering runtime
//! (paper §7, Figs. 6–8).
//!
//! Rank 0 is the master: it owns the Union–Find cluster store, the
//! fixed-capacity `Pending_Work_Buf`, and the `Idle_Workers` list; it
//! selects which generated pairs still need alignment, dispatches work
//! in batches of `b`, and regulates each worker's next pair-generation
//! request `r` so that pair inflow roughly matches alignment outflow
//! without overflowing the pending buffer.
//!
//! The master is *event-driven*: it drains **all** queued worker
//! reports through `Comm::try_recv` before dispatching anything,
//! applies Union–Find merges and pair selection per message as the
//! inbox drains (so cluster state is maximally fresh when batches are
//! cut), and blocks in `recv` only when the inbox is truly empty. One
//! slow worker therefore never serialises everyone else's replies —
//! the availability collapse §7.2 reports (90% → 70%) came from the
//! synchronous one-recv-one-dispatch loop this replaces.
//!
//! The protocol speaks the paper's message types (Figs. 6–8) as
//! *separate* wire messages: workers send `AR` (alignment results) and
//! `NP` (new pairs + generator status), the master answers with `R`
//! (flow-control grant, which also carries termination) and `AW`
//! (alignment work batch). Fine-grained messages keep the state machine
//! simple; the `mpisim` coalescing layer (see `CoalescePolicy`)
//! re-aggregates each burst into one framed envelope per destination,
//! so the wire cost stays that of the old fused messages while the α
//! latency term is paid once per envelope.
//!
//! Ranks 1..p are workers: each builds its portion of the distributed
//! GST, then iterates — *compute the previously allocated alignment
//! batch, generate the `r` pairs the master asked for, report both, and
//! receive the next allocation*. Pair generation within a rank is in
//! decreasing maximal-match order, which "roughly approximates the
//! global sorted order in practice" (§7).
//!
//! A worker whose generator is exhausted (*passive*) parks in a blocking
//! receive; the master keeps it busy with pending alignments from other
//! workers' pairs, which is the load-balancing behaviour of Fig. 6.
//!
//! Substitution note (see DESIGN.md): workers read fragment sequences
//! for alignment from the shared read-only store; protocol traffic
//! (pair batches, results, flow control) is what is being modelled and
//! measured here, and fragment-byte movement is accounted once in the
//! GST construction phase.

use crate::clustering::{
    canonical_skip, same_fragment_skip, ClusterParams, ClusterStats, Clustering, PairDecider,
};
use crate::parallel_gst::{compute_owners, rank_build_gst, RankGstReport};
use crate::unionfind::UnionFind;
use pgasm_gst::{PairGenerator, PromisingPair};
use pgasm_mpisim::codec::{Decoder, Encoder};
use pgasm_mpisim::{thread_cpu_seconds, CoalescePolicy, Comm, CommStats, CostModel, Msg};
use pgasm_seq::{FragmentStore, SeqId};
use pgasm_telemetry::trace::{RankTrace, TraceCategory, TraceSpec};
use pgasm_telemetry::{names, RankReport};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Worker → master: alignment results (paper's `AR`) + DP-cell tally.
const TAG_W2M_AR: u32 = 1;
/// Master → worker: flow-control grant `r` (paper's `R`); also carries
/// the termination flag, so every master transmission starts here.
const TAG_M2W_R: u32 = 2;
/// Worker → master: newly generated pairs + generator status (paper's
/// `NP`); doubles as the request for the next allocation.
const TAG_W2M_NP: u32 = 3;
/// Master → worker: the allocated alignment batch (paper's `AW`).
const TAG_M2W_AW: u32 = 4;

/// Master–worker *runtime* configuration: protocol knobs only. What to
/// cluster and how (GST window, scoring, acceptance, mode) lives in
/// [`ClusterParams`], passed alongside — the one place those parameters
/// are defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterWorkerConfig {
    /// Alignment batch size `b` (pairs per AW message).
    pub batch: usize,
    /// Capacity of the master's pending-work buffer (flow-control
    /// target; the buffer itself degrades gracefully if exceeded).
    pub pending_cap: usize,
    /// Sender-side small-message coalescing for the protocol traffic:
    /// each rank's per-destination message burst (AR+NP, R+AW) ships as
    /// one framed envelope. `None` puts every logical message on the
    /// wire individually (the ablation baseline).
    pub coalesce: Option<CoalescePolicy>,
}

impl Default for MasterWorkerConfig {
    fn default() -> Self {
        MasterWorkerConfig { batch: 64, pending_cap: 4096, coalesce: Some(CoalescePolicy::default()) }
    }
}

/// Outcome of a parallel clustering run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelClusterReport {
    /// The final clustering (identical to the serial result).
    pub clustering: Clustering,
    /// Aggregated work statistics.
    pub stats: ClusterStats,
    /// Per-rank GST construction reports.
    pub gst_reports: Vec<RankGstReport>,
    /// Wall-clock seconds of the GST phase (max over ranks).
    pub gst_seconds: f64,
    /// Wall-clock seconds of the clustering phase (max over ranks).
    pub cluster_seconds: f64,
    /// Per-worker idle fraction during clustering (blocked time /
    /// phase time) — the §7.2 idle-percentage metric.
    pub worker_idle_fraction: Vec<f64>,
    /// Fraction of the clustering phase the master spent available
    /// (blocked waiting for requests) — §7.2 reports 90% → 70%.
    pub master_availability: f64,
    /// Per-rank traffic during the clustering phase.
    pub comm: Vec<CommStats>,
    /// Per-rank thread-CPU seconds spent in the clustering phase
    /// (rank 0 = master). Immune to core oversubscription, so modelled
    /// scaling curves remain meaningful on small hosts.
    pub cpu_seconds: Vec<f64>,
    /// Per-rank telemetry channels: role, CPU/idle seconds, rank-local
    /// counters (pairs generated/aligned/accepted, batch round-trips,
    /// peak queue depth), and per-tag traffic with modelled α–β time.
    pub ranks: Vec<RankReport>,
    /// Per-rank event traces covering the whole run (GST + clustering);
    /// empty tracks when tracing was off.
    pub traces: Vec<RankTrace>,
}

struct RankOutcome {
    clustering: Option<Clustering>,
    stats: Option<ClusterStats>,
    gst_report: RankGstReport,
    cluster_seconds: f64,
    idle_fraction: f64,
    comm: CommStats,
    cpu_seconds: f64,
    counters: BTreeMap<String, u64>,
    rank_report: RankReport,
    trace: RankTrace,
}

fn encode_pair(e: &mut Encoder, p: &PromisingPair) {
    e.put_u32(p.a.0);
    e.put_u32(p.b.0);
    e.put_u32(p.a_pos);
    e.put_u32(p.b_pos);
    e.put_u32(p.match_len);
}

fn decode_pair(d: &mut Decoder) -> PromisingPair {
    PromisingPair {
        a: SeqId(d.get_u32()),
        b: SeqId(d.get_u32()),
        a_pos: d.get_u32(),
        b_pos: d.get_u32(),
        match_len: d.get_u32(),
    }
}

/// Run the master–worker clustering on `p ≥ 2` ranks. `params` says
/// what to cluster and how; `config` tunes the runtime protocol.
pub fn cluster_parallel(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> ParallelClusterReport {
    cluster_parallel_traced(store, p, params, config, TraceSpec::off())
}

/// [`cluster_parallel`] with per-rank event tracing. The [`TraceSpec`]
/// is a separate argument (not a `MasterWorkerConfig` field) because it
/// carries the run's shared clock epoch, which has no serial form.
pub fn cluster_parallel_traced(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
    trace: TraceSpec,
) -> ParallelClusterReport {
    assert!(p >= 2, "master–worker needs at least 2 ranks");
    assert!(!store.is_double_stranded(), "pass the original single-stranded fragments");
    let n = store.num_fragments();
    let ds = store.with_reverse_complements();
    let owner = compute_owners(&ds, p, 1);
    let (ds, owner, params, config) = (&ds, &owner, *params, *config);

    let outcomes: Vec<RankOutcome> = pgasm_mpisim::run(p, move |comm| {
        // Tracing covers the whole rank body — GST collectives and the
        // clustering protocol land on one per-rank track.
        let role = if comm.rank() == 0 { "master" } else { "worker" };
        comm.set_tracer(trace.tracer(comm.rank(), role));
        // Phase 1: distributed GST over worker ranks.
        let gst_t0 = Instant::now();
        let (gst, _text, gst_report) = rank_build_gst(comm, ds, owner, params.gst, 1);
        comm.barrier();
        let gst_wall = gst_t0.elapsed().as_secs_f64();
        let mut gst_report = gst_report;
        gst_report.compute_seconds = gst_report.compute_seconds.min(gst_wall);

        // Phase 2: clustering, with protocol-message coalescing on
        // every rank (the GST collectives above bypass the queues).
        comm.set_coalesce(config.coalesce);
        let before = comm.stats();
        let cpu0 = thread_cpu_seconds();
        let t0 = Instant::now();
        let mut outcome = if comm.rank() == 0 {
            drop(gst);
            master_loop(comm, ds, n, &params, &config)
        } else {
            worker_loop(comm, ds, gst, &params, &config)
        };
        let wall = t0.elapsed().as_secs_f64();
        let cpu = thread_cpu_seconds() - cpu0;
        let after = comm.stats();
        let blocked =
            ((after.wait_ns + after.barrier_ns) - (before.wait_ns + before.barrier_ns)) as f64 * 1e-9;
        outcome.gst_report = gst_report;
        outcome.cluster_seconds = wall;
        outcome.cpu_seconds = cpu;
        outcome.idle_fraction = if wall > 0.0 { (blocked / wall).min(1.0) } else { 0.0 };
        outcome.comm = CommStats {
            msgs_sent: after.msgs_sent - before.msgs_sent,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            msgs_recv: after.msgs_recv - before.msgs_recv,
            bytes_recv: after.bytes_recv - before.bytes_recv,
            wait_ns: after.wait_ns - before.wait_ns,
            barrier_ns: after.barrier_ns - before.barrier_ns,
        };
        // Fold this rank's channel for the RunReport: per-tag traffic
        // (the whole run, GST collectives included) with protocol tags
        // relabelled, plus the loop's own counters. Coalesced protocol
        // envelopes appear under the `"coalesced"` row.
        let mut comm_rows = comm.tag_stats(&CostModel::BLUEGENE_L);
        for row in &mut comm_rows {
            row.label = match row.tag {
                TAG_W2M_AR => names::TAG_W2M_AR.to_string(),
                TAG_W2M_NP => names::TAG_W2M_NP.to_string(),
                TAG_M2W_R => names::TAG_M2W_R.to_string(),
                TAG_M2W_AW => names::TAG_M2W_AW.to_string(),
                _ => std::mem::take(&mut row.label),
            };
        }
        // Coalescing-layer counters join the loop's own tallies, plus
        // the whole-run blocked-time totals (GST phase included) that
        // the trace-derived idle-gap histograms are checked against.
        let cs = comm.coalesce_stats();
        for (name, value) in [
            (names::MSGS_COALESCED, cs.msgs_coalesced),
            (names::ENVELOPES_SENT, cs.envelopes_sent),
            (names::FLUSH_BY_BYTES, cs.flush_bytes),
            (names::FLUSH_BY_MSGS, cs.flush_msgs),
            (names::FLUSH_ON_BLOCK, cs.flush_block),
            (names::FLUSH_EXPLICIT, cs.flush_explicit),
            (names::WAIT_NS_TOTAL, after.wait_ns),
            (names::BARRIER_NS_TOTAL, after.barrier_ns),
        ] {
            outcome.counters.insert(name.to_string(), value);
        }
        outcome.rank_report = RankReport {
            rank: comm.rank(),
            role: role.to_string(),
            cpu_seconds: cpu,
            idle_seconds: blocked,
            counters: std::mem::take(&mut outcome.counters),
            comm: comm_rows,
            idle_gaps: None,
        };
        outcome.trace = comm.take_trace();
        outcome
    });

    let master = &outcomes[0];
    ParallelClusterReport {
        clustering: master.clustering.clone().expect("master produced the clustering"),
        stats: master.stats.expect("master aggregated stats"),
        gst_seconds: outcomes.iter().map(|o| o.gst_report.compute_seconds).fold(0.0, f64::max),
        cluster_seconds: outcomes.iter().map(|o| o.cluster_seconds).fold(0.0, f64::max),
        worker_idle_fraction: outcomes[1..].iter().map(|o| o.idle_fraction).collect(),
        master_availability: master.idle_fraction,
        comm: outcomes.iter().map(|o| o.comm).collect(),
        cpu_seconds: outcomes.iter().map(|o| o.cpu_seconds).collect(),
        ranks: outcomes.iter().map(|o| o.rank_report.clone()).collect(),
        traces: outcomes.iter().map(|o| o.trace.clone()).collect(),
        gst_reports: outcomes.into_iter().map(|o| o.gst_report).collect(),
    }
}

/// The master's mutable protocol state, separated from the event loop
/// so message handling (merges, selection) and dispatch (batch cutting,
/// flow control) read as the two halves of Fig. 7 they are.
struct Master<'a> {
    ds: &'a FragmentStore,
    b: usize,
    pending_cap: usize,
    clusters: MasterClusters,
    pending: VecDeque<PromisingPair>,
    /// Worker's generator still has pairs to yield.
    worker_active: Vec<bool>,
    /// Worker reported its round (NP arrived) and awaits an R+AW reply.
    need_reply: Vec<bool>,
    /// Worker is passive with no allocation in flight: blocked in a
    /// receive, revivable with an unsolicited grant (Idle_Workers).
    parked: Vec<bool>,
    /// An allocation is in flight to this worker (a report will come).
    outstanding: Vec<bool>,
    stats: ClusterStats,
    selected: u64,
    peak_queue_depth: u64,
    batches_dispatched: u64,
}

impl Master<'_> {
    /// Apply one worker message to the cluster state the moment it is
    /// drained — Union–Find merges (AR) and pair selection (NP)
    /// interleave with message progress instead of waiting for a
    /// dispatch turn.
    fn handle(&mut self, msg: &Msg) {
        let i = msg.src;
        let mut d = Decoder::new(msg.data.clone());
        match msg.tag {
            TAG_W2M_AR => {
                // Alignment results: merge clusters for accepted
                // overlaps.
                let ar_count = d.get_u32();
                for _ in 0..ar_count {
                    let a = SeqId(d.get_u32());
                    let bq = SeqId(d.get_u32());
                    let accepted = d.get_u32() == 1;
                    let a_start = d.get_u32();
                    let b_start = d.get_u32();
                    let overlap_len = d.get_u32();
                    self.stats.aligned += 1;
                    if accepted {
                        self.stats.accepted += 1;
                        self.clusters.record_accept(
                            self.ds,
                            a,
                            bq,
                            a_start,
                            b_start,
                            overlap_len,
                            &mut self.stats,
                        );
                    }
                }
                // Trailing work accounting: per-phase DP-cell split plus
                // the early-exit / skipped-traceback tallies.
                let c1 = d.get_u64();
                let c2 = d.get_u64();
                self.stats.dp_cells += c1 + c2;
                self.stats.dp_cells_phase1 += c1;
                self.stats.dp_cells_phase2 += c2;
                self.stats.early_exits += d.get_u64();
                self.stats.tracebacks_skipped += d.get_u64();
            }
            TAG_W2M_NP => {
                // New promising pairs: keep only those whose fragments
                // are in different clusters *right now*.
                let active = d.get_u32() == 1;
                self.worker_active[i] = active;
                let np_count = d.get_u32();
                for _ in 0..np_count {
                    let pair = decode_pair(&mut d);
                    self.stats.generated += 1;
                    let fa = self.ds.seq_to_fragment(pair.a).0 .0;
                    let fb = self.ds.seq_to_fragment(pair.b).0 .0;
                    if !self.clusters.skip_pair(fa, fb) {
                        self.pending.push_back(pair);
                        self.selected += 1;
                    }
                }
                self.peak_queue_depth = self.peak_queue_depth.max(self.pending.len() as u64);
                // NP closes the worker's round: it now awaits a grant.
                self.need_reply[i] = true;
                self.outstanding[i] = false;
            }
            t => unreachable!("unexpected tag {t} at the master"),
        }
    }

    /// Answer every worker whose round completed and feed parked
    /// workers from the pending buffer (Fig. 7's Idle_Workers service).
    fn dispatch(&mut self, comm: &mut Comm) {
        let p = self.worker_active.len();
        for i in 1..p {
            if !self.need_reply[i] {
                continue;
            }
            self.need_reply[i] = false;
            let batch = drain_batch(&mut self.pending, self.b);
            let r = self.flow_control();
            if batch.is_empty() && !self.worker_active[i] {
                // Nothing to do and nothing left to generate: park it
                // (the empty AW tells the worker to block).
                self.parked[i] = true;
                comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_PARK, "worker", i as u64);
                send_grant(comm, i, r, &[], false);
            } else {
                if !batch.is_empty() {
                    self.batches_dispatched += 1;
                }
                self.outstanding[i] = true;
                send_grant(comm, i, r, &batch, false);
            }
        }
        for j in 1..p {
            if self.parked[j] && !self.pending.is_empty() {
                let batch = drain_batch(&mut self.pending, self.b);
                let r = self.flow_control();
                self.batches_dispatched += 1;
                self.parked[j] = false;
                self.outstanding[j] = true;
                comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_UNPARK, "worker", j as u64);
                send_grant(comm, j, r, &batch, false);
            }
        }
    }

    fn flow_control(&self) -> usize {
        compute_r(
            self.b,
            self.pending_cap,
            self.pending.len(),
            &self.worker_active,
            self.stats.generated,
            self.selected,
        )
    }

    /// Every worker passive and parked, nothing pending, nothing in
    /// flight.
    fn finished(&self) -> bool {
        let p = self.worker_active.len();
        (1..p).all(|i| !self.worker_active[i] && self.parked[i] && !self.outstanding[i])
            && self.pending.is_empty()
    }
}

/// The master's event loop (paper Fig. 7), event-driven: drain *all*
/// queued reports, then dispatch, and block only on a truly empty
/// inbox.
fn master_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    n: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> RankOutcome {
    let p = comm.size();
    let mut m = Master {
        ds,
        b: config.batch,
        pending_cap: config.pending_cap,
        clusters: MasterClusters::new(n, params),
        pending: VecDeque::with_capacity(config.pending_cap),
        worker_active: vec![true; p],
        need_reply: vec![false; p],
        parked: vec![false; p],
        // Workers open with an unsolicited first report.
        outstanding: {
            let mut o = vec![true; p];
            o[0] = false;
            o
        },
        stats: ClusterStats::default(),
        selected: 0,
        peak_queue_depth: 0,
        batches_dispatched: 0,
    };
    let mut drain_depth: u64 = 0;
    let mut drain_depth_max: u64 = 0;

    loop {
        // Event pump: consume everything already queued before any
        // dispatch decision — merges from fast workers land before
        // batches are cut for slow ones.
        if let Some(msg) = comm.try_recv(None, None) {
            drain_depth += 1;
            note_handled(comm, &msg);
            m.handle(&msg);
            continue;
        }
        drain_depth_max = drain_depth_max.max(drain_depth);

        // Inbox empty: answer completed rounds, revive parked workers.
        comm.tracer_mut().begin(TraceCategory::Master, names::EV_DISPATCH);
        m.dispatch(comm);
        comm.tracer_mut().end(TraceCategory::Master, names::EV_DISPATCH);

        if m.finished() {
            for i in 1..p {
                debug_assert!(m.parked[i], "at termination every worker is parked");
                send_grant(comm, i, 0, &[], true);
            }
            // Replies may still sit in the coalescing queues; this rank
            // never blocks again, so push them out explicitly.
            comm.flush_all();
            break;
        }

        // Nothing left to do until a worker reports: block (this also
        // flushes the grants staged above).
        let msg = comm.recv(None, None);
        drain_depth = 1;
        note_handled(comm, &msg);
        m.handle(&msg);
    }

    let mut stats = m.stats;
    let counters = BTreeMap::from([
        (names::PAIRS_GENERATED.to_string(), stats.generated),
        (names::PAIRS_ALIGNED.to_string(), stats.aligned),
        (names::PAIRS_ACCEPTED.to_string(), stats.accepted),
        (names::PAIRS_SELECTED.to_string(), m.selected),
        (names::PEAK_QUEUE_DEPTH.to_string(), m.peak_queue_depth),
        (names::BATCHES_DISPATCHED.to_string(), m.batches_dispatched),
        (names::INBOX_DRAIN_DEPTH_MAX.to_string(), drain_depth_max),
        (names::ALIGN_PHASE1_CELLS.to_string(), stats.dp_cells_phase1),
        (names::ALIGN_PHASE2_CELLS.to_string(), stats.dp_cells_phase2),
        (names::ALIGN_EARLY_EXIT.to_string(), stats.early_exits),
        (names::ALIGN_TRACEBACK_SKIPPED.to_string(), stats.tracebacks_skipped),
    ]);
    RankOutcome {
        clustering: Some(m.clusters.finish(&mut stats)),
        stats: Some(stats),
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
        trace: RankTrace::default(),
    }
}

/// Mark a drained worker report on the master's track, by message kind.
fn note_handled(comm: &mut Comm, msg: &Msg) {
    let name = if msg.tag == TAG_W2M_AR { names::EV_HANDLE_AR } else { names::EV_HANDLE_NP };
    comm.tracer_mut().instant_arg(TraceCategory::Master, name, "src", msg.src as u64);
}

fn drain_batch(pending: &mut VecDeque<PromisingPair>, b: usize) -> Vec<PromisingPair> {
    let take = b.min(pending.len());
    pending.drain(..take).collect()
}

/// Send one master→worker allocation: the `R` flow-control grant
/// (termination flag + next request size) followed, for live grants, by
/// the `AW` alignment batch. *Every* master transmission — round reply,
/// unsolicited grant to a parked worker, termination — goes through
/// here, so the M2W wire format has exactly one encoder and the worker
/// exactly one decode path.
fn send_grant(comm: &mut Comm, dest: usize, r: usize, batch: &[PromisingPair], terminate: bool) {
    let mut e = Encoder::with_capacity(8);
    e.put_u32(terminate as u32);
    e.put_u32(r as u32);
    comm.send(dest, TAG_M2W_R, e.finish());
    if terminate {
        return;
    }
    let mut e = Encoder::with_capacity(4 + batch.len() * 20);
    e.put_u32(batch.len() as u32);
    for pair in batch {
        encode_pair(&mut e, pair);
    }
    comm.send(dest, TAG_M2W_AW, e.finish());
}

/// The paper's flow-control rule (§7): request enough pairs that about
/// `b` of them will be selected for alignment, without overflowing the
/// pending buffer. Never zero: under backpressure (pending buffer at
/// capacity) an active worker must still drain its generator one pair
/// at a time, otherwise it spins in empty report/grant round-trips and
/// the run stops progressing toward generator exhaustion.
fn compute_r(b: usize, cap: usize, pending: usize, active: &[bool], generated: u64, selected: u64) -> usize {
    let p_active = active[1..].iter().filter(|&&a| a).count().max(1);
    let ratio = if generated < 64 { 0.5 } else { (selected as f64 / generated as f64).max(0.02) };
    let by_ratio = (b as f64 / ratio).ceil() as usize;
    let by_capacity = cap.saturating_sub(pending) / p_active;
    by_ratio.min(by_capacity).min(8 * b).max(1)
}

/// A worker's event loop (paper Fig. 8).
fn worker_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    gst: pgasm_gst::Gst,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> RankOutcome {
    let params = *params;
    let canonical = params.canonical_strands;
    let mut gen = PairGenerator::new(gst, params.mode, move |a, b| {
        same_fragment_skip(a, b) || (canonical && canonical_skip(a, b))
    });
    let decider = PairDecider { store: ds, params };
    // One scratch per worker, pre-sized for the longest sequence in the
    // store: reused across every AW batch, so the alignment hot loop
    // performs no per-pair heap allocation (grow_events stays 0).
    let mut scratch = decider.new_scratch();
    let mut aw: Vec<PromisingPair> = Vec::new();
    let mut results: Vec<(PromisingPair, bool, u32, u32, u32)> = Vec::new();
    // Per-round work-accounting deltas (reset after each AR report)...
    let mut cells1_delta: u64 = 0;
    let mut cells2_delta: u64 = 0;
    let mut early_delta: u64 = 0;
    let mut skip_delta: u64 = 0;
    // ...and whole-run totals for the rank counters.
    let mut cells_phase1: u64 = 0;
    let mut cells_phase2: u64 = 0;
    let mut early_exits: u64 = 0;
    let mut tracebacks_skipped: u64 = 0;
    let mut r = config.batch;
    let mut np: Vec<PromisingPair> = Vec::new();
    let mut pairs_generated: u64 = 0;
    let mut pairs_aligned: u64 = 0;
    let mut pairs_accepted: u64 = 0;
    let mut round_trips: u64 = 0;

    loop {
        // Compute the alignments allocated last round.
        let had_aw = !aw.is_empty();
        if had_aw {
            comm.tracer_mut().begin_arg(
                TraceCategory::Align,
                names::EV_ALIGN_BATCH,
                "pairs",
                aw.len() as u64,
            );
        }
        for pair in aw.drain(..) {
            let r = decider.align_full(&pair, &mut scratch);
            cells1_delta += r.cells_phase1;
            cells2_delta += r.cells_phase2;
            early_delta += r.early_exited as u64;
            skip_delta += r.traceback_skipped as u64;
            let accepted = params.criteria.accepts(r.identity, r.overlap_len);
            pairs_aligned += 1;
            pairs_accepted += accepted as u64;
            results.push((pair, accepted, r.a_range.0 as u32, r.b_range.0 as u32, r.overlap_len as u32));
        }
        if had_aw {
            comm.tracer_mut().end(TraceCategory::Align, names::EV_ALIGN_BATCH);
            comm.tracer_mut().instant_args(
                TraceCategory::Align,
                names::EV_ALIGN_CELLS,
                ("phase1", cells1_delta),
                ("phase2", cells2_delta),
            );
        }
        // Generate the requested number of new pairs.
        np.clear();
        comm.tracer_mut().begin_arg(TraceCategory::Worker, names::EV_GENERATE, "requested", r as u64);
        gen.next_batch(r, &mut np);
        comm.tracer_mut().end(TraceCategory::Worker, names::EV_GENERATE);
        pairs_generated += np.len() as u64;
        let active = !gen.is_exhausted();
        // Report: alignment results (AR) and new pairs (NP) travel as
        // two fine-grained messages so the coalescing layer can fold
        // them — plus whatever other rounds are queued — into one
        // envelope toward the master.
        let mut e = Encoder::with_capacity(12 + results.len() * 24);
        e.put_u32(results.len() as u32);
        for (pair, accepted, a_start, b_start, overlap_len) in results.drain(..) {
            e.put_u32(pair.a.0);
            e.put_u32(pair.b.0);
            e.put_u32(accepted as u32);
            e.put_u32(a_start);
            e.put_u32(b_start);
            e.put_u32(overlap_len);
        }
        e.put_u64(cells1_delta);
        e.put_u64(cells2_delta);
        e.put_u64(early_delta);
        e.put_u64(skip_delta);
        cells_phase1 += cells1_delta;
        cells_phase2 += cells2_delta;
        early_exits += early_delta;
        tracebacks_skipped += skip_delta;
        (cells1_delta, cells2_delta, early_delta, skip_delta) = (0, 0, 0, 0);
        comm.send(0, TAG_W2M_AR, e.finish());
        let mut e = Encoder::with_capacity(8 + np.len() * 20);
        e.put_u32(active as u32);
        e.put_u32(np.len() as u32);
        for pair in &np {
            encode_pair(&mut e, pair);
        }
        comm.send(0, TAG_W2M_NP, e.finish());
        round_trips += 1;
        // Receive the next grant (possibly parking idle first). The R
        // message always arrives; a live grant is followed by its AW
        // batch.
        loop {
            let m = comm.recv(Some(0), Some(TAG_M2W_R));
            let mut d = Decoder::new(m.data);
            let terminate = d.get_u32() == 1;
            if terminate {
                return worker_outcome(BTreeMap::from([
                    (names::PAIRS_GENERATED.to_string(), pairs_generated),
                    (names::PAIRS_ALIGNED.to_string(), pairs_aligned),
                    (names::PAIRS_ACCEPTED.to_string(), pairs_accepted),
                    (names::BATCH_ROUND_TRIPS.to_string(), round_trips),
                    (names::ALIGN_PHASE1_CELLS.to_string(), cells_phase1),
                    (names::ALIGN_PHASE2_CELLS.to_string(), cells_phase2),
                    (names::ALIGN_EARLY_EXIT.to_string(), early_exits),
                    (names::ALIGN_TRACEBACK_SKIPPED.to_string(), tracebacks_skipped),
                    (names::ALIGN_SCRATCH_BYTES_PEAK.to_string(), scratch.high_water_bytes()),
                    (names::ALIGN_SCRATCH_GROWS.to_string(), scratch.grow_events()),
                ]));
            }
            r = d.get_u32() as usize;
            let m = comm.recv(Some(0), Some(TAG_M2W_AW));
            let mut d = Decoder::new(m.data);
            let count = d.get_u32();
            aw = (0..count).map(|_| decode_pair(&mut d)).collect();
            if aw.is_empty() && !active {
                // Passive with no work: park and wait for an
                // unsolicited allocation or termination.
                comm.tracer_mut().instant(TraceCategory::Worker, names::EV_PARK);
                continue;
            }
            break;
        }
    }
}

/// The master's cluster store: plain Union–Find, or the §10
/// geometry-aware variant when `resolve_inconsistent` is on. In
/// geometric mode every generated pair is selected for alignment (the
/// cluster-check shortcut would hide the same-cluster conflicts the
/// mode exists to catch), accepted edges are buffered, and the
/// deterministic decreasing-overlap-length resolution runs at the end —
/// so the parallel result still equals the serial one.
enum MasterClusters {
    Plain(UnionFind),
    Geometric { n: usize, edges: Vec<(u32, u32, crate::geometry::AffineMap, u32)>, tol: i64 },
}

impl MasterClusters {
    fn new(n: usize, params: &ClusterParams) -> MasterClusters {
        if params.resolve_inconsistent {
            MasterClusters::Geometric { n, edges: Vec::new(), tol: params.geometry_tolerance }
        } else {
            MasterClusters::Plain(UnionFind::new(n))
        }
    }

    /// Should a generated pair be skipped (already co-clustered)?
    fn skip_pair(&mut self, a: u32, b: u32) -> bool {
        match self {
            MasterClusters::Plain(uf) => uf.same(a, b),
            // Geometric mode aligns everything.
            MasterClusters::Geometric { .. } => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_accept(
        &mut self,
        ds: &FragmentStore,
        a: SeqId,
        b: SeqId,
        a_start: u32,
        b_start: u32,
        overlap_len: u32,
        stats: &mut ClusterStats,
    ) {
        let fa = ds.seq_to_fragment(a).0 .0;
        let fb = ds.seq_to_fragment(b).0 .0;
        match self {
            MasterClusters::Plain(uf) => {
                if uf.union(fa, fb) {
                    stats.merges += 1;
                }
            }
            MasterClusters::Geometric { edges, .. } => {
                let edge = crate::geometry::overlap_edge(
                    matches!(ds.seq_to_fragment(a).1, pgasm_seq::Strand::Reverse),
                    matches!(ds.seq_to_fragment(b).1, pgasm_seq::Strand::Reverse),
                    ds.len_of(a),
                    ds.len_of(b),
                    a_start as usize,
                    b_start as usize,
                );
                edges.push((fa, fb, edge, overlap_len));
            }
        }
    }

    fn finish(self, stats: &mut ClusterStats) -> Clustering {
        match self {
            MasterClusters::Plain(mut uf) => Clustering::from_unionfind(&mut uf),
            MasterClusters::Geometric { n, edges, tol } => {
                crate::clustering::apply_geometric_edges(n, edges, tol, stats)
            }
        }
    }
}

fn worker_outcome(counters: BTreeMap<String, u64>) -> RankOutcome {
    RankOutcome {
        clustering: None,
        stats: None,
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
        trace: RankTrace::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_serial;
    use pgasm_align::AcceptCriteria;
    use pgasm_gst::GstConfig;
    use pgasm_seq::DnaSeq;

    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
        let b = g.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read <= b.len() {
            out.push(DnaSeq::from_ascii(&b[at..at + read]));
            at += step;
        }
        out
    }

    fn test_store() -> FragmentStore {
        let mut reads = tile(&genome(1, 1500), 200, 90);
        reads.extend(tile(&genome(2, 1200), 200, 90));
        reads.extend(tile(&genome(3, 900), 200, 90));
        // A couple of orphans.
        reads.push(DnaSeq::from(genome(50, 220).as_str()));
        reads.push(DnaSeq::from(genome(51, 220).as_str()));
        FragmentStore::from_seqs(reads)
    }

    fn params() -> ClusterParams {
        ClusterParams {
            gst: GstConfig { w: 8, psi: 16 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
            ..Default::default()
        }
    }

    fn config() -> MasterWorkerConfig {
        MasterWorkerConfig { batch: 8, pending_cap: 256, coalesce: Some(CoalescePolicy::default()) }
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        for p in [2usize, 3, 5] {
            let report = cluster_parallel(&store, p, &params(), &config());
            assert_eq!(report.clustering, serial, "p = {p}");
        }
    }

    #[test]
    fn stats_are_consistent() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        let s = report.stats;
        assert!(s.generated > 0);
        assert!(s.aligned <= s.generated);
        assert!(s.accepted <= s.aligned);
        assert!(s.merges <= s.accepted);
        assert!((s.merges as usize) < store.num_fragments());
        // Every fragment appears in exactly one cluster.
        let total: usize = report.clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, store.num_fragments());
    }

    #[test]
    fn heuristic_saves_alignments_in_parallel_too() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert!(
            report.stats.aligned < report.stats.generated,
            "cluster-check must skip some alignments: {:?}",
            report.stats
        );
    }

    #[test]
    fn report_fields_populated() {
        let store = test_store();
        let report = cluster_parallel(&store, 4, &params(), &config());
        assert_eq!(report.worker_idle_fraction.len(), 3);
        assert_eq!(report.comm.len(), 4);
        assert_eq!(report.gst_reports.len(), 4);
        assert!(report.cluster_seconds > 0.0);
        assert!(report.master_availability >= 0.0 && report.master_availability <= 1.0);
        // Clustering-phase traffic exists in both directions at the master.
        assert!(report.comm[0].msgs_recv > 0);
        assert!(report.comm[0].msgs_sent > 0);
    }

    #[test]
    fn rank_reports_carry_counters_and_comm() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert_eq!(report.ranks.len(), 3);
        assert_eq!(report.ranks[0].role, "master");
        assert!(report.ranks[1..].iter().all(|r| r.role == "worker"));
        // The master's selection counters match aggregate stats; workers'
        // per-rank tallies sum to the same totals.
        assert_eq!(report.ranks[0].counter("pairs_generated"), report.stats.generated);
        assert_eq!(report.ranks[0].counter("pairs_aligned"), report.stats.aligned);
        let worker_aligned: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_aligned")).sum();
        let worker_generated: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_generated")).sum();
        let worker_accepted: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_accepted")).sum();
        assert_eq!(worker_aligned, report.stats.aligned);
        assert_eq!(worker_generated, report.stats.generated);
        assert_eq!(worker_accepted, report.stats.accepted);
        // Per-tag comm channels include the relabelled protocol tags
        // and carry modelled time. With coalescing on, protocol
        // messages travel *inside* envelopes, so senders show a
        // "coalesced" row while receivers still see the split
        // constituents.
        let master = &report.ranks[0];
        assert!(master.comm.iter().any(|t| t.label == "w2m_ar" && t.msgs_recv > 0));
        assert!(master.comm.iter().any(|t| t.label == "w2m_np" && t.msgs_recv > 0));
        for r in &report.ranks[1..] {
            assert!(r.comm.iter().any(|t| t.label == "m2w_r" && t.msgs_recv > 0));
            assert!(r.comm.iter().any(|t| t.label == "m2w_aw" && t.msgs_recv > 0));
            assert!(r.comm.iter().any(|t| t.label == "coalesced" && t.msgs_sent > 0));
            assert!(r.counter("msgs_coalesced") > 0);
        }
        for r in &report.ranks {
            assert!(r.modelled_comm_seconds() > 0.0);
        }
        // Workers report at least one batch round-trip.
        assert!(report.ranks[1..].iter().all(|r| r.counter("batch_round_trips") >= 1));
    }

    #[test]
    fn worker_align_counters_are_consistent_and_allocation_free() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        let s = report.stats;
        assert_eq!(s.dp_cells, s.dp_cells_phase1 + s.dp_cells_phase2, "cell accounting must split cleanly");
        let w1: u64 = report.ranks[1..].iter().map(|r| r.counter("align_phase1_cells")).sum();
        let w2: u64 = report.ranks[1..].iter().map(|r| r.counter("align_phase2_cells")).sum();
        let skips: u64 = report.ranks[1..].iter().map(|r| r.counter("align_traceback_skipped")).sum();
        assert_eq!(w1, s.dp_cells_phase1);
        assert_eq!(w2, s.dp_cells_phase2);
        assert_eq!(skips, s.tracebacks_skipped);
        assert_eq!(report.ranks[0].counter("align_phase1_cells"), s.dp_cells_phase1);
        for r in &report.ranks[1..] {
            // The zero-allocation invariant: the pre-sized scratch never
            // grew, and its high-water mark is a real (non-zero) figure.
            assert!(r.counter("align_scratch_bytes_peak") > 0);
            assert_eq!(r.counter("align_scratch_grows"), 0, "worker hot loop reallocated: {:?}", r.counters);
        }
    }

    #[test]
    fn coalescing_off_matches_on() {
        let store = test_store();
        let plain = MasterWorkerConfig { coalesce: None, ..config() };
        for p in [2usize, 3, 5] {
            let on = cluster_parallel(&store, p, &params(), &config());
            let off = cluster_parallel(&store, p, &params(), &plain);
            assert_eq!(on.clustering, off.clustering, "p = {p}");
            assert_eq!(on.stats.accepted, off.stats.accepted, "p = {p}");
        }
    }

    #[test]
    fn backpressure_with_tiny_pending_buffer_terminates() {
        // pending_cap < batch: by_capacity bottoms out at 0 as soon as
        // a couple of pairs queue up. Before the r ≥ 1 clamp the master
        // would grant r = 0 to still-active workers, which then spin in
        // empty report/grant round-trips forever — this config
        // livelocked.
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        let cfg = MasterWorkerConfig { batch: 8, pending_cap: 2, ..config() };
        for p in [2usize, 4] {
            let report = cluster_parallel(&store, p, &params(), &cfg);
            assert_eq!(report.clustering, serial, "p = {p}");
        }
    }

    #[test]
    fn compute_r_is_positive_at_full_buffer() {
        // Buffer at capacity, three active workers: by_capacity = 0,
        // but the grant must still let generators make progress.
        let active = [false, true, true, true];
        assert_eq!(compute_r(8, 2, 2, &active, 1000, 500), 1);
        // And the clamp doesn't disturb the normal regime.
        assert!(compute_r(8, 4096, 0, &active, 1000, 500) > 8);
    }

    #[test]
    fn master_records_inbox_drain_depth() {
        let store = test_store();
        let report = cluster_parallel(&store, 4, &params(), &config());
        // The counter exists; with several workers reporting it is
        // ordinarily ≥ 1 (at least one message handled per wake-up).
        assert!(report.ranks[0].counter("inbox_drain_depth_max") >= 1);
    }

    #[test]
    fn single_fragment_terminates() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from(genome(9, 300).as_str())]);
        let report = cluster_parallel(&store, 2, &params(), &config());
        assert_eq!(report.clustering.clusters.len(), 1);
        assert_eq!(report.stats.generated, 0);
    }

    #[test]
    fn geometric_mode_parallel_matches_serial() {
        let store = test_store();
        let params = ClusterParams { resolve_inconsistent: true, ..params() };
        let (serial, serial_stats) = cluster_serial(&store, &params);
        for p in [2usize, 4] {
            let report = cluster_parallel(&store, p, &params, &config());
            assert_eq!(report.clustering, serial, "p = {p}");
            assert_eq!(report.stats.aligned, serial_stats.aligned, "geometric mode aligns everything");
            assert_eq!(report.stats.inconsistent, serial_stats.inconsistent);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn requires_two_ranks() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from("ACGT")]);
        cluster_parallel(&store, 1, &params(), &config());
    }
}
