//! The single-master / multiple-worker parallel clustering runtime
//! (paper §7, Figs. 6–8).
//!
//! Rank 0 is the master: it owns the Union–Find cluster store, the
//! fixed-capacity `Pending_Work_Buf`, and the `Idle_Workers` list; it
//! selects which generated pairs still need alignment, dispatches work
//! in batches of `b`, and regulates each worker's next pair-generation
//! request `r` so that pair inflow roughly matches alignment outflow
//! without overflowing the pending buffer.
//!
//! Ranks 1..p are workers: each builds its portion of the distributed
//! GST, then iterates — *compute the previously allocated alignment
//! batch, generate the `r` pairs the master asked for, report both, and
//! receive the next allocation*. Pair generation within a rank is in
//! decreasing maximal-match order, which "roughly approximates the
//! global sorted order in practice" (§7).
//!
//! A worker whose generator is exhausted (*passive*) parks in a blocking
//! receive; the master keeps it busy with pending alignments from other
//! workers' pairs, which is the load-balancing behaviour of Fig. 6.
//!
//! Substitution note (see DESIGN.md): workers read fragment sequences
//! for alignment from the shared read-only store; protocol traffic
//! (pair batches, results, flow control) is what is being modelled and
//! measured here, and fragment-byte movement is accounted once in the
//! GST construction phase.

use crate::clustering::{
    canonical_skip, same_fragment_skip, ClusterParams, ClusterStats, Clustering, PairDecider,
};
use crate::parallel_gst::{compute_owners, rank_build_gst, RankGstReport};
use crate::unionfind::UnionFind;
use pgasm_gst::{PairGenerator, PromisingPair};
use pgasm_mpisim::codec::{Decoder, Encoder};
use pgasm_mpisim::{thread_cpu_seconds, Comm, CommStats, CostModel};
use pgasm_seq::{FragmentStore, SeqId};
use pgasm_telemetry::RankReport;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

const TAG_W2M: u32 = 1;
const TAG_M2W: u32 = 2;

/// Master–worker *runtime* configuration: protocol knobs only. What to
/// cluster and how (GST window, scoring, acceptance, mode) lives in
/// [`ClusterParams`], passed alongside — the one place those parameters
/// are defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterWorkerConfig {
    /// Alignment batch size `b` (pairs per AW message).
    pub batch: usize,
    /// Capacity of the master's pending-work buffer (flow-control
    /// target; the buffer itself degrades gracefully if exceeded).
    pub pending_cap: usize,
}

impl Default for MasterWorkerConfig {
    fn default() -> Self {
        MasterWorkerConfig { batch: 64, pending_cap: 4096 }
    }
}

/// Outcome of a parallel clustering run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelClusterReport {
    /// The final clustering (identical to the serial result).
    pub clustering: Clustering,
    /// Aggregated work statistics.
    pub stats: ClusterStats,
    /// Per-rank GST construction reports.
    pub gst_reports: Vec<RankGstReport>,
    /// Wall-clock seconds of the GST phase (max over ranks).
    pub gst_seconds: f64,
    /// Wall-clock seconds of the clustering phase (max over ranks).
    pub cluster_seconds: f64,
    /// Per-worker idle fraction during clustering (blocked time /
    /// phase time) — the §7.2 idle-percentage metric.
    pub worker_idle_fraction: Vec<f64>,
    /// Fraction of the clustering phase the master spent available
    /// (blocked waiting for requests) — §7.2 reports 90% → 70%.
    pub master_availability: f64,
    /// Per-rank traffic during the clustering phase.
    pub comm: Vec<CommStats>,
    /// Per-rank thread-CPU seconds spent in the clustering phase
    /// (rank 0 = master). Immune to core oversubscription, so modelled
    /// scaling curves remain meaningful on small hosts.
    pub cpu_seconds: Vec<f64>,
    /// Per-rank telemetry channels: role, CPU/idle seconds, rank-local
    /// counters (pairs generated/aligned/accepted, batch round-trips,
    /// peak queue depth), and per-tag traffic with modelled α–β time.
    pub ranks: Vec<RankReport>,
}

struct RankOutcome {
    clustering: Option<Clustering>,
    stats: Option<ClusterStats>,
    gst_report: RankGstReport,
    cluster_seconds: f64,
    idle_fraction: f64,
    comm: CommStats,
    cpu_seconds: f64,
    counters: BTreeMap<String, u64>,
    rank_report: RankReport,
}

fn encode_pair(e: &mut Encoder, p: &PromisingPair) {
    e.put_u32(p.a.0);
    e.put_u32(p.b.0);
    e.put_u32(p.a_pos);
    e.put_u32(p.b_pos);
    e.put_u32(p.match_len);
}

fn decode_pair(d: &mut Decoder) -> PromisingPair {
    PromisingPair {
        a: SeqId(d.get_u32()),
        b: SeqId(d.get_u32()),
        a_pos: d.get_u32(),
        b_pos: d.get_u32(),
        match_len: d.get_u32(),
    }
}

/// Run the master–worker clustering on `p ≥ 2` ranks. `params` says
/// what to cluster and how; `config` tunes the runtime protocol.
pub fn cluster_parallel(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> ParallelClusterReport {
    assert!(p >= 2, "master–worker needs at least 2 ranks");
    assert!(!store.is_double_stranded(), "pass the original single-stranded fragments");
    let n = store.num_fragments();
    let ds = store.with_reverse_complements();
    let owner = compute_owners(&ds, p, 1);
    let (ds, owner, params, config) = (&ds, &owner, *params, *config);

    let outcomes: Vec<RankOutcome> = pgasm_mpisim::run(p, move |comm| {
        // Phase 1: distributed GST over worker ranks.
        let gst_t0 = Instant::now();
        let (gst, _text, gst_report) = rank_build_gst(comm, ds, owner, params.gst, 1);
        comm.barrier();
        let gst_wall = gst_t0.elapsed().as_secs_f64();
        let mut gst_report = gst_report;
        gst_report.compute_seconds = gst_report.compute_seconds.min(gst_wall);

        // Phase 2: clustering.
        let before = comm.stats();
        let cpu0 = thread_cpu_seconds();
        let t0 = Instant::now();
        let mut outcome = if comm.rank() == 0 {
            drop(gst);
            master_loop(comm, ds, n, &params, &config)
        } else {
            worker_loop(comm, ds, gst, &params, &config)
        };
        let wall = t0.elapsed().as_secs_f64();
        let cpu = thread_cpu_seconds() - cpu0;
        let after = comm.stats();
        let blocked =
            ((after.wait_ns + after.barrier_ns) - (before.wait_ns + before.barrier_ns)) as f64 * 1e-9;
        outcome.gst_report = gst_report;
        outcome.cluster_seconds = wall;
        outcome.cpu_seconds = cpu;
        outcome.idle_fraction = if wall > 0.0 { (blocked / wall).min(1.0) } else { 0.0 };
        outcome.comm = CommStats {
            msgs_sent: after.msgs_sent - before.msgs_sent,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            msgs_recv: after.msgs_recv - before.msgs_recv,
            bytes_recv: after.bytes_recv - before.bytes_recv,
            wait_ns: after.wait_ns - before.wait_ns,
            barrier_ns: after.barrier_ns - before.barrier_ns,
        };
        // Fold this rank's channel for the RunReport: per-tag traffic
        // (the whole run, GST collectives included) with protocol tags
        // relabelled, plus the loop's own counters.
        let mut comm_rows = comm.tag_stats(&CostModel::BLUEGENE_L);
        for row in &mut comm_rows {
            row.label = match row.tag {
                TAG_W2M => "w2m".to_string(),
                TAG_M2W => "m2w".to_string(),
                _ => std::mem::take(&mut row.label),
            };
        }
        outcome.rank_report = RankReport {
            rank: comm.rank(),
            role: if comm.rank() == 0 { "master" } else { "worker" }.to_string(),
            cpu_seconds: cpu,
            idle_seconds: blocked,
            counters: std::mem::take(&mut outcome.counters),
            comm: comm_rows,
        };
        outcome
    });

    let master = &outcomes[0];
    ParallelClusterReport {
        clustering: master.clustering.clone().expect("master produced the clustering"),
        stats: master.stats.expect("master aggregated stats"),
        gst_seconds: outcomes.iter().map(|o| o.gst_report.compute_seconds).fold(0.0, f64::max),
        cluster_seconds: outcomes.iter().map(|o| o.cluster_seconds).fold(0.0, f64::max),
        worker_idle_fraction: outcomes[1..].iter().map(|o| o.idle_fraction).collect(),
        master_availability: master.idle_fraction,
        comm: outcomes.iter().map(|o| o.comm).collect(),
        cpu_seconds: outcomes.iter().map(|o| o.cpu_seconds).collect(),
        ranks: outcomes.iter().map(|o| o.rank_report.clone()).collect(),
        gst_reports: outcomes.into_iter().map(|o| o.gst_report).collect(),
    }
}

/// The master's event loop (paper Fig. 7).
fn master_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    n: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> RankOutcome {
    let p = comm.size();
    let b = config.batch;
    let mut clusters = MasterClusters::new(n, params);
    let mut pending: VecDeque<PromisingPair> = VecDeque::with_capacity(config.pending_cap);
    let mut worker_active = vec![true; p];
    let mut worker_idle = vec![false; p];
    let mut outstanding = vec![false; p];
    let mut stats = ClusterStats::default();
    let mut selected: u64 = 0;
    let mut peak_queue_depth: u64 = 0;
    let mut batches_dispatched: u64 = 0;

    let frag_of = |seq: SeqId| ds.seq_to_fragment(seq).0 .0;

    loop {
        // Termination: every worker passive, nothing pending, nothing
        // in flight.
        let done = (1..p).all(|i| !worker_active[i]) && pending.is_empty() && !outstanding.iter().any(|&o| o);
        if done {
            for (i, &idle) in worker_idle.iter().enumerate().skip(1) {
                debug_assert!(idle, "at termination every worker is parked");
                let mut e = Encoder::new();
                e.put_u32(1); // terminate
                comm.send(i, TAG_M2W, e.finish());
            }
            break;
        }

        let msg = comm.recv(None, Some(TAG_W2M));
        let i = msg.src;
        let mut d = Decoder::new(msg.data);
        let active = d.get_u32() == 1;
        worker_active[i] = active;
        outstanding[i] = false;

        // Alignment results: merge clusters for accepted overlaps.
        let ar_count = d.get_u32();
        for _ in 0..ar_count {
            let a = SeqId(d.get_u32());
            let bq = SeqId(d.get_u32());
            let accepted = d.get_u32() == 1;
            let a_start = d.get_u32();
            let b_start = d.get_u32();
            let overlap_len = d.get_u32();
            stats.aligned += 1;
            if accepted {
                stats.accepted += 1;
                clusters.record_accept(ds, a, bq, a_start, b_start, overlap_len, &mut stats);
            }
        }
        stats.dp_cells += d.get_u64();

        // New promising pairs: keep only those whose fragments are in
        // different clusters *right now*.
        let np_count = d.get_u32();
        for _ in 0..np_count {
            let pair = decode_pair(&mut d);
            stats.generated += 1;
            if !clusters.skip_pair(frag_of(pair.a), frag_of(pair.b)) {
                pending.push_back(pair);
                selected += 1;
            }
        }
        peak_queue_depth = peak_queue_depth.max(pending.len() as u64);

        // Dispatch to idle workers first (Fig. 7).
        for j in 1..p {
            if worker_idle[j] && !pending.is_empty() {
                let batch: Vec<PromisingPair> = drain_batch(&mut pending, b);
                send_allocation(comm, j, 0, &batch, false);
                worker_idle[j] = false;
                outstanding[j] = true;
                batches_dispatched += 1;
            }
        }

        // Reply to the reporter: next batch (if any) + its new r.
        let batch: Vec<PromisingPair> = drain_batch(&mut pending, b);
        if !batch.is_empty() {
            batches_dispatched += 1;
        }
        let r = compute_r(b, config.pending_cap, pending.len(), &worker_active, stats.generated, selected);
        if batch.is_empty() && !active {
            worker_idle[i] = true;
            send_allocation(comm, i, r, &[], false);
        } else {
            outstanding[i] = !batch.is_empty();
            send_allocation(comm, i, r, &batch, false);
        }
    }

    let counters = BTreeMap::from([
        ("pairs_generated".to_string(), stats.generated),
        ("pairs_aligned".to_string(), stats.aligned),
        ("pairs_accepted".to_string(), stats.accepted),
        ("pairs_selected".to_string(), selected),
        ("peak_queue_depth".to_string(), peak_queue_depth),
        ("batches_dispatched".to_string(), batches_dispatched),
    ]);
    RankOutcome {
        clustering: Some(clusters.finish(&mut stats)),
        stats: Some(stats),
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
    }
}

fn drain_batch(pending: &mut VecDeque<PromisingPair>, b: usize) -> Vec<PromisingPair> {
    let take = b.min(pending.len());
    pending.drain(..take).collect()
}

fn send_allocation(comm: &mut Comm, dest: usize, r: usize, batch: &[PromisingPair], terminate: bool) {
    let mut e = Encoder::with_capacity(8 + batch.len() * 20);
    e.put_u32(terminate as u32);
    e.put_u32(r as u32);
    e.put_u32(batch.len() as u32);
    for pair in batch {
        encode_pair(&mut e, pair);
    }
    comm.send(dest, TAG_M2W, e.finish());
}

/// The paper's flow-control rule (§7): request enough pairs that about
/// `b` of them will be selected for alignment, without overflowing the
/// pending buffer.
fn compute_r(b: usize, cap: usize, pending: usize, active: &[bool], generated: u64, selected: u64) -> usize {
    let p_active = active[1..].iter().filter(|&&a| a).count().max(1);
    let ratio = if generated < 64 { 0.5 } else { (selected as f64 / generated as f64).max(0.02) };
    let by_ratio = (b as f64 / ratio).ceil() as usize;
    let by_capacity = cap.saturating_sub(pending) / p_active;
    by_ratio.min(by_capacity).min(8 * b)
}

/// A worker's event loop (paper Fig. 8).
fn worker_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    gst: pgasm_gst::Gst,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> RankOutcome {
    let params = *params;
    let canonical = params.canonical_strands;
    let mut gen = PairGenerator::new(gst, params.mode, move |a, b| {
        same_fragment_skip(a, b) || (canonical && canonical_skip(a, b))
    });
    let decider = PairDecider { store: ds, params };
    let mut aw: Vec<PromisingPair> = Vec::new();
    let mut results: Vec<(PromisingPair, bool, u32, u32, u32)> = Vec::new();
    let mut cells_delta: u64 = 0;
    let mut r = config.batch;
    let mut np: Vec<PromisingPair> = Vec::new();
    let mut pairs_generated: u64 = 0;
    let mut pairs_aligned: u64 = 0;
    let mut pairs_accepted: u64 = 0;
    let mut round_trips: u64 = 0;

    loop {
        // Compute the alignments allocated last round.
        for pair in aw.drain(..) {
            let r = decider.align_full(&pair);
            cells_delta += r.cells;
            let accepted = params.criteria.accepts(r.identity, r.overlap_len);
            pairs_aligned += 1;
            pairs_accepted += accepted as u64;
            results.push((pair, accepted, r.a_range.0 as u32, r.b_range.0 as u32, r.overlap_len as u32));
        }
        // Generate the requested number of new pairs.
        np.clear();
        gen.next_batch(r, &mut np);
        pairs_generated += np.len() as u64;
        let active = !gen.is_exhausted();
        // Report.
        let mut e = Encoder::with_capacity(16 + np.len() * 20 + results.len() * 20);
        e.put_u32(active as u32);
        e.put_u32(results.len() as u32);
        for (pair, accepted, a_start, b_start, overlap_len) in results.drain(..) {
            e.put_u32(pair.a.0);
            e.put_u32(pair.b.0);
            e.put_u32(accepted as u32);
            e.put_u32(a_start);
            e.put_u32(b_start);
            e.put_u32(overlap_len);
        }
        e.put_u64(cells_delta);
        cells_delta = 0;
        e.put_u32(np.len() as u32);
        for pair in &np {
            encode_pair(&mut e, pair);
        }
        comm.send(0, TAG_W2M, e.finish());
        round_trips += 1;
        // Receive the next allocation (possibly parking idle first).
        loop {
            let m = comm.recv(Some(0), Some(TAG_M2W));
            let mut d = Decoder::new(m.data);
            let terminate = d.get_u32() == 1;
            if terminate {
                return worker_outcome(BTreeMap::from([
                    ("pairs_generated".to_string(), pairs_generated),
                    ("pairs_aligned".to_string(), pairs_aligned),
                    ("pairs_accepted".to_string(), pairs_accepted),
                    ("batch_round_trips".to_string(), round_trips),
                ]));
            }
            r = d.get_u32() as usize;
            let count = d.get_u32();
            aw = (0..count).map(|_| decode_pair(&mut d)).collect();
            if aw.is_empty() && !active {
                // Passive with no work: park and wait for an
                // unsolicited allocation or termination.
                continue;
            }
            break;
        }
    }
}

/// The master's cluster store: plain Union–Find, or the §10
/// geometry-aware variant when `resolve_inconsistent` is on. In
/// geometric mode every generated pair is selected for alignment (the
/// cluster-check shortcut would hide the same-cluster conflicts the
/// mode exists to catch), accepted edges are buffered, and the
/// deterministic decreasing-overlap-length resolution runs at the end —
/// so the parallel result still equals the serial one.
enum MasterClusters {
    Plain(UnionFind),
    Geometric { n: usize, edges: Vec<(u32, u32, crate::geometry::AffineMap, u32)>, tol: i64 },
}

impl MasterClusters {
    fn new(n: usize, params: &ClusterParams) -> MasterClusters {
        if params.resolve_inconsistent {
            MasterClusters::Geometric { n, edges: Vec::new(), tol: params.geometry_tolerance }
        } else {
            MasterClusters::Plain(UnionFind::new(n))
        }
    }

    /// Should a generated pair be skipped (already co-clustered)?
    fn skip_pair(&mut self, a: u32, b: u32) -> bool {
        match self {
            MasterClusters::Plain(uf) => uf.same(a, b),
            // Geometric mode aligns everything.
            MasterClusters::Geometric { .. } => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_accept(
        &mut self,
        ds: &FragmentStore,
        a: SeqId,
        b: SeqId,
        a_start: u32,
        b_start: u32,
        overlap_len: u32,
        stats: &mut ClusterStats,
    ) {
        let fa = ds.seq_to_fragment(a).0 .0;
        let fb = ds.seq_to_fragment(b).0 .0;
        match self {
            MasterClusters::Plain(uf) => {
                if uf.union(fa, fb) {
                    stats.merges += 1;
                }
            }
            MasterClusters::Geometric { edges, .. } => {
                let edge = crate::geometry::overlap_edge(
                    matches!(ds.seq_to_fragment(a).1, pgasm_seq::Strand::Reverse),
                    matches!(ds.seq_to_fragment(b).1, pgasm_seq::Strand::Reverse),
                    ds.len_of(a),
                    ds.len_of(b),
                    a_start as usize,
                    b_start as usize,
                );
                edges.push((fa, fb, edge, overlap_len));
            }
        }
    }

    fn finish(self, stats: &mut ClusterStats) -> Clustering {
        match self {
            MasterClusters::Plain(mut uf) => Clustering::from_unionfind(&mut uf),
            MasterClusters::Geometric { n, edges, tol } => {
                crate::clustering::apply_geometric_edges(n, edges, tol, stats)
            }
        }
    }
}

fn worker_outcome(counters: BTreeMap<String, u64>) -> RankOutcome {
    RankOutcome {
        clustering: None,
        stats: None,
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_serial;
    use pgasm_align::AcceptCriteria;
    use pgasm_gst::GstConfig;
    use pgasm_seq::DnaSeq;

    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
        let b = g.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read <= b.len() {
            out.push(DnaSeq::from_ascii(&b[at..at + read]));
            at += step;
        }
        out
    }

    fn test_store() -> FragmentStore {
        let mut reads = tile(&genome(1, 1500), 200, 90);
        reads.extend(tile(&genome(2, 1200), 200, 90));
        reads.extend(tile(&genome(3, 900), 200, 90));
        // A couple of orphans.
        reads.push(DnaSeq::from(genome(50, 220).as_str()));
        reads.push(DnaSeq::from(genome(51, 220).as_str()));
        FragmentStore::from_seqs(reads)
    }

    fn params() -> ClusterParams {
        ClusterParams {
            gst: GstConfig { w: 8, psi: 16 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
            ..Default::default()
        }
    }

    fn config() -> MasterWorkerConfig {
        MasterWorkerConfig { batch: 8, pending_cap: 256 }
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        for p in [2usize, 3, 5] {
            let report = cluster_parallel(&store, p, &params(), &config());
            assert_eq!(report.clustering, serial, "p = {p}");
        }
    }

    #[test]
    fn stats_are_consistent() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        let s = report.stats;
        assert!(s.generated > 0);
        assert!(s.aligned <= s.generated);
        assert!(s.accepted <= s.aligned);
        assert!(s.merges <= s.accepted);
        assert!((s.merges as usize) < store.num_fragments());
        // Every fragment appears in exactly one cluster.
        let total: usize = report.clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, store.num_fragments());
    }

    #[test]
    fn heuristic_saves_alignments_in_parallel_too() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert!(
            report.stats.aligned < report.stats.generated,
            "cluster-check must skip some alignments: {:?}",
            report.stats
        );
    }

    #[test]
    fn report_fields_populated() {
        let store = test_store();
        let report = cluster_parallel(&store, 4, &params(), &config());
        assert_eq!(report.worker_idle_fraction.len(), 3);
        assert_eq!(report.comm.len(), 4);
        assert_eq!(report.gst_reports.len(), 4);
        assert!(report.cluster_seconds > 0.0);
        assert!(report.master_availability >= 0.0 && report.master_availability <= 1.0);
        // Clustering-phase traffic exists in both directions at the master.
        assert!(report.comm[0].msgs_recv > 0);
        assert!(report.comm[0].msgs_sent > 0);
    }

    #[test]
    fn rank_reports_carry_counters_and_comm() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert_eq!(report.ranks.len(), 3);
        assert_eq!(report.ranks[0].role, "master");
        assert!(report.ranks[1..].iter().all(|r| r.role == "worker"));
        // The master's selection counters match aggregate stats; workers'
        // per-rank tallies sum to the same totals.
        assert_eq!(report.ranks[0].counter("pairs_generated"), report.stats.generated);
        assert_eq!(report.ranks[0].counter("pairs_aligned"), report.stats.aligned);
        let worker_aligned: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_aligned")).sum();
        let worker_generated: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_generated")).sum();
        let worker_accepted: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_accepted")).sum();
        assert_eq!(worker_aligned, report.stats.aligned);
        assert_eq!(worker_generated, report.stats.generated);
        assert_eq!(worker_accepted, report.stats.accepted);
        // Per-tag comm channels include the relabelled protocol tags and
        // carry modelled time.
        for r in &report.ranks {
            assert!(r.comm.iter().any(|t| t.label == "w2m"));
            assert!(r.comm.iter().any(|t| t.label == "m2w"));
            assert!(r.modelled_comm_seconds() > 0.0);
        }
        // Workers report at least one batch round-trip.
        assert!(report.ranks[1..].iter().all(|r| r.counter("batch_round_trips") >= 1));
    }

    #[test]
    fn single_fragment_terminates() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from(genome(9, 300).as_str())]);
        let report = cluster_parallel(&store, 2, &params(), &config());
        assert_eq!(report.clustering.clusters.len(), 1);
        assert_eq!(report.stats.generated, 0);
    }

    #[test]
    fn geometric_mode_parallel_matches_serial() {
        let store = test_store();
        let params = ClusterParams { resolve_inconsistent: true, ..params() };
        let (serial, serial_stats) = cluster_serial(&store, &params);
        for p in [2usize, 4] {
            let report = cluster_parallel(&store, p, &params, &config());
            assert_eq!(report.clustering, serial, "p = {p}");
            assert_eq!(report.stats.aligned, serial_stats.aligned, "geometric mode aligns everything");
            assert_eq!(report.stats.inconsistent, serial_stats.inconsistent);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn requires_two_ranks() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from("ACGT")]);
        cluster_parallel(&store, 1, &params(), &config());
    }
}
