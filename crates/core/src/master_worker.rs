//! The single-master / multiple-worker parallel clustering runtime
//! (paper §7, Figs. 6–8) — the first client of the generic
//! [`crate::engine`] distributed task engine.
//!
//! The protocol itself (the event-driven master pump, AR/NP/R/AW
//! message shapes, `compute_r` flow control, park/unpark, coalescing
//! interaction, termination) lives in [`crate::engine`]; this module
//! supplies what makes it *clustering*:
//!
//! - rank 0's [`ClusterSource`]: the Union–Find cluster store (or the
//!   §10 geometry-aware variant), Union–Find merges applied per drained
//!   `AR` report, and the cluster-check pair selection that discards
//!   generated pairs whose fragments already co-cluster;
//! - ranks 1..p's [`ClusterSink`]: the per-rank GST pair generator
//!   (decreasing maximal-match order, which "roughly approximates the
//!   global sorted order in practice", §7), the two-phase alignment
//!   kernel with its reusable zero-allocation scratch, and the AR wire
//!   format (per-pair verdicts plus the DP-cell / early-exit / skipped-
//!   traceback work accounting);
//! - the phase orchestration around the engine: distributed GST build,
//!   protocol-message coalescing, per-rank timing/blocked-time capture,
//!   tag relabelling, and the [`RankReport`] channels.
//!
//! The wire format, protocol tags, counters, and trace events are
//! exactly those of the pre-extraction runtime — the re-hosting is
//! behaviour-preserving bit-for-bit.
//!
//! Substitution note (see DESIGN.md): workers read fragment sequences
//! for alignment from the shared read-only store; protocol traffic
//! (pair batches, results, flow control) is what is being modelled and
//! measured here, and fragment-byte movement is accounted once in the
//! GST construction phase.

use crate::checkpoint::{self as ckpt, StageRecovery};
use crate::clustering::{
    canonical_skip, same_fragment_skip, ClusterParams, ClusterStats, Clustering, PairDecider,
};
use crate::engine::{
    run_master, run_master_ckpt, run_worker, CheckpointHook, EngineConfig, MasterReport, Task, TaskSink,
    TaskSource, TAG_M2W_AW, TAG_M2W_R, TAG_W2M_AR, TAG_W2M_NP,
};
use crate::parallel_gst::{bucket_owner, compute_owners, rank_build_gst, RankGstReport};
use crate::unionfind::UnionFind;
use pgasm_align::AlignScratch;
use pgasm_gst::{bucket_suffixes, GenMode, Gst, GstConfig, PairGenerator, PromisingPair, Suffix};
use pgasm_mpisim::codec::{checked_len, Decoder, Encoder};
use pgasm_mpisim::{thread_cpu_seconds, CoalescePolicy, Comm, CommStats, CostModel};
use pgasm_seq::{FragmentStore, SeqId};
use pgasm_telemetry::trace::{RankTrace, TraceCategory, TraceSpec, Tracer};
use pgasm_telemetry::{names, GaugeSampler, RankReport, RankSeries};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Master–worker *runtime* configuration: protocol knobs only. What to
/// cluster and how (GST window, scoring, acceptance, mode) lives in
/// [`ClusterParams`], passed alongside — the one place those parameters
/// are defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterWorkerConfig {
    /// Alignment batch size `b` (pairs per AW message).
    pub batch: usize,
    /// Capacity of the master's pending-work buffer (flow-control
    /// target; the buffer itself degrades gracefully if exceeded).
    pub pending_cap: usize,
    /// Sender-side small-message coalescing for the protocol traffic:
    /// each rank's per-destination message burst (AR+NP, R+AW) ships as
    /// one framed envelope. `None` puts every logical message on the
    /// wire individually (the ablation baseline).
    pub coalesce: Option<CoalescePolicy>,
}

impl Default for MasterWorkerConfig {
    fn default() -> Self {
        MasterWorkerConfig { batch: 64, pending_cap: 4096, coalesce: Some(CoalescePolicy::default()) }
    }
}

impl MasterWorkerConfig {
    /// The engine-facing subset (coalescing stays with this module,
    /// which owns the `Comm` setup; the stall timeout arrives with the
    /// per-run [`StageRecovery`], not this serialisable config).
    fn engine(&self, stall_timeout: Option<u64>) -> EngineConfig {
        EngineConfig { batch: self.batch, pending_cap: self.pending_cap, stall_timeout }
    }
}

/// Outcome of a parallel clustering run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelClusterReport {
    /// The final clustering (identical to the serial result).
    pub clustering: Clustering,
    /// Aggregated work statistics.
    pub stats: ClusterStats,
    /// Per-rank GST construction reports.
    pub gst_reports: Vec<RankGstReport>,
    /// Wall-clock seconds of the GST phase (max over ranks).
    pub gst_seconds: f64,
    /// Wall-clock seconds of the clustering phase (max over ranks).
    pub cluster_seconds: f64,
    /// Per-worker idle fraction during clustering (blocked time /
    /// phase time) — the §7.2 idle-percentage metric.
    pub worker_idle_fraction: Vec<f64>,
    /// Fraction of the clustering phase the master spent available
    /// (blocked waiting for requests) — §7.2 reports 90% → 70%.
    pub master_availability: f64,
    /// Per-rank traffic during the clustering phase.
    pub comm: Vec<CommStats>,
    /// Per-rank thread-CPU seconds spent in the clustering phase
    /// (rank 0 = master). Immune to core oversubscription, so modelled
    /// scaling curves remain meaningful on small hosts.
    pub cpu_seconds: Vec<f64>,
    /// Per-rank telemetry channels: role, CPU/idle seconds, rank-local
    /// counters (pairs generated/aligned/accepted, batch round-trips,
    /// peak queue depth), and per-tag traffic with modelled α–β time.
    pub ranks: Vec<RankReport>,
    /// Per-rank event traces covering the whole run (GST + clustering);
    /// empty tracks when tracing was off.
    pub traces: Vec<RankTrace>,
    /// Per-rank gauge time series (queue depths, worker occupancy,
    /// coalesce staging, align scratch); empty when tracing was off.
    pub series: Vec<RankSeries>,
    /// Tasks re-queued from dead workers' leases (0 in fault-free runs).
    #[serde(default)]
    pub recovered_tasks: u64,
    /// Worker ranks the master marked dead during the run.
    #[serde(default)]
    pub dead_ranks: u64,
    /// The fault plan killed the master: the clustering above is
    /// partial and the run should resume from the last checkpoint.
    #[serde(default)]
    pub killed: bool,
}

struct RankOutcome {
    clustering: Option<Clustering>,
    stats: Option<ClusterStats>,
    gst_report: RankGstReport,
    cluster_seconds: f64,
    idle_fraction: f64,
    comm: CommStats,
    cpu_seconds: f64,
    counters: BTreeMap<String, u64>,
    rank_report: RankReport,
    trace: RankTrace,
    series: RankSeries,
    recovered_tasks: u64,
    dead_ranks: u64,
    killed: bool,
}

/// A promising pair travels as five `u32`s (the engine's default
/// 20-byte size hint is exact).
impl Task for PromisingPair {
    fn encode(&self, e: &mut Encoder) {
        e.put_u32(self.a.0);
        e.put_u32(self.b.0);
        e.put_u32(self.a_pos);
        e.put_u32(self.b_pos);
        e.put_u32(self.match_len);
    }

    fn decode(d: &mut Decoder) -> PromisingPair {
        PromisingPair {
            a: SeqId(d.get_u32()),
            b: SeqId(d.get_u32()),
            a_pos: d.get_u32(),
            b_pos: d.get_u32(),
            match_len: d.get_u32(),
        }
    }
}

/// Run the master–worker clustering on `p ≥ 2` ranks. `params` says
/// what to cluster and how; `config` tunes the runtime protocol.
pub fn cluster_parallel(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
) -> ParallelClusterReport {
    cluster_parallel_traced(store, p, params, config, TraceSpec::off())
}

/// [`cluster_parallel`] with per-rank event tracing. The [`TraceSpec`]
/// is a separate argument (not a `MasterWorkerConfig` field) because it
/// carries the run's shared clock epoch, which has no serial form.
pub fn cluster_parallel_traced(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
    trace: TraceSpec,
) -> ParallelClusterReport {
    cluster_parallel_ft(store, p, params, config, trace, &StageRecovery::default())
}

/// [`cluster_parallel_traced`] under a [`StageRecovery`]: scripted
/// fault injection, master liveness timeout, and checkpoint/resume.
/// The default recovery makes this byte-identical to the plain run —
/// the comm layer is not even armed.
pub fn cluster_parallel_ft(
    store: &FragmentStore,
    p: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
    trace: TraceSpec,
    recovery: &StageRecovery,
) -> ParallelClusterReport {
    assert!(p >= 2, "master–worker needs at least 2 ranks");
    assert!(!store.is_double_stranded(), "pass the original single-stranded fragments");
    let n = store.num_fragments();
    let ds = store.with_reverse_complements();
    let owner = compute_owners(&ds, p, 1);
    let (ds, owner, params, config) = (&ds, &owner, *params, *config);

    let outcomes: Vec<RankOutcome> = pgasm_mpisim::run(p, move |comm| {
        // Tracing covers the whole rank body — GST collectives and the
        // clustering protocol land on one per-rank track.
        let role = if comm.rank() == 0 { "master" } else { "worker" };
        comm.set_tracer(trace.tracer(comm.rank(), role));
        comm.set_sampler(trace.sampler(comm.rank(), role));
        // Arm scripted failures before any traffic. Kills only trip in
        // the engine's fault-aware ops, so the GST collectives below
        // stay plain and a scripted kill lands inside the protocol
        // phase — after the last barrier any rank will ever pass.
        if !recovery.faults.is_empty() {
            comm.set_fault_plan(&recovery.faults);
        }
        // Phase 1: distributed GST over worker ranks.
        let gst_t0 = Instant::now();
        let (gst, _text, gst_report) = rank_build_gst(comm, ds, owner, params.gst, 1);
        comm.barrier();
        let gst_wall = gst_t0.elapsed().as_secs_f64();
        let mut gst_report = gst_report;
        gst_report.compute_seconds = gst_report.compute_seconds.min(gst_wall);

        // Phase 2: clustering, with protocol-message coalescing on
        // every rank (the GST collectives above bypass the queues).
        comm.set_coalesce(config.coalesce);
        let before = comm.stats();
        let cpu0 = thread_cpu_seconds();
        let t0 = Instant::now();
        let mut outcome = if comm.rank() == 0 {
            drop(gst);
            master_loop(comm, ds, n, &params, &config, recovery)
        } else {
            worker_loop(comm, ds, gst, &params, &config, recovery)
        };
        let wall = t0.elapsed().as_secs_f64();
        let cpu = thread_cpu_seconds() - cpu0;
        let after = comm.stats();
        let blocked =
            ((after.wait_ns + after.barrier_ns) - (before.wait_ns + before.barrier_ns)) as f64 * 1e-9;
        outcome.gst_report = gst_report;
        outcome.cluster_seconds = wall;
        outcome.cpu_seconds = cpu;
        outcome.idle_fraction = if wall > 0.0 { (blocked / wall).min(1.0) } else { 0.0 };
        outcome.comm = CommStats {
            msgs_sent: after.msgs_sent - before.msgs_sent,
            bytes_sent: after.bytes_sent - before.bytes_sent,
            msgs_recv: after.msgs_recv - before.msgs_recv,
            bytes_recv: after.bytes_recv - before.bytes_recv,
            wait_ns: after.wait_ns - before.wait_ns,
            barrier_ns: after.barrier_ns - before.barrier_ns,
        };
        // Fold this rank's channel for the RunReport: per-tag traffic
        // (the whole run, GST collectives included) with protocol tags
        // relabelled, plus the loop's own counters. Coalesced protocol
        // envelopes appear under the `"coalesced"` row.
        let mut comm_rows = comm.tag_stats(&CostModel::BLUEGENE_L);
        for row in &mut comm_rows {
            row.label = match row.tag {
                TAG_W2M_AR => names::TAG_W2M_AR.to_string(),
                TAG_W2M_NP => names::TAG_W2M_NP.to_string(),
                TAG_M2W_R => names::TAG_M2W_R.to_string(),
                TAG_M2W_AW => names::TAG_M2W_AW.to_string(),
                _ => std::mem::take(&mut row.label),
            };
        }
        // Coalescing-layer counters join the loop's own tallies, plus
        // the whole-run blocked-time totals (GST phase included) that
        // the trace-derived idle-gap histograms are checked against.
        let cs = comm.coalesce_stats();
        for (name, value) in [
            (names::MSGS_COALESCED, cs.msgs_coalesced),
            (names::ENVELOPES_SENT, cs.envelopes_sent),
            (names::FLUSH_BY_BYTES, cs.flush_bytes),
            (names::FLUSH_BY_MSGS, cs.flush_msgs),
            (names::FLUSH_ON_BLOCK, cs.flush_block),
            (names::FLUSH_EXPLICIT, cs.flush_explicit),
            (names::WAIT_NS_TOTAL, after.wait_ns),
            (names::BARRIER_NS_TOTAL, after.barrier_ns),
        ] {
            outcome.counters.insert(name.to_string(), value);
        }
        // Injected-fault tallies: only under an armed plan, and only the
        // nonzero ones — fault-free runs keep byte-identical reports.
        if comm.has_fault_plan() {
            let fs = comm.fault_stats();
            for (name, value) in [
                (names::FAULT_KILLS, fs.kills),
                (names::FAULT_MSGS_DROPPED, fs.msgs_dropped),
                (names::FAULT_MSGS_DELAYED, fs.msgs_delayed),
                (names::FAULT_DEATH_NOTICES, fs.death_notices),
                (names::FAULT_MSGS_LOST, fs.msgs_lost),
                (names::FAULT_EVENTS, fs.events),
            ] {
                if value > 0 {
                    outcome.counters.insert(name.to_string(), value);
                }
            }
        }
        outcome.rank_report = RankReport {
            rank: comm.rank(),
            role: role.to_string(),
            cpu_seconds: cpu,
            idle_seconds: blocked,
            counters: std::mem::take(&mut outcome.counters),
            comm: comm_rows,
            idle_gaps: None,
        };
        outcome.trace = comm.take_trace();
        outcome.series = comm.take_series();
        outcome
    });

    let master = &outcomes[0];
    ParallelClusterReport {
        clustering: master.clustering.clone().expect("master produced the clustering"),
        stats: master.stats.expect("master aggregated stats"),
        gst_seconds: outcomes.iter().map(|o| o.gst_report.compute_seconds).fold(0.0, f64::max),
        cluster_seconds: outcomes.iter().map(|o| o.cluster_seconds).fold(0.0, f64::max),
        worker_idle_fraction: outcomes[1..].iter().map(|o| o.idle_fraction).collect(),
        master_availability: master.idle_fraction,
        comm: outcomes.iter().map(|o| o.comm).collect(),
        cpu_seconds: outcomes.iter().map(|o| o.cpu_seconds).collect(),
        ranks: outcomes.iter().map(|o| o.rank_report.clone()).collect(),
        traces: outcomes.iter().map(|o| o.trace.clone()).collect(),
        series: outcomes.iter().map(|o| o.series.clone()).collect(),
        recovered_tasks: master.recovered_tasks,
        dead_ranks: master.dead_ranks,
        killed: master.killed,
        gst_reports: outcomes.into_iter().map(|o| o.gst_report).collect(),
    }
}

/// Master-side clustering client: owns the cluster store and the work
/// statistics, applies Union–Find merges (AR) the moment reports drain,
/// and selects only pairs whose fragments are in different clusters
/// *right now* (NP) — the two halves of Fig. 7 the engine delegates.
struct ClusterSource<'a> {
    ds: &'a FragmentStore,
    clusters: MasterClusters,
    stats: ClusterStats,
}

impl TaskSource<PromisingPair> for ClusterSource<'_> {
    fn absorb_results(&mut self, _src: usize, d: &mut Decoder) {
        // Alignment results: merge clusters for accepted overlaps.
        let ar_count = d.get_u32();
        for _ in 0..ar_count {
            let a = SeqId(d.get_u32());
            let bq = SeqId(d.get_u32());
            let accepted = d.get_u32() == 1;
            let a_start = d.get_u32();
            let b_start = d.get_u32();
            let overlap_len = d.get_u32();
            self.stats.aligned += 1;
            if accepted {
                self.stats.accepted += 1;
                self.clusters.record_accept(self.ds, a, bq, a_start, b_start, overlap_len, &mut self.stats);
            }
        }
        // Trailing work accounting: per-phase DP-cell split plus the
        // early-exit / skipped-traceback tallies.
        let c1 = d.get_u64();
        let c2 = d.get_u64();
        self.stats.dp_cells += c1 + c2;
        self.stats.dp_cells_phase1 += c1;
        self.stats.dp_cells_phase2 += c2;
        self.stats.early_exits += d.get_u64();
        self.stats.tracebacks_skipped += d.get_u64();
        self.stats.cells_saved_adaptive += d.get_u64();
        self.stats.band_rows_shrunk += d.get_u64();
    }

    fn select(&mut self, pair: &PromisingPair) -> bool {
        let fa = self.ds.seq_to_fragment(pair.a).0 .0;
        let fb = self.ds.seq_to_fragment(pair.b).0 .0;
        !self.clusters.skip_pair(fa, fb)
    }
}

impl ClusterSource<'_> {
    /// Serialize the master's durable state: the work statistics and
    /// the cluster store (Union–Find roots, or the buffered geometric
    /// edges). Engine counters ride along for forensics. Workers hold
    /// nothing durable — on resume they regenerate their pairs and the
    /// restored cluster-check discards what is already merged — so this
    /// is the complete resume state of the clustering stage.
    fn snapshot(&mut self, rep: &MasterReport) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(rep.tasks_announced)
            .put_u64(rep.tasks_selected)
            .put_u64(rep.recovered_tasks)
            .put_u64(rep.results_absorbed);
        for v in [
            self.stats.generated,
            self.stats.aligned,
            self.stats.accepted,
            self.stats.merges,
            self.stats.dp_cells,
            self.stats.dp_cells_phase1,
            self.stats.dp_cells_phase2,
            self.stats.early_exits,
            self.stats.tracebacks_skipped,
            self.stats.inconsistent,
            self.stats.cells_saved_adaptive,
            self.stats.band_rows_shrunk,
        ] {
            e.put_u64(v);
        }
        match &mut self.clusters {
            MasterClusters::Plain(uf) => {
                let n = uf.len();
                e.put_u32(0).put_u32(checked_len(n));
                for i in 0..n as u32 {
                    e.put_u32(uf.find(i));
                }
            }
            MasterClusters::Geometric { n, edges, tol } => {
                e.put_u32(1).put_u32(checked_len(*n)).put_u64(*tol as u64);
                e.put_u32(checked_len(edges.len()));
                for (fa, fb, map, overlap_len) in edges.iter() {
                    e.put_u32(*fa).put_u32(*fb);
                    e.put_u64(map.s as i64 as u64).put_u64(map.t as u64);
                    e.put_u32(*overlap_len);
                }
            }
        }
        e.finish().to_vec()
    }

    /// Restore the state [`Self::snapshot`] captured. The checkpoint's
    /// stage tag and checksum were already verified by the loader.
    fn restore(&mut self, payload: &[u8]) {
        let mut d = Decoder::new(payload.to_vec().into());
        // Engine counters are diagnostic only; the resumed run tallies
        // its own protocol work.
        for _ in 0..4 {
            d.get_u64();
        }
        self.stats.generated = d.get_u64();
        self.stats.aligned = d.get_u64();
        self.stats.accepted = d.get_u64();
        self.stats.merges = d.get_u64();
        self.stats.dp_cells = d.get_u64();
        self.stats.dp_cells_phase1 = d.get_u64();
        self.stats.dp_cells_phase2 = d.get_u64();
        self.stats.early_exits = d.get_u64();
        self.stats.tracebacks_skipped = d.get_u64();
        self.stats.inconsistent = d.get_u64();
        self.stats.cells_saved_adaptive = d.get_u64();
        self.stats.band_rows_shrunk = d.get_u64();
        match d.get_u32() {
            0 => {
                let n = d.get_u32() as usize;
                let mut uf = UnionFind::new(n);
                for i in 0..n as u32 {
                    uf.union(i, d.get_u32());
                }
                self.clusters = MasterClusters::Plain(uf);
            }
            _ => {
                let n = d.get_u32() as usize;
                let tol = d.get_u64() as i64;
                let count = d.get_u32();
                let mut edges = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let (fa, fb) = (d.get_u32(), d.get_u32());
                    let s = d.get_u64() as i64 as i8;
                    let t = d.get_u64() as i64;
                    let overlap_len = d.get_u32();
                    edges.push((fa, fb, crate::geometry::AffineMap { s, t }, overlap_len));
                }
                self.clusters = MasterClusters::Geometric { n, edges, tol };
            }
        }
    }
}

/// The master's side of the run: host the engine's event loop with a
/// [`ClusterSource`], then fold protocol tallies and cluster statistics
/// into the rank counters.
fn master_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    n: usize,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
    recovery: &StageRecovery,
) -> RankOutcome {
    let mut source =
        ClusterSource { ds, clusters: MasterClusters::new(n, params), stats: ClusterStats::default() };
    let resumed = match &recovery.resume_from {
        Some(path) => match ckpt::read_checkpoint(path, ckpt::STAGE_CLUSTER) {
            Some(payload) => {
                source.restore(&payload);
                true
            }
            None => false,
        },
        None => false,
    };
    let engine_cfg = config.engine(recovery.stall_timeout);
    let em = match recovery.ckpt_spec() {
        Some((path, every)) => {
            let mut write = |src: &mut ClusterSource, rep: &MasterReport| {
                let payload = src.snapshot(rep);
                ckpt::write_checkpoint(path, ckpt::STAGE_CLUSTER, &payload).unwrap_or(0)
            };
            run_master_ckpt(
                comm,
                &engine_cfg,
                &mut source,
                Vec::new(),
                Some(CheckpointHook { write: &mut write, every }),
            )
        }
        None => run_master(comm, &engine_cfg, &mut source, Vec::new()),
    };
    let ClusterSource { clusters, mut stats, .. } = source;
    // The engine counts announced tasks; for clustering that *is* the
    // generated-pairs total (every NP pair is announced exactly once).
    // A resumed run keeps the snapshot's tally and adds its own.
    if resumed {
        stats.generated += em.tasks_announced;
    } else {
        stats.generated = em.tasks_announced;
    }
    let counters = BTreeMap::from([
        (names::PAIRS_GENERATED.to_string(), stats.generated),
        (names::PAIRS_ALIGNED.to_string(), stats.aligned),
        (names::PAIRS_ACCEPTED.to_string(), stats.accepted),
        (names::PAIRS_SELECTED.to_string(), em.tasks_selected),
        (names::PEAK_QUEUE_DEPTH.to_string(), em.peak_queue_depth),
        (names::BATCHES_DISPATCHED.to_string(), em.batches_dispatched),
        (names::INBOX_DRAIN_DEPTH_MAX.to_string(), em.inbox_drain_depth_max),
        (names::ALIGN_PHASE1_CELLS.to_string(), stats.dp_cells_phase1),
        (names::ALIGN_PHASE2_CELLS.to_string(), stats.dp_cells_phase2),
        (names::ALIGN_EARLY_EXIT.to_string(), stats.early_exits),
        (names::ALIGN_TRACEBACK_SKIPPED.to_string(), stats.tracebacks_skipped),
        (names::ALIGN_CELLS_SAVED_ADAPTIVE.to_string(), stats.cells_saved_adaptive),
        (names::ALIGN_BAND_ROWS_SHRUNK.to_string(), stats.band_rows_shrunk),
    ]);
    let mut counters = counters;
    // Recovery tallies: only when something actually happened, so the
    // fault-free counter set stays byte-identical.
    for (name, value) in [
        (names::RECOVERED_TASKS, em.recovered_tasks),
        (names::DEAD_RANKS, em.dead_ranks),
        (names::CKPT_WRITES, em.ckpt_writes),
        (names::CKPT_BYTES, em.ckpt_bytes),
    ] {
        if value > 0 {
            counters.insert(name.to_string(), value);
        }
    }
    RankOutcome {
        clustering: Some(clusters.finish(&mut stats)),
        stats: Some(stats),
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
        trace: RankTrace::default(),
        series: RankSeries::default(),
        recovered_tasks: em.recovered_tasks,
        dead_ranks: em.dead_ranks,
        killed: em.killed,
    }
}

/// A pair generator rebuilt for an adopted scope — the dedup closure
/// has to be boxed because each rebuilt generator captures its own.
type AdoptedGenerator = PairGenerator<Box<dyn FnMut(SeqId, SeqId) -> bool>>;

/// Worker-side clustering client: computes allocated alignment batches
/// with the two-phase kernel (reusing one pre-sized scratch — the
/// alignment hot loop performs no per-pair heap allocation) and
/// generates pairs from the rank-local GST on request.
struct ClusterSink<'a, F: FnMut(SeqId, SeqId) -> bool> {
    gen: PairGenerator<F>,
    decider: PairDecider<'a>,
    scratch: AlignScratch,
    // Adoption state: the double-stranded store and enough of the run's
    // shape to rebuild a dead peer's GST portion on demand, plus the
    // chain of generators rebuilt so far (drained FIFO after `gen`).
    store: &'a FragmentStore,
    world: usize,
    gst_config: GstConfig,
    mode: GenMode,
    canonical: bool,
    adopted: VecDeque<AdoptedGenerator>,
    results: Vec<(PromisingPair, bool, u32, u32, u32)>,
    // Per-round work-accounting deltas (reset after each AR report)...
    cells1_delta: u64,
    cells2_delta: u64,
    early_delta: u64,
    skip_delta: u64,
    saved_delta: u64,
    shrunk_delta: u64,
    // ...and whole-run totals for the rank counters.
    cells_phase1: u64,
    cells_phase2: u64,
    early_exits: u64,
    tracebacks_skipped: u64,
    cells_saved: u64,
    rows_shrunk: u64,
    pairs_aligned: u64,
    pairs_accepted: u64,
}

impl<F: FnMut(SeqId, SeqId) -> bool> TaskSink<PromisingPair> for ClusterSink<'_, F> {
    fn run_batch(&mut self, tracer: &mut Tracer, batch: &mut Vec<PromisingPair>, e: &mut Encoder) {
        // Compute the alignments allocated last round.
        let had_aw = !batch.is_empty();
        if had_aw {
            tracer.begin_arg(TraceCategory::Align, names::EV_ALIGN_BATCH, "pairs", batch.len() as u64);
        }
        for pair in batch.drain(..) {
            let r = self.decider.align_full(&pair, &mut self.scratch);
            self.cells1_delta += r.cells_phase1;
            self.cells2_delta += r.cells_phase2;
            self.early_delta += r.early_exited as u64;
            self.skip_delta += r.traceback_skipped as u64;
            self.saved_delta += r.cells_saved_adaptive;
            self.shrunk_delta += r.band_rows_shrunk;
            let accepted = self.decider.params.criteria.accepts(r.identity, r.overlap_len);
            self.pairs_aligned += 1;
            self.pairs_accepted += accepted as u64;
            self.results.push((pair, accepted, r.a_range.0 as u32, r.b_range.0 as u32, r.overlap_len as u32));
        }
        if had_aw {
            tracer.end(TraceCategory::Align, names::EV_ALIGN_BATCH);
            tracer.instant_args(
                TraceCategory::Align,
                names::EV_ALIGN_CELLS,
                ("phase1", self.cells1_delta),
                ("phase2", self.cells2_delta),
            );
        }
        // The AR report: per-pair verdicts, then the round's DP-cell /
        // early-exit / skipped-traceback deltas.
        e.put_u32(checked_len(self.results.len()));
        for (pair, accepted, a_start, b_start, overlap_len) in self.results.drain(..) {
            e.put_u32(pair.a.0);
            e.put_u32(pair.b.0);
            e.put_u32(accepted as u32);
            e.put_u32(a_start);
            e.put_u32(b_start);
            e.put_u32(overlap_len);
        }
        e.put_u64(self.cells1_delta);
        e.put_u64(self.cells2_delta);
        e.put_u64(self.early_delta);
        e.put_u64(self.skip_delta);
        e.put_u64(self.saved_delta);
        e.put_u64(self.shrunk_delta);
        self.cells_phase1 += self.cells1_delta;
        self.cells_phase2 += self.cells2_delta;
        self.early_exits += self.early_delta;
        self.tracebacks_skipped += self.skip_delta;
        self.cells_saved += self.saved_delta;
        self.rows_shrunk += self.shrunk_delta;
        (self.cells1_delta, self.cells2_delta, self.early_delta, self.skip_delta) = (0, 0, 0, 0);
        (self.saved_delta, self.shrunk_delta) = (0, 0);
    }

    fn generate(&mut self, tracer: &mut Tracer, r: usize, out: &mut Vec<PromisingPair>) -> bool {
        tracer.begin_arg(TraceCategory::Worker, names::EV_GENERATE, "requested", r as u64);
        self.gen.next_batch(r, out);
        // Top up from adopted scopes once the rank's own generator runs
        // dry for this request.
        while out.len() < r {
            let Some(front) = self.adopted.front_mut() else { break };
            front.next_batch(r - out.len(), out);
            if front.is_exhausted() {
                self.adopted.pop_front();
            } else {
                break;
            }
        }
        tracer.end(TraceCategory::Worker, names::EV_GENERATE);
        !self.gen.is_exhausted() || !self.adopted.is_empty()
    }

    fn adopt_scope(&mut self, tracer: &mut Tracer, dead_rank: usize) {
        tracer.begin_arg(TraceCategory::Fault, names::EV_ADOPT_REBUILD, "dead", dead_rank as u64);
        // Bucket ownership is a pure hash of the bucket key, so this
        // rank can recompute exactly which buckets the dead rank owned
        // and rebuild its GST portion from the shared fragment store.
        // In-bucket suffix order may differ from the redistributed
        // build's, which permutes pair order within the scope — the
        // master's cluster-check absorbs reordering and duplicates, so
        // the final partition is unchanged.
        let builders = self.world - 1;
        let mut keyed: Vec<(u64, Vec<Suffix>)> = bucket_suffixes(self.store, self.gst_config.w)
            .into_iter()
            .filter(|(key, _)| bucket_owner(*key, builders, 1) == dead_rank)
            .collect();
        keyed.sort_by_key(|(key, _)| *key);
        let buckets: Vec<Vec<Suffix>> = keyed.into_iter().map(|(_, b)| b).collect();
        let gst = Gst::build_from_buckets(self.store, buckets, self.gst_config);
        let canonical = self.canonical;
        let skip: Box<dyn FnMut(SeqId, SeqId) -> bool> =
            Box::new(move |a, b| same_fragment_skip(a, b) || (canonical && canonical_skip(a, b)));
        self.adopted.push_back(PairGenerator::new(gst, self.mode, skip));
        tracer.end(TraceCategory::Fault, names::EV_ADOPT_REBUILD);
    }

    fn sample_gauges(&mut self, sampler: &mut GaugeSampler) {
        if sampler.is_enabled() {
            let id = sampler.register(names::GAUGE_ALIGN_SCRATCH_BYTES);
            sampler.sample(id, self.scratch.high_water_bytes());
        }
    }
}

/// A worker's side of the run: host the engine's event loop with a
/// [`ClusterSink`] over the rank-local GST.
fn worker_loop(
    comm: &mut Comm,
    ds: &FragmentStore,
    gst: pgasm_gst::Gst,
    params: &ClusterParams,
    config: &MasterWorkerConfig,
    recovery: &StageRecovery,
) -> RankOutcome {
    let params = *params;
    let canonical = params.canonical_strands;
    let gen = PairGenerator::new(gst, params.mode, move |a, b| {
        same_fragment_skip(a, b) || (canonical && canonical_skip(a, b))
    });
    let decider = PairDecider { store: ds, params };
    // One scratch per worker, pre-sized for the longest sequence in the
    // store: reused across every AW batch, so the alignment hot loop
    // performs no per-pair heap allocation (grow_events stays 0).
    let scratch = decider.new_scratch();
    let mut sink = ClusterSink {
        gen,
        decider,
        scratch,
        store: ds,
        world: comm.size(),
        gst_config: params.gst,
        mode: params.mode,
        canonical,
        adopted: VecDeque::new(),
        results: Vec::new(),
        cells1_delta: 0,
        cells2_delta: 0,
        early_delta: 0,
        skip_delta: 0,
        saved_delta: 0,
        shrunk_delta: 0,
        cells_phase1: 0,
        cells_phase2: 0,
        early_exits: 0,
        tracebacks_skipped: 0,
        cells_saved: 0,
        rows_shrunk: 0,
        pairs_aligned: 0,
        pairs_accepted: 0,
    };
    let ew = run_worker(comm, &config.engine(recovery.stall_timeout), &mut sink);
    let mut counters = BTreeMap::from([
        (names::PAIRS_GENERATED.to_string(), ew.tasks_generated),
        (names::PAIRS_ALIGNED.to_string(), sink.pairs_aligned),
        (names::PAIRS_ACCEPTED.to_string(), sink.pairs_accepted),
        (names::BATCH_ROUND_TRIPS.to_string(), ew.round_trips),
        (names::ALIGN_PHASE1_CELLS.to_string(), sink.cells_phase1),
        (names::ALIGN_PHASE2_CELLS.to_string(), sink.cells_phase2),
        (names::ALIGN_EARLY_EXIT.to_string(), sink.early_exits),
        (names::ALIGN_TRACEBACK_SKIPPED.to_string(), sink.tracebacks_skipped),
        (names::ALIGN_CELLS_SAVED_ADAPTIVE.to_string(), sink.cells_saved),
        (names::ALIGN_BAND_ROWS_SHRUNK.to_string(), sink.rows_shrunk),
        (names::SIMD_LANES.to_string(), pgasm_align::simd::effective_lanes()),
        (names::ALIGN_SCRATCH_BYTES_PEAK.to_string(), sink.scratch.high_water_bytes()),
        (names::ALIGN_SCRATCH_GROWS.to_string(), sink.scratch.grow_events()),
    ]);
    if ew.scopes_adopted > 0 {
        counters.insert(names::SCOPES_ADOPTED.to_string(), ew.scopes_adopted);
    }
    let mut outcome = worker_outcome(counters);
    outcome.killed = ew.killed;
    outcome
}

/// The master's cluster store: plain Union–Find, or the §10
/// geometry-aware variant when `resolve_inconsistent` is on. In
/// geometric mode every generated pair is selected for alignment (the
/// cluster-check shortcut would hide the same-cluster conflicts the
/// mode exists to catch), accepted edges are buffered, and the
/// deterministic decreasing-overlap-length resolution runs at the end —
/// so the parallel result still equals the serial one.
enum MasterClusters {
    Plain(UnionFind),
    Geometric { n: usize, edges: Vec<(u32, u32, crate::geometry::AffineMap, u32)>, tol: i64 },
}

impl MasterClusters {
    fn new(n: usize, params: &ClusterParams) -> MasterClusters {
        if params.resolve_inconsistent {
            MasterClusters::Geometric { n, edges: Vec::new(), tol: params.geometry_tolerance }
        } else {
            MasterClusters::Plain(UnionFind::new(n))
        }
    }

    /// Should a generated pair be skipped (already co-clustered)?
    fn skip_pair(&mut self, a: u32, b: u32) -> bool {
        match self {
            MasterClusters::Plain(uf) => uf.same(a, b),
            // Geometric mode aligns everything.
            MasterClusters::Geometric { .. } => false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record_accept(
        &mut self,
        ds: &FragmentStore,
        a: SeqId,
        b: SeqId,
        a_start: u32,
        b_start: u32,
        overlap_len: u32,
        stats: &mut ClusterStats,
    ) {
        let fa = ds.seq_to_fragment(a).0 .0;
        let fb = ds.seq_to_fragment(b).0 .0;
        match self {
            MasterClusters::Plain(uf) => {
                if uf.union(fa, fb) {
                    stats.merges += 1;
                }
            }
            MasterClusters::Geometric { edges, .. } => {
                let edge = crate::geometry::overlap_edge(
                    matches!(ds.seq_to_fragment(a).1, pgasm_seq::Strand::Reverse),
                    matches!(ds.seq_to_fragment(b).1, pgasm_seq::Strand::Reverse),
                    ds.len_of(a),
                    ds.len_of(b),
                    a_start as usize,
                    b_start as usize,
                );
                edges.push((fa, fb, edge, overlap_len));
            }
        }
    }

    fn finish(self, stats: &mut ClusterStats) -> Clustering {
        match self {
            MasterClusters::Plain(mut uf) => Clustering::from_unionfind(&mut uf),
            MasterClusters::Geometric { n, edges, tol } => {
                crate::clustering::apply_geometric_edges(n, edges, tol, stats)
            }
        }
    }
}

fn worker_outcome(counters: BTreeMap<String, u64>) -> RankOutcome {
    RankOutcome {
        clustering: None,
        stats: None,
        gst_report: RankGstReport::default(),
        cluster_seconds: 0.0,
        idle_fraction: 0.0,
        comm: CommStats::default(),
        cpu_seconds: 0.0,
        counters,
        rank_report: RankReport::default(),
        trace: RankTrace::default(),
        series: RankSeries::default(),
        recovered_tasks: 0,
        dead_ranks: 0,
        killed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::cluster_serial;
    use crate::engine::compute_r;
    use pgasm_align::AcceptCriteria;
    use pgasm_gst::GstConfig;
    use pgasm_seq::DnaSeq;

    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn tile(g: &str, read: usize, step: usize) -> Vec<DnaSeq> {
        let b = g.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read <= b.len() {
            out.push(DnaSeq::from_ascii(&b[at..at + read]));
            at += step;
        }
        out
    }

    fn test_store() -> FragmentStore {
        let mut reads = tile(&genome(1, 1500), 200, 90);
        reads.extend(tile(&genome(2, 1200), 200, 90));
        reads.extend(tile(&genome(3, 900), 200, 90));
        // A couple of orphans.
        reads.push(DnaSeq::from(genome(50, 220).as_str()));
        reads.push(DnaSeq::from(genome(51, 220).as_str()));
        FragmentStore::from_seqs(reads)
    }

    fn params() -> ClusterParams {
        ClusterParams {
            gst: GstConfig { w: 8, psi: 16 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 30 },
            ..Default::default()
        }
    }

    fn config() -> MasterWorkerConfig {
        MasterWorkerConfig { batch: 8, pending_cap: 256, coalesce: Some(CoalescePolicy::default()) }
    }

    #[test]
    fn parallel_matches_serial_partition() {
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        for p in [2usize, 3, 5] {
            let report = cluster_parallel(&store, p, &params(), &config());
            assert_eq!(report.clustering, serial, "p = {p}");
        }
    }

    #[test]
    fn stats_are_consistent() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        let s = report.stats;
        assert!(s.generated > 0);
        assert!(s.aligned <= s.generated);
        assert!(s.accepted <= s.aligned);
        assert!(s.merges <= s.accepted);
        assert!((s.merges as usize) < store.num_fragments());
        // Every fragment appears in exactly one cluster.
        let total: usize = report.clustering.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, store.num_fragments());
    }

    #[test]
    fn heuristic_saves_alignments_in_parallel_too() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert!(
            report.stats.aligned < report.stats.generated,
            "cluster-check must skip some alignments: {:?}",
            report.stats
        );
    }

    #[test]
    fn report_fields_populated() {
        let store = test_store();
        let report = cluster_parallel(&store, 4, &params(), &config());
        assert_eq!(report.worker_idle_fraction.len(), 3);
        assert_eq!(report.comm.len(), 4);
        assert_eq!(report.gst_reports.len(), 4);
        assert!(report.cluster_seconds > 0.0);
        assert!(report.master_availability >= 0.0 && report.master_availability <= 1.0);
        // Clustering-phase traffic exists in both directions at the master.
        assert!(report.comm[0].msgs_recv > 0);
        assert!(report.comm[0].msgs_sent > 0);
    }

    #[test]
    fn rank_reports_carry_counters_and_comm() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        assert_eq!(report.ranks.len(), 3);
        assert_eq!(report.ranks[0].role, "master");
        assert!(report.ranks[1..].iter().all(|r| r.role == "worker"));
        // The master's selection counters match aggregate stats; workers'
        // per-rank tallies sum to the same totals.
        assert_eq!(report.ranks[0].counter("pairs_generated"), report.stats.generated);
        assert_eq!(report.ranks[0].counter("pairs_aligned"), report.stats.aligned);
        let worker_aligned: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_aligned")).sum();
        let worker_generated: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_generated")).sum();
        let worker_accepted: u64 = report.ranks[1..].iter().map(|r| r.counter("pairs_accepted")).sum();
        assert_eq!(worker_aligned, report.stats.aligned);
        assert_eq!(worker_generated, report.stats.generated);
        assert_eq!(worker_accepted, report.stats.accepted);
        // Per-tag comm channels include the relabelled protocol tags
        // and carry modelled time. With coalescing on, protocol
        // messages travel *inside* envelopes, so senders show a
        // "coalesced" row while receivers still see the split
        // constituents.
        let master = &report.ranks[0];
        assert!(master.comm.iter().any(|t| t.label == "w2m_ar" && t.msgs_recv > 0));
        assert!(master.comm.iter().any(|t| t.label == "w2m_np" && t.msgs_recv > 0));
        for r in &report.ranks[1..] {
            assert!(r.comm.iter().any(|t| t.label == "m2w_r" && t.msgs_recv > 0));
            assert!(r.comm.iter().any(|t| t.label == "m2w_aw" && t.msgs_recv > 0));
            assert!(r.comm.iter().any(|t| t.label == "coalesced" && t.msgs_sent > 0));
            assert!(r.counter("msgs_coalesced") > 0);
        }
        for r in &report.ranks {
            assert!(r.modelled_comm_seconds() > 0.0);
        }
        // Workers report at least one batch round-trip.
        assert!(report.ranks[1..].iter().all(|r| r.counter("batch_round_trips") >= 1));
    }

    #[test]
    fn worker_align_counters_are_consistent_and_allocation_free() {
        let store = test_store();
        let report = cluster_parallel(&store, 3, &params(), &config());
        let s = report.stats;
        assert_eq!(s.dp_cells, s.dp_cells_phase1 + s.dp_cells_phase2, "cell accounting must split cleanly");
        let w1: u64 = report.ranks[1..].iter().map(|r| r.counter("align_phase1_cells")).sum();
        let w2: u64 = report.ranks[1..].iter().map(|r| r.counter("align_phase2_cells")).sum();
        let skips: u64 = report.ranks[1..].iter().map(|r| r.counter("align_traceback_skipped")).sum();
        assert_eq!(w1, s.dp_cells_phase1);
        assert_eq!(w2, s.dp_cells_phase2);
        assert_eq!(skips, s.tracebacks_skipped);
        let saved: u64 = report.ranks[1..].iter().map(|r| r.counter("align_cells_saved_adaptive")).sum();
        let shrunk: u64 = report.ranks[1..].iter().map(|r| r.counter("align_band_rows_shrunk")).sum();
        assert_eq!(saved, s.cells_saved_adaptive);
        assert_eq!(shrunk, s.band_rows_shrunk);
        assert_eq!(report.ranks[0].counter("align_phase1_cells"), s.dp_cells_phase1);
        for r in &report.ranks[1..] {
            // The zero-allocation invariant: the pre-sized scratch never
            // grew, and its high-water mark is a real (non-zero) figure.
            assert!(r.counter("align_scratch_bytes_peak") > 0);
            assert_eq!(r.counter("align_scratch_grows"), 0, "worker hot loop reallocated: {:?}", r.counters);
        }
    }

    #[test]
    fn coalescing_off_matches_on() {
        let store = test_store();
        let plain = MasterWorkerConfig { coalesce: None, ..config() };
        for p in [2usize, 3, 5] {
            let on = cluster_parallel(&store, p, &params(), &config());
            let off = cluster_parallel(&store, p, &params(), &plain);
            assert_eq!(on.clustering, off.clustering, "p = {p}");
            assert_eq!(on.stats.accepted, off.stats.accepted, "p = {p}");
        }
    }

    #[test]
    fn backpressure_with_tiny_pending_buffer_terminates() {
        // pending_cap < batch: by_capacity bottoms out at 0 as soon as
        // a couple of pairs queue up. Before the r ≥ 1 clamp the master
        // would grant r = 0 to still-active workers, which then spin in
        // empty report/grant round-trips forever — this config
        // livelocked.
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        let cfg = MasterWorkerConfig { batch: 8, pending_cap: 2, ..config() };
        for p in [2usize, 4] {
            let report = cluster_parallel(&store, p, &params(), &cfg);
            assert_eq!(report.clustering, serial, "p = {p}");
        }
    }

    #[test]
    fn compute_r_is_positive_at_full_buffer() {
        // Buffer at capacity, three active workers: by_capacity = 0,
        // but the grant must still let generators make progress.
        let active = [false, true, true, true];
        assert_eq!(compute_r(8, 2, 2, &active, 1000, 500), 1);
        // And the clamp doesn't disturb the normal regime.
        assert!(compute_r(8, 4096, 0, &active, 1000, 500) > 8);
    }

    #[test]
    fn master_records_inbox_drain_depth() {
        let store = test_store();
        let report = cluster_parallel(&store, 4, &params(), &config());
        // The counter exists; with several workers reporting it is
        // ordinarily ≥ 1 (at least one message handled per wake-up).
        assert!(report.ranks[0].counter("inbox_drain_depth_max") >= 1);
    }

    #[test]
    fn single_fragment_terminates() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from(genome(9, 300).as_str())]);
        let report = cluster_parallel(&store, 2, &params(), &config());
        assert_eq!(report.clustering.clusters.len(), 1);
        assert_eq!(report.stats.generated, 0);
    }

    #[test]
    fn geometric_mode_parallel_matches_serial() {
        let store = test_store();
        let params = ClusterParams { resolve_inconsistent: true, ..params() };
        let (serial, serial_stats) = cluster_serial(&store, &params);
        for p in [2usize, 4] {
            let report = cluster_parallel(&store, p, &params, &config());
            assert_eq!(report.clustering, serial, "p = {p}");
            assert_eq!(report.stats.aligned, serial_stats.aligned, "geometric mode aligns everything");
            assert_eq!(report.stats.inconsistent, serial_stats.inconsistent);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn requires_two_ranks() {
        let store = FragmentStore::from_seqs(vec![DnaSeq::from("ACGT")]);
        cluster_parallel(&store, 1, &params(), &config());
    }

    use pgasm_mpisim::{FaultPlan, FaultStage, KillTarget};

    /// Measure each rank's fault-clock depth with an armed plan that
    /// never fires, so kill events can be aimed mid-protocol instead of
    /// guessed. (Arrival order varies run to run, but the midpoint of a
    /// measured depth is comfortably inside every run.)
    fn probe_events(store: &FragmentStore, p: usize) -> Vec<u64> {
        let armed = StageRecovery {
            faults: FaultPlan::default().with_kill(KillTarget::Rank(0), u64::MAX, FaultStage::Any),
            ..StageRecovery::default()
        };
        let report = cluster_parallel_ft(store, p, &params(), &config(), TraceSpec::off(), &armed);
        report.ranks.iter().map(|r| r.counter(names::FAULT_EVENTS)).collect()
    }

    /// The worker round is four fault-aware calls (send AR, send NP,
    /// recv R, recv AW); events ≡ 1 (mod 4) land at the entry of an AR
    /// send, when the rank holds an unacknowledged lease.
    fn ar_send_event_near(mid: u64) -> u64 {
        (mid.saturating_sub(mid % 4) + 1).max(5)
    }

    #[test]
    fn default_recovery_matches_plain_run() {
        // The fault-tolerance entry point under a passive recovery must
        // not perturb the run: same partition, no fault bookkeeping
        // anywhere in the report. (Counter *values* are timing-dependent
        // run to run, so the zero-drift claim is about which counters
        // exist, checked here, plus the deterministic partition.)
        let store = test_store();
        let plain = cluster_parallel(&store, 3, &params(), &config());
        let ft =
            cluster_parallel_ft(&store, 3, &params(), &config(), TraceSpec::off(), &StageRecovery::default());
        assert_eq!(ft.clustering, plain.clustering);
        assert_eq!(ft.recovered_tasks, 0);
        assert_eq!(ft.dead_ranks, 0);
        assert!(!ft.killed);
        for r in &ft.ranks {
            let stray: Vec<_> = r
                .counters
                .keys()
                .filter(|k| {
                    k.starts_with("fault_")
                        || k.as_str() == names::RECOVERED_TASKS
                        || k.as_str() == names::DEAD_RANKS
                        || k.as_str() == names::SCOPES_ADOPTED
                        || k.as_str() == names::CKPT_WRITES
                        || k.as_str() == names::CKPT_BYTES
                })
                .collect();
            assert!(stray.is_empty(), "rank {}: fault counters in a fault-free run: {stray:?}", r.rank);
        }
    }

    #[test]
    fn killed_worker_yields_identical_partition() {
        // Kill each worker in turn mid-protocol while it holds a lease
        // and require the exact serial partition plus a lease recovery
        // and a scope adoption.
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        let depths = probe_events(&store, 4);
        for (victim, &depth) in depths.iter().enumerate().skip(1) {
            let at = ar_send_event_near(depth / 2);
            let recovery = StageRecovery {
                faults: FaultPlan::default().with_kill(KillTarget::Rank(victim), at, FaultStage::Any),
                ..StageRecovery::default()
            };
            let report = cluster_parallel_ft(&store, 4, &params(), &config(), TraceSpec::off(), &recovery);
            assert_eq!(report.clustering, serial, "victim {victim} (killed at event {at})");
            assert_eq!(report.dead_ranks, 1, "victim {victim} (killed at event {at})");
            assert!(report.recovered_tasks > 0, "victim {victim} died holding a lease (event {at})");
            assert!(!report.killed);
            assert_eq!(report.ranks[0].counter(names::DEAD_RANKS), 1);
        }
    }

    #[test]
    fn early_kill_makes_a_survivor_adopt_the_generator_scope() {
        // Event 5 is the victim's second AR send: it has announced one
        // round of pairs but its generator is nowhere near exhausted, so
        // the master must hand its GST scope to exactly one survivor —
        // and the partition must still match the serial one.
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        let recovery = StageRecovery {
            faults: FaultPlan::default().with_kill(KillTarget::Rank(1), 5, FaultStage::Any),
            ..StageRecovery::default()
        };
        let report = cluster_parallel_ft(&store, 4, &params(), &config(), TraceSpec::off(), &recovery);
        assert_eq!(report.clustering, serial);
        assert_eq!(report.dead_ranks, 1);
        let adopters: u64 = report.ranks[1..].iter().map(|r| r.counter(names::SCOPES_ADOPTED)).sum();
        assert_eq!(adopters, 1, "exactly one survivor adopts the dead generator's scope");
    }

    #[test]
    fn master_kill_checkpoint_resume_reproduces_partition() {
        let store = test_store();
        let (serial, _) = cluster_serial(&store, &params());
        let depths = probe_events(&store, 3);
        let dir = std::env::temp_dir().join(format!("pgasm-mw-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.pgck");
        let faulty = StageRecovery {
            faults: FaultPlan::default().with_kill(
                KillTarget::Rank(0),
                (depths[0] / 2).max(8),
                FaultStage::Any,
            ),
            checkpoint_every: Some(1),
            checkpoint_path: Some(path.clone()),
            ..StageRecovery::default()
        };
        let r1 = cluster_parallel_ft(&store, 3, &params(), &config(), TraceSpec::off(), &faulty);
        assert!(r1.killed, "the plan kills the master mid-protocol");
        assert!(path.exists(), "a checkpoint landed before the kill");
        assert!(r1.ranks[0].counter(names::CKPT_WRITES) > 0);
        // Resume from the snapshot, fault-free: identical partition.
        let resume = StageRecovery { resume_from: Some(path.clone()), ..StageRecovery::default() };
        let r2 = cluster_parallel_ft(&store, 3, &params(), &config(), TraceSpec::off(), &resume);
        assert_eq!(r2.clustering, serial);
        assert!(!r2.killed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
