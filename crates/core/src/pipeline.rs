//! End-to-end cluster-then-assemble pipeline (paper Fig. 1), built as a
//! stage graph: each phase (preprocess → cluster → assemble) is a
//! [`Stage`] that transforms the shared [`StageState`] and records its
//! telemetry — spans, counters, per-rank channels — into one
//! [`RunContext`]. Callers that want the structured run report use
//! [`Pipeline::run_with_context`]; [`Pipeline::run`] wraps it with a
//! private context for the common case.

use crate::assemble_dist::{assemble_parallel_ft, AssignPolicy};
use crate::cache::{self, ArtifactCache};
use crate::checkpoint::StageRecovery;
use crate::clustering::{cluster_serial, cluster_serial_with_gst, ClusterParams, ClusterStats, Clustering};
use crate::master_worker::{cluster_parallel_ft, MasterWorkerConfig};
use pgasm_assemble::{assemble_with_quality, Assembly, AssemblyConfig, Contig, Placement};
use pgasm_gst::{Gst, GST_CODEC_SCHEMA};
use pgasm_mpisim::FaultStage;
use pgasm_preprocess::pipeline::PreprocessOutput;
use pgasm_preprocess::{PreprocessConfig, PreprocessStats, Preprocessor, PREPROCESS_CODEC_SCHEMA};
use pgasm_seq::wire::{Reader, Writer};
use pgasm_seq::QualityTrack;
use pgasm_seq::{DnaSeq, FragmentStore, SeqId};
use pgasm_simgen::ReadSet;
use pgasm_telemetry::trace::{TraceCategory, TraceSpec};
use pgasm_telemetry::{names, RankReport, RunContext, Span};
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Preprocessing settings; `None` runs clustering on the raw reads.
    pub preprocess: Option<PreprocessConfig>,
    /// Clustering parameters — the one place they are defined; the
    /// master–worker runtime borrows these at run time.
    pub cluster: ClusterParams,
    /// Run the clustering phase on this many simulated ranks
    /// (master–worker); `None` = serial engine.
    pub parallel_ranks: Option<usize>,
    /// Master–worker protocol knobs (batch size, buffer capacity).
    pub master_worker: MasterWorkerConfig,
    /// Per-cluster assembler settings.
    pub assembly: AssemblyConfig,
    /// Threads for the trivially parallel assembly phase.
    pub assembly_threads: usize,
    /// Per-rank event tracing for the run ([`TraceSpec::off`] by
    /// default). When on, the run's traces are collected into the
    /// [`RunContext`] for Chrome-trace export and idle-gap attribution.
    pub trace: TraceSpec,
    /// Directory for the content-addressed artifact cache; `None`
    /// disables caching. Repeated runs over identical inputs and
    /// parameters reload the preprocess output, (serial runs) the GST,
    /// and the assembled contigs from here instead of recomputing them.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Fault-tolerance knobs for the distributed stages: failures to
    /// inject, the master's stall timeout, checkpoint cadence, and the
    /// snapshot to resume from. The `checkpoint_path` / `resume_from`
    /// paths are treated as a *base*: each stage derives its own file
    /// (`<base>.cluster.pgck`, `<base>.assemble.pgck`), so one
    /// `--checkpoint` flag covers both engine clients. Passive by
    /// default.
    pub recovery: StageRecovery,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            preprocess: Some(PreprocessConfig::default()),
            cluster: ClusterParams::default(),
            parallel_ranks: None,
            master_worker: MasterWorkerConfig::default(),
            assembly: AssemblyConfig::default(),
            assembly_threads: 4,
            trace: TraceSpec::off(),
            cache_dir: None,
            recovery: StageRecovery::default(),
        }
    }
}

/// The recovery knobs for one distributed stage: the fault plan
/// narrowed to that stage, checkpoint/resume paths pointed at the
/// stage's own snapshot file.
fn stage_recovery(base: &StageRecovery, stage: FaultStage, name: &str) -> StageRecovery {
    let derive = |p: &std::path::Path| {
        let mut s = p.as_os_str().to_os_string();
        s.push(format!(".{name}.pgck"));
        std::path::PathBuf::from(s)
    };
    let mut r = base.for_stage(stage);
    r.checkpoint_path = r.checkpoint_path.as_deref().map(derive);
    r.resume_from = r.resume_from.as_deref().map(derive);
    r
}

/// Fold one distributed stage's fault/recovery tallies into the run's
/// counter map (nonzero only, so clean runs keep byte-identical
/// reports and the schema-v4 `faults` section stays absent).
fn fold_fault_counters(ctx: &mut RunContext, ranks: &[RankReport], recovered: u64, dead: u64) {
    let sum = |name: &str| ranks.iter().map(|r| r.counter(name)).sum::<u64>();
    for (name, value) in [
        (names::RECOVERED_TASKS, recovered),
        (names::DEAD_RANKS, dead),
        (names::FAULT_KILLS, sum(names::FAULT_KILLS)),
        (names::FAULT_MSGS_DROPPED, sum(names::FAULT_MSGS_DROPPED)),
        (names::FAULT_MSGS_DELAYED, sum(names::FAULT_MSGS_DELAYED)),
        (names::CKPT_WRITES, sum(names::CKPT_WRITES)),
        (names::CKPT_BYTES, sum(names::CKPT_BYTES)),
    ] {
        if value > 0 {
            ctx.add(name, value);
        }
    }
}

/// Summary of a pipeline run (the §8 statistics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Preprocessing accounting (when the phase ran).
    pub preprocess: Option<PreprocessStats>,
    /// The clustering over the *preprocessed* fragments.
    pub clustering: Clustering,
    /// Clustering work statistics.
    pub cluster_stats: ClusterStats,
    /// For each surviving fragment, the index of its original read.
    pub origin: Vec<usize>,
    /// Per-non-singleton-cluster assemblies (index-parallel with
    /// `clustering.non_singletons()`).
    pub assemblies: Vec<Assembly>,
    /// Seconds in preprocessing.
    pub preprocess_seconds: f64,
    /// Seconds in clustering.
    pub cluster_seconds: f64,
    /// Seconds in the assembly phase.
    pub assembly_seconds: f64,
    /// Name of the stage whose master the fault plan killed, when one
    /// was. The run stopped there — later stages did not execute and
    /// this report's artifacts are partial; restart with `--resume` to
    /// finish from the last checkpoint.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub interrupted: Option<String>,
}

impl PipelineReport {
    /// Total contigs across all clusters.
    pub fn total_contigs(&self) -> usize {
        self.assemblies.iter().map(|a| a.num_contigs()).sum()
    }

    /// Mean contigs per non-singleton cluster — the paper's §8 quality
    /// indicator (≈ 1.1 means clusters almost always hold exactly one
    /// assembly island).
    pub fn contigs_per_cluster(&self) -> f64 {
        let n = self.assemblies.len();
        if n == 0 {
            0.0
        } else {
            // A cluster can assemble into contigs plus leftover
            // singleton reads; count at least one unit per cluster.
            self.assemblies.iter().map(|a| (a.num_contigs() + a.singletons.len()).max(1)).sum::<usize>()
                as f64
                / n as f64
        }
    }
}

/// Mutable state flowing through the stage graph. Each [`Stage`] reads
/// the artifacts of its predecessors and installs its own.
pub struct StageState<'r> {
    /// Input reads (set before the first stage).
    pub reads: &'r ReadSet,
    /// Vector sequences for the preprocessor.
    pub vectors: &'r [DnaSeq],
    /// Known repeat library for the preprocessor.
    pub known_repeats: &'r [DnaSeq],
    /// Masked fragments driving clustering (preprocess output).
    pub store: Option<FragmentStore>,
    /// Soft-masked (original-base) fragments feeding the assembler.
    pub store_unmasked: Option<FragmentStore>,
    /// Per-fragment quality tracks.
    pub quals: Vec<QualityTrack>,
    /// For each surviving fragment, the index of its original read.
    pub origin: Vec<usize>,
    /// Preprocessing accounting (when that stage ran a config).
    pub preprocess: Option<PreprocessStats>,
    /// Clustering result (cluster stage output).
    pub clustering: Option<Clustering>,
    /// Clustering work statistics.
    pub cluster_stats: ClusterStats,
    /// Per-cluster assemblies (assemble stage output).
    pub assemblies: Vec<Assembly>,
    /// Per-stage wall-clock seconds, by stage name.
    pub stage_seconds: Vec<(&'static str, f64)>,
    /// Artifact cache for the run (`None` = caching disabled, or the
    /// cache directory could not be created — degrade to a cold run).
    pub cache: Option<ArtifactCache>,
    /// Set by a stage whose master the fault plan killed: the pipeline
    /// stops after that stage instead of feeding partial artifacts
    /// forward.
    pub interrupted: Option<String>,
}

impl<'r> StageState<'r> {
    fn new(reads: &'r ReadSet, vectors: &'r [DnaSeq], known_repeats: &'r [DnaSeq]) -> Self {
        StageState {
            reads,
            vectors,
            known_repeats,
            store: None,
            store_unmasked: None,
            quals: Vec::new(),
            origin: Vec::new(),
            preprocess: None,
            clustering: None,
            cluster_stats: ClusterStats::default(),
            assemblies: Vec::new(),
            stage_seconds: Vec::new(),
            cache: None,
            interrupted: None,
        }
    }

    fn wall(&self, stage: &str) -> f64 {
        self.stage_seconds.iter().find(|(n, _)| *n == stage).map(|(_, s)| *s).unwrap_or(0.0)
    }
}

/// One phase of the pipeline. Implementations transform [`StageState`]
/// and record telemetry into the shared [`RunContext`]; the engine wraps
/// each stage in a span named after it.
pub trait Stage {
    /// Span name for this stage (e.g. `"cluster"`).
    fn name(&self) -> &'static str;
    /// Execute the stage.
    fn run(&self, state: &mut StageState<'_>, ctx: &mut RunContext);
}

/// Preprocess stage: trims/screens reads into the masked clustering
/// store and the soft-masked assembly store. With no [`PreprocessConfig`]
/// it passes raw reads through (still populating the state).
struct PreprocessStage<'c> {
    config: &'c PipelineConfig,
}

impl Stage for PreprocessStage<'_> {
    fn name(&self) -> &'static str {
        "preprocess"
    }

    fn run(&self, state: &mut StageState<'_>, ctx: &mut RunContext) {
        ctx.set(names::READS_IN, state.reads.len() as u64);
        match &self.config.preprocess {
            Some(cfg) => {
                let key = state
                    .cache
                    .as_ref()
                    .map(|_| cache::preprocess_key(state.reads, state.vectors, state.known_repeats, cfg));
                let out = match self.load_cached(state, ctx, key) {
                    Some(out) => out,
                    None => {
                        let pp = Preprocessor::new(cfg.clone(), state.vectors, state.known_repeats);
                        let out = pp.run(state.reads);
                        if let (Some(cache), Some(key)) = (&state.cache, key) {
                            ctx.push("cache");
                            if let Ok(n) =
                                cache.store("preprocess", PREPROCESS_CODEC_SCHEMA, key, &out.encode())
                            {
                                ctx.add(names::CACHE_BYTES_WRITTEN, n);
                            }
                            ctx.pop();
                        }
                        out
                    }
                };
                state.store = Some(out.store);
                state.store_unmasked = Some(out.store_unmasked);
                state.quals = out.quals;
                state.origin = out.origin;
                state.preprocess = Some(out.stats);
            }
            None => {
                state.store = Some(state.reads.to_store());
                state.origin = (0..state.reads.len()).collect();
                state.quals = state.reads.quals.clone();
            }
        }
        ctx.set(names::FRAGMENTS, state.store.as_ref().map_or(0, |s| s.num_fragments()) as u64);
    }
}

impl PreprocessStage<'_> {
    /// Try the artifact cache for the preprocess output. Any failure —
    /// absent entry, corrupt frame, invariant violation — is a miss.
    fn load_cached(
        &self,
        state: &StageState<'_>,
        ctx: &mut RunContext,
        key: Option<u64>,
    ) -> Option<PreprocessOutput> {
        let (cache, key) = (state.cache.as_ref()?, key?);
        ctx.push("cache");
        let out = cache
            .load("preprocess", PREPROCESS_CODEC_SCHEMA, key)
            .and_then(|payload| PreprocessOutput::decode(&payload).ok().map(|out| (payload.len(), out)));
        match &out {
            Some((bytes, _)) => {
                ctx.add(names::CACHE_HIT, 1);
                ctx.add(names::CACHE_BYTES_READ, *bytes as u64);
            }
            None => ctx.add(names::CACHE_MISS, 1),
        }
        ctx.pop();
        out.map(|(_, o)| o)
    }
}

/// Cluster stage: serial engine or the master–worker runtime, depending
/// on `parallel_ranks`. Parallel runs install per-rank telemetry
/// channels and phase sub-spans measured from rank-local clocks.
struct ClusterStage<'c> {
    config: &'c PipelineConfig,
}

impl Stage for ClusterStage<'_> {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn run(&self, state: &mut StageState<'_>, ctx: &mut RunContext) {
        let store = state.store.as_ref().expect("preprocess stage ran");
        let (clustering, stats) = match self.config.parallel_ranks {
            Some(p) => {
                let recovery = stage_recovery(&self.config.recovery, FaultStage::Cluster, "cluster");
                let report = cluster_parallel_ft(
                    store,
                    p,
                    &self.config.cluster,
                    &self.config.master_worker,
                    self.config.trace,
                    &recovery,
                );
                fold_fault_counters(ctx, &report.ranks, report.recovered_tasks, report.dead_ranks);
                if report.killed {
                    state.interrupted = Some(self.name().to_string());
                }
                ctx.record_span(Span {
                    name: "gst_build".to_string(),
                    wall_seconds: report.gst_seconds,
                    cpu_seconds: report.gst_seconds,
                    children: Vec::new(),
                });
                ctx.record_span(Span {
                    name: "master_worker".to_string(),
                    wall_seconds: report.cluster_seconds,
                    cpu_seconds: report.cpu_seconds.iter().sum(),
                    children: Vec::new(),
                });
                ctx.set_ranks(report.ranks);
                if self.config.trace.enabled {
                    ctx.set_traces(report.traces);
                    ctx.add_series(report.series);
                }
                (report.clustering, report.stats)
            }
            None => match &state.cache {
                Some(_) => {
                    let gst = self.cached_gst(state, ctx, store);
                    cluster_serial_with_gst(store, &self.config.cluster, Some(gst))
                }
                None => cluster_serial(store, &self.config.cluster),
            },
        };
        ctx.set(names::PAIRS_GENERATED, stats.generated);
        ctx.set(names::PAIRS_ALIGNED, stats.aligned);
        ctx.set(names::PAIRS_ACCEPTED, stats.accepted);
        ctx.set(names::MERGES, stats.merges);
        ctx.set(names::DP_CELLS, stats.dp_cells);
        ctx.set(names::ALIGN_PHASE1_CELLS, stats.dp_cells_phase1);
        ctx.set(names::ALIGN_PHASE2_CELLS, stats.dp_cells_phase2);
        ctx.set(names::ALIGN_EARLY_EXIT, stats.early_exits);
        ctx.set(names::ALIGN_TRACEBACK_SKIPPED, stats.tracebacks_skipped);
        ctx.set(names::ALIGN_CELLS_SAVED_ADAPTIVE, stats.cells_saved_adaptive);
        ctx.set(names::ALIGN_BAND_ROWS_SHRUNK, stats.band_rows_shrunk);
        ctx.set(names::SIMD_LANES, pgasm_align::simd::effective_lanes());
        ctx.set(names::CLUSTERS, clustering.clusters.len() as u64);
        ctx.set(names::NON_SINGLETON_CLUSTERS, clustering.num_non_singletons() as u64);
        state.clustering = Some(clustering);
        state.cluster_stats = stats;
    }
}

impl ClusterStage<'_> {
    /// The GST for a cache-enabled serial run: loaded from the artifact
    /// cache when a valid entry for this exact fragment set and GST
    /// parameters exists, otherwise built (under a `gst_build` span, so
    /// warm and cold runs are distinguishable in the report) and stored
    /// for the next run.
    fn cached_gst(&self, state: &StageState<'_>, ctx: &mut RunContext, store: &FragmentStore) -> Gst {
        let cache = state.cache.as_ref().expect("caller checked");
        let gst_config = self.config.cluster.gst;
        let ds = store.with_reverse_complements();
        let key = cache::gst_key(&ds, &gst_config);
        ctx.push("cache");
        let mut loaded: Option<Gst> = None;
        if let Some(payload) = cache.load("gst", GST_CODEC_SCHEMA, key) {
            if let Ok(g) = Gst::decode(&payload) {
                // Decode checks internal consistency; the entry must
                // also be *for* this store and parameters (the key
                // already encodes both — this guards hash collisions
                // and hand-edited files).
                if g.config() == gst_config && g.num_seqs() == ds.num_seqs() {
                    ctx.add(names::CACHE_BYTES_READ, payload.len() as u64);
                    loaded = Some(g);
                }
            }
        }
        match &loaded {
            Some(_) => ctx.add(names::CACHE_HIT, 1),
            None => ctx.add(names::CACHE_MISS, 1),
        }
        ctx.pop();
        match loaded {
            Some(g) => g,
            None => {
                ctx.push("gst_build");
                let g = Gst::build(&ds, gst_config);
                ctx.pop();
                ctx.push("cache");
                if let Ok(n) = cache.store("gst", GST_CODEC_SCHEMA, key, &g.encode()) {
                    ctx.add(names::CACHE_BYTES_WRITTEN, n);
                }
                ctx.pop();
                g
            }
        }
    }
}

/// Assembly stage: trivially parallel per-cluster assembly over the
/// soft-masked (original-base) fragments. Runs as a distributed engine
/// stage (clusters scheduled largest-first onto worker ranks, contigs
/// shipped back over the simulated wire) whenever `parallel_ranks` is
/// set, and as the OS-thread loop otherwise — the contigs are
/// byte-identical either way.
struct AssembleStage<'c> {
    config: &'c PipelineConfig,
}

impl Stage for AssembleStage<'_> {
    fn name(&self) -> &'static str {
        "assemble"
    }

    fn run(&self, state: &mut StageState<'_>, ctx: &mut RunContext) {
        let clustering = state.clustering.as_ref().expect("cluster stage ran");
        let masked = state.store.as_ref().expect("preprocess stage ran");
        let assembly_store = state.store_unmasked.as_ref().unwrap_or(masked);
        // A fully warm cache skips the whole stage: the contigs are a
        // pure function of the assembly store, qualities, clustering,
        // and assembler parameters — all folded into the key.
        let key = state.cache.as_ref().map(|_| {
            cache::contigs_key(assembly_store, Some(&state.quals), clustering, &self.config.assembly)
        });
        if let Some(assemblies) = self.load_cached(state, ctx, key) {
            state.assemblies = assemblies;
            ctx.set(names::ASSEMBLED_CLUSTERS, state.assemblies.len() as u64);
            ctx.set(names::CONTIGS, state.assemblies.iter().map(|a| a.num_contigs() as u64).sum());
            return;
        }
        state.assemblies = match self.config.parallel_ranks {
            Some(p) => {
                let recovery = stage_recovery(&self.config.recovery, FaultStage::Assemble, "assemble");
                let report = assemble_parallel_ft(
                    assembly_store,
                    Some(&state.quals),
                    clustering,
                    &self.config.assembly,
                    p,
                    AssignPolicy::Lpt,
                    self.config.trace,
                    &recovery,
                );
                fold_fault_counters(ctx, &report.ranks, report.recovered_tasks, report.dead_ranks);
                if report.killed {
                    state.interrupted = Some(self.name().to_string());
                }
                ctx.record_span(Span {
                    name: "dist_assemble".to_string(),
                    wall_seconds: report.assemble_seconds,
                    cpu_seconds: report.cpu_seconds.iter().sum(),
                    children: Vec::new(),
                });
                // The assemble phase ran on the same rank ids as
                // clustering: fold its channels into the existing
                // per-rank entries (counters sum, comm rows append
                // under this phase's tag labels).
                ctx.merge_ranks(report.ranks);
                if self.config.trace.enabled {
                    for track in report.traces {
                        ctx.add_trace(track);
                    }
                    ctx.add_series(report.series);
                }
                report.assemblies
            }
            None => assemble_clusters_q(
                assembly_store,
                Some(&state.quals),
                clustering,
                &self.config.assembly,
                self.config.assembly_threads,
            ),
        };
        // A killed assembly master leaves placeholder slots — never
        // cache those as the real contigs.
        if state.interrupted.is_none() {
            if let (Some(cache), Some(key)) = (&state.cache, key) {
                ctx.push("cache");
                if let Ok(n) =
                    cache.store("contigs", CONTIGS_CODEC_SCHEMA, key, &encode_assemblies(&state.assemblies))
                {
                    ctx.add(names::CACHE_BYTES_WRITTEN, n);
                }
                ctx.pop();
            }
        }
        ctx.set(names::ASSEMBLED_CLUSTERS, state.assemblies.len() as u64);
        ctx.set(names::CONTIGS, state.assemblies.iter().map(|a| a.num_contigs() as u64).sum());
    }
}

impl AssembleStage<'_> {
    /// Try the artifact cache for the stage's whole output. Any failure
    /// — absent entry, corrupt frame, malformed payload — is a miss.
    fn load_cached(
        &self,
        state: &StageState<'_>,
        ctx: &mut RunContext,
        key: Option<u64>,
    ) -> Option<Vec<Assembly>> {
        let (cache, key) = (state.cache.as_ref()?, key?);
        ctx.push("cache");
        let out = cache
            .load("contigs", CONTIGS_CODEC_SCHEMA, key)
            .and_then(|payload| decode_assemblies(&payload).map(|a| (payload.len(), a)));
        match &out {
            Some((bytes, _)) => {
                ctx.add(names::CACHE_HIT, 1);
                ctx.add(names::CACHE_BYTES_READ, *bytes as u64);
            }
            None => ctx.add(names::CACHE_MISS, 1),
        }
        ctx.pop();
        out.map(|(_, a)| a)
    }
}

/// Artifact codec schema of the `contigs` cache kind; bump on any
/// layout change so stale entries read as misses.
pub const CONTIGS_CODEC_SCHEMA: u32 = 1;

/// Serialize the assemble stage's output for the artifact cache.
fn encode_assemblies(assemblies: &[Assembly]) -> Vec<u8> {
    let mut w = Writer::with_capacity(64 * assemblies.len() + 16);
    w.put_u32(assemblies.len() as u32);
    for a in assemblies {
        w.put_u32(a.contigs.len() as u32);
        for c in &a.contigs {
            w.put_bytes(&c.seq.to_ascii());
            w.put_u32(c.placements.len() as u32);
            for p in &c.placements {
                w.put_u64(p.read as u64);
                w.put_u64(p.offset as u64);
                w.put_u8(p.flipped as u8);
            }
        }
        let singletons: Vec<u32> = a.singletons.iter().map(|&s| s as u32).collect();
        w.put_u32_slice(&singletons);
        w.put_u64(a.inconsistent_edges as u64);
    }
    w.finish()
}

/// Inverse of [`encode_assemblies`]; `None` — never a panic — on any
/// truncated or malformed payload, so a damaged entry is just a miss.
fn decode_assemblies(payload: &[u8]) -> Option<Vec<Assembly>> {
    let mut r = Reader::new(payload);
    let n = r.get_u32().ok()?;
    let mut out = Vec::new();
    for _ in 0..n {
        let n_contigs = r.get_u32().ok()?;
        let mut contigs = Vec::new();
        for _ in 0..n_contigs {
            let seq = DnaSeq::from_ascii(r.get_bytes().ok()?);
            let n_placements = r.get_u32().ok()?;
            let mut placements = Vec::new();
            for _ in 0..n_placements {
                placements.push(Placement {
                    read: r.get_u64().ok()? as usize,
                    offset: r.get_u64().ok()? as usize,
                    flipped: r.get_u8().ok()? == 1,
                });
            }
            contigs.push(Contig { seq, placements });
        }
        let singletons = r.get_u32_slice().ok()?.into_iter().map(|s| s as usize).collect();
        let inconsistent_edges = r.get_u64().ok()? as usize;
        out.push(Assembly { contigs, singletons, inconsistent_edges });
    }
    r.expect_end().ok()?;
    Some(out)
}

/// The pipeline runner: a fixed stage graph executed over one
/// [`RunContext`].
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// New pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Run preprocessing (optional) + clustering + per-cluster assembly
    /// over a read set. `vectors` and `known_repeats` feed the
    /// preprocessor.
    pub fn run(&self, reads: &ReadSet, vectors: &[DnaSeq], known_repeats: &[DnaSeq]) -> PipelineReport {
        let mut ctx = RunContext::new("pipeline");
        self.run_with_context(reads, vectors, known_repeats, &mut ctx)
    }

    /// As [`Pipeline::run`], recording spans, counters, and per-rank
    /// channels into the caller's [`RunContext`] — fold it with
    /// [`RunContext::finish`] for the structured
    /// [`pgasm_telemetry::RunReport`].
    pub fn run_with_context(
        &self,
        reads: &ReadSet,
        vectors: &[DnaSeq],
        known_repeats: &[DnaSeq],
        ctx: &mut RunContext,
    ) -> PipelineReport {
        let mut state = StageState::new(reads, vectors, known_repeats);
        // An unopenable cache directory degrades to a cold, uncached
        // run — caching is an optimisation, never a failure mode.
        state.cache = self.config.cache_dir.as_deref().and_then(|d| ArtifactCache::open(d).ok());
        let stages: [&dyn Stage; 3] = [
            &PreprocessStage { config: &self.config },
            &ClusterStage { config: &self.config },
            &AssembleStage { config: &self.config },
        ];
        // The pipeline's main thread gets its own trace track for stage
        // boundaries, on a rank id past the parallel section's ranks so
        // the tracks never collide.
        let mut tracer = self.config.trace.tracer(self.config.parallel_ranks.unwrap_or(0), "pipeline");
        // Cache traffic accrues at stage granularity, so the pipeline's
        // own gauge is fed at stage boundaries (forced samples — a few
        // points per run, each one meaningful).
        let mut sampler = self.config.trace.sampler(self.config.parallel_ranks.unwrap_or(0), "pipeline");
        let g_cache = sampler.register(names::GAUGE_CACHE_BYTES);
        for stage in stages {
            tracer.begin(TraceCategory::Stage, stage.name());
            ctx.push(stage.name());
            stage.run(&mut state, ctx);
            let (wall, _cpu) = ctx.pop();
            tracer.end(TraceCategory::Stage, stage.name());
            sampler.sample_now(
                g_cache,
                ctx.counter(names::CACHE_BYTES_READ) + ctx.counter(names::CACHE_BYTES_WRITTEN),
            );
            state.stage_seconds.push((stage.name(), wall));
            if state.interrupted.is_some() {
                // The fault plan killed this stage's master: stop here
                // rather than feed partial artifacts forward. The
                // caller resumes from the stage's last checkpoint.
                break;
            }
        }
        if self.config.trace.enabled {
            ctx.add_trace(tracer.finish());
            ctx.add_series([sampler.take()]);
        }

        let (preprocess_seconds, cluster_seconds, assembly_seconds) =
            (state.wall("preprocess"), state.wall("cluster"), state.wall("assemble"));
        PipelineReport {
            preprocess: state.preprocess,
            clustering: state.clustering.expect("cluster stage ran"),
            cluster_stats: state.cluster_stats,
            origin: state.origin,
            assemblies: state.assemblies,
            preprocess_seconds,
            cluster_seconds,
            assembly_seconds,
            interrupted: state.interrupted,
        }
    }
}

/// Assemble every non-singleton cluster, distributing clusters across
/// `threads` OS threads ("the subsequent assembly tasks are trivially
/// parallelized by distributing the clusters across multiple
/// processors", §3).
pub fn assemble_clusters(
    store: &FragmentStore,
    clustering: &Clustering,
    config: &AssemblyConfig,
    threads: usize,
) -> Vec<Assembly> {
    assemble_clusters_q(store, None, clustering, config, threads)
}

/// As [`assemble_clusters`], with optional per-fragment qualities
/// (index-parallel with the store) enabling quality-weighted overlap
/// acceptance.
pub fn assemble_clusters_q(
    store: &FragmentStore,
    quals: Option<&[QualityTrack]>,
    clustering: &Clustering,
    config: &AssemblyConfig,
    threads: usize,
) -> Vec<Assembly> {
    let clusters: Vec<&Vec<u32>> = clustering.non_singletons().collect();
    if clusters.is_empty() {
        // All-singleton clusterings are legal (e.g. every fragment
        // rejected or unrelated); chunking by zero below would panic.
        return Vec::new();
    }
    let threads = threads.clamp(1, clusters.len().max(1));
    let mut results: Vec<Option<Assembly>> = vec![None; clusters.len()];
    let chunk = clusters.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = results
            .chunks_mut(chunk)
            .zip(clusters.chunks(chunk))
            .map(|(slot_chunk, cluster_chunk)| {
                scope.spawn(move || {
                    for (slot, members) in slot_chunk.iter_mut().zip(cluster_chunk) {
                        let reads: Vec<DnaSeq> = members.iter().map(|&f| store.get_seq(SeqId(f))).collect();
                        let cluster_quals: Option<Vec<QualityTrack>> =
                            quals.map(|qs| members.iter().map(|&f| qs[f as usize].clone()).collect());
                        *slot = Some(assemble_with_quality(&reads, cluster_quals.as_deref(), config));
                    }
                })
            })
            .collect();
        // Join explicitly and re-throw the worker's own payload: the
        // scope's automatic join would replace it with a generic
        // "scoped thread panicked", and the empty result slot would
        // then surface as the unrelated "every cluster assembled"
        // expect below.
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results.into_iter().map(|r| r.expect("every cluster assembled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    use pgasm_simgen::vector::VECTOR_SEQ;

    fn island_genome(seed: u64) -> Genome {
        Genome::generate(
            &GenomeSpec {
                length: 20_000,
                repeat_fraction: 0.0,
                repeat_families: 0,
                repeat_len: (50, 60),
                repeat_identity: 1.0,
                islands: 4,
                island_len: (1_500, 2_500),
            },
            seed,
        )
    }

    fn fast_config(parallel: Option<usize>) -> PipelineConfig {
        use pgasm_align::AcceptCriteria;
        use pgasm_gst::GstConfig;
        let cluster = ClusterParams {
            gst: GstConfig { w: 10, psi: 20 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 40 },
            ..Default::default()
        };
        PipelineConfig {
            preprocess: None,
            cluster,
            parallel_ranks: parallel,
            master_worker: MasterWorkerConfig { batch: 16, pending_cap: 512, ..Default::default() },
            assembly: AssemblyConfig::default(),
            assembly_threads: 2,
            trace: TraceSpec::off(),
            cache_dir: None,
            recovery: StageRecovery::default(),
        }
    }

    fn island_reads(seed: u64) -> ReadSet {
        let genome = island_genome(seed);
        // Dense island coverage only: gene-enriched reads with full bias.
        let mut cfg = SamplerConfig::clean();
        cfg.island_bias = 1.0;
        let mut sampler = Sampler::new(&genome, cfg, seed + 1);
        sampler.enriched(160, pgasm_simgen::ReadKind::Mf)
    }

    #[test]
    fn pipeline_clusters_and_assembles_islands() {
        let reads = island_reads(10);
        let report = Pipeline::new(fast_config(None)).run(&reads, &[], &[]);
        // Island-only sampling: a handful of clusters, assembled into
        // about one contig each.
        let nc = report.clustering.num_non_singletons();
        assert!((2..=12).contains(&nc), "clusters {nc}");
        assert!(!report.assemblies.is_empty());
        let cpc = report.contigs_per_cluster();
        assert!((1.0..2.0).contains(&cpc), "contigs/cluster {cpc}");
        assert_eq!(report.origin.len(), reads.len());
    }

    #[test]
    fn parallel_pipeline_matches_serial() {
        let reads = island_reads(20);
        let serial = Pipeline::new(fast_config(None)).run(&reads, &[], &[]);
        let parallel = Pipeline::new(fast_config(Some(3))).run(&reads, &[], &[]);
        assert_eq!(serial.clustering, parallel.clustering);
        assert_eq!(serial.total_contigs(), parallel.total_contigs());
    }

    #[test]
    fn preprocessing_phase_integrates() {
        let genome = island_genome(30);
        let mut cfg = SamplerConfig::default_scaled();
        cfg.island_bias = 1.0;
        let mut sampler = Sampler::new(&genome, cfg, 31);
        let reads = sampler.enriched(120, pgasm_simgen::ReadKind::Hc);
        let mut config = fast_config(None);
        config.preprocess =
            Some(pgasm_preprocess::PreprocessConfig { stat_repeats: None, ..Default::default() });
        let report = Pipeline::new(config).run(&reads, &[DnaSeq::from(VECTOR_SEQ)], &genome.repeat_library);
        let pp = report.preprocess.expect("preprocessing ran");
        let before: usize = pp.before.values().map(|v| v.0).sum();
        let after: usize = pp.after.values().map(|v| v.0).sum();
        assert_eq!(before, 120);
        assert!(after > 60, "too many reads lost: {after}");
        assert!(report.clustering.num_non_singletons() >= 1);
    }

    #[test]
    fn run_with_context_records_stage_graph() {
        let reads = island_reads(10);
        let mut ctx = pgasm_telemetry::RunContext::new("test-run");
        let pipeline = Pipeline::new(fast_config(Some(3)));
        let report = pipeline.run_with_context(&reads, &[], &[], &mut ctx);
        let run = ctx.finish();
        // One root span per stage, in graph order.
        let names: Vec<&str> = run.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["preprocess", "cluster", "assemble"]);
        // Parallel clustering leaves rank-local phase sub-spans and
        // per-rank channels.
        let cluster = run.span("cluster").unwrap();
        assert!(cluster.find("cluster/gst_build").is_some());
        assert!(cluster.find("cluster/master_worker").is_some());
        assert_eq!(run.ranks.len(), 3);
        // Table-1 counters agree with the report.
        assert_eq!(run.counter("reads_in"), reads.len() as u64);
        assert_eq!(run.counter("pairs_generated"), report.cluster_stats.generated);
        assert_eq!(run.counter("pairs_aligned"), report.cluster_stats.aligned);
        assert_eq!(run.counter("contigs"), report.total_contigs() as u64);
        assert_eq!(run.counter("clusters"), report.clustering.clusters.len() as u64);
        // The report's stage timings come from the same spans.
        assert_eq!(report.cluster_seconds, cluster.wall_seconds);
    }

    #[test]
    fn assembly_panic_propagates_original_payload() {
        // An empty quality slice makes the per-cluster worker index out
        // of bounds inside its spawned thread. The original payload must
        // surface — not the scope's generic "a scoped thread panicked",
        // and not the downstream "every cluster assembled" expect on the
        // slot the dead thread left empty.
        let reads = island_reads(10);
        let store = reads.to_store();
        let (clustering, _) = cluster_serial(&store, &fast_config(None).cluster);
        assert!(clustering.num_non_singletons() >= 1);
        let no_quals: Vec<QualityTrack> = Vec::new();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            assemble_clusters_q(&store, Some(&no_quals), &clustering, &AssemblyConfig::default(), 2)
        }))
        .expect_err("the assembler thread must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("index out of bounds"), "panic payload was masked: {msg:?}");
    }

    #[test]
    fn distributed_assembly_merges_rank_channels() {
        let reads = island_reads(20);
        let mut ctx = pgasm_telemetry::RunContext::new("test-run");
        let pipeline = Pipeline::new(fast_config(Some(3)));
        let report = pipeline.run_with_context(&reads, &[], &[], &mut ctx);
        let run = ctx.finish();
        // One channel per rank, covering both phases: clustering
        // counters and assemble counters live side by side, and the
        // assemble phase's relabelled protocol rows join the comm table.
        assert_eq!(run.ranks.len(), 3);
        let clusters: u64 = run.ranks[1..].iter().map(|r| r.counter(names::ASM_CLUSTERS_ASSEMBLED)).sum();
        assert_eq!(clusters as usize, report.clustering.num_non_singletons());
        assert!(run.ranks[0].counter(names::PEAK_QUEUE_DEPTH) > 0);
        assert!(run.ranks[0].counter(names::ASM_PEAK_QUEUE_DEPTH) > 0);
        assert!(run.ranks[0].comm.iter().any(|t| t.label == names::TAG_W2M_AR));
        assert!(run.ranks[0].comm.iter().any(|t| t.label == names::TAG_ASM_W2M_RES));
        // The assemble stage records its phase sub-span.
        let assemble = run.span("assemble").unwrap();
        assert!(assemble.find("assemble/dist_assemble").is_some());
    }

    #[test]
    fn assembly_threads_do_not_change_results() {
        let reads = island_reads(40);
        let mut one = fast_config(None);
        one.assembly_threads = 1;
        let mut many = fast_config(None);
        many.assembly_threads = 8;
        let a = Pipeline::new(one).run(&reads, &[], &[]);
        let b = Pipeline::new(many).run(&reads, &[], &[]);
        assert_eq!(a.total_contigs(), b.total_contigs());
        let lens_a: Vec<usize> =
            a.assemblies.iter().flat_map(|x| x.contigs.iter().map(|c| c.seq.len())).collect();
        let lens_b: Vec<usize> =
            b.assemblies.iter().flat_map(|x| x.contigs.iter().map(|c| c.seq.len())).collect();
        assert_eq!(lens_a, lens_b);
    }
}
