//! End-to-end cluster-then-assemble pipeline (paper Fig. 1):
//! preprocessing → parallel clustering → per-cluster serial assembly.

use crate::clustering::{cluster_serial, ClusterParams, ClusterStats, Clustering};
use crate::master_worker::{cluster_parallel, MasterWorkerConfig};
use pgasm_assemble::{assemble_with_quality, Assembly, AssemblyConfig};
use pgasm_seq::QualityTrack;
use pgasm_preprocess::{PreprocessConfig, PreprocessStats, Preprocessor};
use pgasm_seq::{DnaSeq, FragmentStore, SeqId};
use pgasm_simgen::ReadSet;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Preprocessing settings; `None` runs clustering on the raw reads.
    pub preprocess: Option<PreprocessConfig>,
    /// Clustering parameters.
    pub cluster: ClusterParams,
    /// Run the clustering phase on this many simulated ranks
    /// (master–worker); `None` = serial engine.
    pub parallel_ranks: Option<usize>,
    /// Master–worker knobs (batch size, buffer capacity).
    pub master_worker: MasterWorkerConfig,
    /// Per-cluster assembler settings.
    pub assembly: AssemblyConfig,
    /// Threads for the trivially parallel assembly phase.
    pub assembly_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let cluster = ClusterParams::default();
        PipelineConfig {
            preprocess: Some(PreprocessConfig::default()),
            cluster,
            parallel_ranks: None,
            master_worker: MasterWorkerConfig { params: cluster, ..Default::default() },
            assembly: AssemblyConfig::default(),
            assembly_threads: 4,
        }
    }
}

/// Summary of a pipeline run (the §8 statistics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Preprocessing accounting (when the phase ran).
    pub preprocess: Option<PreprocessStats>,
    /// The clustering over the *preprocessed* fragments.
    pub clustering: Clustering,
    /// Clustering work statistics.
    pub cluster_stats: ClusterStats,
    /// For each surviving fragment, the index of its original read.
    pub origin: Vec<usize>,
    /// Per-non-singleton-cluster assemblies (index-parallel with
    /// `clustering.non_singletons()`).
    pub assemblies: Vec<Assembly>,
    /// Seconds in preprocessing.
    pub preprocess_seconds: f64,
    /// Seconds in clustering.
    pub cluster_seconds: f64,
    /// Seconds in the assembly phase.
    pub assembly_seconds: f64,
}

impl PipelineReport {
    /// Total contigs across all clusters.
    pub fn total_contigs(&self) -> usize {
        self.assemblies.iter().map(|a| a.num_contigs()).sum()
    }

    /// Mean contigs per non-singleton cluster — the paper's §8 quality
    /// indicator (≈ 1.1 means clusters almost always hold exactly one
    /// assembly island).
    pub fn contigs_per_cluster(&self) -> f64 {
        let n = self.assemblies.len();
        if n == 0 {
            0.0
        } else {
            // A cluster can assemble into contigs plus leftover
            // singleton reads; count at least one unit per cluster.
            self.assemblies
                .iter()
                .map(|a| (a.num_contigs() + a.singletons.len()).max(1))
                .sum::<usize>() as f64
                / n as f64
        }
    }
}

/// The pipeline runner.
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// New pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Run preprocessing (optional) + clustering + per-cluster assembly
    /// over a read set. `vectors` and `known_repeats` feed the
    /// preprocessor.
    pub fn run(&self, reads: &ReadSet, vectors: &[DnaSeq], known_repeats: &[DnaSeq]) -> PipelineReport {
        // Phase 1: preprocess. The masked view drives clustering; the
        // unmasked (soft-mask) view feeds the assembler, which aligns
        // the real bases.
        let t = Instant::now();
        let (store, store_unmasked, quals, origin, pp_stats) = match &self.config.preprocess {
            Some(cfg) => {
                let pp = Preprocessor::new(cfg.clone(), vectors, known_repeats);
                let out = pp.run(reads);
                (out.store, Some(out.store_unmasked), out.quals, out.origin, Some(out.stats))
            }
            None => {
                let store = reads.to_store();
                let origin = (0..reads.len()).collect();
                (store, None, reads.quals.clone(), origin, None)
            }
        };
        let preprocess_seconds = t.elapsed().as_secs_f64();

        // Phase 2: cluster.
        let t = Instant::now();
        let (clustering, cluster_stats) = match self.config.parallel_ranks {
            Some(p) => {
                let mut mw = self.config.master_worker;
                mw.params = self.config.cluster;
                let report = cluster_parallel(&store, p, &mw);
                (report.clustering, report.stats)
            }
            None => cluster_serial(&store, &self.config.cluster),
        };
        let cluster_seconds = t.elapsed().as_secs_f64();

        // Phase 3: trivially parallel per-cluster assembly over the
        // soft-masked (original-base) fragments.
        let t = Instant::now();
        let assembly_store = store_unmasked.as_ref().unwrap_or(&store);
        let assemblies = assemble_clusters_q(
            assembly_store,
            Some(&quals),
            &clustering,
            &self.config.assembly,
            self.config.assembly_threads,
        );
        let assembly_seconds = t.elapsed().as_secs_f64();

        PipelineReport {
            preprocess: pp_stats,
            clustering,
            cluster_stats,
            origin,
            assemblies,
            preprocess_seconds,
            cluster_seconds,
            assembly_seconds,
        }
    }
}

/// Assemble every non-singleton cluster, distributing clusters across
/// `threads` OS threads ("the subsequent assembly tasks are trivially
/// parallelized by distributing the clusters across multiple
/// processors", §3).
pub fn assemble_clusters(
    store: &FragmentStore,
    clustering: &Clustering,
    config: &AssemblyConfig,
    threads: usize,
) -> Vec<Assembly> {
    assemble_clusters_q(store, None, clustering, config, threads)
}

/// As [`assemble_clusters`], with optional per-fragment qualities
/// (index-parallel with the store) enabling quality-weighted overlap
/// acceptance.
pub fn assemble_clusters_q(
    store: &FragmentStore,
    quals: Option<&[QualityTrack]>,
    clustering: &Clustering,
    config: &AssemblyConfig,
    threads: usize,
) -> Vec<Assembly> {
    let clusters: Vec<&Vec<u32>> = clustering.non_singletons().collect();
    let threads = threads.clamp(1, clusters.len().max(1));
    let mut results: Vec<Option<Assembly>> = vec![None; clusters.len()];
    let chunk = clusters.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot_chunk, cluster_chunk) in results.chunks_mut(chunk).zip(clusters.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, members) in slot_chunk.iter_mut().zip(cluster_chunk) {
                    let reads: Vec<DnaSeq> = members.iter().map(|&f| store.get_seq(SeqId(f))).collect();
                    let cluster_quals: Option<Vec<QualityTrack>> = quals
                        .map(|qs| members.iter().map(|&f| qs[f as usize].clone()).collect());
                    *slot = Some(assemble_with_quality(&reads, cluster_quals.as_deref(), config));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("every cluster assembled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    use pgasm_simgen::vector::VECTOR_SEQ;

    fn island_genome(seed: u64) -> Genome {
        Genome::generate(
            &GenomeSpec {
                length: 20_000,
                repeat_fraction: 0.0,
                repeat_families: 0,
                repeat_len: (50, 60),
                repeat_identity: 1.0,
                islands: 4,
                island_len: (1_500, 2_500),
            },
            seed,
        )
    }

    fn fast_config(parallel: Option<usize>) -> PipelineConfig {
        use pgasm_align::AcceptCriteria;
        use pgasm_gst::GstConfig;
        let cluster = ClusterParams {
            gst: GstConfig { w: 10, psi: 20 },
            criteria: AcceptCriteria { min_identity: 0.9, min_overlap: 40 },
            ..Default::default()
        };
        PipelineConfig {
            preprocess: None,
            cluster,
            parallel_ranks: parallel,
            master_worker: MasterWorkerConfig { params: cluster, batch: 16, pending_cap: 512 },
            assembly: AssemblyConfig::default(),
            assembly_threads: 2,
        }
    }

    fn island_reads(seed: u64) -> ReadSet {
        let genome = island_genome(seed);
        let mut sampler = Sampler::new(&genome, SamplerConfig::clean(), seed + 1);
        // Dense island coverage only: gene-enriched reads with full bias.
        let mut cfg = SamplerConfig::clean();
        cfg.island_bias = 1.0;
        sampler = Sampler::new(&genome, cfg, seed + 1);
        sampler.enriched(160, pgasm_simgen::ReadKind::Mf)
    }

    #[test]
    fn pipeline_clusters_and_assembles_islands() {
        let reads = island_reads(10);
        let report = Pipeline::new(fast_config(None)).run(&reads, &[], &[]);
        // Island-only sampling: a handful of clusters, assembled into
        // about one contig each.
        let nc = report.clustering.num_non_singletons();
        assert!(nc >= 2 && nc <= 12, "clusters {nc}");
        assert!(!report.assemblies.is_empty());
        let cpc = report.contigs_per_cluster();
        assert!(cpc >= 1.0 && cpc < 2.0, "contigs/cluster {cpc}");
        assert_eq!(report.origin.len(), reads.len());
    }

    #[test]
    fn parallel_pipeline_matches_serial() {
        let reads = island_reads(20);
        let serial = Pipeline::new(fast_config(None)).run(&reads, &[], &[]);
        let parallel = Pipeline::new(fast_config(Some(3))).run(&reads, &[], &[]);
        assert_eq!(serial.clustering, parallel.clustering);
        assert_eq!(serial.total_contigs(), parallel.total_contigs());
    }

    #[test]
    fn preprocessing_phase_integrates() {
        let genome = island_genome(30);
        let mut cfg = SamplerConfig::default_scaled();
        cfg.island_bias = 1.0;
        let mut sampler = Sampler::new(&genome, cfg, 31);
        let reads = sampler.enriched(120, pgasm_simgen::ReadKind::Hc);
        let mut config = fast_config(None);
        config.preprocess = Some(pgasm_preprocess::PreprocessConfig {
            stat_repeats: None,
            ..Default::default()
        });
        let report = Pipeline::new(config).run(&reads, &[DnaSeq::from(VECTOR_SEQ)], &genome.repeat_library);
        let pp = report.preprocess.expect("preprocessing ran");
        let before: usize = pp.before.values().map(|v| v.0).sum();
        let after: usize = pp.after.values().map(|v| v.0).sum();
        assert_eq!(before, 120);
        assert!(after > 60, "too many reads lost: {after}");
        assert!(report.clustering.num_non_singletons() >= 1);
    }

    #[test]
    fn assembly_threads_do_not_change_results() {
        let reads = island_reads(40);
        let mut one = fast_config(None);
        one.assembly_threads = 1;
        let mut many = fast_config(None);
        many.assembly_threads = 8;
        let a = Pipeline::new(one).run(&reads, &[], &[]);
        let b = Pipeline::new(many).run(&reads, &[], &[]);
        assert_eq!(a.total_contigs(), b.total_contigs());
        let lens_a: Vec<usize> = a.assemblies.iter().flat_map(|x| x.contigs.iter().map(|c| c.seq.len())).collect();
        let lens_b: Vec<usize> = b.assemblies.iter().flat_map(|x| x.contigs.iter().map(|c| c.seq.len())).collect();
        assert_eq!(lens_a, lens_b);
    }
}
