//! Geometry-aware clustering: Union–Find with per-fragment poses.
//!
//! §10 of the paper: "The effectiveness of our clustering approach can
//! be further enhanced by resolving inconsistent overlaps during
//! cluster formation. By reducing the largest cluster size, this will
//! increase available parallelism during the assembly phase."
//!
//! This module implements that extension. Each fragment in a cluster
//! carries a *pose* — an affine map `x ↦ s·x + t` (`s = ±1` for
//! orientation) from its forward coordinates into its cluster's frame.
//! An accepted overlap between two fragments implies a relative pose;
//! if both fragments already share a cluster and the implied pose
//! disagrees with the recorded one beyond a tolerance, the overlap is
//! *inconsistent* (the repeat-chaining signature) and the merge is
//! refused instead of being deferred to the assembler.

use serde::{Deserialize, Serialize};

/// An affine map over sequence coordinates: `x ↦ s·x + t`, `s ∈ {−1, +1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineMap {
    /// Orientation: +1 keeps direction, −1 reverses.
    pub s: i8,
    /// Translation.
    pub t: i64,
}

impl AffineMap {
    /// The identity map.
    pub const IDENTITY: AffineMap = AffineMap { s: 1, t: 0 };

    /// Apply to a coordinate.
    #[inline]
    pub fn apply(&self, x: i64) -> i64 {
        self.s as i64 * x + self.t
    }

    /// Composition `self ∘ other` (apply `other` first).
    #[inline]
    pub fn compose(&self, other: &AffineMap) -> AffineMap {
        AffineMap { s: self.s * other.s, t: self.s as i64 * other.t + self.t }
    }

    /// The inverse map.
    #[inline]
    pub fn inverse(&self) -> AffineMap {
        // x = s·y + t  ⇒  y = s·x − s·t  (s² = 1).
        AffineMap { s: self.s, t: -(self.s as i64) * self.t }
    }

    /// Do two maps agree within `tol` translation (and exactly in
    /// orientation)?
    #[inline]
    pub fn agrees(&self, other: &AffineMap, tol: i64) -> bool {
        self.s == other.s && (self.t - other.t).abs() <= tol
    }
}

/// Outcome of a geometry-checked union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GeomUnion {
    /// The two elements were in different clusters; now merged.
    Merged,
    /// Already clustered and the implied pose agrees.
    Consistent,
    /// Already clustered but the implied pose disagrees — the overlap
    /// is repeat-induced; the clusters are left intact.
    Inconsistent,
}

/// Union–Find where every element carries a pose relative to its
/// parent; `find` composes poses with path compression, so each element
/// always knows its map into the component root's frame.
#[derive(Debug, Clone)]
pub struct GeomUnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    pose: Vec<AffineMap>,
    sets: usize,
}

impl GeomUnionFind {
    /// `n` singleton clusters, each in its own frame.
    pub fn new(n: usize) -> GeomUnionFind {
        GeomUnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            pose: vec![AffineMap::IDENTITY; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of clusters.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Root of `x` and the pose mapping `x`'s coordinates into the
    /// root's frame. Performs full path compression.
    pub fn find(&mut self, x: u32) -> (u32, AffineMap) {
        if self.parent[x as usize] == x {
            return (x, self.pose[x as usize]);
        }
        let (root, parent_pose) = self.find(self.parent[x as usize]);
        let composed = parent_pose.compose(&self.pose[x as usize]);
        self.parent[x as usize] = root;
        self.pose[x as usize] = composed;
        (root, composed)
    }

    /// Are two elements in the same cluster?
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a).0 == self.find(b).0
    }

    /// Record the constraint `x_b = edge(x_a)` (an overlap-implied
    /// relative pose between elements `a` and `b`).
    pub fn union_with(&mut self, a: u32, b: u32, edge: &AffineMap, tol: i64) -> GeomUnion {
        let (ra, pose_a) = self.find(a);
        let (rb, pose_b) = self.find(b);
        if ra == rb {
            // Consistency: pose_b ∘ edge must equal pose_a.
            let implied = pose_b.compose(edge);
            return if implied.agrees(&pose_a, tol) {
                GeomUnion::Consistent
            } else {
                GeomUnion::Inconsistent
            };
        }
        // Link rb's frame into ra's: L = pose_a ∘ edge⁻¹ ∘ pose_b⁻¹.
        let link = pose_a.compose(&edge.inverse()).compose(&pose_b.inverse());
        if self.rank[ra as usize] >= self.rank[rb as usize] {
            self.parent[rb as usize] = ra;
            self.pose[rb as usize] = link;
            if self.rank[ra as usize] == self.rank[rb as usize] {
                self.rank[ra as usize] += 1;
            }
        } else {
            self.parent[ra as usize] = rb;
            self.pose[ra as usize] = link.inverse();
        }
        self.sets -= 1;
        GeomUnion::Merged
    }

    /// Materialise clusters as member lists ordered by smallest member.
    pub fn sets(&mut self) -> Vec<Vec<u32>> {
        let n = self.parent.len();
        let mut by_root: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        for i in 0..n as u32 {
            let (r, _) = self.find(i);
            by_root.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<u32>> = by_root.into_values().collect();
        out.sort_by_key(|v| v[0]);
        out
    }
}

/// Build the overlap-implied edge map `x_a → x_b` between the *forward*
/// coordinates of two fragments, given the strands the pair was found
/// on, the fragments' lengths, and the aligned start positions in the
/// oriented sequences (`d = a_start − b_start` on the oriented axes).
pub fn overlap_edge(
    a_reverse: bool,
    b_reverse: bool,
    len_a: usize,
    len_b: usize,
    a_start: usize,
    b_start: usize,
) -> AffineMap {
    // Oriented coordinate u of fragment forward coordinate x:
    // u = S·x + C with S = −1, C = len − 1 on the reverse strand.
    let (sa, ca) = strand_map(a_reverse, len_a);
    let (sb, cb) = strand_map(b_reverse, len_b);
    let d = a_start as i64 - b_start as i64;
    // u_b = u_a − d  ⇒  x_b = S_b·(S_a·x_a + C_a − d − C_b).
    AffineMap { s: (sb * sa) as i8, t: sb * (ca - d - cb) }
}

fn strand_map(reverse: bool, len: usize) -> (i64, i64) {
    if reverse {
        (-1, len as i64 - 1)
    } else {
        (1, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_algebra() {
        let f = AffineMap { s: -1, t: 10 };
        let g = AffineMap { s: 1, t: 3 };
        assert_eq!(f.apply(4), 6);
        assert_eq!(f.compose(&g).apply(4), f.apply(g.apply(4)));
        assert_eq!(f.compose(&f.inverse()), AffineMap::IDENTITY);
        assert_eq!(f.inverse().compose(&f), AffineMap::IDENTITY);
    }

    #[test]
    fn consistent_chain_merges() {
        // Three fragments tiling a region: 0 at 0, 1 at 50, 2 at 100.
        let mut uf = GeomUnionFind::new(3);
        let e01 = AffineMap { s: 1, t: -50 }; // x_1 = x_0 − 50
        let e12 = AffineMap { s: 1, t: -50 };
        assert_eq!(uf.union_with(0, 1, &e01, 5), GeomUnion::Merged);
        assert_eq!(uf.union_with(1, 2, &e12, 5), GeomUnion::Merged);
        // The transitive constraint 0→2 is x_2 = x_0 − 100.
        let e02 = AffineMap { s: 1, t: -100 };
        assert_eq!(uf.union_with(0, 2, &e02, 5), GeomUnion::Consistent);
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn inconsistent_overlap_rejected() {
        let mut uf = GeomUnionFind::new(3);
        uf.union_with(0, 1, &AffineMap { s: 1, t: -50 }, 5);
        uf.union_with(1, 2, &AffineMap { s: 1, t: -50 }, 5);
        // A repeat-induced overlap claiming 0 and 2 are only 10 apart.
        let bogus = AffineMap { s: 1, t: -10 };
        assert_eq!(uf.union_with(0, 2, &bogus, 5), GeomUnion::Inconsistent);
        assert_eq!(uf.num_sets(), 1, "rejection must not split the cluster");
    }

    #[test]
    fn orientation_conflicts_detected() {
        let mut uf = GeomUnionFind::new(2);
        uf.union_with(0, 1, &AffineMap { s: 1, t: -50 }, 5);
        // Same pair claimed again but flipped.
        let flipped = AffineMap { s: -1, t: 999 };
        assert_eq!(uf.union_with(0, 1, &flipped, 1000), GeomUnion::Inconsistent);
    }

    #[test]
    fn tolerance_absorbs_indel_jitter() {
        let mut uf = GeomUnionFind::new(3);
        uf.union_with(0, 1, &AffineMap { s: 1, t: -50 }, 5);
        uf.union_with(1, 2, &AffineMap { s: 1, t: -50 }, 5);
        // Off by 3 from the transitive −100: within tolerance.
        assert_eq!(uf.union_with(0, 2, &AffineMap { s: 1, t: -103 }, 5), GeomUnion::Consistent);
        assert_eq!(uf.union_with(0, 2, &AffineMap { s: 1, t: -110 }, 5), GeomUnion::Inconsistent);
    }

    #[test]
    fn overlap_edge_forward_forward() {
        // Suffix of a (starting at 30) matches prefix of b: d = 30.
        let e = overlap_edge(false, false, 100, 100, 30, 0);
        // x_b = x_a − 30.
        assert_eq!(e, AffineMap { s: 1, t: -30 });
        assert_eq!(e.apply(30), 0);
    }

    #[test]
    fn overlap_edge_forward_reverse() {
        // b participates reverse-complemented. len_b = 100, overlap at
        // oriented positions a_start = 60, b_start = 0.
        let e = overlap_edge(false, true, 100, 100, 60, 0);
        // Oriented b coordinate u_b = x_a − 60; forward x_b = 99 − u_b.
        assert_eq!(e.s, -1);
        assert_eq!(e.apply(60), 99);
        assert_eq!(e.apply(70), 89);
    }

    #[test]
    fn mirrored_strand_pairs_give_equivalent_constraints() {
        // The same physical overlap seen as (a fwd, b rev) and as
        // (a rev, b fwd) must induce equal constraints up to inversion.
        let e1 = overlap_edge(false, true, 120, 80, 40, 0);
        // Mirror: swap roles and strands; a_start/b_start swap to the
        // mirrored oriented coordinates.
        let e2 = overlap_edge(true, false, 120, 80, 120 - 1 - (40 + 39), 80 - 1 - 39);
        // e2 describes the same geometry: applying both to a sample
        // coordinate must agree.
        assert_eq!(e1.s, e2.s);
        assert!((e1.t - e2.t).abs() <= 1, "{e1:?} vs {e2:?}");
    }

    #[test]
    fn sets_materialise_with_posed_members() {
        let mut uf = GeomUnionFind::new(4);
        uf.union_with(0, 2, &AffineMap { s: 1, t: -10 }, 2);
        uf.union_with(1, 3, &AffineMap { s: -1, t: 5 }, 2);
        let sets = uf.sets();
        assert_eq!(sets, vec![vec![0, 2], vec![1, 3]]);
    }
}
