//! Distributed GST construction (paper §6).
//!
//! Phases, per rank:
//!
//! 1. **Bucket**: enumerate the suffixes of the rank's own fragments and
//!    bucket them by their w-length prefixes.
//! 2. **Assign**: bucket sizes are gathered; buckets are assigned to
//!    builder ranks balancing total suffix counts; the assignment is
//!    broadcast.
//! 3. **Redistribute**: suffixes travel to their bucket's builder via
//!    the paper's customised all-to-all built from p − 1 point-to-point
//!    rounds (bounding send-buffer space).
//! 4. **Fetch fragments**: each builder requests the fragment sequences
//!    its received suffixes refer to "through two collective
//!    communication steps — the first to request the processors that
//!    have the required fragments, and the second to service the
//!    request".
//! 5. **Build**: each bucket becomes a compacted-trie subtree of the
//!    conceptual global GST (built depth-first, §6).
//!
//! Ownership discipline: a rank reads only its *own* fragments from the
//! shared store; every foreign byte it uses arrives through a message,
//! so the traffic counters are exact.

use pgasm_gst::{bucket_suffixes_of, Gst, GstConfig, Suffix, TextSource};
use pgasm_mpisim::codec::{checked_len, Decoder, Encoder};
use pgasm_mpisim::{thread_cpu_seconds, Comm, CommStats, CostModel};
use pgasm_seq::{FragmentStore, SeqId};
use pgasm_telemetry::names;
use pgasm_telemetry::trace::TraceCategory;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-rank text access: own fragments come from the shared store,
/// foreign fragments from the fetched copies.
pub struct LocalText<'s> {
    store: &'s FragmentStore,
    owner: &'s [u32],
    rank: usize,
    fetched: HashMap<u32, Vec<u8>>,
}

impl TextSource for LocalText<'_> {
    fn seq_codes(&self, seq: u32) -> &[u8] {
        if self.owner[seq as usize] as usize == self.rank {
            self.store.get(SeqId(seq))
        } else {
            self.fetched.get(&seq).map(|v| v.as_slice()).expect("fragment was not fetched for a local suffix")
        }
    }

    fn num_seqs(&self) -> usize {
        self.store.num_seqs()
    }
}

/// Timing/traffic report of one rank's construction.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RankGstReport {
    /// Rank id.
    pub rank: usize,
    /// Seconds of pure computation (bucketing + trie building).
    pub compute_seconds: f64,
    /// Traffic during construction.
    pub comm: CommStats,
    /// Suffixes this rank built trees over.
    pub suffixes_built: usize,
    /// Foreign fragments fetched.
    pub fragments_fetched: usize,
    /// Estimated resident bytes of the local forest.
    pub memory_bytes: usize,
}

impl RankGstReport {
    /// Modelled communication seconds under `model`.
    pub fn modelled_comm_seconds(&self, model: &CostModel) -> f64 {
        model.comm_time(&self.comm)
    }
}

/// Aggregated report over all ranks (the Fig. 5 data).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistributedGstReport {
    /// Per-rank breakdowns.
    pub per_rank: Vec<RankGstReport>,
}

impl DistributedGstReport {
    /// Maximum per-rank computation time (the parallel step completes
    /// when the slowest rank does).
    pub fn max_compute_seconds(&self) -> f64 {
        self.per_rank.iter().map(|r| r.compute_seconds).fold(0.0, f64::max)
    }

    /// Maximum per-rank modelled communication time.
    pub fn max_modelled_comm_seconds(&self, model: &CostModel) -> f64 {
        self.per_rank.iter().map(|r| r.modelled_comm_seconds(model)).fold(0.0, f64::max)
    }
}

/// Run inside a rank: build this rank's portion of the distributed GST.
///
/// `owner[seq]` gives the rank owning each stored sequence; sequences
/// owned by this rank are bucketed here. Buckets are assigned to ranks
/// `first_builder..size` (the master–worker runtime excludes rank 0).
/// Returns the local forest (suffixes carry *global* sequence ids), the
/// local text, and the report.
pub fn rank_build_gst<'s>(
    comm: &mut Comm,
    store: &'s FragmentStore,
    owner: &'s [u32],
    config: GstConfig,
    first_builder: usize,
) -> (Gst, LocalText<'s>, RankGstReport) {
    let rank = comm.rank();
    let p = comm.size();
    let builders = p - first_builder;
    assert!(builders >= 1, "need at least one builder rank");
    let stats_before = comm.stats();
    let mut compute = 0.0f64;

    // Phase 1: bucket own suffixes. Compute is accounted in *thread CPU
    // time*: ranks may timeshare cores, and wall intervals would then
    // overstate computation (see `thread_cpu_seconds`).
    comm.tracer_mut().begin(TraceCategory::Gst, names::EV_GST_BUCKET);
    let t = thread_cpu_seconds();
    let my_seqs: Vec<SeqId> =
        (0..store.num_seqs() as u32).filter(|&s| owner[s as usize] as usize == rank).map(SeqId).collect();
    let local_buckets = bucket_suffixes_of(store, &my_seqs, config.w);
    compute += thread_cpu_seconds() - t;
    comm.tracer_mut().end(TraceCategory::Gst, names::EV_GST_BUCKET);

    // Phase 2: bucket → builder assignment is *static* (a hash of the
    // bucket key), relying on the paper's observation that for diverse
    // sequence data the |Σ|^w buckets are close to uniformly occupied
    // ("a value between 10 and 12 for w can be expected to generate
    // millions of buckets sufficient to be distributed in a load
    // balanced manner"). No communication is needed to agree on owners.

    // Phase 3: redistribute suffixes (customised all-to-all, §6).
    comm.tracer_mut().begin(TraceCategory::Gst, names::EV_GST_REDISTRIBUTE);
    let mut per_dest: Vec<Encoder> = (0..p).map(|_| Encoder::new()).collect();
    for (key, sufs) in &local_buckets {
        let dest = bucket_owner(*key, builders, first_builder);
        let e = &mut per_dest[dest];
        e.put_u64(*key);
        e.put_u32(checked_len(sufs.len()));
        for s in sufs {
            e.put_u32(s.seq);
            e.put_u32(s.pos);
            e.put_u32(s.rem);
        }
    }
    let received = comm.all_to_allv_p2p(per_dest.into_iter().map(Encoder::finish).collect());
    let mut my_buckets: HashMap<u64, Vec<Suffix>> = HashMap::new();
    for payload in received {
        let mut d = Decoder::new(payload);
        while !d.is_empty() {
            let key = d.get_u64();
            let n = d.get_u32();
            let bucket = my_buckets.entry(key).or_default();
            for _ in 0..n {
                bucket.push(Suffix { seq: d.get_u32(), pos: d.get_u32(), rem: d.get_u32() });
            }
        }
    }

    comm.tracer_mut().end(TraceCategory::Gst, names::EV_GST_REDISTRIBUTE);

    // Phase 4: fetch foreign fragments (two collective steps).
    comm.tracer_mut().begin(TraceCategory::Gst, names::EV_GST_FETCH);
    let t = thread_cpu_seconds();
    let mut needed: Vec<u32> = my_buckets
        .values()
        .flat_map(|b| b.iter().map(|s| s.seq))
        .filter(|&s| owner[s as usize] as usize != rank)
        .collect();
    needed.sort_unstable();
    needed.dedup();
    compute += thread_cpu_seconds() - t;
    let mut requests: Vec<Encoder> = (0..p).map(|_| Encoder::new()).collect();
    for &s in &needed {
        requests[owner[s as usize] as usize].put_u32(s);
    }
    let incoming_requests = comm.all_to_allv(requests.into_iter().map(Encoder::finish).collect());
    let mut responses: Vec<Encoder> = (0..p).map(|_| Encoder::new()).collect();
    for (src, payload) in incoming_requests.into_iter().enumerate() {
        let mut d = Decoder::new(payload);
        while !d.is_empty() {
            let s = d.get_u32();
            debug_assert_eq!(owner[s as usize] as usize, rank, "request sent to wrong owner");
            responses[src].put_u32(s);
            responses[src].put_bytes(store.get(SeqId(s)));
        }
    }
    let incoming_frags = comm.all_to_allv(responses.into_iter().map(Encoder::finish).collect());
    let mut fetched: HashMap<u32, Vec<u8>> = HashMap::new();
    for payload in incoming_frags {
        let mut d = Decoder::new(payload);
        while !d.is_empty() {
            let s = d.get_u32();
            fetched.insert(s, d.get_bytes().to_vec());
        }
    }
    let fragments_fetched = fetched.len();
    let text = LocalText { store, owner, rank, fetched };
    comm.tracer_mut().end(TraceCategory::Gst, names::EV_GST_FETCH);

    // Phase 5: build the local forest.
    comm.tracer_mut().begin(TraceCategory::Gst, names::EV_GST_BUILD);
    let t = thread_cpu_seconds();
    let suffixes_built: usize = my_buckets.values().map(|b| b.len()).sum();
    let buckets: Vec<Vec<Suffix>> = {
        let mut keys: Vec<u64> = my_buckets.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| my_buckets.remove(&k).expect("key present")).collect()
    };
    let gst = Gst::build_from_buckets(&text, buckets, config);
    compute += thread_cpu_seconds() - t;
    comm.tracer_mut().end(TraceCategory::Gst, names::EV_GST_BUILD);

    let after = comm.stats();
    let comm_delta = CommStats {
        msgs_sent: after.msgs_sent - stats_before.msgs_sent,
        bytes_sent: after.bytes_sent - stats_before.bytes_sent,
        msgs_recv: after.msgs_recv - stats_before.msgs_recv,
        bytes_recv: after.bytes_recv - stats_before.bytes_recv,
        wait_ns: after.wait_ns - stats_before.wait_ns,
        barrier_ns: after.barrier_ns - stats_before.barrier_ns,
    };
    let memory_bytes = gst.memory_bytes();
    (
        gst,
        text,
        RankGstReport {
            rank,
            compute_seconds: compute,
            comm: comm_delta,
            suffixes_built,
            fragments_fetched,
            memory_bytes,
        },
    )
}

/// Driver: build the distributed GST over all sequences of `store`
/// (already double-stranded if desired) on `p` ranks and report the
/// construction breakdown. The forests themselves are discarded — this
/// entry point exists for the Fig. 5 experiment; the clustering runtime
/// calls [`rank_build_gst`] directly.
pub fn build_distributed_gst(store: &FragmentStore, p: usize, config: GstConfig) -> DistributedGstReport {
    let owner = compute_owners(store, p, 0);
    let owner = &owner;
    let store = &store;
    let reports = pgasm_mpisim::run(p, move |comm| {
        let (_gst, _text, report) = rank_build_gst(comm, store, owner, config, 0);
        report
    });
    DistributedGstReport { per_rank: reports }
}

/// Static owner of a bucket: a mixed hash of its key spread over the
/// builder ranks `first_builder..first_builder + builders`.
#[inline]
pub fn bucket_owner(key: u64, builders: usize, first_builder: usize) -> usize {
    // splitmix64 finaliser — decorrelates adjacent w-mer codes.
    let mut z = key.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    first_builder + (z % builders as u64) as usize
}

/// Assign each stored sequence an owner rank in `first..p`, balancing
/// total bases (the paper's initial N/p distribution). Forward/reverse
/// pairs stay together.
pub fn compute_owners(store: &FragmentStore, p: usize, first: usize) -> Vec<u32> {
    assert!(first < p);
    let parts = store.partition_by_bases(p - first);
    let mut owner = vec![0u32; store.num_seqs()];
    for (part, seqs) in parts.iter().enumerate() {
        for &s in seqs {
            owner[s.0 as usize] = (part + first) as u32;
        }
    }
    owner
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_gst::{GenMode, PairGenerator};
    use pgasm_seq::DnaSeq;

    fn genome(seed: u64, len: usize) -> String {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    fn reads() -> FragmentStore {
        let g = genome(1, 2000);
        let b = g.as_bytes();
        let mut seqs = Vec::new();
        let mut at = 0;
        while at + 200 <= b.len() {
            seqs.push(DnaSeq::from_ascii(&b[at..at + 200]));
            at += 90;
        }
        FragmentStore::from_seqs(seqs)
    }

    fn all_pairs_sorted(pairs: Vec<pgasm_gst::PromisingPair>) -> Vec<(u32, u32, u32, u32, u32)> {
        let mut v: Vec<_> = pairs.iter().map(|p| (p.a.0, p.b.0, p.a_pos, p.b_pos, p.match_len)).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn distributed_equals_serial_pairs() {
        // The union of pairs generated from the per-rank forests must
        // equal the serial GST's pairs (AllMatches mode = exact set).
        let store = reads().with_reverse_complements();
        let config = GstConfig { w: 8, psi: 16 };
        let serial = {
            let gst = Gst::build(&store, config);
            all_pairs_sorted(PairGenerator::new(gst, GenMode::AllMatches, |_, _| false).collect())
        };
        for p in [1usize, 2, 3, 4] {
            let owner = compute_owners(&store, p, 0);
            let owner = &owner;
            let store_ref = &store;
            let per_rank = pgasm_mpisim::run(p, move |comm| {
                let (gst, _text, _rep) = rank_build_gst(comm, store_ref, owner, config, 0);
                PairGenerator::new(gst, GenMode::AllMatches, |_, _| false).collect::<Vec<_>>()
            });
            let mut combined: Vec<_> = per_rank.into_iter().flatten().collect();
            let combined = all_pairs_sorted(std::mem::take(&mut combined));
            assert_eq!(combined, serial, "p = {p}");
        }
    }

    #[test]
    fn first_builder_excludes_master() {
        let store = reads().with_reverse_complements();
        let config = GstConfig { w: 8, psi: 16 };
        let owner = compute_owners(&store, 3, 1);
        // Rank 0 owns nothing.
        assert!(owner.iter().all(|&o| o >= 1));
        let owner = &owner;
        let store_ref = &store;
        let reports = pgasm_mpisim::run(3, move |comm| {
            let (gst, _t, rep) = rank_build_gst(comm, store_ref, owner, config, 1);
            (gst.stats().suffixes, rep)
        });
        assert_eq!(reports[0].0, 0, "master must build no suffixes");
        assert!(reports[1].0 + reports[2].0 > 0);
    }

    #[test]
    fn traffic_is_accounted() {
        let store = reads().with_reverse_complements();
        let report = build_distributed_gst(&store, 4, GstConfig { w: 8, psi: 16 });
        assert_eq!(report.per_rank.len(), 4);
        let total_sent: u64 = report.per_rank.iter().map(|r| r.comm.bytes_sent).sum();
        assert!(total_sent > 0, "distribution must move bytes");
        // Every rank fetched at least some foreign fragment (suffixes are
        // spread by content, ownership by position).
        let fetched: usize = report.per_rank.iter().map(|r| r.fragments_fetched).sum();
        assert!(fetched > 0);
        // Thread-CPU-time accounting has ~10 ms granularity, so tiny
        // builds may legitimately report zero compute.
        assert!(report.max_compute_seconds() >= 0.0);
        assert!(report.max_modelled_comm_seconds(&CostModel::BLUEGENE_L) > 0.0);
    }

    #[test]
    fn owners_balance_bases() {
        let store = reads();
        let owner = compute_owners(&store, 4, 0);
        let mut loads = [0usize; 4];
        for (i, &o) in owner.iter().enumerate() {
            loads[o as usize] += store.len_of(SeqId(i as u32));
        }
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 400, "imbalanced: {loads:?}");
    }
}
