//! Generic distributed task engine — the event-driven master–worker
//! protocol of §7, extracted from the clustering runtime so any
//! workload can ride it.
//!
//! The engine owns everything the paper's Figs. 6–8 describe about
//! *work distribution* and nothing about the work itself:
//!
//! - the four-message protocol shape — workers report results
//!   ([`TAG_W2M_AR`]) and newly generated tasks plus generator status
//!   ([`TAG_W2M_NP`]); the master answers with a flow-control grant
//!   carrying termination ([`TAG_M2W_R`]) and a task batch
//!   ([`TAG_M2W_AW`]);
//! - the master's event pump: drain **all** queued reports through
//!   `try_recv` before dispatching, block in `recv` only on a truly
//!   empty inbox;
//! - the pending-task buffer, the [`compute_r`] flow-control rule, the
//!   park/unpark service for passive workers, and clean termination
//!   (every worker passive + parked, nothing pending or in flight);
//! - protocol trace instrumentation (dispatch spans, handle/park/unpark
//!   instants) and the protocol counters (peak queue depth, batches
//!   dispatched, inbox drain depth, round-trips).
//!
//! What a *task* is, how it travels on the wire, how results are
//! encoded, and which of the announced tasks are worth dispatching are
//! the client's business, expressed through three small traits:
//! [`Task`] (wire codec), [`TaskSource`] (master-side absorption and
//! selection), and [`TaskSink`] (worker-side compute and generation).
//! Clustering (`crate::master_worker`) is the first client —
//! re-hosted with its wire format, counters, and trace events
//! preserved bit-for-bit — and distributed per-cluster assembly
//! (`crate::assemble_dist`) is the second, seeding the master's queue
//! up-front with workers that never generate (a degenerate but fully
//! legal instance of the same protocol).
//!
//! # Fault tolerance
//!
//! Every allocation is a *lease*: the master journals each non-empty
//! batch it dispatches under a fresh lease id (carried on the `AW`
//! message and echoed back on the matching `AR`), and retires the
//! lease when the report arrives. A report whose lease is no longer
//! journaled — a late or duplicate replay after recovery — is
//! discarded whole, so every batch's results are absorbed **at most
//! once**. When a worker's death notice arrives (or the optional
//! [`EngineConfig::stall_timeout`] liveness check declares a silent
//! worker dead), the master marks the rank dead, re-queues its
//! outstanding leases to survivors, and — if the dead worker's task
//! generator was still active — assigns its generator *scope* to the
//! lowest live worker, which rebuilds it from scratch through
//! [`TaskSink::adopt_scope`]. Regenerated duplicates are the client's
//! problem by contract (idempotent absorption / selection dedup); the
//! paper's clustering client gets this for free from its union–find
//! and cluster-check skip. The run terminates cleanly at any survivor
//! count ≥ 1; a killed master surfaces as
//! [`MasterReport::killed`] / [`WorkerReport::master_died`] instead of
//! a hang.
//!
//! The engine works over the `mpisim` rank model, so the coalescing
//! layer, per-tag traffic accounting, and blocked-time attribution all
//! apply to any client unchanged.

use pgasm_mpisim::codec::{checked_len, Decoder, Encoder};
use pgasm_mpisim::comm::Event;
use pgasm_mpisim::{Comm, CommError, Msg};
use pgasm_telemetry::names;
use pgasm_telemetry::trace::{TraceCategory, Tracer};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Worker → master: computed results (the paper's `AR`). The body is
/// the lease id of the computed batch (`0` for the unsolicited opening
/// report) followed by the client-encoded report
/// ([`TaskSink::run_batch`] writes it, [`TaskSource::absorb_results`]
/// reads it).
pub const TAG_W2M_AR: u32 = 1;
/// Master → worker: flow-control grant `r` (paper's `R`); also carries
/// the termination flag and the adoption list, so every master
/// transmission starts here.
pub const TAG_M2W_R: u32 = 2;
/// Worker → master: newly generated tasks + generator status (paper's
/// `NP`); doubles as the request for the next allocation.
pub const TAG_W2M_NP: u32 = 3;
/// Master → worker: the allocated task batch (paper's `AW`), prefixed
/// by its lease id (`0` when the batch is empty).
pub const TAG_M2W_AW: u32 = 4;

/// Engine runtime knobs — the protocol-shape subset of what used to be
/// `MasterWorkerConfig` (coalescing stays with the caller, which owns
/// the `Comm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Task batch size `b` (tasks per AW message).
    pub batch: usize,
    /// Capacity of the master's pending-task buffer (flow-control
    /// target; the buffer itself degrades gracefully if exceeded).
    pub pending_cap: usize,
    /// Liveness check: after this many consecutive empty inbox polls
    /// the master declares the lowest worker with outstanding work
    /// dead (fault plan armed) or aborts with a diagnostic dump of the
    /// outstanding leases (no plan — a silent worker is then an engine
    /// bug, not an injected fault). `None` keeps the master blocking
    /// in `recv`, the zero-overhead default. The unit is poll events,
    /// not wall time, so a given interleaving trips deterministically.
    pub stall_timeout: Option<u64>,
}

/// A unit of work that can cross the simulated wire. `Clone` because
/// the master journals every dispatched batch until its result report
/// retires the lease (the copy is what recovery re-queues).
pub trait Task: Sized + Clone {
    /// Append this task's wire form to `e`.
    fn encode(&self, e: &mut Encoder);
    /// Decode one task (must consume exactly what [`Task::encode`]
    /// wrote).
    fn decode(d: &mut Decoder) -> Self;
    /// Encoder pre-allocation hint, bytes per task.
    fn encoded_size_hint(&self) -> usize {
        20
    }
}

/// Master-side client logic: absorb worker results the moment they are
/// drained, and decide which announced tasks still need doing.
pub trait TaskSource<T: Task> {
    /// Consume one worker's result report (the `AR` body this client's
    /// [`TaskSink::run_batch`] encoded). Called per message as the
    /// inbox drains, so client state is maximally fresh when batches
    /// are cut. Never called twice for the same lease: late/duplicate
    /// replays are dropped by the engine before they reach here.
    fn absorb_results(&mut self, src: usize, d: &mut Decoder);
    /// A worker announced `task`; return `true` to queue it for
    /// dispatch. Called once per announced task, in arrival order.
    /// After a generator-scope adoption the same task may be announced
    /// again by the adopter — selection must treat re-announcement as
    /// already-done (the clustering client's cluster-check does).
    fn select(&mut self, task: &T) -> bool;
}

/// Worker-side client logic: compute allocated batches and generate new
/// tasks on request.
pub trait TaskSink<T: Task> {
    /// Compute the batch allocated last round (possibly empty — the
    /// opening report) and append the result-report body to `e`. The
    /// body must always be well-formed: the matching
    /// [`TaskSource::absorb_results`] decodes every report, including
    /// the empty opening one.
    fn run_batch(&mut self, tracer: &mut Tracer, batch: &mut Vec<T>, e: &mut Encoder);
    /// Generate up to `r` new tasks into `out`; return whether the
    /// generator can still yield more (*active*). A sink with nothing
    /// to generate returns `false` immediately and the engine parks the
    /// worker until the master finds it other ranks' work.
    fn generate(&mut self, tracer: &mut Tracer, r: usize, out: &mut Vec<T>) -> bool;
    /// A worker died with its task generator still active and the
    /// master chose this rank as the adopter: take over generating
    /// `dead_rank`'s scope **from scratch**. The engine cannot know
    /// how far the dead generator got, so regenerated duplicates must
    /// be harmless to the client (idempotent absorption or selection
    /// dedup). Sinks that never generate have nothing to adopt — the
    /// default no-op.
    fn adopt_scope(&mut self, _tracer: &mut Tracer, _dead_rank: usize) {}
    /// Feed workload-specific gauges after each computed batch. The
    /// engine calls this once per round with the rank's sampler (which
    /// rate-limits and no-ops when disabled); the default sink has no
    /// gauges.
    fn sample_gauges(&mut self, _sampler: &mut pgasm_telemetry::GaugeSampler) {}
}

/// Protocol-level tallies from one master run; the client folds these
/// into its own counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MasterReport {
    /// Tasks workers announced over NP (the client's "generated").
    pub tasks_announced: u64,
    /// Announced tasks the source selected into the pending buffer.
    pub tasks_selected: u64,
    /// Peak depth of the pending-task buffer.
    pub peak_queue_depth: u64,
    /// Non-empty AW batches dispatched.
    pub batches_dispatched: u64,
    /// Deepest single drain of the inbox.
    pub inbox_drain_depth_max: u64,
    /// Tasks recovered from dead workers' journaled leases and
    /// re-queued to survivors.
    pub recovered_tasks: u64,
    /// Workers marked dead (death notice or liveness declaration).
    pub dead_ranks: u64,
    /// Result reports absorbed (the checkpoint cadence clock).
    pub results_absorbed: u64,
    /// Snapshots written by the checkpoint hook, and their total bytes.
    pub ckpt_writes: u64,
    /// Total bytes persisted by the checkpoint hook.
    pub ckpt_bytes: u64,
    /// The fault plan killed the master itself; the run is incomplete
    /// and the caller should recover from the last checkpoint.
    pub killed: bool,
}

/// Protocol-level tallies from one worker run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Tasks this worker's generator produced.
    pub tasks_generated: u64,
    /// Report/grant round-trips completed.
    pub round_trips: u64,
    /// Generator scopes this worker adopted from dead peers.
    pub scopes_adopted: u64,
    /// The fault plan killed this worker mid-run.
    pub killed: bool,
    /// The master died; this worker exited without termination.
    pub master_died: bool,
}

/// One journaled allocation: which worker holds it and the tasks to
/// re-queue if that worker dies before its report arrives.
struct Lease<T> {
    worker: usize,
    tasks: Vec<T>,
}

/// The master's mutable protocol state, separated from the event loop
/// so message handling (absorption, selection) and dispatch (batch
/// cutting, flow control) read as the two halves of Fig. 7 they are.
struct Master<'s, T, S> {
    source: &'s mut S,
    b: usize,
    pending_cap: usize,
    pending: VecDeque<T>,
    /// Worker's generator still has tasks to yield.
    worker_active: Vec<bool>,
    /// Worker reported its round (NP arrived) and awaits an R+AW reply.
    need_reply: Vec<bool>,
    /// Worker is passive with no allocation in flight: blocked in a
    /// receive, revivable with an unsolicited grant (Idle_Workers).
    parked: Vec<bool>,
    /// An allocation is in flight to this worker (a report will come).
    outstanding: Vec<bool>,
    /// Worker is dead (death notice or liveness declaration): excluded
    /// from dispatch, its messages discarded.
    dead: Vec<bool>,
    /// Dispatched-but-unacknowledged batches, keyed by lease id.
    journal: BTreeMap<u64, Lease<T>>,
    next_lease: u64,
    /// Dead generator scopes assigned to a worker but not yet carried
    /// on a grant.
    pending_adoptions: Vec<Vec<usize>>,
    /// Dead generator scopes a worker has been granted — reassigned
    /// (rebuilt from scratch) if the adopter dies too.
    adopted_scopes: Vec<Vec<usize>>,
    report: MasterReport,
}

impl<T: Task, S: TaskSource<T>> Master<'_, T, S> {
    /// Apply one worker message the moment it is drained — result
    /// absorption (AR) and task selection (NP) interleave with message
    /// progress instead of waiting for a dispatch turn. Messages from
    /// dead-declared ranks and reports whose lease is no longer
    /// journaled are discarded whole: that is the replay dedup.
    fn handle(&mut self, tracer: &mut Tracer, msg: &Msg) {
        let i = msg.src;
        if self.dead[i] {
            tracer.instant_args(
                TraceCategory::Fault,
                names::EV_STALE_MSG,
                ("src", i as u64),
                ("tag", msg.tag as u64),
            );
            return;
        }
        let mut d = Decoder::new(msg.data.clone());
        match msg.tag {
            TAG_W2M_AR => {
                let lease = d.get_u64();
                if lease != 0 && self.journal.remove(&lease).is_none() {
                    // Late or duplicate replay of an already-recovered
                    // batch: absorbing it twice would double-count.
                    tracer.instant_args(
                        TraceCategory::Fault,
                        names::EV_STALE_MSG,
                        ("src", i as u64),
                        ("lease", lease),
                    );
                    return;
                }
                self.source.absorb_results(i, &mut d);
                self.report.results_absorbed += 1;
            }
            TAG_W2M_NP => {
                // Newly announced tasks: keep only those the source
                // still wants *right now*.
                let active = d.get_u32() == 1;
                // A worker that exhausted its own generator stays
                // active while an adoption grant is queued for it.
                self.worker_active[i] = active || !self.pending_adoptions[i].is_empty();
                let np_count = d.get_u32();
                for _ in 0..np_count {
                    let task = T::decode(&mut d);
                    self.report.tasks_announced += 1;
                    if self.source.select(&task) {
                        self.pending.push_back(task);
                        self.report.tasks_selected += 1;
                    }
                }
                self.report.peak_queue_depth = self.report.peak_queue_depth.max(self.pending.len() as u64);
                // NP closes the worker's round: it now awaits a grant.
                self.need_reply[i] = true;
                self.outstanding[i] = false;
            }
            t => unreachable!("unexpected tag {t} at the master"),
        }
    }

    /// Answer every worker whose round completed and feed parked
    /// workers from the pending buffer (Fig. 7's Idle_Workers service).
    fn dispatch(&mut self, comm: &mut Comm) -> Result<(), CommError> {
        let p = self.worker_active.len();
        for i in 1..p {
            if self.dead[i] || !self.need_reply[i] {
                continue;
            }
            self.need_reply[i] = false;
            let batch = drain_batch(&mut self.pending, self.b);
            let r = self.flow_control();
            if batch.is_empty() && !self.worker_active[i] {
                // Nothing to do and nothing left to generate: park it
                // (the empty AW tells the worker to block).
                self.parked[i] = true;
                comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_PARK, "worker", i as u64);
                self.grant(comm, i, r, batch)?;
            } else {
                self.outstanding[i] = true;
                self.grant(comm, i, r, batch)?;
            }
        }
        for j in 1..p {
            if self.dead[j] || !self.parked[j] {
                continue;
            }
            if self.pending.is_empty() && self.pending_adoptions[j].is_empty() {
                continue;
            }
            let batch = drain_batch(&mut self.pending, self.b);
            let r = self.flow_control();
            self.parked[j] = false;
            self.outstanding[j] = true;
            comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_UNPARK, "worker", j as u64);
            self.grant(comm, j, r, batch)?;
        }
        Ok(())
    }

    /// Send one live allocation: journal the batch under a fresh lease
    /// and attach any adoption scopes queued for this worker.
    fn grant(&mut self, comm: &mut Comm, dest: usize, r: usize, batch: Vec<T>) -> Result<(), CommError> {
        let lease = if batch.is_empty() {
            0
        } else {
            self.report.batches_dispatched += 1;
            let id = self.next_lease;
            self.next_lease += 1;
            self.journal.insert(id, Lease { worker: dest, tasks: batch.clone() });
            id
        };
        let adopt = std::mem::take(&mut self.pending_adoptions[dest]);
        if !adopt.is_empty() {
            for &scope in &adopt {
                comm.tracer_mut().instant_args(
                    TraceCategory::Fault,
                    names::EV_ADOPT_SCOPE,
                    ("dead", scope as u64),
                    ("adopter", dest as u64),
                );
            }
            self.adopted_scopes[dest].extend(adopt.iter().copied());
            // The adoption grant re-activates the worker's generator.
            self.worker_active[dest] = true;
        }
        send_grant(comm, dest, r, lease, &batch, &adopt, false)
    }

    fn flow_control(&self) -> usize {
        compute_r(
            self.b,
            self.pending_cap,
            self.pending.len(),
            &self.worker_active,
            self.report.tasks_announced,
            self.report.tasks_selected,
        )
    }

    /// Every live worker passive and parked, nothing pending, no lease
    /// unacknowledged, no adoption undelivered. The journal term is
    /// what turns a dropped report into a detectable stall instead of
    /// silent task loss.
    fn finished(&self) -> bool {
        let p = self.worker_active.len();
        (1..p).all(|i| self.dead[i] || (!self.worker_active[i] && self.parked[i] && !self.outstanding[i]))
            && self.pending.is_empty()
            && self.journal.is_empty()
            && self.pending_adoptions.iter().all(Vec::is_empty)
    }

    /// Mark a worker dead and recover everything it held: re-queue its
    /// journaled leases to the pending buffer and hand its generator
    /// scope (own + previously adopted) to the lowest live worker.
    fn on_death(&mut self, comm: &mut Comm, i: usize) {
        if i == 0 || self.dead[i] {
            return;
        }
        self.dead[i] = true;
        self.report.dead_ranks += 1;
        self.need_reply[i] = false;
        self.parked[i] = false;
        self.outstanding[i] = false;
        // Re-queue every batch the dead worker never acknowledged.
        let ids: Vec<u64> = self.journal.iter().filter(|(_, l)| l.worker == i).map(|(&id, _)| id).collect();
        let mut recovered = 0u64;
        for id in ids {
            let lease = self.journal.remove(&id).expect("id collected above");
            recovered += lease.tasks.len() as u64;
            self.pending.extend(lease.tasks);
        }
        if recovered > 0 {
            self.report.recovered_tasks += recovered;
            self.report.peak_queue_depth = self.report.peak_queue_depth.max(self.pending.len() as u64);
            comm.tracer_mut().instant_args(
                TraceCategory::Fault,
                names::EV_RECOVER_LEASES,
                ("worker", i as u64),
                ("tasks", recovered),
            );
        }
        // Generator scope: the dead worker's own (if still active) plus
        // every scope it had adopted, all rebuilt from scratch by the
        // new adopter.
        let mut scopes = std::mem::take(&mut self.pending_adoptions[i]);
        scopes.extend(std::mem::take(&mut self.adopted_scopes[i]));
        if self.worker_active[i] {
            scopes.push(i);
        }
        self.worker_active[i] = false;
        let p = self.worker_active.len();
        if !scopes.is_empty() {
            let adopter = (1..p).find(|&j| !self.dead[j]).unwrap_or_else(|| {
                panic!("rank {i} died with generator scope outstanding and no survivor to adopt it")
            });
            self.pending_adoptions[adopter].extend(scopes);
            self.worker_active[adopter] = true;
        }
        if (1..p).all(|j| self.dead[j]) && !(self.pending.is_empty() && self.journal.is_empty()) {
            panic!(
                "every worker is dead with {} task(s) still pending — the fault plan left no survivors",
                self.pending.len()
            );
        }
    }

    /// The stall timeout tripped: with a fault plan armed, declare the
    /// lowest worker with outstanding work dead (it may be silently
    /// killed, or its report was dropped on the wire — either way its
    /// work is recoverable); without one, a stall is an engine bug and
    /// the diagnostic dump is worth more than a hang.
    fn on_stall(&mut self, comm: &mut Comm) {
        let p = self.worker_active.len();
        let victim = (1..p).find(|&i| {
            !self.dead[i] && (self.outstanding[i] || self.journal.values().any(|l| l.worker == i))
        });
        match victim {
            Some(i) if comm.has_fault_plan() => {
                comm.tracer_mut().instant_arg(
                    TraceCategory::Fault,
                    names::EV_LIVENESS_DECLARE,
                    "worker",
                    i as u64,
                );
                self.on_death(comm, i);
            }
            _ => panic!("{}", self.stall_dump()),
        }
    }

    /// Human-readable snapshot of the stalled protocol state.
    fn stall_dump(&self) -> String {
        let p = self.worker_active.len();
        let mut s = String::from("engine stalled: no worker progress within stall_timeout\n");
        let _ = writeln!(s, "  pending tasks: {}", self.pending.len());
        for (id, lease) in &self.journal {
            let _ = writeln!(
                s,
                "  lease {id}: worker {} holds {} task(s) unacknowledged",
                lease.worker,
                lease.tasks.len()
            );
        }
        for i in 1..p {
            let _ = writeln!(
                s,
                "  worker {i}: active={} need_reply={} parked={} outstanding={} dead={} adoptions_pending={}",
                self.worker_active[i],
                self.need_reply[i],
                self.parked[i],
                self.outstanding[i],
                self.dead[i],
                self.pending_adoptions[i].len(),
            );
        }
        s
    }
}

/// Periodic master checkpointing: the engine invokes `write` with the
/// client source and the running protocol report after every `every`
/// absorbed result reports; the callback owns serialization and
/// persistence and returns the bytes written (for the `ckpt_bytes`
/// counter and the checkpoint trace instant).
pub struct CheckpointHook<'a, S> {
    /// Persist one snapshot; returns bytes written. Takes the source
    /// mutably so snapshotting may normalise internal state (e.g.
    /// Union–Find path compression) without an extra copy.
    pub write: &'a mut dyn FnMut(&mut S, &MasterReport) -> u64,
    /// Snapshot after every this many absorbed result reports.
    pub every: u64,
}

/// Run the master's event loop (paper Fig. 7) on rank 0. `seed_tasks`
/// pre-loads the pending buffer for workloads where the master owns the
/// whole task list (distributed assembly); task-generating workloads
/// (clustering) pass an empty seed. Returns when every worker has been
/// sent its termination grant — or, under an armed fault plan, when
/// the plan kills the master ([`MasterReport::killed`]).
pub fn run_master<T: Task, S: TaskSource<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    source: &mut S,
    seed_tasks: Vec<T>,
) -> MasterReport {
    run_master_ckpt(comm, config, source, seed_tasks, None)
}

/// [`run_master`] with an optional periodic [`CheckpointHook`]. A
/// separate entry point so the common path carries no hook plumbing.
pub fn run_master_ckpt<T: Task, S: TaskSource<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    source: &mut S,
    seed_tasks: Vec<T>,
    checkpoint: Option<CheckpointHook<'_, S>>,
) -> MasterReport {
    let p = comm.size();
    let seeded = seed_tasks.len() as u64;
    let mut m = Master {
        source,
        b: config.batch,
        pending_cap: config.pending_cap,
        pending: {
            let mut q = VecDeque::with_capacity(config.pending_cap.max(seed_tasks.len()));
            q.extend(seed_tasks);
            q
        },
        worker_active: vec![true; p],
        need_reply: vec![false; p],
        parked: vec![false; p],
        // Workers open with an unsolicited first report.
        outstanding: {
            let mut o = vec![true; p];
            o[0] = false;
            o
        },
        dead: vec![false; p],
        journal: BTreeMap::new(),
        next_lease: 1,
        pending_adoptions: vec![Vec::new(); p],
        adopted_scopes: vec![Vec::new(); p],
        report: MasterReport { peak_queue_depth: seeded, ..MasterReport::default() },
    };
    if master_pump(comm, config, &mut m, checkpoint).is_err() {
        // The fault plan killed this rank; workers observe the death
        // notice and exit. The partial report lets the caller recover.
        m.report.killed = true;
    }
    m.report
}

/// The master's event pump, fallible under an armed fault plan (the
/// only error source is the plan killing rank 0).
fn master_pump<T: Task, S: TaskSource<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    m: &mut Master<'_, T, S>,
    mut checkpoint: Option<CheckpointHook<'_, S>>,
) -> Result<(), CommError> {
    let p = comm.size();
    let mut drain_depth: u64 = 0;
    let mut ckpt_marker: u64 = 0;
    // Protocol gauges: sampled (rate-limited) as the event pump turns,
    // so a time-series view shows queue pressure and worker occupancy
    // instead of only their peaks.
    let (g_pending, g_inbox, g_out, g_parked) = {
        let s = comm.sampler_mut();
        (
            s.register(names::GAUGE_PENDING_TASKS),
            s.register(names::GAUGE_INBOX_DEPTH),
            s.register(names::GAUGE_WORKERS_OUTSTANDING),
            s.register(names::GAUGE_WORKERS_PARKED),
        )
    };

    'pump: loop {
        // Event pump: consume everything already queued before any
        // dispatch decision — results from fast workers land before
        // batches are cut for slow ones.
        match comm.try_recv_ft(None, None)? {
            Some(Event::Msg(msg)) => {
                drain_depth += 1;
                note_handled(comm, &msg);
                m.handle(comm.tracer_mut(), &msg);
                let pending = m.pending.len() as u64;
                let s = comm.sampler_mut();
                s.sample(g_pending, pending);
                s.sample(g_inbox, drain_depth);
                continue;
            }
            Some(Event::Death(i)) => {
                m.on_death(comm, i);
                continue;
            }
            None => {}
        }
        m.report.inbox_drain_depth_max = m.report.inbox_drain_depth_max.max(drain_depth);

        // Checkpoint on the absorbed-results clock, at a quiescent point
        // (inbox drained, no partial decode in flight) so the snapshot is
        // a consistent cut of the client's master-side state.
        if let Some(hook) = checkpoint.as_mut() {
            if hook.every > 0 && m.report.results_absorbed >= ckpt_marker + hook.every {
                ckpt_marker = m.report.results_absorbed;
                let bytes = (hook.write)(&mut *m.source, &m.report);
                m.report.ckpt_writes += 1;
                m.report.ckpt_bytes += bytes;
                comm.tracer_mut().instant_args(
                    TraceCategory::Fault,
                    names::EV_CHECKPOINT,
                    ("bytes", bytes),
                    ("absorbed", m.report.results_absorbed),
                );
            }
        }

        // Inbox empty: answer completed rounds, revive parked workers.
        comm.tracer_mut().begin(TraceCategory::Master, names::EV_DISPATCH);
        m.dispatch(comm)?;
        comm.tracer_mut().end(TraceCategory::Master, names::EV_DISPATCH);
        if comm.sampler_mut().is_enabled() {
            // Occupancy counts are O(p); compute them only when a
            // sampler is actually attached.
            let out = m.outstanding[1..].iter().filter(|&&x| x).count() as u64;
            let parked = m.parked[1..].iter().filter(|&&x| x).count() as u64;
            let pending = m.pending.len() as u64;
            let s = comm.sampler_mut();
            s.sample(g_out, out);
            s.sample(g_parked, parked);
            s.sample(g_pending, pending);
        }

        if m.finished() {
            // Every rank gets a termination grant, the dead-declared
            // included: a notice-dead peer's grant is a counted
            // blackhole, while a merely *declared*-dead (stalled but
            // alive) worker needs it to stop blocking and exit.
            for i in 1..p {
                debug_assert!(m.dead[i] || m.parked[i], "at termination every live worker is parked");
                send_grant::<T>(comm, i, 0, 0, &[], &[], true)?;
            }
            // Replies may still sit in the coalescing queues; this rank
            // never blocks again, so push them out explicitly.
            comm.flush_all();
            break;
        }

        // Nothing left to do until a worker reports: block — or, with
        // a stall timeout configured, poll a bounded number of times
        // so a silent worker cannot hang the run.
        let ev = if let Some(limit) = config.stall_timeout {
            // try_recv never flushes; push staged grants out before
            // waiting on their answers.
            comm.flush_all();
            let mut polls: u64 = 0;
            loop {
                match comm.try_recv_ft(None, None)? {
                    Some(ev) => break ev,
                    None => {
                        polls += 1;
                        if polls >= limit {
                            m.on_stall(comm);
                            drain_depth = 0;
                            continue 'pump;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        } else {
            comm.recv_ft(None, None)?
        };
        match ev {
            Event::Msg(msg) => {
                drain_depth = 1;
                note_handled(comm, &msg);
                m.handle(comm.tracer_mut(), &msg);
            }
            Event::Death(i) => {
                drain_depth = 0;
                m.on_death(comm, i);
            }
        }
    }
    Ok(())
}

/// Mark a drained worker report on the master's track, by message kind.
fn note_handled(comm: &mut Comm, msg: &Msg) {
    let name = if msg.tag == TAG_W2M_AR { names::EV_HANDLE_AR } else { names::EV_HANDLE_NP };
    comm.tracer_mut().instant_arg(TraceCategory::Master, name, "src", msg.src as u64);
}

fn drain_batch<T>(pending: &mut VecDeque<T>, b: usize) -> Vec<T> {
    let take = b.min(pending.len());
    pending.drain(..take).collect()
}

/// Send one master→worker allocation: the `R` flow-control grant
/// (termination flag + next request size + adoption list) followed,
/// for live grants, by the `AW` task batch under its lease id. *Every*
/// master transmission — round reply, unsolicited grant to a parked
/// worker, termination — goes through here, so the M2W wire format has
/// exactly one encoder and the worker exactly one decode path.
fn send_grant<T: Task>(
    comm: &mut Comm,
    dest: usize,
    r: usize,
    lease: u64,
    batch: &[T],
    adopt: &[usize],
    terminate: bool,
) -> Result<(), CommError> {
    let mut e = Encoder::with_capacity(12 + 4 * adopt.len());
    e.put_u32(terminate as u32);
    if terminate {
        return comm.send_ft(dest, TAG_M2W_R, e.finish());
    }
    e.put_u32(r as u32);
    e.put_u32(checked_len(adopt.len()));
    for &scope in adopt {
        e.put_u32(scope as u32);
    }
    comm.send_ft(dest, TAG_M2W_R, e.finish())?;
    let mut e = Encoder::with_capacity(12 + batch.iter().map(Task::encoded_size_hint).sum::<usize>());
    e.put_u64(lease);
    e.put_u32(checked_len(batch.len()));
    for task in batch {
        task.encode(&mut e);
    }
    comm.send_ft(dest, TAG_M2W_AW, e.finish())
}

/// The paper's flow-control rule (§7): request enough tasks that about
/// `b` of them will be selected for dispatch, without overflowing the
/// pending buffer. Never zero: under backpressure (pending buffer at
/// capacity) an active worker must still drain its generator one task
/// at a time, otherwise it spins in empty report/grant round-trips and
/// the run stops progressing toward generator exhaustion.
pub fn compute_r(
    b: usize,
    cap: usize,
    pending: usize,
    active: &[bool],
    generated: u64,
    selected: u64,
) -> usize {
    let p_active = active[1..].iter().filter(|&&a| a).count().max(1);
    let ratio = if generated < 64 { 0.5 } else { (selected as f64 / generated as f64).max(0.02) };
    let by_ratio = (b as f64 / ratio).ceil() as usize;
    let by_capacity = cap.saturating_sub(pending) / p_active;
    by_ratio.min(by_capacity).min(8 * b).max(1)
}

/// Run a worker's event loop (paper Fig. 8) on ranks 1..p: compute the
/// previously allocated batch, generate the `r` tasks the master asked
/// for, report both, receive the next allocation — parking when passive
/// and idle until the master finds work or terminates the run. Under an
/// armed fault plan the loop also ends when the plan kills this rank
/// ([`WorkerReport::killed`]) or the master's death notice arrives
/// ([`WorkerReport::master_died`]).
pub fn run_worker<T: Task, S: TaskSink<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    sink: &mut S,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    match worker_pump(comm, config, sink, &mut report) {
        Ok(master_died) => report.master_died = master_died,
        Err(_) => report.killed = true,
    }
    report
}

/// The worker's round loop; `Ok(true)` means the master died mid-run,
/// `Err` that the fault plan killed this rank.
fn worker_pump<T: Task, S: TaskSink<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    sink: &mut S,
    report: &mut WorkerReport,
) -> Result<bool, CommError> {
    let mut r = config.batch;
    let mut aw: Vec<T> = Vec::new();
    let mut np: Vec<T> = Vec::new();
    // Lease id of the batch in `aw`, echoed on its result report so
    // the master can retire the journal entry (0 = opening report).
    let mut lease: u64 = 0;
    let mut active;
    loop {
        // Compute the tasks allocated last round, encoding the result
        // report as the client defines it (after the engine's lease
        // prefix).
        let mut e = Encoder::new();
        e.put_u64(lease);
        sink.run_batch(comm.tracer_mut(), &mut aw, &mut e);
        aw.clear();
        sink.sample_gauges(comm.sampler_mut());
        let ar = e.finish();
        // Generate the requested number of new tasks.
        np.clear();
        active = sink.generate(comm.tracer_mut(), r, &mut np);
        report.tasks_generated += np.len() as u64;
        // Report: results (AR) and new tasks (NP) travel as two
        // fine-grained messages so the coalescing layer can fold them —
        // plus whatever other rounds are queued — into one envelope
        // toward the master.
        comm.send_ft(0, TAG_W2M_AR, ar)?;
        let mut e = Encoder::with_capacity(8 + np.iter().map(Task::encoded_size_hint).sum::<usize>());
        e.put_u32(active as u32);
        e.put_u32(checked_len(np.len()));
        for task in &np {
            task.encode(&mut e);
        }
        comm.send_ft(0, TAG_W2M_NP, e.finish())?;
        report.round_trips += 1;
        // Receive the next grant (possibly parking idle first). The R
        // message always arrives; a live grant is followed by its AW
        // batch. Peer-worker deaths are the master's business, not
        // ours — skip their notices; the master's own death ends the
        // run.
        loop {
            let msg = match comm.recv_ft(Some(0), Some(TAG_M2W_R))? {
                Event::Death(0) => return Ok(true),
                Event::Death(_) => continue,
                Event::Msg(m) => m,
            };
            let mut d = Decoder::new(msg.data);
            let terminate = d.get_u32() == 1;
            if terminate {
                return Ok(false);
            }
            r = d.get_u32() as usize;
            let adopt_count = d.get_u32();
            for _ in 0..adopt_count {
                let dead_rank = d.get_u32() as usize;
                comm.tracer_mut().instant_arg(
                    TraceCategory::Fault,
                    names::EV_ADOPT_SCOPE,
                    "dead",
                    dead_rank as u64,
                );
                sink.adopt_scope(comm.tracer_mut(), dead_rank);
                report.scopes_adopted += 1;
                // The adopted scope makes this generator live again.
                active = true;
            }
            let msg = loop {
                match comm.recv_ft(Some(0), Some(TAG_M2W_AW))? {
                    Event::Death(0) => return Ok(true),
                    Event::Death(_) => continue,
                    Event::Msg(m) => break m,
                }
            };
            let mut d = Decoder::new(msg.data);
            lease = d.get_u64();
            let count = d.get_u32();
            aw = (0..count).map(|_| T::decode(&mut d)).collect();
            if aw.is_empty() && !active {
                // Passive with no work: park and wait for an
                // unsolicited allocation or termination.
                comm.tracer_mut().instant(TraceCategory::Worker, names::EV_PARK);
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_mpisim::faults::FaultStage;
    use pgasm_mpisim::{FaultPlan, KillTarget};
    use std::collections::HashSet;

    /// Toy client: tasks are plain integers, workers square them.
    /// Exercises the protocol shell with no domain logic at all.
    impl Task for u32 {
        fn encode(&self, e: &mut Encoder) {
            e.put_u32(*self);
        }
        fn decode(d: &mut Decoder) -> u32 {
            d.get_u32()
        }
        fn encoded_size_hint(&self) -> usize {
            4
        }
    }

    struct SumSource {
        sum: u64,
        results: u64,
        seen: Vec<u32>,
        /// Selection dedup (the cluster-check analog): with faults and
        /// scope adoption, the same task may be announced twice.
        selected: HashSet<u32>,
    }

    impl SumSource {
        fn new() -> Self {
            SumSource { sum: 0, results: 0, seen: Vec::new(), selected: HashSet::new() }
        }
    }

    impl TaskSource<u32> for SumSource {
        fn absorb_results(&mut self, _src: usize, d: &mut Decoder) {
            let count = d.get_u32();
            for _ in 0..count {
                self.sum += d.get_u64();
                self.results += 1;
            }
        }
        fn select(&mut self, task: &u32) -> bool {
            self.seen.push(*task);
            // Odd numbers are "already done" — mimics the cluster-check
            // skip so selection is exercised.
            task.is_multiple_of(2) && self.selected.insert(*task)
        }
    }

    struct RangeSink {
        next: u32,
        stop: u32,
        computed: u64,
        /// Scope table for adoption: worker rank → (start, stop).
        per_worker: u32,
        /// Ranges adopted from dead peers, drained after our own.
        adopted: std::collections::VecDeque<(u32, u32)>,
    }

    impl TaskSink<u32> for RangeSink {
        fn run_batch(&mut self, _tracer: &mut Tracer, batch: &mut Vec<u32>, e: &mut Encoder) {
            e.put_u32(checked_len(batch.len()));
            for t in batch.drain(..) {
                self.computed += 1;
                e.put_u64(t as u64 * t as u64);
            }
        }
        fn generate(&mut self, _tracer: &mut Tracer, r: usize, out: &mut Vec<u32>) -> bool {
            for _ in 0..r {
                if self.next >= self.stop {
                    match self.adopted.pop_front() {
                        Some((next, stop)) => (self.next, self.stop) = (next, stop),
                        None => break,
                    }
                    continue;
                }
                out.push(self.next);
                self.next += 1;
            }
            self.next < self.stop || !self.adopted.is_empty()
        }
        fn adopt_scope(&mut self, _tracer: &mut Tracer, dead_rank: usize) {
            // Rebuild the dead worker's scope from scratch — *behind*
            // our own remaining range, not in place of it. The master's
            // selection dedup swallows anything it already generated.
            let base = (dead_rank as u32 - 1) * self.per_worker;
            self.adopted.push_back((base, base + self.per_worker));
        }
    }

    fn toy_sink(rank: usize, per_worker: u32) -> RangeSink {
        let base = (rank as u32 - 1) * per_worker;
        RangeSink {
            next: base,
            stop: base + per_worker,
            computed: 0,
            per_worker,
            adopted: std::collections::VecDeque::new(),
        }
    }

    fn expected_sum(workers: u32, per_worker: u32) -> u64 {
        let n = workers * per_worker;
        (0..n).filter(|t| t % 2 == 0).map(|t| t as u64 * t as u64).sum()
    }

    fn run_toy(p: usize, per_worker: u32, batch: usize, cap: usize) -> (u64, u64, MasterReport) {
        let outcomes = pgasm_mpisim::run(p, move |comm| {
            let cfg = EngineConfig { batch, pending_cap: cap, stall_timeout: None };
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                let report = run_master(comm, &cfg, &mut source, Vec::new());
                assert_eq!(report.tasks_announced as usize, source.seen.len());
                Some((source.sum, source.results, report))
            } else {
                let mut sink = toy_sink(comm.rank(), per_worker);
                run_worker(comm, &cfg, &mut sink);
                None
            }
        });
        outcomes.into_iter().flatten().next().expect("master outcome")
    }

    #[test]
    fn toy_client_computes_every_selected_task_once() {
        for p in [2usize, 3, 5] {
            let per_worker = 40;
            let (sum, results, report) = run_toy(p, per_worker, 4, 64);
            let n = (p as u32 - 1) * per_worker;
            let expected = expected_sum(p as u32 - 1, per_worker);
            assert_eq!(sum, expected, "p = {p}");
            assert_eq!(results as u32, n.div_ceil(2), "p = {p}");
            assert_eq!(report.tasks_announced, n as u64);
            assert_eq!(report.tasks_selected as u32, n.div_ceil(2));
            assert!(report.batches_dispatched >= 1);
            assert_eq!(report.dead_ranks, 0);
            assert_eq!(report.recovered_tasks, 0);
            assert!(!report.killed);
        }
    }

    #[test]
    fn seeded_master_drives_passive_workers() {
        // Workers generate nothing; the master's seed is the whole task
        // list — the distributed-assembly usage pattern.
        let seed: Vec<u32> = (0..30).map(|i| i * 2).collect();
        let expected: u64 = seed.iter().map(|&t| t as u64 * t as u64).sum();
        let (sum, computed) = pgasm_mpisim::run(4, move |comm| {
            let cfg = EngineConfig { batch: 1, pending_cap: 64, stall_timeout: None };
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                let report = run_master(comm, &cfg, &mut source, seed.clone());
                assert_eq!(report.tasks_announced, 0, "passive workers announce nothing");
                assert_eq!(report.peak_queue_depth, seed.len() as u64);
                assert_eq!(source.results, seed.len() as u64);
                (source.sum, 0)
            } else {
                let mut sink = RangeSink {
                    next: 0,
                    stop: 0,
                    computed: 0,
                    per_worker: 0,
                    adopted: std::collections::VecDeque::new(),
                };
                run_worker(comm, &cfg, &mut sink);
                (0, sink.computed)
            }
        })
        .into_iter()
        .fold((0, 0), |(s, c), (s2, c2)| (s + s2, c + c2));
        assert_eq!(sum, expected);
        assert_eq!(computed, 30);
    }

    #[test]
    fn master_samples_protocol_gauges_when_enabled() {
        use pgasm_telemetry::trace::TraceSpec;
        let spec = TraceSpec::with_capacity(4096);
        let series = pgasm_mpisim::run(3, move |comm| {
            let cfg = EngineConfig { batch: 4, pending_cap: 64, stall_timeout: None };
            let mut sampler = spec.sampler(comm.rank(), if comm.rank() == 0 { "master" } else { "worker" });
            sampler.set_interval_ns(0); // sample every pump turn
            comm.set_sampler(sampler);
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                run_master(comm, &cfg, &mut source, Vec::new());
            } else {
                let mut sink = toy_sink(comm.rank(), 40);
                run_worker(comm, &cfg, &mut sink);
            }
            comm.take_series()
        });
        let master = &series[0];
        assert_eq!(master.rank, 0);
        for gauge in [
            names::GAUGE_PENDING_TASKS,
            names::GAUGE_INBOX_DEPTH,
            names::GAUGE_WORKERS_OUTSTANDING,
            names::GAUGE_WORKERS_PARKED,
        ] {
            let g = master.gauge(gauge).unwrap_or_else(|| panic!("{gauge} missing"));
            assert!(!g.samples.is_empty(), "{gauge} never sampled");
        }
        // The pending queue was non-empty at some point in every run.
        assert!(master.gauge(names::GAUGE_PENDING_TASKS).unwrap().max_value() > 0);
    }

    #[test]
    fn tiny_pending_buffer_still_terminates() {
        // Backpressure regression for the generic shell: cap < batch
        // once livelocked the clustering client (the r >= 1 clamp).
        let (sum, _, _) = run_toy(3, 25, 8, 2);
        let expected = expected_sum(2, 25);
        assert_eq!(sum, expected);
    }

    /// Run the toy workload with a fault plan armed on every rank;
    /// returns (master sum, master report, per-rank worker reports).
    fn run_toy_faulty(
        p: usize,
        per_worker: u32,
        plan: FaultPlan,
        stall_timeout: Option<u64>,
    ) -> (u64, MasterReport, Vec<WorkerReport>) {
        let outcomes = pgasm_mpisim::run(p, move |comm| {
            comm.set_fault_plan(&plan);
            let cfg = EngineConfig { batch: 4, pending_cap: 64, stall_timeout };
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                let report = run_master(comm, &cfg, &mut source, Vec::new());
                (Some((source.sum, report)), None)
            } else {
                let mut sink = toy_sink(comm.rank(), per_worker);
                (None, Some(run_worker(comm, &cfg, &mut sink)))
            }
        });
        let mut master = None;
        let mut workers = Vec::new();
        for (m, w) in outcomes {
            if let Some(m) = m {
                master = Some(m);
            }
            if let Some(w) = w {
                workers.push(w);
            }
        }
        let (sum, report) = master.expect("master outcome");
        (sum, report, workers)
    }

    #[test]
    fn killed_worker_recovers_to_exact_sum() {
        // Kill each worker in turn, at an event count deep enough that
        // it holds an unacknowledged lease; the run must finish with
        // the exact fault-free sum every time.
        for victim in 1..4usize {
            let plan = FaultPlan::default().with_kill(KillTarget::Rank(victim), 9, FaultStage::Any);
            let (sum, report, workers) = run_toy_faulty(4, 40, plan, None);
            assert_eq!(sum, expected_sum(3, 40), "victim = {victim}");
            assert_eq!(report.dead_ranks, 1, "victim = {victim}");
            assert!(report.recovered_tasks > 0, "victim = {victim}: kill at an AR entry leaves a lease");
            assert!(!report.killed);
            assert_eq!(workers.iter().filter(|w| w.killed).count(), 1);
            assert!(workers.iter().any(|w| w.scopes_adopted == 1), "the dead generator was adopted");
        }
    }

    #[test]
    fn killed_passive_worker_in_seeded_run_recovers() {
        // The distributed-assembly shape: master-seeded queue, passive
        // workers. A worker death re-queues its leased slots.
        let seed: Vec<u32> = (0..60).map(|i| i * 2).collect();
        let expected: u64 = seed.iter().map(|&t| t as u64 * t as u64).sum();
        let plan = FaultPlan::default().with_kill(KillTarget::Rank(2), 9, FaultStage::Any);
        let (sum, report) = pgasm_mpisim::run(4, move |comm| {
            comm.set_fault_plan(&plan);
            let cfg = EngineConfig { batch: 2, pending_cap: 64, stall_timeout: None };
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                let report = run_master(comm, &cfg, &mut source, seed.clone());
                Some((source.sum, report))
            } else {
                let mut sink = RangeSink {
                    next: 0,
                    stop: 0,
                    computed: 0,
                    per_worker: 0,
                    adopted: std::collections::VecDeque::new(),
                };
                run_worker(comm, &cfg, &mut sink);
                None
            }
        })
        .into_iter()
        .flatten()
        .next()
        .expect("master outcome");
        assert_eq!(sum, expected);
        assert_eq!(report.dead_ranks, 1);
        assert!(report.recovered_tasks > 0);
    }

    #[test]
    fn dropped_report_trips_liveness_and_recovers() {
        // Worker 1's second result report vanishes on the wire: its
        // lease can never be retired, so the master's stall timeout
        // declares it dead, re-queues the batch, and the run still
        // produces the exact sum. The falsely-declared worker is
        // released by the termination grant (no killed flag set).
        let plan = FaultPlan::default().with_drop(1, 0, TAG_W2M_AR, 2, FaultStage::Any);
        let (sum, report, workers) = run_toy_faulty(3, 30, plan, Some(50_000));
        assert_eq!(sum, expected_sum(2, 30));
        assert_eq!(report.dead_ranks, 1, "liveness declared the silent worker dead");
        assert!(report.recovered_tasks > 0);
        assert!(workers.iter().all(|w| !w.killed), "nobody was actually killed");
    }

    #[test]
    fn delayed_report_is_absorbed_late_not_twice() {
        // Worker 1's second result report is held back a few of its own
        // events and overtaken by later traffic; the lease journal
        // still retires it exactly once and the sum stays exact.
        let plan = FaultPlan::default().with_delay(1, 0, TAG_W2M_AR, 2, 3, FaultStage::Any);
        let (sum, report, _) = run_toy_faulty(3, 30, plan, None);
        assert_eq!(sum, expected_sum(2, 30));
        assert_eq!(report.dead_ranks, 0);
    }

    #[test]
    fn killed_master_surfaces_cleanly_on_every_rank() {
        let plan = FaultPlan::default().with_kill(KillTarget::Rank(0), 7, FaultStage::Any);
        let outcomes = pgasm_mpisim::run(3, move |comm| {
            comm.set_fault_plan(&plan);
            let cfg = EngineConfig { batch: 4, pending_cap: 64, stall_timeout: None };
            if comm.rank() == 0 {
                let mut source = SumSource::new();
                let report = run_master(comm, &cfg, &mut source, Vec::new());
                (report.killed, false)
            } else {
                let mut sink = toy_sink(comm.rank(), 40);
                let report = run_worker(comm, &cfg, &mut sink);
                (false, report.master_died)
            }
        });
        assert!(outcomes[0].0, "master reports its own kill");
        assert!(outcomes[1..].iter().all(|&(_, md)| md), "every worker observes the master's death");
    }

    #[test]
    fn stale_report_with_unknown_lease_is_discarded() {
        // Unit-level dedup check: a result report whose lease is no
        // longer journaled must not reach the source.
        let mut source = SumSource::new();
        let mut m = Master {
            source: &mut source,
            b: 4,
            pending_cap: 64,
            pending: VecDeque::new(),
            worker_active: vec![true; 3],
            need_reply: vec![false; 3],
            parked: vec![false; 3],
            outstanding: vec![false; 3],
            dead: vec![false; 3],
            journal: BTreeMap::new(),
            next_lease: 1,
            pending_adoptions: vec![Vec::new(); 3],
            adopted_scopes: vec![Vec::new(); 3],
            report: MasterReport::default(),
        };
        m.journal.insert(7, Lease { worker: 1, tasks: vec![2u32, 4] });
        let ar = |lease: u64, value: u64| {
            let mut e = Encoder::new();
            e.put_u64(lease);
            e.put_u32(1);
            e.put_u64(value);
            Msg { src: 1, tag: TAG_W2M_AR, data: e.finish() }
        };
        let mut tracer = Tracer::disabled();
        // Live lease: absorbed, journal retired.
        m.handle(&mut tracer, &ar(7, 10));
        assert_eq!(m.source.sum, 10);
        assert!(m.journal.is_empty());
        // Replay of the same lease: dropped whole.
        m.handle(&mut tracer, &ar(7, 10));
        assert_eq!(m.source.sum, 10, "duplicate replay absorbed twice");
        // Unknown lease: dropped. Lease 0 (opening report): absorbed.
        m.handle(&mut tracer, &ar(99, 5));
        assert_eq!(m.source.sum, 10);
        m.handle(&mut tracer, &ar(0, 3));
        assert_eq!(m.source.sum, 13);
        // Messages from a dead-declared rank are dropped before decode.
        m.dead[1] = true;
        m.handle(&mut tracer, &ar(0, 100));
        assert_eq!(m.source.sum, 13);
    }

    #[test]
    fn stall_dump_names_the_outstanding_lease() {
        let mut source = SumSource::new();
        let mut m = Master {
            source: &mut source,
            b: 4,
            pending_cap: 64,
            pending: VecDeque::new(),
            worker_active: vec![false; 3],
            need_reply: vec![false; 3],
            parked: vec![false, true, true],
            outstanding: vec![false; 3],
            dead: vec![false; 3],
            journal: BTreeMap::new(),
            next_lease: 2,
            pending_adoptions: vec![Vec::new(); 3],
            adopted_scopes: vec![Vec::new(); 3],
            report: MasterReport::default(),
        };
        m.journal.insert(1, Lease { worker: 2, tasks: vec![6u32, 8, 10] });
        assert!(!m.finished(), "an unacknowledged lease blocks termination");
        let dump = m.stall_dump();
        assert!(dump.contains("lease 1: worker 2 holds 3 task(s)"), "{dump}");
        assert!(dump.contains("worker 2:"), "{dump}");
    }
}
