//! Generic distributed task engine — the event-driven master–worker
//! protocol of §7, extracted from the clustering runtime so any
//! workload can ride it.
//!
//! The engine owns everything the paper's Figs. 6–8 describe about
//! *work distribution* and nothing about the work itself:
//!
//! - the four-message protocol shape — workers report results
//!   ([`TAG_W2M_AR`]) and newly generated tasks plus generator status
//!   ([`TAG_W2M_NP`]); the master answers with a flow-control grant
//!   carrying termination ([`TAG_M2W_R`]) and a task batch
//!   ([`TAG_M2W_AW`]);
//! - the master's event pump: drain **all** queued reports through
//!   `try_recv` before dispatching, block in `recv` only on a truly
//!   empty inbox;
//! - the pending-task buffer, the [`compute_r`] flow-control rule, the
//!   park/unpark service for passive workers, and clean termination
//!   (every worker passive + parked, nothing pending or in flight);
//! - protocol trace instrumentation (dispatch spans, handle/park/unpark
//!   instants) and the protocol counters (peak queue depth, batches
//!   dispatched, inbox drain depth, round-trips).
//!
//! What a *task* is, how it travels on the wire, how results are
//! encoded, and which of the announced tasks are worth dispatching are
//! the client's business, expressed through three small traits:
//! [`Task`] (wire codec), [`TaskSource`] (master-side absorption and
//! selection), and [`TaskSink`] (worker-side compute and generation).
//! Clustering (`crate::master_worker`) is the first client —
//! re-hosted with its wire format, counters, and trace events
//! preserved bit-for-bit — and distributed per-cluster assembly
//! (`crate::assemble_dist`) is the second, seeding the master's queue
//! up-front with workers that never generate (a degenerate but fully
//! legal instance of the same protocol).
//!
//! The engine works over the `mpisim` rank model, so the coalescing
//! layer, per-tag traffic accounting, and blocked-time attribution all
//! apply to any client unchanged.

use pgasm_mpisim::codec::{checked_len, Decoder, Encoder};
use pgasm_mpisim::{Comm, Msg};
use pgasm_telemetry::names;
use pgasm_telemetry::trace::{TraceCategory, Tracer};
use std::collections::VecDeque;

/// Worker → master: computed results (the paper's `AR`). The body is
/// entirely client-encoded ([`TaskSink::run_batch`] writes it,
/// [`TaskSource::absorb_results`] reads it).
pub const TAG_W2M_AR: u32 = 1;
/// Master → worker: flow-control grant `r` (paper's `R`); also carries
/// the termination flag, so every master transmission starts here.
pub const TAG_M2W_R: u32 = 2;
/// Worker → master: newly generated tasks + generator status (paper's
/// `NP`); doubles as the request for the next allocation.
pub const TAG_W2M_NP: u32 = 3;
/// Master → worker: the allocated task batch (paper's `AW`).
pub const TAG_M2W_AW: u32 = 4;

/// Engine runtime knobs — the protocol-shape subset of what used to be
/// `MasterWorkerConfig` (coalescing stays with the caller, which owns
/// the `Comm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Task batch size `b` (tasks per AW message).
    pub batch: usize,
    /// Capacity of the master's pending-task buffer (flow-control
    /// target; the buffer itself degrades gracefully if exceeded).
    pub pending_cap: usize,
}

/// A unit of work that can cross the simulated wire.
pub trait Task: Sized {
    /// Append this task's wire form to `e`.
    fn encode(&self, e: &mut Encoder);
    /// Decode one task (must consume exactly what [`Task::encode`]
    /// wrote).
    fn decode(d: &mut Decoder) -> Self;
    /// Encoder pre-allocation hint, bytes per task.
    fn encoded_size_hint(&self) -> usize {
        20
    }
}

/// Master-side client logic: absorb worker results the moment they are
/// drained, and decide which announced tasks still need doing.
pub trait TaskSource<T: Task> {
    /// Consume one worker's result report (the `AR` body this client's
    /// [`TaskSink::run_batch`] encoded). Called per message as the
    /// inbox drains, so client state is maximally fresh when batches
    /// are cut.
    fn absorb_results(&mut self, src: usize, d: &mut Decoder);
    /// A worker announced `task`; return `true` to queue it for
    /// dispatch. Called once per announced task, in arrival order.
    fn select(&mut self, task: &T) -> bool;
}

/// Worker-side client logic: compute allocated batches and generate new
/// tasks on request.
pub trait TaskSink<T: Task> {
    /// Compute the batch allocated last round (possibly empty — the
    /// opening report) and append the result-report body to `e`. The
    /// body must always be well-formed: the matching
    /// [`TaskSource::absorb_results`] decodes every report, including
    /// the empty opening one.
    fn run_batch(&mut self, tracer: &mut Tracer, batch: &mut Vec<T>, e: &mut Encoder);
    /// Generate up to `r` new tasks into `out`; return whether the
    /// generator can still yield more (*active*). A sink with nothing
    /// to generate returns `false` immediately and the engine parks the
    /// worker until the master finds it other ranks' work.
    fn generate(&mut self, tracer: &mut Tracer, r: usize, out: &mut Vec<T>) -> bool;
    /// Feed workload-specific gauges after each computed batch. The
    /// engine calls this once per round with the rank's sampler (which
    /// rate-limits and no-ops when disabled); the default sink has no
    /// gauges.
    fn sample_gauges(&mut self, _sampler: &mut pgasm_telemetry::GaugeSampler) {}
}

/// Protocol-level tallies from one master run; the client folds these
/// into its own counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MasterReport {
    /// Tasks workers announced over NP (the client's "generated").
    pub tasks_announced: u64,
    /// Announced tasks the source selected into the pending buffer.
    pub tasks_selected: u64,
    /// Peak depth of the pending-task buffer.
    pub peak_queue_depth: u64,
    /// Non-empty AW batches dispatched.
    pub batches_dispatched: u64,
    /// Deepest single drain of the inbox.
    pub inbox_drain_depth_max: u64,
}

/// Protocol-level tallies from one worker run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerReport {
    /// Tasks this worker's generator produced.
    pub tasks_generated: u64,
    /// Report/grant round-trips completed.
    pub round_trips: u64,
}

/// The master's mutable protocol state, separated from the event loop
/// so message handling (absorption, selection) and dispatch (batch
/// cutting, flow control) read as the two halves of Fig. 7 they are.
struct Master<'s, T, S> {
    source: &'s mut S,
    b: usize,
    pending_cap: usize,
    pending: VecDeque<T>,
    /// Worker's generator still has tasks to yield.
    worker_active: Vec<bool>,
    /// Worker reported its round (NP arrived) and awaits an R+AW reply.
    need_reply: Vec<bool>,
    /// Worker is passive with no allocation in flight: blocked in a
    /// receive, revivable with an unsolicited grant (Idle_Workers).
    parked: Vec<bool>,
    /// An allocation is in flight to this worker (a report will come).
    outstanding: Vec<bool>,
    report: MasterReport,
}

impl<T: Task, S: TaskSource<T>> Master<'_, T, S> {
    /// Apply one worker message the moment it is drained — result
    /// absorption (AR) and task selection (NP) interleave with message
    /// progress instead of waiting for a dispatch turn.
    fn handle(&mut self, msg: &Msg) {
        let i = msg.src;
        let mut d = Decoder::new(msg.data.clone());
        match msg.tag {
            TAG_W2M_AR => self.source.absorb_results(i, &mut d),
            TAG_W2M_NP => {
                // Newly announced tasks: keep only those the source
                // still wants *right now*.
                let active = d.get_u32() == 1;
                self.worker_active[i] = active;
                let np_count = d.get_u32();
                for _ in 0..np_count {
                    let task = T::decode(&mut d);
                    self.report.tasks_announced += 1;
                    if self.source.select(&task) {
                        self.pending.push_back(task);
                        self.report.tasks_selected += 1;
                    }
                }
                self.report.peak_queue_depth = self.report.peak_queue_depth.max(self.pending.len() as u64);
                // NP closes the worker's round: it now awaits a grant.
                self.need_reply[i] = true;
                self.outstanding[i] = false;
            }
            t => unreachable!("unexpected tag {t} at the master"),
        }
    }

    /// Answer every worker whose round completed and feed parked
    /// workers from the pending buffer (Fig. 7's Idle_Workers service).
    fn dispatch(&mut self, comm: &mut Comm) {
        let p = self.worker_active.len();
        for i in 1..p {
            if !self.need_reply[i] {
                continue;
            }
            self.need_reply[i] = false;
            let batch = drain_batch(&mut self.pending, self.b);
            let r = self.flow_control();
            if batch.is_empty() && !self.worker_active[i] {
                // Nothing to do and nothing left to generate: park it
                // (the empty AW tells the worker to block).
                self.parked[i] = true;
                comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_PARK, "worker", i as u64);
                send_grant(comm, i, r, &batch, false);
            } else {
                if !batch.is_empty() {
                    self.report.batches_dispatched += 1;
                }
                self.outstanding[i] = true;
                send_grant(comm, i, r, &batch, false);
            }
        }
        for j in 1..p {
            if self.parked[j] && !self.pending.is_empty() {
                let batch = drain_batch(&mut self.pending, self.b);
                let r = self.flow_control();
                self.report.batches_dispatched += 1;
                self.parked[j] = false;
                self.outstanding[j] = true;
                comm.tracer_mut().instant_arg(TraceCategory::Master, names::EV_UNPARK, "worker", j as u64);
                send_grant(comm, j, r, &batch, false);
            }
        }
    }

    fn flow_control(&self) -> usize {
        compute_r(
            self.b,
            self.pending_cap,
            self.pending.len(),
            &self.worker_active,
            self.report.tasks_announced,
            self.report.tasks_selected,
        )
    }

    /// Every worker passive and parked, nothing pending, nothing in
    /// flight.
    fn finished(&self) -> bool {
        let p = self.worker_active.len();
        (1..p).all(|i| !self.worker_active[i] && self.parked[i] && !self.outstanding[i])
            && self.pending.is_empty()
    }
}

/// Run the master's event loop (paper Fig. 7) on rank 0. `seed_tasks`
/// pre-loads the pending buffer for workloads where the master owns the
/// whole task list (distributed assembly); task-generating workloads
/// (clustering) pass an empty seed. Returns when every worker has been
/// sent its termination grant.
pub fn run_master<T: Task, S: TaskSource<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    source: &mut S,
    seed_tasks: Vec<T>,
) -> MasterReport {
    let p = comm.size();
    let seeded = seed_tasks.len() as u64;
    let mut m = Master {
        source,
        b: config.batch,
        pending_cap: config.pending_cap,
        pending: {
            let mut q = VecDeque::with_capacity(config.pending_cap.max(seed_tasks.len()));
            q.extend(seed_tasks);
            q
        },
        worker_active: vec![true; p],
        need_reply: vec![false; p],
        parked: vec![false; p],
        // Workers open with an unsolicited first report.
        outstanding: {
            let mut o = vec![true; p];
            o[0] = false;
            o
        },
        report: MasterReport { peak_queue_depth: seeded, ..MasterReport::default() },
    };
    let mut drain_depth: u64 = 0;
    // Protocol gauges: sampled (rate-limited) as the event pump turns,
    // so a time-series view shows queue pressure and worker occupancy
    // instead of only their peaks.
    let (g_pending, g_inbox, g_out, g_parked) = {
        let s = comm.sampler_mut();
        (
            s.register(names::GAUGE_PENDING_TASKS),
            s.register(names::GAUGE_INBOX_DEPTH),
            s.register(names::GAUGE_WORKERS_OUTSTANDING),
            s.register(names::GAUGE_WORKERS_PARKED),
        )
    };

    loop {
        // Event pump: consume everything already queued before any
        // dispatch decision — results from fast workers land before
        // batches are cut for slow ones.
        if let Some(msg) = comm.try_recv(None, None) {
            drain_depth += 1;
            note_handled(comm, &msg);
            m.handle(&msg);
            let pending = m.pending.len() as u64;
            let s = comm.sampler_mut();
            s.sample(g_pending, pending);
            s.sample(g_inbox, drain_depth);
            continue;
        }
        m.report.inbox_drain_depth_max = m.report.inbox_drain_depth_max.max(drain_depth);

        // Inbox empty: answer completed rounds, revive parked workers.
        comm.tracer_mut().begin(TraceCategory::Master, names::EV_DISPATCH);
        m.dispatch(comm);
        comm.tracer_mut().end(TraceCategory::Master, names::EV_DISPATCH);
        if comm.sampler_mut().is_enabled() {
            // Occupancy counts are O(p); compute them only when a
            // sampler is actually attached.
            let out = m.outstanding[1..].iter().filter(|&&x| x).count() as u64;
            let parked = m.parked[1..].iter().filter(|&&x| x).count() as u64;
            let pending = m.pending.len() as u64;
            let s = comm.sampler_mut();
            s.sample(g_out, out);
            s.sample(g_parked, parked);
            s.sample(g_pending, pending);
        }

        if m.finished() {
            for i in 1..p {
                debug_assert!(m.parked[i], "at termination every worker is parked");
                send_grant::<T>(comm, i, 0, &[], true);
            }
            // Replies may still sit in the coalescing queues; this rank
            // never blocks again, so push them out explicitly.
            comm.flush_all();
            break;
        }

        // Nothing left to do until a worker reports: block (this also
        // flushes the grants staged above).
        let msg = comm.recv(None, None);
        drain_depth = 1;
        note_handled(comm, &msg);
        m.handle(&msg);
    }
    m.report
}

/// Mark a drained worker report on the master's track, by message kind.
fn note_handled(comm: &mut Comm, msg: &Msg) {
    let name = if msg.tag == TAG_W2M_AR { names::EV_HANDLE_AR } else { names::EV_HANDLE_NP };
    comm.tracer_mut().instant_arg(TraceCategory::Master, name, "src", msg.src as u64);
}

fn drain_batch<T>(pending: &mut VecDeque<T>, b: usize) -> Vec<T> {
    let take = b.min(pending.len());
    pending.drain(..take).collect()
}

/// Send one master→worker allocation: the `R` flow-control grant
/// (termination flag + next request size) followed, for live grants, by
/// the `AW` task batch. *Every* master transmission — round reply,
/// unsolicited grant to a parked worker, termination — goes through
/// here, so the M2W wire format has exactly one encoder and the worker
/// exactly one decode path.
fn send_grant<T: Task>(comm: &mut Comm, dest: usize, r: usize, batch: &[T], terminate: bool) {
    let mut e = Encoder::with_capacity(8);
    e.put_u32(terminate as u32);
    e.put_u32(r as u32);
    comm.send(dest, TAG_M2W_R, e.finish());
    if terminate {
        return;
    }
    let mut e = Encoder::with_capacity(4 + batch.iter().map(Task::encoded_size_hint).sum::<usize>());
    e.put_u32(checked_len(batch.len()));
    for task in batch {
        task.encode(&mut e);
    }
    comm.send(dest, TAG_M2W_AW, e.finish());
}

/// The paper's flow-control rule (§7): request enough tasks that about
/// `b` of them will be selected for dispatch, without overflowing the
/// pending buffer. Never zero: under backpressure (pending buffer at
/// capacity) an active worker must still drain its generator one task
/// at a time, otherwise it spins in empty report/grant round-trips and
/// the run stops progressing toward generator exhaustion.
pub fn compute_r(
    b: usize,
    cap: usize,
    pending: usize,
    active: &[bool],
    generated: u64,
    selected: u64,
) -> usize {
    let p_active = active[1..].iter().filter(|&&a| a).count().max(1);
    let ratio = if generated < 64 { 0.5 } else { (selected as f64 / generated as f64).max(0.02) };
    let by_ratio = (b as f64 / ratio).ceil() as usize;
    let by_capacity = cap.saturating_sub(pending) / p_active;
    by_ratio.min(by_capacity).min(8 * b).max(1)
}

/// Run a worker's event loop (paper Fig. 8) on ranks 1..p: compute the
/// previously allocated batch, generate the `r` tasks the master asked
/// for, report both, receive the next allocation — parking when passive
/// and idle until the master finds work or terminates the run.
pub fn run_worker<T: Task, S: TaskSink<T>>(
    comm: &mut Comm,
    config: &EngineConfig,
    sink: &mut S,
) -> WorkerReport {
    let mut report = WorkerReport::default();
    let mut r = config.batch;
    let mut aw: Vec<T> = Vec::new();
    let mut np: Vec<T> = Vec::new();
    loop {
        // Compute the tasks allocated last round, encoding the result
        // report as the client defines it.
        let mut e = Encoder::new();
        sink.run_batch(comm.tracer_mut(), &mut aw, &mut e);
        aw.clear();
        sink.sample_gauges(comm.sampler_mut());
        let ar = e.finish();
        // Generate the requested number of new tasks.
        np.clear();
        let active = sink.generate(comm.tracer_mut(), r, &mut np);
        report.tasks_generated += np.len() as u64;
        // Report: results (AR) and new tasks (NP) travel as two
        // fine-grained messages so the coalescing layer can fold them —
        // plus whatever other rounds are queued — into one envelope
        // toward the master.
        comm.send(0, TAG_W2M_AR, ar);
        let mut e = Encoder::with_capacity(8 + np.iter().map(Task::encoded_size_hint).sum::<usize>());
        e.put_u32(active as u32);
        e.put_u32(checked_len(np.len()));
        for task in &np {
            task.encode(&mut e);
        }
        comm.send(0, TAG_W2M_NP, e.finish());
        report.round_trips += 1;
        // Receive the next grant (possibly parking idle first). The R
        // message always arrives; a live grant is followed by its AW
        // batch.
        loop {
            let m = comm.recv(Some(0), Some(TAG_M2W_R));
            let mut d = Decoder::new(m.data);
            let terminate = d.get_u32() == 1;
            if terminate {
                return report;
            }
            r = d.get_u32() as usize;
            let m = comm.recv(Some(0), Some(TAG_M2W_AW));
            let mut d = Decoder::new(m.data);
            let count = d.get_u32();
            aw = (0..count).map(|_| T::decode(&mut d)).collect();
            if aw.is_empty() && !active {
                // Passive with no work: park and wait for an
                // unsolicited allocation or termination.
                comm.tracer_mut().instant(TraceCategory::Worker, names::EV_PARK);
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy client: tasks are plain integers, workers square them.
    /// Exercises the protocol shell with no domain logic at all.
    impl Task for u32 {
        fn encode(&self, e: &mut Encoder) {
            e.put_u32(*self);
        }
        fn decode(d: &mut Decoder) -> u32 {
            d.get_u32()
        }
        fn encoded_size_hint(&self) -> usize {
            4
        }
    }

    struct SumSource {
        sum: u64,
        results: u64,
        seen: Vec<u32>,
    }

    impl TaskSource<u32> for SumSource {
        fn absorb_results(&mut self, _src: usize, d: &mut Decoder) {
            let count = d.get_u32();
            for _ in 0..count {
                self.sum += d.get_u64();
                self.results += 1;
            }
        }
        fn select(&mut self, task: &u32) -> bool {
            self.seen.push(*task);
            // Odd numbers are "already done" — mimics the cluster-check
            // skip so selection is exercised.
            task.is_multiple_of(2)
        }
    }

    struct RangeSink {
        next: u32,
        stop: u32,
        computed: u64,
    }

    impl TaskSink<u32> for RangeSink {
        fn run_batch(&mut self, _tracer: &mut Tracer, batch: &mut Vec<u32>, e: &mut Encoder) {
            e.put_u32(checked_len(batch.len()));
            for t in batch.drain(..) {
                self.computed += 1;
                e.put_u64(t as u64 * t as u64);
            }
        }
        fn generate(&mut self, _tracer: &mut Tracer, r: usize, out: &mut Vec<u32>) -> bool {
            for _ in 0..r {
                if self.next >= self.stop {
                    break;
                }
                out.push(self.next);
                self.next += 1;
            }
            self.next < self.stop
        }
    }

    fn run_toy(p: usize, per_worker: u32, batch: usize, cap: usize) -> (u64, u64, MasterReport) {
        let outcomes = pgasm_mpisim::run(p, move |comm| {
            let cfg = EngineConfig { batch, pending_cap: cap };
            if comm.rank() == 0 {
                let mut source = SumSource { sum: 0, results: 0, seen: Vec::new() };
                let report = run_master(comm, &cfg, &mut source, Vec::new());
                assert_eq!(report.tasks_announced as usize, source.seen.len());
                Some((source.sum, source.results, report))
            } else {
                let base = (comm.rank() as u32 - 1) * per_worker;
                let mut sink = RangeSink { next: base, stop: base + per_worker, computed: 0 };
                run_worker(comm, &cfg, &mut sink);
                None
            }
        });
        outcomes.into_iter().flatten().next().expect("master outcome")
    }

    #[test]
    fn toy_client_computes_every_selected_task_once() {
        for p in [2usize, 3, 5] {
            let per_worker = 40;
            let (sum, results, report) = run_toy(p, per_worker, 4, 64);
            let n = (p as u32 - 1) * per_worker;
            let expected: u64 = (0..n).filter(|t| t % 2 == 0).map(|t| t as u64 * t as u64).sum();
            assert_eq!(sum, expected, "p = {p}");
            assert_eq!(results as u32, n.div_ceil(2), "p = {p}");
            assert_eq!(report.tasks_announced, n as u64);
            assert_eq!(report.tasks_selected as u32, n.div_ceil(2));
            assert!(report.batches_dispatched >= 1);
        }
    }

    #[test]
    fn seeded_master_drives_passive_workers() {
        // Workers generate nothing; the master's seed is the whole task
        // list — the distributed-assembly usage pattern.
        let seed: Vec<u32> = (0..30).map(|i| i * 2).collect();
        let expected: u64 = seed.iter().map(|&t| t as u64 * t as u64).sum();
        let (sum, computed) = pgasm_mpisim::run(4, move |comm| {
            let cfg = EngineConfig { batch: 1, pending_cap: 64 };
            if comm.rank() == 0 {
                let mut source = SumSource { sum: 0, results: 0, seen: Vec::new() };
                let report = run_master(comm, &cfg, &mut source, seed.clone());
                assert_eq!(report.tasks_announced, 0, "passive workers announce nothing");
                assert_eq!(report.peak_queue_depth, seed.len() as u64);
                assert_eq!(source.results, seed.len() as u64);
                (source.sum, 0)
            } else {
                let mut sink = RangeSink { next: 0, stop: 0, computed: 0 };
                run_worker(comm, &cfg, &mut sink);
                (0, sink.computed)
            }
        })
        .into_iter()
        .fold((0, 0), |(s, c), (s2, c2)| (s + s2, c + c2));
        assert_eq!(sum, expected);
        assert_eq!(computed, 30);
    }

    #[test]
    fn master_samples_protocol_gauges_when_enabled() {
        use pgasm_telemetry::trace::TraceSpec;
        let spec = TraceSpec::with_capacity(4096);
        let series = pgasm_mpisim::run(3, move |comm| {
            let cfg = EngineConfig { batch: 4, pending_cap: 64 };
            let mut sampler = spec.sampler(comm.rank(), if comm.rank() == 0 { "master" } else { "worker" });
            sampler.set_interval_ns(0); // sample every pump turn
            comm.set_sampler(sampler);
            if comm.rank() == 0 {
                let mut source = SumSource { sum: 0, results: 0, seen: Vec::new() };
                run_master(comm, &cfg, &mut source, Vec::new());
            } else {
                let mut sink = RangeSink { next: 0, stop: 40, computed: 0 };
                run_worker(comm, &cfg, &mut sink);
            }
            comm.take_series()
        });
        let master = &series[0];
        assert_eq!(master.rank, 0);
        for gauge in [
            names::GAUGE_PENDING_TASKS,
            names::GAUGE_INBOX_DEPTH,
            names::GAUGE_WORKERS_OUTSTANDING,
            names::GAUGE_WORKERS_PARKED,
        ] {
            let g = master.gauge(gauge).unwrap_or_else(|| panic!("{gauge} missing"));
            assert!(!g.samples.is_empty(), "{gauge} never sampled");
        }
        // The pending queue was non-empty at some point in every run.
        assert!(master.gauge(names::GAUGE_PENDING_TASKS).unwrap().max_value() > 0);
    }

    #[test]
    fn tiny_pending_buffer_still_terminates() {
        // Backpressure regression for the generic shell: cap < batch
        // once livelocked the clustering client (the r >= 1 clamp).
        let (sum, _, _) = run_toy(3, 25, 8, 2);
        let n = 2 * 25u32;
        let expected: u64 = (0..n).filter(|t| t % 2 == 0).map(|t| t as u64 * t as u64).sum();
        assert_eq!(sum, expected);
    }
}
