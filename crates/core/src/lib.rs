//! # pgasm-core — the cluster-then-assemble framework
//!
//! The paper's primary contribution (§3, §4, §7): partition a sequencing
//! project's fragments into clusters such that fragments of one contig
//! are never split apart, then assemble each cluster independently with
//! a conventional serial assembler.
//!
//! - [`unionfind`] — the master's cluster store: Union–Find with path
//!   compression and union by rank ("an array of n integers", §7.1).
//! - [`clustering`] — the greedy transitive clustering algorithm over
//!   the on-demand promising-pair stream: align a pair only if its
//!   fragments are currently in different clusters; merge on success
//!   (paper Fig. 3). Serial engine + shared statistics.
//! - [`parallel_gst`] — distributed GST construction (§6): bucket
//!   suffixes by w-prefix, redistribute, fetch the fragments each rank's
//!   buckets need through two collective steps, build local subtree
//!   forests. Reports the measured-computation / modelled-communication
//!   breakdown of Fig. 5.
//! - [`master_worker`] — the single-master / many-workers clustering
//!   runtime (§7, Figs. 6–8): workers generate promising pairs from
//!   their local GST portions and compute alignments; the master owns
//!   the Union–Find, the pending-work queue, the idle-worker list, and
//!   the flow-control formula for the per-worker pair-request size `r`.
//! - [`pipeline`] — end-to-end convenience: preprocess → cluster →
//!   per-cluster assembly, with the summary statistics §8 reports.
//! - [`geometry`] — the §10 future-work extension implemented:
//!   orientation/offset-aware Union–Find that refuses geometrically
//!   inconsistent overlaps during cluster formation.
//! - [`validation`] — ground-truth validation against `simgen`
//!   provenance (the §9.1 "clusters mapping to a single benchmark
//!   region" statistic, made exact).

pub mod clustering;
pub mod geometry;
pub mod master_worker;
pub mod parallel_gst;
pub mod pipeline;
pub mod unionfind;
pub mod validation;

pub use clustering::{cluster_exhaustive, cluster_serial, ClusterParams, ClusterStats, Clustering};
pub use master_worker::{
    cluster_parallel, cluster_parallel_traced, MasterWorkerConfig, ParallelClusterReport,
};
pub use parallel_gst::{build_distributed_gst, DistributedGstReport};
pub use pgasm_align::{AlignKernel, AlignScratch};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};
pub use unionfind::UnionFind;
