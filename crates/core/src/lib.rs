//! # pgasm-core — the cluster-then-assemble framework
//!
//! The paper's primary contribution (§3, §4, §7): partition a sequencing
//! project's fragments into clusters such that fragments of one contig
//! are never split apart, then assemble each cluster independently with
//! a conventional serial assembler.
//!
//! - [`unionfind`] — the master's cluster store: Union–Find with path
//!   compression and union by rank ("an array of n integers", §7.1).
//! - [`clustering`] — the greedy transitive clustering algorithm over
//!   the on-demand promising-pair stream: align a pair only if its
//!   fragments are currently in different clusters; merge on success
//!   (paper Fig. 3). Serial engine + shared statistics.
//! - [`parallel_gst`] — distributed GST construction (§6): bucket
//!   suffixes by w-prefix, redistribute, fetch the fragments each rank's
//!   buckets need through two collective steps, build local subtree
//!   forests. Reports the measured-computation / modelled-communication
//!   breakdown of Fig. 5.
//! - [`engine`] — the generic distributed task engine: the §7
//!   event-driven master–worker protocol (AR/NP/R/AW messages, flow
//!   control, park/unpark, termination, protocol tracing) factored out
//!   of clustering so any workload can ride it through the
//!   `Task`/`TaskSource`/`TaskSink` traits.
//! - [`master_worker`] — the single-master / many-workers clustering
//!   runtime (§7, Figs. 6–8), re-hosted on [`engine`]: workers generate
//!   promising pairs from their local GST portions and compute
//!   alignments; the master owns the Union–Find, the pending-work
//!   queue, the idle-worker list, and the flow-control formula for the
//!   per-worker pair-request size `r`.
//! - [`assemble_dist`] — the §8 "trivially parallel" assembly phase as
//!   a second engine client: the master schedules whole clusters
//!   largest-first (LPT) onto worker ranks, workers assemble and ship
//!   contigs back, with the same telemetry surface as clustering.
//! - [`pipeline`] — end-to-end convenience: preprocess → cluster →
//!   per-cluster assembly, with the summary statistics §8 reports.
//! - [`cache`] — content-addressed per-stage artifact cache: repeated
//!   runs over identical inputs and parameters reload the preprocess
//!   output and the serial GST from disk instead of recomputing them.
//! - [`checkpoint`] — fault tolerance: per-stage recovery knobs
//!   ([`checkpoint::StageRecovery`]) and atomic master checkpoint
//!   snapshots so `pgasm --resume` can restart a killed run from the
//!   last consistent master state.
//! - [`geometry`] — the §10 future-work extension implemented:
//!   orientation/offset-aware Union–Find that refuses geometrically
//!   inconsistent overlaps during cluster formation.
//! - [`validation`] — ground-truth validation against `simgen`
//!   provenance (the §9.1 "clusters mapping to a single benchmark
//!   region" statistic, made exact).

pub mod assemble_dist;
pub mod cache;
pub mod checkpoint;
pub mod clustering;
pub mod engine;
pub mod geometry;
pub mod master_worker;
pub mod parallel_gst;
pub mod pipeline;
pub mod unionfind;
pub mod validation;

pub use assemble_dist::{
    assemble_parallel, assemble_parallel_ft, assemble_parallel_traced, AssignPolicy, DistAssembleReport,
};
pub use cache::{ArtifactCache, StableHasher};
pub use checkpoint::StageRecovery;
pub use clustering::{
    cluster_exhaustive, cluster_serial, cluster_serial_with_gst, ClusterParams, ClusterStats, Clustering,
};
pub use engine::{EngineConfig, MasterReport, Task, TaskSink, TaskSource, WorkerReport};
pub use master_worker::{
    cluster_parallel, cluster_parallel_ft, cluster_parallel_traced, MasterWorkerConfig, ParallelClusterReport,
};
pub use parallel_gst::{build_distributed_gst, DistributedGstReport};
pub use pgasm_align::{AlignKernel, AlignScratch};
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};
pub use unionfind::UnionFind;
