//! Cloning-vector contamination.
//!
//! Raw Sanger reads start inside the cloning vector before entering the
//! genomic insert; the paper removes such contamination with Lucy (§8).
//! This model prepends a stretch of a fixed vector sequence (and
//! occasionally appends one at the 3' end), with matching quality
//! values, so the preprocessor has something real to find.

use pgasm_seq::{DnaSeq, QualityTrack};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The synthetic "cloning vector" sequence all contamination is drawn
/// from. Fixed and public so the screener can hold the same library.
pub const VECTOR_SEQ: &str = "GCTAGCCTGCAGGTCGACTCTAGAGGATCCCCGGGTACCGAGCTCGAATTCACTGGCCGTCGTTTTACAACGTCGTGACTGGGAAAACCCTGGCGTTACCCAACTTAATCGCCTTGCAGCACATCCCCCTTTCGCCAGCTGGCGTAATAGCGAAGAGGCCCGCACCGATCGCCCTTCCCAACAGTTGCGCAGCCTGAATGGCGAATGG";

/// Vector contamination parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VectorModel {
    /// Probability a read carries 5' vector sequence.
    pub p5_prob: f64,
    /// Length range of 5' contamination.
    pub p5_len: (usize, usize),
    /// Probability a read carries 3' vector sequence.
    pub p3_prob: f64,
    /// Length range of 3' contamination.
    pub p3_len: (usize, usize),
    /// Quality assigned to vector bases.
    pub vector_quality: u8,
}

impl Default for VectorModel {
    fn default() -> Self {
        VectorModel { p5_prob: 0.7, p5_len: (20, 80), p3_prob: 0.15, p3_len: (10, 40), vector_quality: 30 }
    }
}

impl VectorModel {
    /// Contaminate a read: returns the possibly-extended read and its
    /// quality track.
    pub fn contaminate(
        &self,
        read: DnaSeq,
        qual: QualityTrack,
        rng: &mut impl Rng,
    ) -> (DnaSeq, QualityTrack) {
        let vector = DnaSeq::from(VECTOR_SEQ);
        let mut seq = DnaSeq::with_capacity(read.len() + 120);
        let mut q: Vec<u8> = Vec::with_capacity(read.len() + 120);
        if rng.gen_bool(self.p5_prob) {
            let len = rng.gen_range(self.p5_len.0..=self.p5_len.1).min(vector.len());
            // 5' contamination is the *end* of the vector (the read runs
            // off the vector into the insert).
            let start = vector.len() - len;
            seq.extend_from(&vector.slice(start, vector.len()));
            q.extend(std::iter::repeat_n(self.vector_quality, len));
        }
        seq.extend_from(&read);
        q.extend_from_slice(qual.values());
        if rng.gen_bool(self.p3_prob) {
            let len = rng.gen_range(self.p3_len.0..=self.p3_len.1).min(vector.len());
            seq.extend_from(&vector.slice(0, len));
            q.extend(std::iter::repeat_n(self.vector_quality, len));
        }
        (seq, QualityTrack::from_values(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_contaminates_when_probability_one() {
        let model = VectorModel { p5_prob: 1.0, p3_prob: 1.0, ..VectorModel::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let read = DnaSeq::from("ACGTACGTACGTACGTACGT");
        let qual = QualityTrack::uniform(20, 40);
        let (seq, q) = model.contaminate(read.clone(), qual, &mut rng);
        assert!(seq.len() > read.len() + 20);
        assert_eq!(seq.len(), q.len());
        // The inserted prefix is a suffix of the vector.
        let prefix_len = seq.len() - read.len() - {
            // find how much 3' was added by locating read at its offset
            let mut three = 0;
            for off in 0..=seq.len() - read.len() {
                if &seq.codes()[off..off + read.len()] == read.codes() {
                    three = seq.len() - off - read.len();
                    break;
                }
            }
            three
        };
        let vector = DnaSeq::from(VECTOR_SEQ);
        assert_eq!(&seq.codes()[..prefix_len], &vector.codes()[vector.len() - prefix_len..]);
    }

    #[test]
    fn never_contaminates_when_probability_zero() {
        let model = VectorModel { p5_prob: 0.0, p3_prob: 0.0, ..VectorModel::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let read = DnaSeq::from("ACGTACGT");
        let (seq, q) = model.contaminate(read.clone(), QualityTrack::uniform(8, 40), &mut rng);
        assert_eq!(seq, read);
        assert_eq!(q.len(), 8);
    }

    #[test]
    fn quality_track_stays_parallel() {
        let model = VectorModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let read = DnaSeq::from("ACGTACGTACGTACGT");
            let (seq, q) = model.contaminate(read, QualityTrack::uniform(16, 40), &mut rng);
            assert_eq!(seq.len(), q.len());
        }
    }
}
