//! Environmental (metagenomic) communities.
//!
//! §9.2: the Sargasso Sea sample mixes WGS fragments from >1800 bacterial
//! species with highly skewed abundances. A [`Community`] holds many
//! small genomes; sampling draws reads per-species proportionally to a
//! power-law abundance distribution, so a few species dominate coverage
//! while a long tail appears only as singletons — exactly the regime in
//! which the cluster count explodes.

use crate::genome::{Genome, GenomeSpec};
use crate::sampler::{ReadSet, Sampler, SamplerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic community.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommunitySpec {
    /// Number of species.
    pub species: usize,
    /// Genome length range per species.
    pub genome_len: (usize, usize),
    /// Power-law exponent of the abundance distribution (rank^-alpha).
    pub abundance_alpha: f64,
    /// Repeat fraction within each genome (bacteria: low).
    pub repeat_fraction: f64,
}

impl CommunitySpec {
    /// A small test-scale community.
    pub fn small() -> CommunitySpec {
        CommunitySpec {
            species: 12,
            genome_len: (8_000, 20_000),
            abundance_alpha: 1.0,
            repeat_fraction: 0.05,
        }
    }
}

/// A set of species genomes with relative abundances.
pub struct Community {
    /// The genomes, indexed by species id.
    pub genomes: Vec<Genome>,
    /// Normalised abundances (sum to 1).
    pub abundances: Vec<f64>,
}

impl Community {
    /// Generate a community deterministically.
    pub fn generate(spec: &CommunitySpec, seed: u64) -> Community {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genomes = Vec::with_capacity(spec.species);
        for i in 0..spec.species {
            let len = rng.gen_range(spec.genome_len.0..=spec.genome_len.1);
            let gspec = GenomeSpec {
                length: len,
                repeat_fraction: spec.repeat_fraction,
                repeat_families: 2,
                repeat_len: (50, 300),
                repeat_identity: 0.98,
                islands: 0,
                island_len: (1, 2),
            };
            genomes.push(Genome::generate(&gspec, seed.wrapping_add(1 + i as u64)));
        }
        let raw: Vec<f64> = (1..=spec.species).map(|r| (r as f64).powf(-spec.abundance_alpha)).collect();
        let total: f64 = raw.iter().sum();
        let abundances = raw.into_iter().map(|a| a / total).collect();
        Community { genomes, abundances }
    }

    /// Sample `n` WGS reads across species, proportional to abundance.
    /// Provenance `genome` fields carry the species id.
    pub fn sample_wgs(&self, n: usize, config: &SamplerConfig, seed: u64) -> ReadSet {
        let mut rng = StdRng::seed_from_u64(seed);
        // Multinomial draw of per-species read counts.
        let mut counts = vec![0usize; self.genomes.len()];
        for _ in 0..n {
            let x: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = self.genomes.len() - 1;
            for (i, &a) in self.abundances.iter().enumerate() {
                acc += a;
                if x < acc {
                    chosen = i;
                    break;
                }
            }
            counts[chosen] += 1;
        }
        let mut out = ReadSet::default();
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mut s = Sampler::new(&self.genomes[i], config.clone(), seed.wrapping_add(1000 + i as u64))
                .with_genome_id(i as u32);
            out.extend(s.wgs(c));
        }
        out
    }

    /// Number of species.
    pub fn num_species(&self) -> usize {
        self.genomes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_shape() {
        let c = Community::generate(&CommunitySpec::small(), 1);
        assert_eq!(c.num_species(), 12);
        let sum: f64 = c.abundances.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Power law: first species strictly more abundant than last.
        assert!(c.abundances[0] > c.abundances[11] * 2.0);
    }

    #[test]
    fn sampling_respects_abundance() {
        let c = Community::generate(&CommunitySpec::small(), 2);
        let reads = c.sample_wgs(600, &SamplerConfig::clean(), 3);
        assert_eq!(reads.len(), 600);
        let mut per_species = vec![0usize; c.num_species()];
        for p in &reads.provenance {
            per_species[p.genome as usize] += 1;
        }
        assert!(per_species[0] > per_species[c.num_species() - 1], "{per_species:?}");
    }

    #[test]
    fn deterministic() {
        let c = Community::generate(&CommunitySpec::small(), 5);
        let a = c.sample_wgs(50, &SamplerConfig::clean(), 7);
        let b = c.sample_wgs(50, &SamplerConfig::clean(), 7);
        assert_eq!(a.seqs, b.seqs);
    }

    #[test]
    fn species_ids_in_provenance() {
        let c = Community::generate(&CommunitySpec::small(), 6);
        let reads = c.sample_wgs(200, &SamplerConfig::clean(), 8);
        let species: std::collections::HashSet<u32> = reads.provenance.iter().map(|p| p.genome).collect();
        assert!(species.len() > 3, "expected reads from several species, got {species:?}");
    }
}
