//! # pgasm-simgen — synthetic sequencing workloads with ground truth
//!
//! The paper evaluates on three datasets we cannot redistribute: the
//! maize pilot-project fragments (MF/HC gene-enriched + BAC + WGS), the
//! *Drosophila pseudoobscura* WGS traces, and the Sargasso Sea
//! environmental sample. This crate generates synthetic equivalents that
//! reproduce the *structural* properties those datasets exercise:
//!
//! - [`genome`] — reference genomes with planted high-identity repeat
//!   families (maize: repeats span 65–80% of the genome) and annotated
//!   gene islands (genes occupy 10–15%, mostly outside repeats).
//! - [`errors`] — a Sanger-style sequencing error model (1–2%
//!   substitutions/indels) with end-decaying quality values.
//! - [`sampler`] — fragment sampling strategies: uniform whole-genome
//!   shotgun (WGS), methyl-filtration (MF) and High-C₀t (HC)
//!   gene-enriched sampling (biased to islands), and BAC-derived
//!   sampling (dense coverage of long clones).
//! - [`vector`] — cloning-vector contamination planted at read ends,
//!   for the Lucy-style trimmer to remove.
//! - [`community`] — multi-species environmental samples with power-law
//!   abundances (Sargasso: >1800 species).
//! - [`presets`] — ready-made maize-like, drosophila-like and
//!   sargasso-like dataset builders used by the benchmark harness.
//!
//! Every read carries [`Provenance`] — its true genome coordinates —
//! enabling stronger validation than the paper's BLAST mapping (§9.1's
//! "98.7% of clusters map to a single benchmark sequence" becomes an
//! exact ground-truth check).

pub mod community;
pub mod errors;
pub mod genome;
pub mod presets;
pub mod sampler;
pub mod vector;

use serde::{Deserialize, Serialize};

/// The sequencing strategy a fragment came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadKind {
    /// Whole-genome shotgun.
    Wgs,
    /// Methyl-filtration gene-enriched.
    Mf,
    /// High-C₀t gene-enriched.
    Hc,
    /// BAC-derived (clone ends and internal reads).
    Bac,
}

impl ReadKind {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ReadKind::Wgs => "WGS",
            ReadKind::Mf => "MF",
            ReadKind::Hc => "HC",
            ReadKind::Bac => "BAC",
        }
    }
}

/// Ground truth for one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Source genome (0 for single-genome projects; species index for
    /// environmental samples).
    pub genome: u32,
    /// True start on the genome's forward strand.
    pub start: u32,
    /// True end (exclusive) on the forward strand.
    pub end: u32,
    /// Whether the read was sequenced from the reverse strand.
    pub reverse: bool,
    /// Sampling strategy.
    pub kind: ReadKind,
}

pub use community::{Community, CommunitySpec};
pub use genome::{Genome, GenomeSpec};
pub use sampler::{ReadSet, SamplerConfig};
