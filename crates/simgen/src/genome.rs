//! Synthetic reference genomes with planted repeats and gene islands.

use pgasm_seq::{Base, DnaSeq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a synthetic genome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenomeSpec {
    /// Genome length in bases.
    pub length: usize,
    /// Fraction of the genome covered by repeat-family copies
    /// (maize ≈ 0.65–0.80; drosophila ≈ 0.1).
    pub repeat_fraction: f64,
    /// Number of distinct repeat families.
    pub repeat_families: usize,
    /// Length range of a repeat element.
    pub repeat_len: (usize, usize),
    /// Per-base identity of a repeat copy to its family consensus
    /// (maize repeats have "very high sequence identity" — 0.97–0.999).
    pub repeat_identity: f64,
    /// Number of gene islands.
    pub islands: usize,
    /// Length range of a gene island.
    pub island_len: (usize, usize),
}

impl GenomeSpec {
    /// A small default suitable for tests: 50 kb, 30% repeats, 10 islands.
    pub fn small() -> GenomeSpec {
        GenomeSpec {
            length: 50_000,
            repeat_fraction: 0.3,
            repeat_families: 5,
            repeat_len: (100, 800),
            repeat_identity: 0.99,
            islands: 10,
            island_len: (1_000, 3_000),
        }
    }
}

/// A half-open annotated interval on the genome.
pub type Interval = (usize, usize);

/// A synthetic genome with annotations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Genome {
    /// The forward-strand sequence.
    pub seq: DnaSeq,
    /// Intervals covered by planted repeat copies, sorted, may abut.
    pub repeats: Vec<Interval>,
    /// Gene-island intervals, sorted, non-overlapping.
    pub islands: Vec<Interval>,
    /// Consensus sequences of the repeat families (the "known repeat
    /// library" a masking database would hold).
    pub repeat_library: Vec<DnaSeq>,
}

impl Genome {
    /// Generate a genome from `spec`, deterministically from `seed`.
    pub fn generate(spec: &GenomeSpec, seed: u64) -> Genome {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut seq = random_dna(&mut rng, spec.length);

        // Repeat families: draw consensus elements, then paste
        // mutated copies at random positions until the target fraction
        // of the genome is covered.
        let mut library = Vec::with_capacity(spec.repeat_families);
        for _ in 0..spec.repeat_families {
            let len = rng.gen_range(spec.repeat_len.0..=spec.repeat_len.1);
            library.push(random_dna(&mut rng, len));
        }
        let mut repeats = Vec::new();
        let target = (spec.length as f64 * spec.repeat_fraction) as usize;
        let mut covered = 0usize;
        while covered < target && !library.is_empty() {
            let fam = &library[rng.gen_range(0..library.len())];
            if fam.len() >= spec.length {
                break;
            }
            let at = rng.gen_range(0..spec.length - fam.len());
            for (i, &c) in fam.codes().iter().enumerate() {
                let c = if rng.gen_bool(spec.repeat_identity) { c } else { random_other_base(&mut rng, c) };
                seq.codes_mut()[at + i] = c;
            }
            repeats.push((at, at + fam.len()));
            covered += fam.len();
        }
        repeats.sort_unstable();

        // Gene islands: non-overlapping intervals preferentially placed
        // outside repeats (genes sit "mostly outside the repeat
        // content", §1).
        let mut islands: Vec<Interval> = Vec::new();
        let mut attempts = 0;
        while islands.len() < spec.islands && attempts < spec.islands * 50 {
            attempts += 1;
            let len = rng.gen_range(spec.island_len.0..=spec.island_len.1.max(spec.island_len.0));
            if len >= spec.length {
                break;
            }
            let at = rng.gen_range(0..spec.length - len);
            let candidate = (at, at + len);
            if islands.iter().any(|&(s, e)| overlaps(candidate, (s, e))) {
                continue;
            }
            // Reject island placements that are mostly repeat.
            let rep_overlap: usize = repeats.iter().map(|&(s, e)| overlap_len(candidate, (s, e))).sum();
            if rep_overlap * 2 > len {
                continue;
            }
            islands.push(candidate);
        }
        islands.sort_unstable();

        Genome { seq, repeats, islands, repeat_library: library }
    }

    /// Genome length.
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// True for a zero-length genome.
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Fraction of positions covered by at least one repeat interval.
    pub fn repeat_coverage(&self) -> f64 {
        if self.seq.is_empty() {
            return 0.0;
        }
        let mut covered = vec![false; self.seq.len()];
        for &(s, e) in &self.repeats {
            for c in covered.iter_mut().take(e.min(self.seq.len())).skip(s) {
                *c = true;
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / self.seq.len() as f64
    }

    /// Does position `pos` fall inside a gene island?
    pub fn in_island(&self, pos: usize) -> bool {
        self.islands.iter().any(|&(s, e)| pos >= s && pos < e)
    }
}

fn overlaps(a: Interval, b: Interval) -> bool {
    a.0 < b.1 && b.0 < a.1
}

fn overlap_len(a: Interval, b: Interval) -> usize {
    let s = a.0.max(b.0);
    let e = a.1.min(b.1);
    e.saturating_sub(s)
}

/// Uniform random DNA of the given length.
pub fn random_dna(rng: &mut impl Rng, len: usize) -> DnaSeq {
    (0..len).map(|_| Base::ALL[rng.gen_range(0..4)]).collect()
}

/// A uniformly random base different from `c`.
fn random_other_base(rng: &mut impl Rng, c: u8) -> u8 {
    let mut n = rng.gen_range(0..3u8);
    if n >= c {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let spec = GenomeSpec::small();
        let a = Genome::generate(&spec, 42);
        let b = Genome::generate(&spec, 42);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.repeats, b.repeats);
        let c = Genome::generate(&spec, 43);
        assert_ne!(a.seq, c.seq);
    }

    #[test]
    fn length_respected() {
        let mut spec = GenomeSpec::small();
        spec.length = 10_000;
        let g = Genome::generate(&spec, 1);
        assert_eq!(g.len(), 10_000);
    }

    #[test]
    fn repeat_coverage_near_target() {
        let mut spec = GenomeSpec::small();
        spec.length = 100_000;
        spec.repeat_fraction = 0.5;
        let g = Genome::generate(&spec, 7);
        let cov = g.repeat_coverage();
        // Pastes may overlap, so realised coverage is at most the target
        // plus one element, and should not be far below it.
        assert!(cov > 0.3 && cov < 0.65, "coverage {cov}");
    }

    #[test]
    fn zero_repeats_supported() {
        let mut spec = GenomeSpec::small();
        spec.repeat_fraction = 0.0;
        let g = Genome::generate(&spec, 3);
        assert!(g.repeats.is_empty());
        assert!(g.repeat_coverage() < 1e-9);
    }

    #[test]
    fn islands_disjoint_and_in_bounds() {
        let g = Genome::generate(&GenomeSpec::small(), 11);
        for w in g.islands.windows(2) {
            assert!(w[0].1 <= w[1].0, "islands overlap: {w:?}");
        }
        for &(s, e) in &g.islands {
            assert!(s < e && e <= g.len());
        }
    }

    #[test]
    fn repeat_copies_resemble_library() {
        let mut spec = GenomeSpec::small();
        spec.repeat_families = 1;
        spec.repeat_identity = 1.0;
        spec.repeat_fraction = 0.2;
        let g = Genome::generate(&spec, 5);
        let fam = &g.repeat_library[0];
        let (s, e) = g.repeats[0];
        assert_eq!(&g.seq.codes()[s..e], fam.codes());
    }

    #[test]
    fn in_island_query() {
        let g = Genome::generate(&GenomeSpec::small(), 13);
        if let Some(&(s, e)) = g.islands.first() {
            assert!(g.in_island(s));
            assert!(g.in_island(e - 1));
            assert!(!g.in_island(g.len())); // out of range is false
        }
    }
}
