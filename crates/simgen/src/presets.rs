//! Ready-made datasets mirroring the paper's three evaluation inputs at
//! configurable (reduced) scale.

use crate::community::{Community, CommunitySpec};
use crate::genome::{Genome, GenomeSpec};
use crate::sampler::{ReadSet, Sampler, SamplerConfig};
use crate::ReadKind;

/// A complete synthetic dataset: reads plus the reference(s) they came
/// from (kept for ground-truth validation).
pub struct Dataset {
    /// Human-readable name.
    pub name: String,
    /// The sampled reads.
    pub reads: ReadSet,
    /// Source genomes (one for single-genome projects).
    pub genomes: Vec<Genome>,
}

impl Dataset {
    /// Total read bases.
    pub fn total_bases(&self) -> usize {
        self.reads.total_bases()
    }
}

/// Maize-like data (§8): a highly repetitive genome (≈ 65% repeat
/// coverage, high copy identity) with sparse gene islands, sampled by
/// the four strategies in roughly the paper's Table 2 proportions
/// (MF 13%, HC 14%, BAC 36%, WGS 37% of fragments).
///
/// `genome_len` scales the genome; `n_reads` the project size.
pub fn maize_like(genome_len: usize, n_reads: usize, seed: u64) -> Dataset {
    let spec = GenomeSpec {
        length: genome_len,
        repeat_fraction: 0.70,
        repeat_families: (genome_len / 12_000).clamp(4, 60),
        repeat_len: (80, 1_500),
        repeat_identity: 0.985,
        islands: (genome_len / 8_000).max(3),
        island_len: (1_500, 4_000),
    };
    let genome = Genome::generate(&spec, seed);
    let config = SamplerConfig::default_scaled();
    let mut sampler = Sampler::new(&genome, config, seed.wrapping_add(1));
    let n_mf = n_reads * 13 / 100;
    let n_hc = n_reads * 14 / 100;
    let n_bac = n_reads * 36 / 100;
    let n_wgs = n_reads - n_mf - n_hc - n_bac;
    let mut reads = sampler.enriched(n_mf, ReadKind::Mf);
    reads.extend(sampler.enriched(n_hc, ReadKind::Hc));
    let reads_per_clone = 12usize;
    reads.extend(sampler.bac((n_bac / reads_per_clone).max(1), reads_per_clone));
    reads.extend(sampler.wgs(n_wgs));
    Dataset {
        name: format!("maize-like ({} bp genome, {} reads)", genome_len, reads.len()),
        reads,
        genomes: vec![genome],
    }
}

/// Drosophila-like data (§9.1): a moderately repetitive genome
/// (≈ 12% repeats) under uniform WGS at the paper's 8.8× coverage.
pub fn drosophila_like(genome_len: usize, coverage: f64, seed: u64) -> Dataset {
    let spec = GenomeSpec {
        length: genome_len,
        repeat_fraction: 0.12,
        repeat_families: (genome_len / 40_000).clamp(2, 20),
        repeat_len: (100, 1_000),
        repeat_identity: 0.98,
        islands: 0,
        island_len: (1, 2),
    };
    let genome = Genome::generate(&spec, seed);
    let config = SamplerConfig::default_scaled();
    let avg_len = (config.read_len.0 + config.read_len.1) / 2;
    let n = ((genome_len as f64 * coverage) / avg_len as f64).ceil() as usize;
    let mut sampler = Sampler::new(&genome, config, seed.wrapping_add(1));
    let reads = sampler.wgs(n);
    Dataset {
        name: format!("drosophila-like ({} bp genome, {:.1}x)", genome_len, coverage),
        reads,
        genomes: vec![genome],
    }
}

/// Sargasso-like environmental data (§9.2): many species, power-law
/// abundances, uniform WGS within each.
pub fn sargasso_like(species: usize, n_reads: usize, seed: u64) -> Dataset {
    let spec =
        CommunitySpec { species, genome_len: (15_000, 60_000), abundance_alpha: 1.0, repeat_fraction: 0.03 };
    let community = Community::generate(&spec, seed);
    let reads = community.sample_wgs(n_reads, &SamplerConfig::default_scaled(), seed.wrapping_add(1));
    Dataset {
        name: format!("sargasso-like ({} species, {} reads)", species, reads.len()),
        reads,
        genomes: community.genomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maize_like_composition() {
        let d = maize_like(60_000, 400, 1);
        assert!(d.reads.len() >= 380 && d.reads.len() <= 420, "{}", d.reads.len());
        let mf = d.reads.provenance.iter().filter(|p| p.kind == ReadKind::Mf).count();
        let wgs = d.reads.provenance.iter().filter(|p| p.kind == ReadKind::Wgs).count();
        let bac = d.reads.provenance.iter().filter(|p| p.kind == ReadKind::Bac).count();
        assert!(mf > 0 && wgs > 0 && bac > 0);
        assert!(d.genomes[0].repeat_coverage() > 0.4, "maize must be repeat-rich");
    }

    #[test]
    fn drosophila_like_coverage() {
        let d = drosophila_like(40_000, 6.0, 2);
        let cov = d.total_bases() as f64 / 40_000.0;
        assert!(cov > 4.5 && cov < 8.0, "coverage {cov}");
        assert!(d.genomes[0].repeat_coverage() < 0.25);
    }

    #[test]
    fn sargasso_like_species() {
        let d = sargasso_like(8, 300, 3);
        assert_eq!(d.genomes.len(), 8);
        assert_eq!(d.reads.len(), 300);
    }

    #[test]
    fn deterministic_presets() {
        let a = maize_like(30_000, 100, 9);
        let b = maize_like(30_000, 100, 9);
        assert_eq!(a.reads.seqs, b.reads.seqs);
    }
}
