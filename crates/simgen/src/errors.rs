//! Sanger-style sequencing error and quality model.
//!
//! §2: "Given the low rate (≈1–2%) of errors, sequencing artifacts and
//! other variations, any good alignment is expected to contain long
//! exactly matching regions." The model plants exactly those error
//! rates, plus phred-style quality values that are high in the middle of
//! a read and decay toward both ends (what Lucy-style trimming relies
//! on).

use pgasm_seq::{DnaSeq, QualityTrack};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Error-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base insertion probability.
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
    /// Peak quality in the read interior.
    pub peak_quality: u8,
    /// Quality at the very ends of the read.
    pub end_quality: u8,
    /// Number of bases over which quality ramps between end and peak.
    pub ramp: usize,
}

impl ErrorModel {
    /// The paper's regime (≈ 1–2% errors in cleaned fragments): phred
    /// ramps from noisy ends (q7 ≈ 20% error, trimmed by Lucy) to a q30
    /// interior (0.1%); over a whole read the realised rate lands in the
    /// paper's band. The flat `*_rate` fields remain for the
    /// quality-blind [`ErrorModel::corrupt`] path.
    pub const SANGER: ErrorModel = ErrorModel {
        sub_rate: 0.010,
        ins_rate: 0.0025,
        del_rate: 0.0025,
        peak_quality: 30,
        end_quality: 7,
        ramp: 50,
    };

    /// An error-free model (for assembler exactness tests).
    pub const PERFECT: ErrorModel = ErrorModel {
        sub_rate: 0.0,
        ins_rate: 0.0,
        del_rate: 0.0,
        peak_quality: 40,
        end_quality: 40,
        ramp: 1,
    };

    /// Apply sequencing errors to `template`, returning the erroneous
    /// read. Masked template positions pass through unchanged.
    pub fn corrupt(&self, template: &DnaSeq, rng: &mut impl Rng) -> DnaSeq {
        let mut out = DnaSeq::with_capacity(template.len() + 8);
        for &c in template.codes() {
            if rng.gen_bool(self.del_rate) {
                continue;
            }
            if rng.gen_bool(self.ins_rate) {
                out.push_code(rng.gen_range(0..4u8));
            }
            if pgasm_seq::is_base_code(c) && rng.gen_bool(self.sub_rate) {
                let mut n = rng.gen_range(0..3u8);
                if n >= c {
                    n += 1;
                }
                out.push_code(n);
            } else {
                out.push_code(c);
            }
        }
        out
    }

    /// Corrupt a template with *quality-linked* errors: each base's
    /// substitution probability is its phred error probability
    /// 10^(−q/10) (that is what a phred score means), with indels at a
    /// fraction of that. Returns the read and its quality track, kept
    /// aligned through indels (an inserted base gets a degraded copy of
    /// the local quality). This is the model the samplers use — errors
    /// concentrate at the low-quality read ends, as in real traces.
    pub fn corrupt_quality_linked(
        &self,
        template: &DnaSeq,
        qual: &QualityTrack,
        rng: &mut impl Rng,
    ) -> (DnaSeq, QualityTrack) {
        assert_eq!(template.len(), qual.len());
        if self.sub_rate == 0.0 && self.ins_rate == 0.0 && self.del_rate == 0.0 {
            // An explicitly error-free model stays error-free even
            // though finite phred values imply a residual rate.
            return (template.clone(), qual.clone());
        }
        let mut seq = DnaSeq::with_capacity(template.len() + 8);
        let mut out_q: Vec<u8> = Vec::with_capacity(template.len() + 8);
        for (i, &c) in template.codes().iter().enumerate() {
            let q = qual.values()[i];
            let p_err = 10f64.powf(-(q as f64) / 10.0).min(0.3);
            let p_indel = p_err * 0.2;
            if rng.gen_bool(p_indel) {
                continue; // deletion
            }
            if rng.gen_bool(p_indel) {
                seq.push_code(rng.gen_range(0..4u8));
                out_q.push(q.saturating_sub(5).max(2));
            }
            if pgasm_seq::is_base_code(c) && rng.gen_bool(p_err) {
                let mut n = rng.gen_range(0..3u8);
                if n >= c {
                    n += 1;
                }
                seq.push_code(n);
            } else {
                seq.push_code(c);
            }
            out_q.push(q);
        }
        (seq, QualityTrack::from_values(out_q))
    }

    /// Quality track for a read of the given length: ramps from
    /// `end_quality` to `peak_quality` over `ramp` bases at both ends,
    /// with small jitter.
    pub fn qualities(&self, len: usize, rng: &mut impl Rng) -> QualityTrack {
        let mut values = Vec::with_capacity(len);
        let ramp = self.ramp.max(1);
        for i in 0..len {
            let d = i.min(len - 1 - i).min(ramp);
            let frac = d as f64 / ramp as f64;
            let q = self.end_quality as f64 + frac * (self.peak_quality as f64 - self.end_quality as f64);
            let jitter: i32 = rng.gen_range(-2..=2);
            values.push((q as i32 + jitter).clamp(0, 60) as u8);
        }
        QualityTrack::from_values(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = crate::genome::random_dna(&mut rng, 500);
        let read = ErrorModel::PERFECT.corrupt(&t, &mut rng);
        assert_eq!(read, t);
    }

    #[test]
    fn substitution_rate_matches_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = crate::genome::random_dna(&mut rng, 50_000);
        let subs_only = ErrorModel { ins_rate: 0.0, del_rate: 0.0, ..ErrorModel::SANGER };
        let read = subs_only.corrupt(&t, &mut rng);
        assert_eq!(read.len(), t.len());
        let diff = read.codes().iter().zip(t.codes()).filter(|(a, b)| a != b).count();
        let rate = diff as f64 / t.len() as f64;
        assert!((rate - 0.01).abs() < 0.004, "substitution rate {rate}");
    }

    #[test]
    fn indel_rates_shift_length_as_expected() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = crate::genome::random_dna(&mut rng, 50_000);
        let dels_only = ErrorModel { sub_rate: 0.0, ins_rate: 0.0, del_rate: 0.02, ..ErrorModel::SANGER };
        let read = dels_only.corrupt(&t, &mut rng);
        let lost = t.len() - read.len();
        assert!((lost as f64 / t.len() as f64 - 0.02).abs() < 0.006, "deletion rate {lost}");
        let ins_only = ErrorModel { sub_rate: 0.0, ins_rate: 0.02, del_rate: 0.0, ..ErrorModel::SANGER };
        let read = ins_only.corrupt(&t, &mut rng);
        let gained = read.len() - t.len();
        assert!((gained as f64 / t.len() as f64 - 0.02).abs() < 0.006, "insertion rate {gained}");
    }

    #[test]
    fn quality_linked_errors_follow_phred() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = crate::genome::random_dna(&mut rng, 60_000);
        // Uniform q10 → 10% substitutions (+ some indels).
        let q10 = QualityTrack::uniform(t.len(), 10);
        let (read, _) = ErrorModel::SANGER.corrupt_quality_linked(&t, &q10, &mut rng);
        let diff = read.codes().iter().zip(t.codes()).filter(|(a, b)| a != b).count() as f64;
        // Indels shift frames, so compare only loosely: well above 5%.
        assert!(diff / t.len() as f64 > 0.05, "q10 rate too low");
        // Uniform q40 → ~1e-4: essentially clean. A rare indel would
        // desynchronise a positional comparison, so bound the length
        // drift and count substitutions only up to the first frame
        // shift.
        let q40 = QualityTrack::uniform(t.len(), 40);
        let (read, outq) = ErrorModel::SANGER.corrupt_quality_linked(&t, &q40, &mut rng);
        assert!(read.len().abs_diff(t.len()) <= 5, "len drift {}", read.len().abs_diff(t.len()));
        assert_eq!(read.len(), outq.len(), "quality stays aligned");
        let mut subs = 0usize;
        let mut run = 0usize;
        for (a, b) in read.codes().iter().zip(t.codes()) {
            if a != b {
                subs += 1;
                run += 1;
                if run > 3 {
                    break; // frame shift from an indel — stop counting
                }
            } else {
                run = 0;
            }
        }
        assert!(subs < 60, "q40 should be nearly error-free before any frame shift, got {subs}");
    }

    #[test]
    fn quality_ramps_at_ends() {
        let mut rng = StdRng::seed_from_u64(3);
        let q = ErrorModel::SANGER.qualities(500, &mut rng);
        assert_eq!(q.len(), 500);
        assert!(q.values()[0] < 12, "end quality should be low");
        assert!(q.values()[250] > 25, "interior quality should be high");
        assert!(q.values()[499] < 12, "other end low too");
    }

    #[test]
    fn quality_handles_short_reads() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = ErrorModel::SANGER.qualities(3, &mut rng);
        assert_eq!(q.len(), 3);
        let q0 = ErrorModel::SANGER.qualities(0, &mut rng);
        assert!(q0.is_empty());
    }
}
