//! Fragment sampling strategies.
//!
//! WGS samples uniformly at random; MF/HC bias sampling toward gene
//! islands (the paper: these strategies "bias fragment sampling towards
//! gene-rich regions", producing the non-uniform coverage that breaks
//! the Θ(n) assumptions of conventional assemblers); BAC sampling picks
//! long clones and covers them densely.

use crate::errors::ErrorModel;
use crate::genome::Genome;
use crate::vector::VectorModel;
use crate::{Provenance, ReadKind};
use pgasm_seq::{DnaSeq, FragmentStore, QualityTrack};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for one sampling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Read length range (uniform draw).
    pub read_len: (usize, usize),
    /// Error model applied to each read.
    pub errors: ErrorModel,
    /// Vector / quality-artefact model (None = clean reads).
    pub vector: Option<VectorModel>,
    /// Probability a read is taken from the reverse strand.
    pub reverse_prob: f64,
    /// For MF/HC: probability a read is drawn from inside a gene island
    /// (the rest are uniform background — enrichment is imperfect).
    pub island_bias: f64,
    /// For BAC: clone length range.
    pub bac_clone_len: (usize, usize),
}

impl SamplerConfig {
    /// Sensible defaults at reduced scale: 300–600 bp reads, Sanger
    /// errors, 90% island bias for enriched strategies, 10–30 kb clones.
    pub fn default_scaled() -> SamplerConfig {
        SamplerConfig {
            read_len: (300, 600),
            errors: ErrorModel::SANGER,
            vector: Some(VectorModel::default()),
            reverse_prob: 0.5,
            island_bias: 0.9,
            bac_clone_len: (10_000, 30_000),
        }
    }

    /// Error-free, artefact-free reads (for exactness tests).
    pub fn clean() -> SamplerConfig {
        SamplerConfig {
            read_len: (300, 600),
            errors: ErrorModel::PERFECT,
            vector: None,
            reverse_prob: 0.5,
            island_bias: 0.9,
            bac_clone_len: (10_000, 30_000),
        }
    }
}

/// A sampled read set: sequences, qualities, and ground truth, parallel
/// by index.
#[derive(Debug, Clone, Default)]
pub struct ReadSet {
    /// The reads.
    pub seqs: Vec<DnaSeq>,
    /// Per-read quality tracks.
    pub quals: Vec<QualityTrack>,
    /// Per-read ground truth.
    pub provenance: Vec<Provenance>,
}

impl ReadSet {
    /// Number of reads.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Total bases.
    pub fn total_bases(&self) -> usize {
        self.seqs.iter().map(|s| s.len()).sum()
    }

    /// Append all reads of `other`.
    pub fn extend(&mut self, other: ReadSet) {
        self.seqs.extend(other.seqs);
        self.quals.extend(other.quals);
        self.provenance.extend(other.provenance);
    }

    /// Pack the sequences into a [`FragmentStore`] (provenance stays
    /// index-parallel).
    pub fn to_store(&self) -> FragmentStore {
        FragmentStore::from_seqs(self.seqs.iter().cloned())
    }
}

/// The sampler over one genome.
pub struct Sampler<'g> {
    genome: &'g Genome,
    config: SamplerConfig,
    rng: StdRng,
    genome_id: u32,
}

impl<'g> Sampler<'g> {
    /// New sampler with a deterministic seed.
    pub fn new(genome: &'g Genome, config: SamplerConfig, seed: u64) -> Self {
        Sampler { genome, config, rng: StdRng::seed_from_u64(seed), genome_id: 0 }
    }

    /// Tag emitted provenance with a genome/species id (environmental
    /// samples).
    pub fn with_genome_id(mut self, id: u32) -> Self {
        self.genome_id = id;
        self
    }

    /// Sample `n` uniform WGS reads.
    pub fn wgs(&mut self, n: usize) -> ReadSet {
        let mut out = ReadSet::default();
        for _ in 0..n {
            let (start, len) = self.draw_uniform_window();
            self.emit(&mut out, start, len, ReadKind::Wgs);
        }
        out
    }

    /// Sample `n` gene-enriched reads (`kind` = MF or HC): with
    /// probability `island_bias` the read start falls inside a gene
    /// island.
    pub fn enriched(&mut self, n: usize, kind: ReadKind) -> ReadSet {
        assert!(matches!(kind, ReadKind::Mf | ReadKind::Hc));
        let mut out = ReadSet::default();
        for _ in 0..n {
            let (start, len) =
                if !self.genome.islands.is_empty() && self.rng.gen_bool(self.config.island_bias) {
                    self.draw_island_window()
                } else {
                    self.draw_uniform_window()
                };
            self.emit(&mut out, start, len, kind);
        }
        out
    }

    /// Sample `n_pairs` clone-mate pairs (paper §1: "fragments are
    /// typically sequenced in pairs from either end of longer DNA
    /// sequences (or sub-clones) of approximate known length (~5000
    /// bp)"). For each pair, the first read runs forward from the
    /// sub-clone's 5' end and the second is the reverse complement of
    /// its 3' end. Returns the reads plus `(read1, read2, insert)`
    /// links indexing into the returned set.
    pub fn mate_pairs(
        &mut self,
        n_pairs: usize,
        insert: (usize, usize),
    ) -> (ReadSet, Vec<(usize, usize, u32)>) {
        let mut out = ReadSet::default();
        let mut links = Vec::with_capacity(n_pairs);
        let glen = self.genome.len();
        for _ in 0..n_pairs {
            let ins = self.rng.gen_range(insert.0..=insert.1).min(glen.saturating_sub(1));
            if ins < 2 * self.config.read_len.0 {
                continue;
            }
            let start = self.rng.gen_range(0..glen - ins);
            let len1 = self.draw_read_len().min(ins);
            let len2 = self.draw_read_len().min(ins);
            let i1 = out.len();
            self.emit_oriented(&mut out, start, len1, false, ReadKind::Wgs);
            let i2 = out.len();
            self.emit_oriented(&mut out, start + ins - len2, len2, true, ReadKind::Wgs);
            links.push((i1, i2, ins as u32));
        }
        (out, links)
    }

    /// Sample `clones` BAC clones, each covered by `reads_per_clone`
    /// reads (ends are always sampled, mimicking end-sequencing).
    pub fn bac(&mut self, clones: usize, reads_per_clone: usize) -> ReadSet {
        let mut out = ReadSet::default();
        let glen = self.genome.len();
        for _ in 0..clones {
            let clen = self
                .rng
                .gen_range(self.config.bac_clone_len.0..=self.config.bac_clone_len.1)
                .min(glen.saturating_sub(1));
            if clen == 0 {
                continue;
            }
            let cstart = self.rng.gen_range(0..glen - clen);
            for r in 0..reads_per_clone {
                let rl = self.draw_read_len().min(clen);
                let start = match r {
                    0 => cstart,             // 5' clone end
                    1 => cstart + clen - rl, // 3' clone end
                    _ => cstart + self.rng.gen_range(0..=clen - rl),
                };
                self.emit(&mut out, start, rl, ReadKind::Bac);
            }
        }
        out
    }

    fn draw_read_len(&mut self) -> usize {
        self.rng.gen_range(self.config.read_len.0..=self.config.read_len.1)
    }

    fn draw_uniform_window(&mut self) -> (usize, usize) {
        let len = self.draw_read_len().min(self.genome.len());
        let start = if self.genome.len() > len { self.rng.gen_range(0..self.genome.len() - len) } else { 0 };
        (start, len)
    }

    fn draw_island_window(&mut self) -> (usize, usize) {
        let &(s, e) = &self.genome.islands[self.rng.gen_range(0..self.genome.islands.len())];
        let len = self.draw_read_len();
        // Start anywhere such that the read intersects the island.
        let lo = s.saturating_sub(len / 4);
        let hi =
            (e.saturating_sub(len / 2)).max(lo + 1).min(self.genome.len().saturating_sub(len).max(lo + 1));
        let start = self.rng.gen_range(lo..hi);
        let len = len.min(self.genome.len() - start);
        (start, len)
    }

    fn emit(&mut self, out: &mut ReadSet, start: usize, len: usize, kind: ReadKind) {
        let reverse = self.rng.gen_bool(self.config.reverse_prob);
        self.emit_oriented(out, start, len, reverse, kind);
    }

    fn emit_oriented(&mut self, out: &mut ReadSet, start: usize, len: usize, reverse: bool, kind: ReadKind) {
        let end = (start + len).min(self.genome.len());
        let template = self.genome.seq.slice(start, end);
        let template = if reverse { template.reverse_complement() } else { template };
        // Quality-linked errors: draw the phred profile first, then
        // corrupt each base at its phred error probability.
        let profile = self.config.errors.qualities(template.len(), &mut self.rng);
        let (mut read, mut qual) =
            self.config.errors.corrupt_quality_linked(&template, &profile, &mut self.rng);
        if let Some(v) = &self.config.vector {
            let (r, q) = v.contaminate(read, qual, &mut self.rng);
            read = r;
            qual = q;
        }
        out.seqs.push(read);
        out.quals.push(qual);
        out.provenance.push(Provenance {
            genome: self.genome_id,
            start: start as u32,
            end: end as u32,
            reverse,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::GenomeSpec;

    fn small_genome(seed: u64) -> Genome {
        Genome::generate(&GenomeSpec::small(), seed)
    }

    #[test]
    fn wgs_counts_and_lengths() {
        let g = small_genome(1);
        let mut s = Sampler::new(&g, SamplerConfig::clean(), 9);
        let reads = s.wgs(50);
        assert_eq!(reads.len(), 50);
        for (r, p) in reads.seqs.iter().zip(&reads.provenance) {
            assert!(r.len() >= 290 && r.len() <= 620, "read len {}", r.len());
            assert_eq!(p.kind, ReadKind::Wgs);
            assert!((p.end as usize) <= g.len());
        }
    }

    #[test]
    fn clean_reads_match_genome_exactly() {
        let g = small_genome(2);
        let mut s = Sampler::new(&g, SamplerConfig::clean(), 10);
        let reads = s.wgs(20);
        for (r, p) in reads.seqs.iter().zip(&reads.provenance) {
            let region = g.seq.slice(p.start as usize, p.end as usize);
            let expect = if p.reverse { region.reverse_complement() } else { region };
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn enrichment_biases_island_coverage() {
        let g = small_genome(3);
        let mut cfg = SamplerConfig::clean();
        cfg.island_bias = 0.95;
        let mut s = Sampler::new(&g, cfg, 11);
        let reads = s.enriched(400, ReadKind::Mf);
        let in_island =
            reads.provenance.iter().filter(|p| g.in_island(((p.start + p.end) / 2) as usize)).count();
        // Islands cover ~30–40% of the 50 kb genome; with bias 0.95 the
        // majority of reads must hit them.
        assert!(in_island * 2 > reads.len(), "{in_island}/{}", reads.len());
    }

    #[test]
    fn bac_reads_cluster_in_clones() {
        let g = small_genome(4);
        let mut s = Sampler::new(&g, SamplerConfig::clean(), 12);
        let reads = s.bac(2, 10);
        assert_eq!(reads.len(), 20);
        // Reads of one clone span at most the clone length.
        let spans: Vec<(u32, u32)> = reads.provenance.iter().map(|p| (p.start, p.end)).collect();
        let clone1 = &spans[..10];
        let min = clone1.iter().map(|s| s.0).min().unwrap();
        let max = clone1.iter().map(|s| s.1).max().unwrap();
        assert!((max - min) as usize <= 30_000 + 600);
    }

    #[test]
    fn deterministic_sampling() {
        let g = small_genome(5);
        let a = Sampler::new(&g, SamplerConfig::default_scaled(), 77).wgs(10);
        let b = Sampler::new(&g, SamplerConfig::default_scaled(), 77).wgs(10);
        assert_eq!(a.seqs, b.seqs);
        assert_eq!(a.provenance, b.provenance);
    }

    #[test]
    fn readset_extend_and_store() {
        let g = small_genome(6);
        let mut s = Sampler::new(&g, SamplerConfig::clean(), 13);
        let mut a = s.wgs(5);
        let b = s.enriched(5, ReadKind::Hc);
        a.extend(b);
        assert_eq!(a.len(), 10);
        let store = a.to_store();
        assert_eq!(store.num_seqs(), 10);
        assert_eq!(store.total_len(), a.total_bases());
    }
}
