//! Pairwise overlap detection within one cluster.

use crate::AssemblyConfig;
use pgasm_align::overlap::overlap_align_quality_with;
use pgasm_align::{AlignScratch, OverlapResult};
use pgasm_seq::{DnaSeq, KmerIter, QualityTrack};
use std::collections::{HashMap, HashSet};

/// One accepted overlap edge between two reads of a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapEdge {
    /// First read (lower index).
    pub i: usize,
    /// Second read.
    pub j: usize,
    /// Whether the overlap is between `i` forward and `j`
    /// reverse-complemented.
    pub rc: bool,
    /// The alignment of `i` (forward) against `j` in the `rc`
    /// orientation.
    pub result: OverlapResult,
}

/// Find all accepted overlaps among `reads`: candidates are seeded by
/// shared w-mers (either orientation), then verified by full
/// suffix–prefix alignment. With quality tracks, the quality-weighted
/// identity is tested against [`AssemblyConfig::quality_criteria`];
/// without them, the plain identity against [`AssemblyConfig::criteria`].
pub fn find_overlaps(
    reads: &[DnaSeq],
    quals: Option<&[QualityTrack]>,
    config: &AssemblyConfig,
) -> Vec<OverlapEdge> {
    // Index w-mers of every read in forward orientation.
    let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, r) in reads.iter().enumerate() {
        let mut seen: HashSet<u64> = HashSet::new();
        for (_, k) in KmerIter::new(r.codes(), config.wmer) {
            if seen.insert(k) {
                table.entry(k).or_default().push(i);
            }
        }
    }
    // Candidate pairs: forward–forward via shared word; forward–reverse
    // via words of rc(j).
    let mut candidates: HashSet<(usize, usize, bool)> = HashSet::new();
    for (i, r) in reads.iter().enumerate() {
        // Forward–forward.
        let mut seen: HashSet<u64> = HashSet::new();
        for (_, k) in KmerIter::new(r.codes(), config.wmer) {
            if !seen.insert(k) {
                continue;
            }
            if let Some(list) = table.get(&k) {
                for &j in list {
                    if j > i {
                        candidates.insert((i, j, false));
                    }
                }
            }
        }
        // Forward–reverse: words of rc(i) hitting forward words of j.
        let rci = r.reverse_complement();
        let mut seen_rc: HashSet<u64> = HashSet::new();
        for (_, k) in KmerIter::new(rci.codes(), config.wmer) {
            if !seen_rc.insert(k) {
                continue;
            }
            if let Some(list) = table.get(&k) {
                for &j in list {
                    if j != i {
                        let (a, b) = (i.min(j), i.max(j));
                        candidates.insert((a, b, true));
                    }
                }
            }
        }
    }
    // Verify by alignment — one scratch for the whole candidate sweep,
    // so the full-matrix DP buffers are allocated once, not per pair.
    let criteria = if quals.is_some() { config.quality_criteria } else { config.criteria };
    let mut scratch = AlignScratch::new();
    let mut edges = Vec::new();
    for (i, j, rc) in candidates {
        let b_owned;
        let b: &[u8] = if rc {
            b_owned = reads[j].reverse_complement();
            b_owned.codes()
        } else {
            reads[j].codes()
        };
        let qb_owned;
        let q: Option<(&[u8], &[u8])> = match quals {
            None => None,
            Some(qs) => {
                let qa = qs[i].values();
                let qb: &[u8] = if rc {
                    qb_owned = qs[j].values().iter().rev().copied().collect::<Vec<u8>>();
                    &qb_owned
                } else {
                    qs[j].values()
                };
                Some((qa, qb))
            }
        };
        let r = overlap_align_quality_with(reads[i].codes(), b, q, &config.scoring, &mut scratch);
        if criteria.accepts(r.identity, r.overlap_len) {
            edges.push(OverlapEdge { i, j, rc, result: r });
        }
    }
    // Deterministic order: best score first (greedy layout quality).
    edges.sort_by(|a, b| b.result.score.cmp(&a.result.score).then(a.i.cmp(&b.i)).then(a.j.cmp(&b.j)));
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AssemblyConfig {
        AssemblyConfig::default()
    }

    #[test]
    fn detects_forward_overlap() {
        // 60-base overlap between the two reads.
        let genome = "ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTCATCGGTTCGTAGGCTAAGTCGGATTTGCAGCATTACGGATCAGGCATCAGGCATTACGAT";
        let a = DnaSeq::from(&genome[..80]);
        let b = DnaSeq::from(&genome[20..]);
        let edges = find_overlaps(&[a, b], None, &cfg());
        assert_eq!(edges.len(), 1);
        assert!(!edges[0].rc);
        assert_eq!(edges[0].result.overlap_len, 60);
    }

    #[test]
    fn detects_reverse_overlap() {
        let genome = "ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTCATCGGTTCGTAGGCTAAGTCGGATTTGCAGCATTACGGATCAGGCATCAGGCATTACGAT";
        let a = DnaSeq::from(&genome[..80]);
        let b = DnaSeq::from(&genome[20..]).reverse_complement();
        let edges = find_overlaps(&[a, b], None, &cfg());
        assert_eq!(edges.len(), 1);
        assert!(edges[0].rc);
    }

    #[test]
    fn short_or_bad_overlaps_rejected() {
        // 20-base overlap < min_overlap 40.
        let a = DnaSeq::from("ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTC");
        let b = DnaSeq::from("ATCGGATCGTAGGCTAAGTCGGATTTGCAGCATTACGGAT");
        let edges = find_overlaps(&[a, b], None, &cfg());
        assert!(edges.is_empty(), "{edges:?}");
    }

    #[test]
    fn edges_sorted_by_score() {
        let genome = "ATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTAAGTCATCGGTTCGTAGGCTAAGTCGGATTTGCAGCATTACGGATCAGGCATCAGGCATTACGATATCGGATCGTAGGCTAAGTCATCGGATCGTAGGCTATGTCATCGGTTCGTAGGCTAAGTC";
        let reads = vec![
            DnaSeq::from(&genome[..100]),
            DnaSeq::from(&genome[20..120]),
            DnaSeq::from(&genome[55..155]),
        ];
        let edges = find_overlaps(&reads, None, &cfg());
        assert!(edges.len() >= 2);
        for w in edges.windows(2) {
            assert!(w[0].result.score >= w[1].result.score);
        }
    }
}
