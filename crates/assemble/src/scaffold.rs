//! Scaffolding: ordering and orienting contigs with clone-mate links.
//!
//! §2 of the paper: "The order and orientation of the contigs along the
//! chromosomes is later determined using a process called scaffolding."
//! Clone mates (read pairs from the two ends of a sub-clone of known
//! approximate length) constrain the relative placement of the contigs
//! the two reads landed in; bundling several agreeing links yields a
//! scaffold edge with an estimated gap, and a greedy end-joining pass
//! chains contigs into scaffolds.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A clone-mate link between two reads: `read1` runs forward from the
/// sub-clone's 5' end, `read2` is the reverse complement of its 3' end,
/// and the sub-clone is about `insert` bases long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MateLink {
    /// First read id (caller-chosen id space).
    pub read1: usize,
    /// Second read id.
    pub read2: usize,
    /// Approximate sub-clone length.
    pub insert: u32,
}

/// Where a read ended up after assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadPlacement {
    /// Contig index.
    pub contig: usize,
    /// Offset of the read's first placed base on the contig.
    pub offset: usize,
    /// Whether the read was placed reverse-complemented.
    pub flipped: bool,
    /// Read length.
    pub len: usize,
}

/// Scaffolder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaffoldConfig {
    /// Minimum agreeing mate links to create a scaffold edge
    /// (single links are repeat-suspect).
    pub min_links: usize,
    /// Two links agree when their implied gaps differ by at most this.
    pub gap_tolerance: i64,
}

impl Default for ScaffoldConfig {
    fn default() -> Self {
        ScaffoldConfig { min_links: 2, gap_tolerance: 400 }
    }
}

/// One oriented contig within a scaffold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaffoldPart {
    /// Contig index.
    pub contig: usize,
    /// Orientation within the scaffold.
    pub flipped: bool,
    /// Estimated gap to the previous part (0 for the first part; may be
    /// negative for slight overlaps the assembler missed).
    pub gap_before: i64,
}

/// An ordered, oriented chain of contigs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scaffold {
    /// The parts, left to right.
    pub parts: Vec<ScaffoldPart>,
}

impl Scaffold {
    /// Number of contigs chained.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total spanned length given contig lengths (gaps included,
    /// clamped at 0).
    pub fn span(&self, contig_lens: &[usize]) -> usize {
        let mut total = 0i64;
        for p in &self.parts {
            total += p.gap_before.max(0) + contig_lens[p.contig] as i64;
        }
        total.max(0) as usize
    }
}

/// A bundled inter-contig constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    /// Left contig (laid forward).
    a: usize,
    /// Left contig orientation in the edge frame.
    a_flip: bool,
    /// Right contig.
    b: usize,
    /// Right contig orientation.
    b_flip: bool,
    /// Estimated gap between them.
    gap: i64,
    /// Supporting link count.
    links: usize,
}

/// Derive the raw (unbundled) edge a single mate link implies, or
/// `None` when both reads landed in the same contig (an internal link —
/// useful for validation but not for scaffolding).
fn link_edge(
    placements: &HashMap<usize, ReadPlacement>,
    contig_lens: &[usize],
    link: &MateLink,
) -> Option<Edge> {
    let p1 = placements.get(&link.read1)?;
    let p2 = placements.get(&link.read2)?;
    if p1.contig == p2.contig {
        return None;
    }
    // Work in the frame where read1's contig is oriented so that read1
    // faces right (genome-forward). read1's stored sequence is the
    // genome-forward strand, so contig A needs flipping iff read1 was
    // placed flipped.
    let (len_a, len_b) = (contig_lens[p1.contig], contig_lens[p2.contig]);
    let a_flip = p1.flipped;
    let o1 = if a_flip { len_a - p1.offset - p1.len } else { p1.offset };
    // The frame direction equals the genome-forward direction whichever
    // way A was assembled (read1 is genome-forward by construction).
    // read2's stored sequence is the genome-*reverse* strand, so contig
    // B is genome-forward iff read2 sits flipped in it — and therefore
    // needs flipping in the frame iff read2 sits *unflipped*.
    let b_flip = !p2.flipped;
    let o2 = if b_flip { len_b - p2.offset - p2.len } else { p2.offset };
    // Genome: read2's segment ends `insert` bases after read1's start:
    //   gB + o2 + len2 = o1 + insert  ⇒  gB = o1 + insert − len2 − o2.
    let g_b = o1 as i64 + link.insert as i64 - p2.len as i64 - o2 as i64;
    let gap = g_b - len_a as i64;
    let edge = Edge { a: p1.contig, a_flip, b: p2.contig, b_flip, gap, links: 1 };
    Some(canonicalise(edge))
}

/// Canonical edge direction: lower contig index first. Reversing an
/// edge mirrors the pair: the right part becomes the left part flipped.
fn canonicalise(e: Edge) -> Edge {
    if e.a <= e.b {
        e
    } else {
        Edge { a: e.b, a_flip: !e.b_flip, b: e.a, b_flip: !e.a_flip, gap: e.gap, links: e.links }
    }
}

/// Build scaffolds from contig lengths, read placements, and mate
/// links. Contigs that acquire no edges come back as single-part
/// scaffolds.
pub fn scaffold(
    contig_lens: &[usize],
    placements: &HashMap<usize, ReadPlacement>,
    links: &[MateLink],
    config: &ScaffoldConfig,
) -> Vec<Scaffold> {
    // Bundle agreeing links.
    let mut bundles: HashMap<(usize, bool, usize, bool), Vec<i64>> = HashMap::new();
    for link in links {
        if let Some(e) = link_edge(placements, contig_lens, link) {
            bundles.entry((e.a, e.a_flip, e.b, e.b_flip)).or_default().push(e.gap);
        }
    }
    let mut edges: Vec<Edge> = Vec::new();
    for ((a, a_flip, b, b_flip), mut gaps) in bundles {
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        // Count only links agreeing with the median gap.
        let agreeing = gaps.iter().filter(|&&g| (g - median).abs() <= config.gap_tolerance).count();
        if agreeing >= config.min_links {
            edges.push(Edge { a, a_flip, b, b_flip, gap: median, links: agreeing });
        }
    }
    edges.sort_by(|x, y| y.links.cmp(&x.links).then(x.a.cmp(&y.a)).then(x.b.cmp(&y.b)));

    // Greedy end-joining.
    let n = contig_lens.len();
    let mut chains: Vec<Option<Chain>> =
        (0..n).map(|c| Some(Chain { parts: vec![(c, false)], gaps: vec![] })).collect();
    let mut where_is: Vec<usize> = (0..n).collect();
    for e in edges {
        let (ca, cb) = (where_is[e.a], where_is[e.b]);
        if ca == cb {
            continue;
        }
        let (left, right) = (chains[ca].take(), chains[cb].take());
        let (Some(mut left), Some(mut right)) = (left, right) else {
            unreachable!("chains are always present for live indices")
        };
        // Orient the left chain so contig `a` is at its right end with
        // orientation a_flip, and the right chain so `b` is leftmost
        // with orientation b_flip.
        let ok_left = left.orient_as_right_end(e.a, e.a_flip);
        let ok_right = right.orient_as_left_end(e.b, e.b_flip);
        if !ok_left || !ok_right {
            // Interior contig: edge conflicts with an already-built
            // chain; skip (repeat-suspect link bundle).
            chains[ca] = Some(left);
            chains[cb] = Some(right);
            continue;
        }
        for &(c, _) in &right.parts {
            where_is[c] = ca;
        }
        left.gaps.push(e.gap);
        left.gaps.extend(right.gaps);
        left.parts.extend(right.parts);
        chains[ca] = Some(left);
        chains[cb] = None;
    }

    let mut out = Vec::new();
    for chain in chains.into_iter().flatten() {
        let mut parts = Vec::with_capacity(chain.parts.len());
        for (i, &(contig, flipped)) in chain.parts.iter().enumerate() {
            let gap_before = if i == 0 { 0 } else { chain.gaps[i - 1] };
            parts.push(ScaffoldPart { contig, flipped, gap_before });
        }
        out.push(Scaffold { parts });
    }
    out.sort_by_key(|s| s.parts[0].contig);
    out
}

struct Chain {
    parts: Vec<(usize, bool)>,
    gaps: Vec<i64>,
}

impl Chain {
    fn reverse(&mut self) {
        self.parts.reverse();
        for p in &mut self.parts {
            p.1 = !p.1;
        }
        self.gaps.reverse();
    }

    /// Ensure `contig` sits at the right end with the given orientation;
    /// false when it is interior or the orientation cannot match.
    fn orient_as_right_end(&mut self, contig: usize, flip: bool) -> bool {
        if let Some(&(c, f)) = self.parts.last() {
            if c == contig {
                if f == flip {
                    return true;
                }
                if self.parts.len() == 1 {
                    self.parts[0].1 = flip;
                    return true;
                }
            }
        }
        if let Some(&(c, f)) = self.parts.first() {
            if c == contig && (f != flip || self.parts.len() == 1) {
                self.reverse();
                if self.parts.last().expect("non-empty").1 == flip {
                    return true;
                }
                self.reverse();
            }
        }
        false
    }

    /// Ensure `contig` sits at the left end with the given orientation.
    fn orient_as_left_end(&mut self, contig: usize, flip: bool) -> bool {
        self.reverse();
        let ok = self.orient_as_right_end(contig, !flip);
        self.reverse();
        if ok {
            debug_assert_eq!(self.parts.first().map(|p| (p.0, p.1)), Some((contig, flip)));
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn place(contig: usize, offset: usize, flipped: bool, len: usize) -> ReadPlacement {
        ReadPlacement { contig, offset, flipped, len }
    }

    /// Two contigs A (len 1000) and B (len 800) separated by a 200-gap,
    /// with mates: read1 near A's end (fwd), read2 in B (flipped),
    /// insert 700.
    fn simple_case() -> (Vec<usize>, HashMap<usize, ReadPlacement>, Vec<MateLink>) {
        let lens = vec![1000, 800];
        let mut placements = HashMap::new();
        // Genome: A at 0, gap 200, B at 1200.
        // Clone k: read1 at A offset 800 (fwd), read2 covers genome
        // [1400, 1500) = B offset 200..300, stored rc → placed flipped.
        placements.insert(0, place(0, 800, false, 100));
        placements.insert(1, place(1, 200, true, 100));
        placements.insert(2, place(0, 850, false, 100));
        placements.insert(3, place(1, 250, true, 100));
        let links =
            vec![MateLink { read1: 0, read2: 1, insert: 700 }, MateLink { read1: 2, read2: 3, insert: 700 }];
        (lens, placements, links)
    }

    #[test]
    fn two_contigs_bridge_into_one_scaffold() {
        let (lens, placements, links) = simple_case();
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 1, "{scaffolds:?}");
        let s = &scaffolds[0];
        assert_eq!(s.parts.len(), 2);
        assert_eq!(s.parts[0].contig, 0);
        assert!(!s.parts[0].flipped);
        assert_eq!(s.parts[1].contig, 1);
        assert!(!s.parts[1].flipped);
        // gap = o1 + insert − len2 − o2 − lenA = 800 + 700 − 100 − 200 − 1000 = 200.
        assert_eq!(s.parts[1].gap_before, 200);
        assert_eq!(s.span(&lens), 2000);
    }

    #[test]
    fn single_link_is_not_enough() {
        let (lens, placements, mut links) = simple_case();
        links.truncate(1);
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 2, "min_links=2 must reject a lone link");
    }

    #[test]
    fn disagreeing_links_do_not_bundle() {
        let (lens, mut placements, links) = simple_case();
        // Move the second pair's read2 far away: implied gaps now differ
        // by ≫ tolerance.
        placements.insert(3, place(1, 700, true, 100));
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 2);
    }

    #[test]
    fn flipped_contig_is_oriented() {
        let (lens, mut placements, links) = simple_case();
        // Contig B was assembled reverse-complemented: read2 appears
        // *unflipped* in it, at mirrored offsets.
        placements.insert(1, place(1, 800 - 200 - 100, false, 100));
        placements.insert(3, place(1, 800 - 250 - 100, false, 100));
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 1, "{scaffolds:?}");
        let s = &scaffolds[0];
        assert_eq!(s.parts[1].contig, 1);
        assert!(s.parts[1].flipped, "B must be flipped into genome orientation");
        assert_eq!(s.parts[1].gap_before, 200);
    }

    #[test]
    fn three_contig_chain() {
        // A —200— B —300— C, two links per junction.
        let lens = vec![1000, 800, 600];
        let mut placements = HashMap::new();
        placements.insert(0, place(0, 800, false, 100));
        placements.insert(1, place(1, 200, true, 100));
        placements.insert(2, place(0, 850, false, 100));
        placements.insert(3, place(1, 250, true, 100));
        // B→C: genome B at 1200..2000, C at 2300. read at B 600 fwd,
        // mate at C offset 100..200 genome 2400..2500, insert = 2500 − 1800 = 700.
        placements.insert(4, place(1, 600, false, 100));
        placements.insert(5, place(2, 100, true, 100));
        placements.insert(6, place(1, 650, false, 100));
        placements.insert(7, place(2, 150, true, 100));
        let links = vec![
            MateLink { read1: 0, read2: 1, insert: 700 },
            MateLink { read1: 2, read2: 3, insert: 700 },
            MateLink { read1: 4, read2: 5, insert: 700 },
            MateLink { read1: 6, read2: 7, insert: 700 },
        ];
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 1, "{scaffolds:?}");
        let order: Vec<usize> = scaffolds[0].parts.iter().map(|p| p.contig).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(scaffolds[0].parts[2].gap_before, 300);
    }

    #[test]
    fn read1_in_reversed_contig() {
        // Contig A was assembled genome-reversed: read1 (genome-forward)
        // appears flipped in it at mirrored offsets. Genome geometry is
        // the same as `simple_case`, so the resulting scaffold must be
        // A(-) then B(+) with the same 200 gap.
        let lens = vec![1000, 800];
        let mut placements = HashMap::new();
        placements.insert(0, place(0, 1000 - 800 - 100, true, 100));
        placements.insert(1, place(1, 200, true, 100));
        placements.insert(2, place(0, 1000 - 850 - 100, true, 100));
        placements.insert(3, place(1, 250, true, 100));
        let links =
            vec![MateLink { read1: 0, read2: 1, insert: 700 }, MateLink { read1: 2, read2: 3, insert: 700 }];
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 1, "{scaffolds:?}");
        let s = &scaffolds[0];
        assert_eq!(s.parts.len(), 2);
        let (first, second) = (&s.parts[0], &s.parts[1]);
        assert_eq!((first.contig, second.contig), (0, 1));
        assert!(first.flipped, "A must be flipped into genome orientation");
        assert!(!second.flipped);
        assert_eq!(second.gap_before, 200);
    }

    #[test]
    fn same_contig_links_ignored() {
        let lens = vec![1000];
        let mut placements = HashMap::new();
        placements.insert(0, place(0, 100, false, 100));
        placements.insert(1, place(0, 700, true, 100));
        let links = vec![MateLink { read1: 0, read2: 1, insert: 700 }];
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 1);
        assert_eq!(scaffolds[0].parts.len(), 1);
    }

    #[test]
    fn unplaced_reads_skipped() {
        let (lens, mut placements, links) = simple_case();
        placements.remove(&3);
        let scaffolds = scaffold(&lens, &placements, &links, &ScaffoldConfig::default());
        assert_eq!(scaffolds.len(), 2, "one remaining link is below min_links");
    }
}
