//! Per-column majority-vote consensus.

use crate::{Contig, Placement};
use pgasm_seq::alphabet::{is_base_code, MASK, SIGMA};
use pgasm_seq::DnaSeq;

/// Build the consensus sequence for one layout. Each placed read votes
/// at every column it covers; masked bases abstain. Columns no read
/// covers (possible after inconsistent-edge rejection) and columns where
/// every vote abstained emit a masked base.
pub fn consensus(reads: &[DnaSeq], placements: &[Placement]) -> Contig {
    let len = placements.iter().map(|p| p.offset + reads[p.read].len()).max().unwrap_or(0);
    let mut votes = vec![[0u32; SIGMA]; len];
    for p in placements {
        let oriented;
        let codes: &[u8] = if p.flipped {
            oriented = reads[p.read].reverse_complement();
            oriented.codes()
        } else {
            reads[p.read].codes()
        };
        for (k, &c) in codes.iter().enumerate() {
            if is_base_code(c) {
                votes[p.offset + k][c as usize] += 1;
            }
        }
    }
    let mut seq = DnaSeq::with_capacity(len);
    for v in votes {
        let (best, count) =
            v.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, &c)| (i as u8, c)).expect("SIGMA > 0");
        seq.push_code(if count == 0 { MASK } else { best });
    }
    Contig { seq, placements: placements.to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_read_consensus_is_the_read() {
        let reads = vec![DnaSeq::from("ACGTACGT")];
        let c = consensus(&reads, &[Placement { read: 0, offset: 0, flipped: false }]);
        assert_eq!(c.seq, reads[0]);
    }

    #[test]
    fn overlapping_reads_merge() {
        let reads = vec![DnaSeq::from("ACGTACGT"), DnaSeq::from("ACGTTTTT")];
        let c = consensus(
            &reads,
            &[
                Placement { read: 0, offset: 0, flipped: false },
                Placement { read: 1, offset: 4, flipped: false },
            ],
        );
        assert_eq!(c.seq.to_ascii(), b"ACGTACGTTTTT");
    }

    #[test]
    fn majority_wins_on_disagreement() {
        // Three reads cover one column; two vote A, one votes C.
        let reads = vec![DnaSeq::from("AAA"), DnaSeq::from("AAA"), DnaSeq::from("ACA")];
        let c = consensus(
            &reads,
            &(0..3).map(|i| Placement { read: i, offset: 0, flipped: false }).collect::<Vec<_>>(),
        );
        assert_eq!(c.seq.to_ascii(), b"AAA");
    }

    #[test]
    fn flipped_read_votes_reverse_complemented() {
        let reads = vec![DnaSeq::from("ACGT"), DnaSeq::from("ACGT")];
        // Read 1 flipped: rc(ACGT) = ACGT, self-complementary — use an
        // asymmetric read instead.
        let reads2 = vec![DnaSeq::from("AACC"), DnaSeq::from("GGTT")];
        // rc(GGTT) = AACC, so both vote identically.
        let c = consensus(
            &reads2,
            &[
                Placement { read: 0, offset: 0, flipped: false },
                Placement { read: 1, offset: 0, flipped: true },
            ],
        );
        assert_eq!(c.seq.to_ascii(), b"AACC");
        drop(reads);
    }

    #[test]
    fn masked_bases_abstain() {
        let mut masked = DnaSeq::from("AAAA");
        masked.mask_range(1, 3);
        let reads = vec![masked, DnaSeq::from("CCCC")];
        let c = consensus(
            &reads,
            &[
                Placement { read: 0, offset: 0, flipped: false },
                Placement { read: 1, offset: 0, flipped: false },
            ],
        );
        // Columns 1–2: only read 1 votes (C); columns 0,3: tie A/C —
        // `max_by_key` keeps the last maximum, so the higher code (C)
        // wins ties deterministically.
        assert_eq!(c.seq.to_ascii(), b"CCCC");
    }

    #[test]
    fn uncovered_column_emits_mask() {
        let reads = vec![DnaSeq::from("AA"), DnaSeq::from("CC")];
        let c = consensus(
            &reads,
            &[
                Placement { read: 0, offset: 0, flipped: false },
                Placement { read: 1, offset: 3, flipped: false },
            ],
        );
        assert_eq!(c.seq.to_ascii(), b"AAXCC");
    }
}
