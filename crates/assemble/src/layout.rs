//! Transitive layout of reads onto contig coordinate systems.
//!
//! Reads are placed greedily by walking accepted overlap edges from the
//! strongest down: an edge either founds a contig, extends one, merges
//! two, or — when its implied placement disagrees with existing
//! placements beyond a tolerance — is rejected as inconsistent (the
//! repeat-induced case the paper defers from clustering to assembly).

use crate::overlap::OverlapEdge;
use crate::{AssemblyConfig, Placement};
use pgasm_seq::DnaSeq;

/// One laid-out group of reads sharing a coordinate system.
#[derive(Debug, Clone)]
pub struct Layout {
    /// Placements with non-negative offsets.
    pub placements: Vec<Placement>,
}

#[derive(Clone, Copy)]
struct Pos {
    group: usize,
    offset: i64,
    flipped: bool,
}

/// Lay out `reads` given accepted `edges` (sorted strongest-first).
/// Returns the layouts and the number of edges rejected as
/// inconsistent.
pub fn layout(reads: &[DnaSeq], edges: &[OverlapEdge], config: &AssemblyConfig) -> (Vec<Layout>, usize) {
    let n = reads.len();
    // Each read starts alone in its own group at offset 0.
    let mut pos: Vec<Pos> = (0..n).map(|i| Pos { group: i, offset: 0, flipped: false }).collect();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut inconsistent = 0usize;
    // Corroboration ledger for large-group merges: group-pair →
    // previously seen implied transforms (flip_change, translation).
    let mut pending: std::collections::HashMap<(usize, usize), Vec<(bool, i64)>> =
        std::collections::HashMap::new();

    for e in edges {
        // Implied placement of j relative to i (in i's group frame).
        let (i, j) = (e.i, e.j);
        let li = reads[i].len() as i64;
        let lj = reads[j].len() as i64;
        let d = e.result.a_range.0 as i64 - e.result.b_range.0 as i64;
        let pi = pos[i];
        // Where would j sit if we adopt i's frame?
        let (j_off, j_flip) =
            if !pi.flipped { (pi.offset + d, e.rc) } else { (pi.offset + li - lj - d, !e.rc) };
        let pj = pos[j];
        if pi.group == pj.group {
            // Already together: check consistency.
            let ok = pj.flipped == j_flip
                && (pj.offset - j_off).unsigned_abs() as usize <= config.offset_tolerance;
            if !ok {
                inconsistent += 1;
            }
            continue;
        }
        // A lone overlap joining two *established* groups is
        // repeat-suspect (it would fold distant regions onto each
        // other); demand a second agreeing edge before committing.
        if config.min_group_evidence > 1
            && members[pi.group].len() > config.evidence_exempt_size
            && members[pj.group].len() > config.evidence_exempt_size
        {
            // The transform this edge implies for j's group, expressed
            // canonically for the (min, max) group-id pair: mirror
            // transforms are self-inverse in the constant, translations
            // negate.
            let flip_change = pj.flipped != j_flip;
            let c = if flip_change { j_off + lj + pj.offset } else { j_off - pj.offset };
            let (key, canon_c) = if pj.group >= pi.group {
                ((pi.group, pj.group), c)
            } else {
                ((pj.group, pi.group), if flip_change { c } else { -c })
            };
            let slot = pending.entry(key).or_default();
            let corroborated = slot.iter().any(|&(f, pc)| {
                f == flip_change && (pc - canon_c).unsigned_abs() as usize <= 2 * config.offset_tolerance
            });
            if !corroborated {
                slot.push((flip_change, canon_c));
                continue;
            }
        }
        // Merge j's group into i's: transform all of j's group so that
        // j lands at (j_off, j_flip).
        let from = pj.group;
        let to = pi.group;
        // Transformation of a position p in j's old frame to the new
        // frame. If flip parity changes, the group mirrors around j.
        let flip_change = pj.flipped != j_flip;
        let moved = std::mem::take(&mut members[from]);
        for &r in &moved {
            let old = pos[r];
            let lr = reads[r].len() as i64;
            let (new_off, new_flip) = if !flip_change {
                (old.offset - pj.offset + j_off, old.flipped)
            } else {
                // Mirror r around j's extent in the old frame.
                let rel_end = (old.offset + lr) - pj.offset; // r's end relative to j's start
                (j_off + lj - rel_end, !old.flipped)
            };
            pos[r] = Pos { group: to, offset: new_off, flipped: new_flip };
        }
        members[to].extend(moved);
    }

    // Emit layouts with offsets normalised to start at 0.
    let mut out = Vec::new();
    for group in members.into_iter().filter(|m| !m.is_empty()) {
        let min = group.iter().map(|&r| pos[r].offset).min().expect("non-empty");
        let mut placements: Vec<Placement> = group
            .into_iter()
            .map(|r| Placement { read: r, offset: (pos[r].offset - min) as usize, flipped: pos[r].flipped })
            .collect();
        placements.sort_by_key(|p| (p.offset, p.read));
        out.push(Layout { placements });
    }
    (out, inconsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::find_overlaps;

    fn genome() -> String {
        // 200 deterministic pseudo-random bases.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        (0..200)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]
            })
            .collect()
    }

    #[test]
    fn chain_of_three_reads_one_layout() {
        let g = genome();
        let reads = vec![DnaSeq::from(&g[0..100]), DnaSeq::from(&g[50..150]), DnaSeq::from(&g[100..200])];
        let cfg = AssemblyConfig::default();
        let edges = find_overlaps(&reads, None, &cfg);
        let (layouts, bad) = layout(&reads, &edges, &cfg);
        assert_eq!(bad, 0);
        assert_eq!(layouts.len(), 1);
        let l = &layouts[0];
        assert_eq!(l.placements.len(), 3);
        assert_eq!(l.placements[0].offset, 0);
        assert_eq!(l.placements[1].offset, 50);
        assert_eq!(l.placements[2].offset, 100);
        assert!(l.placements.iter().all(|p| !p.flipped));
    }

    #[test]
    fn flipped_read_gets_flipped_placement() {
        let g = genome();
        let reads = vec![DnaSeq::from(&g[0..100]), DnaSeq::from(&g[50..150]).reverse_complement()];
        let cfg = AssemblyConfig::default();
        let edges = find_overlaps(&reads, None, &cfg);
        let (layouts, _) = layout(&reads, &edges, &cfg);
        assert_eq!(layouts.len(), 1);
        let l = &layouts[0];
        let p0 = l.placements.iter().find(|p| p.read == 0).unwrap();
        let p1 = l.placements.iter().find(|p| p.read == 1).unwrap();
        assert_ne!(p0.flipped, p1.flipped);
        assert_eq!((p0.offset as i64 - p1.offset as i64).unsigned_abs(), 50);
    }

    #[test]
    fn unconnected_reads_remain_separate() {
        let g = genome();
        let reads = vec![DnaSeq::from(&g[0..80]), DnaSeq::from(&g[120..200])];
        let cfg = AssemblyConfig::default();
        let edges = find_overlaps(&reads, None, &cfg);
        assert!(edges.is_empty());
        let (layouts, _) = layout(&reads, &edges, &cfg);
        assert_eq!(layouts.len(), 2);
    }
}
