//! # pgasm-assemble — serial overlap–layout–consensus assembler
//!
//! The cluster-then-assemble framework runs a conventional serial
//! assembler on each cluster (the paper uses CAP3, "performed with a
//! higher stringency" than clustering). This crate is that stand-in: a
//! greedy OLC assembler small enough to audit yet faithful in behaviour:
//!
//! - [`overlap`] — all candidate pairwise overlaps within a cluster
//!   (w-mer seeded, both orientations, stringent acceptance).
//! - [`layout`] — a transitive layout: reads are placed on contig
//!   coordinates by walking consistent overlap edges; inconsistent
//!   edges (repeat-induced) are rejected, which is exactly what lets the
//!   downstream assembler "detect such discrepancies" the clustering
//!   deferred (§4).
//! - [`consensus`] — per-column majority vote over the placed reads.
//!
//! - [`scaffold`] — contig ordering/orientation from clone-mate links
//!   (§2's scaffolding stage), with gap estimation and link bundling.
//!
//! The paper's quality yardstick (§8: ≈ 1.1 contigs per cluster under
//! stringent assembly) is reproduced by the SEC8 experiment.

pub mod consensus;
pub mod layout;
pub mod overlap;
pub mod scaffold;

use pgasm_align::{AcceptCriteria, Scoring};
use pgasm_seq::{DnaSeq, QualityTrack};
use serde::{Deserialize, Serialize};

/// Assembler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblyConfig {
    /// Alignment scoring.
    pub scoring: Scoring,
    /// Overlap acceptance (defaults to the stringent assembly criteria).
    pub criteria: AcceptCriteria,
    /// w-mer length for candidate seeding within the cluster.
    pub wmer: usize,
    /// Maximum disagreement (bases) between two placements of one read
    /// before the edge is called inconsistent.
    pub offset_tolerance: usize,
    /// Acceptance criteria when per-base qualities are available
    /// (quality-weighted identity separates noisy true overlaps, which
    /// score ≈ 0.99 weighted, from clean repeat-copy overlaps, which
    /// score at their true divergence).
    pub quality_criteria: AcceptCriteria,
    /// Merging two groups that *both* exceed
    /// [`AssemblyConfig::evidence_exempt_size`] reads requires this many
    /// agreeing overlap edges — a lone edge between two established
    /// contigs is repeat-suspect (the folding signature).
    pub min_group_evidence: usize,
    /// Groups at or below this size merge on a single edge.
    pub evidence_exempt_size: usize,
}

impl Default for AssemblyConfig {
    fn default() -> Self {
        AssemblyConfig {
            scoring: Scoring::DEFAULT,
            criteria: AcceptCriteria::ASSEMBLY,
            quality_criteria: AcceptCriteria { min_identity: 0.985, min_overlap: 40 },
            wmer: 12,
            offset_tolerance: 40,
            min_group_evidence: 2,
            evidence_exempt_size: 2,
        }
    }
}

/// One read placed on a contig.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Index of the read within the assembled cluster.
    pub read: usize,
    /// Offset of the read's first (oriented) base on the contig.
    pub offset: usize,
    /// Whether the read is placed reverse-complemented.
    pub flipped: bool,
}

/// An assembled contig.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Contig {
    /// Consensus sequence.
    pub seq: DnaSeq,
    /// The reads it was built from.
    pub placements: Vec<Placement>,
}

/// The result of assembling one cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Assembly {
    /// Contigs with ≥ 2 reads, longest first.
    pub contigs: Vec<Contig>,
    /// Reads that assembled with nothing.
    pub singletons: Vec<usize>,
    /// Overlap edges rejected as geometrically inconsistent.
    pub inconsistent_edges: usize,
}

impl Assembly {
    /// Number of multi-read contigs.
    pub fn num_contigs(&self) -> usize {
        self.contigs.len()
    }

    /// N50 of the contig lengths (0 when there are none).
    pub fn n50(&self) -> usize {
        if self.contigs.is_empty() {
            return 0;
        }
        let mut lens: Vec<usize> = self.contigs.iter().map(|c| c.seq.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0usize;
        for l in lens {
            acc += l;
            if acc * 2 >= total {
                return l;
            }
        }
        0
    }

    /// Total consensus bases.
    pub fn total_bases(&self) -> usize {
        self.contigs.iter().map(|c| c.seq.len()).sum()
    }
}

/// Assemble one cluster of reads.
pub fn assemble(reads: &[DnaSeq], config: &AssemblyConfig) -> Assembly {
    assemble_with_quality(reads, None, config)
}

/// As [`assemble`], using per-read quality tracks for quality-weighted
/// overlap acceptance when available.
pub fn assemble_with_quality(
    reads: &[DnaSeq],
    quals: Option<&[QualityTrack]>,
    config: &AssemblyConfig,
) -> Assembly {
    if let Some(q) = quals {
        assert_eq!(q.len(), reads.len(), "one quality track per read");
    }
    if reads.is_empty() {
        return Assembly::default();
    }
    if reads.len() == 1 {
        return Assembly { contigs: Vec::new(), singletons: vec![0], inconsistent_edges: 0 };
    }
    let edges = overlap::find_overlaps(reads, quals, config);
    let (layouts, inconsistent) = layout::layout(reads, &edges, config);
    let mut contigs = Vec::new();
    let mut singletons = Vec::new();
    for l in layouts {
        if l.placements.len() == 1 {
            singletons.push(l.placements[0].read);
        } else {
            contigs.push(consensus::consensus(reads, &l.placements));
        }
    }
    contigs.sort_by_key(|c| std::cmp::Reverse(c.seq.len()));
    Assembly { contigs, singletons, inconsistent_edges: inconsistent }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Split a genome string into overlapping error-free reads tiling it.
    fn tile(genome: &str, read_len: usize, step: usize) -> Vec<DnaSeq> {
        let g = genome.as_bytes();
        let mut out = Vec::new();
        let mut at = 0;
        while at + read_len <= g.len() {
            out.push(DnaSeq::from_ascii(&g[at..at + read_len]));
            at += step;
        }
        if at < g.len() {
            out.push(DnaSeq::from_ascii(&g[g.len().saturating_sub(read_len)..]));
        }
        out
    }

    fn random_genome(seed: u64, len: usize) -> String {
        // Small deterministic LCG so the test needs no rand dependency.
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s.push(['A', 'C', 'G', 'T'][(x >> 33) as usize % 4]);
        }
        s
    }

    #[test]
    fn perfect_tiling_reconstructs_genome() {
        let genome = random_genome(7, 1200);
        let reads = tile(&genome, 300, 150);
        let cfg = AssemblyConfig { wmer: 12, ..Default::default() };
        let asm = assemble(&reads, &cfg);
        assert_eq!(asm.num_contigs(), 1, "expected a single contig, got {:?}", asm.contigs.len());
        assert!(asm.singletons.is_empty());
        let contig = String::from_utf8(asm.contigs[0].seq.to_ascii()).unwrap();
        assert_eq!(contig, genome, "consensus must equal the genome exactly");
    }

    #[test]
    fn two_islands_two_contigs() {
        let g1 = random_genome(1, 900);
        let g2 = random_genome(2, 900);
        let mut reads = tile(&g1, 300, 150);
        reads.extend(tile(&g2, 300, 150));
        let asm = assemble(&reads, &AssemblyConfig::default());
        assert_eq!(asm.num_contigs(), 2);
        let seqs: Vec<String> =
            asm.contigs.iter().map(|c| String::from_utf8(c.seq.to_ascii()).unwrap()).collect();
        assert!(seqs.contains(&g1));
        assert!(seqs.contains(&g2));
    }

    #[test]
    fn reverse_complement_reads_are_placed() {
        let genome = random_genome(3, 1200);
        let mut reads = tile(&genome, 300, 150);
        // Flip half the reads.
        for (i, r) in reads.iter_mut().enumerate() {
            if i % 2 == 1 {
                *r = r.reverse_complement();
            }
        }
        let asm = assemble(&reads, &AssemblyConfig::default());
        assert_eq!(asm.num_contigs(), 1, "strand mixing broke assembly");
        let contig = String::from_utf8(asm.contigs[0].seq.to_ascii()).unwrap();
        let rc = String::from_utf8(DnaSeq::from(genome.as_str()).reverse_complement().to_ascii()).unwrap();
        assert!(contig == genome || contig == rc);
    }

    #[test]
    fn disjoint_reads_stay_singletons() {
        let reads = vec![
            DnaSeq::from(random_genome(4, 300).as_str()),
            DnaSeq::from(random_genome(5, 300).as_str()),
            DnaSeq::from(random_genome(6, 300).as_str()),
        ];
        let asm = assemble(&reads, &AssemblyConfig::default());
        assert_eq!(asm.num_contigs(), 0);
        assert_eq!(asm.singletons.len(), 3);
    }

    #[test]
    fn empty_and_single_input() {
        assert_eq!(assemble(&[], &AssemblyConfig::default()).num_contigs(), 0);
        let one = assemble(&[DnaSeq::from("ACGTACGT")], &AssemblyConfig::default());
        assert_eq!(one.singletons, vec![0]);
    }

    #[test]
    fn n50_computation() {
        let genome = random_genome(8, 1200);
        let reads = tile(&genome, 300, 150);
        let asm = assemble(&reads, &AssemblyConfig::default());
        assert_eq!(asm.n50(), 1200);
        assert_eq!(asm.total_bases(), 1200);
        assert_eq!(Assembly::default().n50(), 0);
    }
}
