//! Criterion micro-benchmarks of the framework's kernels: alignment,
//! GST construction, pair generation, Union–Find, and the message
//! substrate. These quantify the constants behind the experiment
//! binaries (run those via `cargo run --release -p pgasm-bench --bin …`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pgasm_align::{banded_overlap_align, overlap_align, Scoring};
use pgasm_core::UnionFind;
use pgasm_gst::{GenMode, Gst, GstConfig, PairGenerator};
use pgasm_seq::{DnaSeq, FragmentStore};
use pgasm_simgen::genome::{random_dna, Genome, GenomeSpec};
use pgasm_simgen::sampler::{Sampler, SamplerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn overlapping_reads(n: usize, seed: u64) -> FragmentStore {
    let genome = Genome::generate(
        &GenomeSpec { length: n * 120, repeat_fraction: 0.1, repeat_families: 3, repeat_len: (80, 200), repeat_identity: 0.99, islands: 0, island_len: (1, 2) },
        seed,
    );
    let mut sampler = Sampler::new(&genome, SamplerConfig::clean(), seed + 1);
    sampler.wgs(n).to_store()
}

fn bench_alignment(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let shared = random_dna(&mut rng, 200);
    let mut a = random_dna(&mut rng, 300);
    a.extend_from(&shared);
    let mut b = shared.clone();
    b.extend_from(&random_dna(&mut rng, 300));
    let s = Scoring::DEFAULT;
    let mut group = c.benchmark_group("alignment");
    group.throughput(Throughput::Elements((a.len() * b.len()) as u64));
    group.bench_function("overlap_full_500bp", |bencher| {
        bencher.iter(|| overlap_align(a.codes(), b.codes(), &s))
    });
    group.bench_function("overlap_banded_500bp", |bencher| {
        bencher.iter(|| banded_overlap_align(a.codes(), b.codes(), 300, 24, &s))
    });
    group.finish();
}

fn bench_gst_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("gst_build");
    group.sample_size(10);
    for n in [100usize, 400] {
        let store = overlapping_reads(n, 7).with_reverse_complements();
        group.throughput(Throughput::Bytes(store.total_len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &store, |bencher, store| {
            bencher.iter(|| Gst::build(store, GstConfig { w: 11, psi: 20 }))
        });
    }
    group.finish();
}

fn bench_pair_generation(c: &mut Criterion) {
    let store = overlapping_reads(400, 9).with_reverse_complements();
    let mut group = c.benchmark_group("pair_generation");
    group.sample_size(10);
    for mode in [GenMode::AllMatches, GenMode::DupElim] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{mode:?}")), &mode, |bencher, &mode| {
            bencher.iter(|| {
                let gst = Gst::build(&store, GstConfig { w: 11, psi: 20 });
                PairGenerator::new(gst, mode, |_, _| false).count()
            })
        });
    }
    group.finish();
}

fn bench_unionfind(c: &mut Criterion) {
    c.bench_function("unionfind_100k_unions", |bencher| {
        bencher.iter(|| {
            let mut uf = UnionFind::new(100_000);
            for i in 0..99_999u32 {
                uf.union(i, i + 1);
            }
            uf.num_sets()
        })
    });
}

fn bench_mpisim(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpisim");
    group.sample_size(10);
    group.bench_function("alltoallv_4ranks_64KiB", |bencher| {
        bencher.iter(|| {
            pgasm_mpisim::run(4, |comm| {
                let bufs: Vec<bytes::Bytes> =
                    (0..comm.size()).map(|_| bytes::Bytes::from(vec![0u8; 16 * 1024])).collect();
                comm.all_to_allv(bufs).len()
            })
        })
    });
    group.bench_function("alltoallv_p2p_4ranks_64KiB", |bencher| {
        bencher.iter(|| {
            pgasm_mpisim::run(4, |comm| {
                let bufs: Vec<bytes::Bytes> =
                    (0..comm.size()).map(|_| bytes::Bytes::from(vec![0u8; 16 * 1024])).collect();
                comm.all_to_allv_p2p(bufs).len()
            })
        })
    });
    group.finish();
}

fn bench_serial_clustering(c: &mut Criterion) {
    let store = overlapping_reads(300, 13);
    let params = pgasm_core::ClusterParams::default();
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(store.total_len() as u64));
    group.bench_function("serial_300_reads", |bencher| {
        bencher.iter(|| pgasm_core::cluster_serial(&store, &params))
    });
    group.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(21);
    let genome: Vec<u8> = random_dna(&mut rng, 3_000).to_ascii();
    let mut reads = Vec::new();
    let mut at = 0;
    while at + 400 <= genome.len() {
        reads.push(DnaSeq::from_ascii(&genome[at..at + 400]));
        at += 200;
    }
    let cfg = pgasm_assemble::AssemblyConfig::default();
    let mut group = c.benchmark_group("assembler");
    group.sample_size(20);
    group.bench_function("cluster_of_14_reads", |bencher| {
        bencher.iter(|| pgasm_assemble::assemble(&reads, &cfg))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alignment,
    bench_gst_build,
    bench_pair_generation,
    bench_unionfind,
    bench_mpisim,
    bench_serial_clustering,
    bench_assembler
);
criterion_main!(benches);
