//! Micro-benchmarks of the framework's kernels: alignment, GST
//! construction, pair generation, Union–Find, the message substrate,
//! serial clustering, and the assembler. These quantify the constants
//! behind the experiment binaries (run those via
//! `cargo run --release -p pgasm-bench --bin …`).
//!
//! Self-contained harness (`harness = false`): each kernel runs a
//! fixed iteration count under a telemetry span and reports mean wall
//! and thread-CPU time per iteration; the full run is also written to
//! `BENCH_kernels.json` as a `RunReport`. Run with
//! `cargo bench -p pgasm-bench`.

use pgasm_align::{banded_overlap_align, overlap_align, Scoring};
use pgasm_core::UnionFind;
use pgasm_gst::{GenMode, Gst, GstConfig, PairGenerator};
use pgasm_seq::{DnaSeq, FragmentStore};
use pgasm_simgen::genome::{random_dna, Genome, GenomeSpec};
use pgasm_simgen::sampler::{Sampler, SamplerConfig};
use pgasm_telemetry::{RunContext, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn overlapping_reads(n: usize, seed: u64) -> FragmentStore {
    let genome = Genome::generate(
        &GenomeSpec {
            length: n * 120,
            repeat_fraction: 0.1,
            repeat_families: 3,
            repeat_len: (80, 200),
            repeat_identity: 0.99,
            islands: 0,
            island_len: (1, 2),
        },
        seed,
    );
    let mut sampler = Sampler::new(&genome, SamplerConfig::clean(), seed + 1);
    sampler.wgs(n).to_store()
}

struct Harness {
    ctx: RunContext,
    rows: Vec<(String, u64, f64, f64)>,
}

impl Harness {
    fn new() -> Self {
        Harness { ctx: RunContext::new("kernels"), rows: Vec::new() }
    }

    /// Run `f` once to warm up, then `iters` times under one span;
    /// record mean per-iteration wall and CPU seconds.
    fn bench<T>(&mut self, name: &str, iters: u64, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        self.ctx.push(name);
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let (wall, cpu) = self.ctx.pop();
        self.ctx.add(&format!("{name}_iters"), iters);
        self.rows.push((name.to_string(), iters, wall / iters as f64, cpu / iters as f64));
    }

    fn finish(self) -> RunReport {
        println!("{:<32} {:>6} {:>14} {:>14}", "kernel", "iters", "wall/iter", "cpu/iter");
        for (name, iters, wall, cpu) in &self.rows {
            println!("{name:<32} {iters:>6} {:>12.3}µs {:>12.3}µs", wall * 1e6, cpu * 1e6);
        }
        self.ctx.finish()
    }
}

fn main() {
    let mut h = Harness::new();

    // Alignment: full and banded DP over a planted 200 bp overlap.
    let mut rng = StdRng::seed_from_u64(1);
    let shared = random_dna(&mut rng, 200);
    let mut a = random_dna(&mut rng, 300);
    a.extend_from(&shared);
    let mut b = shared.clone();
    b.extend_from(&random_dna(&mut rng, 300));
    let s = Scoring::DEFAULT;
    h.bench("alignment/overlap_full_500bp", 20, || overlap_align(a.codes(), b.codes(), &s));
    h.bench("alignment/overlap_banded_500bp", 20, || banded_overlap_align(a.codes(), b.codes(), 300, 24, &s));

    // GST construction at two scales.
    for n in [100usize, 400] {
        let store = overlapping_reads(n, 7).with_reverse_complements();
        h.bench(&format!("gst_build/{n}_reads"), 10, || Gst::build(&store, GstConfig { w: 11, psi: 20 }));
    }

    // Pair generation, both modes.
    let store = overlapping_reads(400, 9).with_reverse_complements();
    for mode in [GenMode::AllMatches, GenMode::DupElim] {
        h.bench(&format!("pair_generation/{mode:?}"), 10, || {
            let gst = Gst::build(&store, GstConfig { w: 11, psi: 20 });
            PairGenerator::new(gst, mode, |_, _| false).count()
        });
    }

    // Union–Find chain unions.
    h.bench("unionfind/100k_unions", 10, || {
        let mut uf = UnionFind::new(100_000);
        for i in 0..99_999u32 {
            uf.union(i, i + 1);
        }
        uf.num_sets()
    });

    // Message substrate: all-to-all over 4 simulated ranks.
    h.bench("mpisim/alltoallv_4ranks_64KiB", 10, || {
        pgasm_mpisim::run(4, |comm| {
            let bufs: Vec<bytes::Bytes> =
                (0..comm.size()).map(|_| bytes::Bytes::from(vec![0u8; 16 * 1024])).collect();
            comm.all_to_allv(bufs).len()
        })
    });
    h.bench("mpisim/alltoallv_p2p_4ranks_64KiB", 10, || {
        pgasm_mpisim::run(4, |comm| {
            let bufs: Vec<bytes::Bytes> =
                (0..comm.size()).map(|_| bytes::Bytes::from(vec![0u8; 16 * 1024])).collect();
            comm.all_to_allv_p2p(bufs).len()
        })
    });

    // Serial clustering end to end on a small instance.
    let store = overlapping_reads(300, 13);
    let params = pgasm_core::ClusterParams::default();
    h.bench("clustering/serial_300_reads", 10, || pgasm_core::cluster_serial(&store, &params));

    // Assembler on one mid-sized cluster.
    let mut rng = StdRng::seed_from_u64(21);
    let genome: Vec<u8> = random_dna(&mut rng, 3_000).to_ascii();
    let mut reads = Vec::new();
    let mut at = 0;
    while at + 400 <= genome.len() {
        reads.push(DnaSeq::from_ascii(&genome[at..at + 400]));
        at += 200;
    }
    let cfg = pgasm_assemble::AssemblyConfig::default();
    h.bench("assembler/cluster_of_14_reads", 20, || pgasm_assemble::assemble(&reads, &cfg));

    let report = h.finish();
    let path = std::path::Path::new("BENCH_kernels.json");
    match report.write_json(path) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
