//! SEC91b — clustering validation against the benchmark genome
//! (paper §9.1).
//!
//! The paper BLAST-maps clusters to the published *D. pseudoobscura*
//! assembly: "27,830 out of 28,185 clusters post-masking (98.7%) map to
//! a single benchmark sequence". Here provenance is exact, so we check
//! directly that each cluster's reads merge into one genomic region.

use crate::datasets;
use crate::util::*;
use pgasm_core::cluster_serial;
use pgasm_core::validation::{validate_clusters, ValidationReport};

/// Run the experiment.
pub fn run(scale: f64) -> ValidationReport {
    let prepared = datasets::drosophila((120_000.0 * scale) as usize, 8.8, 33, true);
    let params = datasets::default_params();
    let (report, _run_report) = with_run_report("validation", |ctx| {
        let (clustering, _) = ctx.scope("cluster", |_| cluster_serial(&prepared.store, &params));
        let report = validate_clusters(&clustering, &prepared.origin, &prepared.reads.provenance, 2_000);
        ctx.set("clusters_checked", report.clusters as u64);
        ctx.set("single_region_clusters", report.single_region as u64);
        ctx.set("cross_genome_clusters", report.cross_genome as u64);
        report
    });
    print_table(
        "SEC91b: cluster-to-genome validation (drosophila-like WGS)",
        &["metric", "value", "paper"],
        &[
            vec!["clusters checked".into(), fmt_count(report.clusters as u64), "28,185".into()],
            vec!["single-region clusters".into(), fmt_count(report.single_region as u64), "27,830".into()],
            vec!["specificity".into(), fmt_pct(report.specificity()), "98.7%".into()],
            vec!["cross-genome clusters".into(), fmt_count(report.cross_genome as u64), "—".into()],
        ],
    );
    report
}
