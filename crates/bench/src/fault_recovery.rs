//! ABL9 — leased-task fault recovery: deterministic kills, drops, and
//! delays against a clean clustering run at p = 8.
//!
//! Four arms over the same maize-like store:
//!
//! - *clean*: no fault plan — the reference partition.
//! - *kill*: worker 1 is removed at the midpoint of its own fault
//!   clock (measured by a probe arm whose armed plan never fires),
//!   rounded to an AR-send round entry so it dies holding an
//!   unacknowledged lease the master must recover.
//! - *drop*: worker 1's second result report vanishes on the wire; the
//!   stall timeout declares the silent worker dead and the lease is
//!   re-executed by a survivor.
//! - *delay*: worker 1's second result report is overtaken by three
//!   later deliveries; the lease journal absorbs it exactly once.
//!
//! Every faulty arm must reproduce the clean partition bit-for-bit —
//! that equality, not a speedup, is the artifact under test. The
//! committed-baseline counters are scheduling-invariant facts (kills
//! injected, dead ranks, arms identical); recovered-task counts vary
//! with thread interleaving and are printed but not gated.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_parallel_ft, MasterWorkerConfig, StageRecovery};
use pgasm_mpisim::{FaultPlan, FaultStage, KillTarget};
use pgasm_telemetry::{names, TraceSpec};

/// One measured arm.
#[derive(Debug, Clone)]
pub struct Point {
    /// Arm label (clean / kill / drop / delay).
    pub arm: &'static str,
    /// Ranks the fault plan actually removed.
    pub kills: u64,
    /// Workers the master marked dead (notice or liveness).
    pub dead_ranks: u64,
    /// Leases re-queued and re-executed by survivors.
    pub recovered_tasks: u64,
    /// Partition identical to the clean arm?
    pub identical: bool,
    /// Clustering-phase wall seconds (max over ranks).
    pub seconds: f64,
}

/// Round `mid` down to an AR-send round entry (worker fault clocks are
/// 1 mod 4 there); floor 5 so at least one full round completed first.
fn ar_send_event_near(mid: u64) -> u64 {
    (mid.saturating_sub(mid % 4) + 1).max(5)
}

/// Run the ablation at p = 8. Asserts every faulty arm reproduces the
/// clean partition and that the kill and drop arms each cost exactly
/// one dead rank with recovered leases.
pub fn run(scale: f64) -> Vec<Point> {
    let prepared = datasets::maize((300_000.0 * scale) as usize, 163);
    let params = datasets::default_params();
    let config = MasterWorkerConfig { batch: 64, pending_cap: 4096, coalesce: None };
    let p = 8;
    let (points, _run_report) = with_run_report("ablation_fault_recovery", |ctx| {
        let clean = ctx.scope("p8_clean", |_| {
            cluster_parallel_ft(
                &prepared.store,
                p,
                &params,
                &config,
                TraceSpec::off(),
                &StageRecovery::default(),
            )
        });

        // Probe: armed but never-firing plan, so each rank's fault
        // clock depth lands in the per-rank counters.
        let probe_recovery = StageRecovery {
            faults: FaultPlan::default().with_kill(KillTarget::Rank(0), u64::MAX, FaultStage::Any),
            ..StageRecovery::default()
        };
        let probe =
            cluster_parallel_ft(&prepared.store, p, &params, &config, TraceSpec::off(), &probe_recovery);
        let depth = probe.ranks[1].counter(names::FAULT_EVENTS);
        let kill_at = ar_send_event_near(depth / 2);

        let arms: [(&'static str, StageRecovery); 3] = [
            (
                "kill",
                StageRecovery {
                    faults: FaultPlan::default().with_kill(KillTarget::Rank(1), kill_at, FaultStage::Any),
                    ..StageRecovery::default()
                },
            ),
            (
                "drop",
                StageRecovery {
                    faults: FaultPlan::default().with_drop(1, 0, 1, 2, FaultStage::Any),
                    stall_timeout: Some(50_000),
                    ..StageRecovery::default()
                },
            ),
            (
                "delay",
                StageRecovery {
                    faults: FaultPlan::default().with_delay(1, 0, 1, 2, 3, FaultStage::Any),
                    ..StageRecovery::default()
                },
            ),
        ];

        let mut points = vec![Point {
            arm: "clean",
            kills: 0,
            dead_ranks: 0,
            recovered_tasks: 0,
            identical: true,
            seconds: clean.cluster_seconds,
        }];
        for (arm, recovery) in arms {
            let report = ctx.scope(&format!("p8_{arm}"), |_| {
                cluster_parallel_ft(&prepared.store, p, &params, &config, TraceSpec::off(), &recovery)
            });
            assert!(!report.killed, "a worker fault must never take the master down ({arm})");
            let kills = report.ranks.iter().map(|r| r.counter(names::FAULT_KILLS)).sum();
            let identical = report.clustering == clean.clustering;
            assert!(identical, "{arm} arm changed the partition");
            points.push(Point {
                arm,
                kills,
                dead_ranks: report.dead_ranks,
                recovered_tasks: report.recovered_tasks,
                identical,
                seconds: report.cluster_seconds,
            });
        }

        // Baseline counters: scheduling-invariant facts only. Recovered
        // lease counts depend on how many batches were in flight at the
        // fault, so they are reported above but kept out of the gate.
        let by_arm = |arm: &str| points.iter().find(|q| q.arm == arm).unwrap();
        ctx.set("p8_kill_kills", by_arm("kill").kills);
        ctx.set("p8_kill_dead_ranks", by_arm("kill").dead_ranks);
        ctx.set("p8_kill_recovered_nonzero", u64::from(by_arm("kill").recovered_tasks > 0));
        ctx.set("p8_drop_dead_ranks", by_arm("drop").dead_ranks);
        ctx.set("p8_drop_recovered_nonzero", u64::from(by_arm("drop").recovered_tasks > 0));
        ctx.set("p8_delay_dead_ranks", by_arm("delay").dead_ranks);
        ctx.set("arms_identical", points.iter().filter(|q| q.identical).count() as u64);
        points
    });

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.arm.to_string(),
                pt.kills.to_string(),
                pt.dead_ranks.to_string(),
                fmt_count(pt.recovered_tasks),
                if pt.identical { "yes" } else { "NO" }.into(),
                fmt_secs(pt.seconds),
            ]
        })
        .collect();
    print_table(
        "ABL9: leased-task fault recovery at p = 8 (partition identical in every arm)",
        &["arm", "kills", "dead ranks", "recovered leases", "identical", "cluster wall"],
        &rows,
    );
    println!("note: recovery is free of coordination with the dead rank — the lease journal");
    println!("      re-queues its outstanding batches and survivors absorb regenerated duplicates");

    let kill = points.iter().find(|q| q.arm == "kill").unwrap();
    assert_eq!(kill.kills, 1, "the kill arm must remove exactly one worker");
    assert_eq!(kill.dead_ranks, 1);
    assert!(kill.recovered_tasks > 0, "the victim died holding a lease; someone must redo it");
    let drop = points.iter().find(|q| q.arm == "drop").unwrap();
    assert_eq!(drop.kills, 0, "drop arm: nobody is actually killed");
    assert_eq!(drop.dead_ranks, 1, "drop arm: liveness must declare the silent worker dead");
    assert!(drop.recovered_tasks > 0);
    let delay = points.iter().find(|q| q.arm == "delay").unwrap();
    assert_eq!(delay.dead_ranks, 0, "delay arm: a late report is not a death");
    points
}
