//! ABL5 — sender-side protocol-message coalescing on/off.
//!
//! The §7 protocol sends four fine-grained messages per worker round
//! (AR + NP up, R + AW down), so the α latency term dominates its wire
//! cost — the regime message aggregation targets (HipMer-style bulk
//! exchanges). This ablation runs the clustering phase with the
//! coalescing layer on and off at several rank counts and prices both
//! arms with the α–β model's per-tag histograms. Three views of the
//! traffic:
//!
//! - *protocol wire messages*: sends bearing a w2m/m2w tag — the bare
//!   fine-grained messages. Coalescing collapses these to the handful
//!   of singletons (termination grants) not worth enveloping.
//! - *total wire transfers*: protocol messages plus envelopes — what
//!   actually pays α. Two envelopes replace four messages per round.
//! - *delivered messages*: protocol messages received after envelope
//!   splitting — the protocol itself is unchanged.
//!
//! Clustering output must be identical in both arms.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_parallel, MasterWorkerConfig};
use pgasm_mpisim::CoalescePolicy;
use pgasm_telemetry::{names, RankReport};

fn is_protocol(label: &str) -> bool {
    label.starts_with("w2m") || label.starts_with("m2w")
}

/// Bare protocol messages this rank put on the wire.
fn proto_wire_msgs(r: &RankReport) -> u64 {
    r.comm.iter().filter(|t| is_protocol(&t.label)).map(|t| t.msgs_sent).sum()
}

/// Everything this rank put on the wire for the protocol: bare
/// messages plus coalesced envelopes.
fn total_wire_msgs(r: &RankReport) -> u64 {
    r.comm
        .iter()
        .filter(|t| is_protocol(&t.label) || t.label == names::TAG_COALESCED)
        .map(|t| t.msgs_sent)
        .sum()
}

/// Protocol messages delivered to this rank (post-split).
fn delivered_msgs(r: &RankReport) -> u64 {
    r.comm.iter().filter(|t| is_protocol(&t.label)).map(|t| t.msgs_recv).sum()
}

/// Modelled α–β seconds for this rank's protocol + envelope sends
/// (priced on the sender, so summing over ranks counts each transfer
/// once).
fn wire_seconds(r: &RankReport) -> f64 {
    r.comm
        .iter()
        .filter(|t| is_protocol(&t.label) || t.label == names::TAG_COALESCED)
        .map(|t| t.modelled_seconds)
        .sum()
}

/// One measured arm.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Total ranks (master + workers).
    pub p: usize,
    /// Coalescing enabled?
    pub coalesced: bool,
    /// Bare w2m/m2w messages that crossed a channel, summed over ranks.
    pub proto_wire_msgs: u64,
    /// All wire transfers for the protocol (incl. envelopes).
    pub total_wire_msgs: u64,
    /// Protocol messages delivered (post-split), summed over ranks.
    pub delivered_msgs: u64,
    /// Envelopes shipped (0 when off).
    pub envelopes: u64,
    /// Modelled α–β seconds for the protocol traffic (each transfer
    /// priced once).
    pub comm_seconds: f64,
}

/// Run the ablation. Asserts identical clustering across arms and, at
/// p = 8, the ≥ 2× protocol-wire-message reduction with modelled comm
/// seconds reduced accordingly.
pub fn run(scale: f64) -> Vec<Point> {
    let prepared = datasets::maize((300_000.0 * scale) as usize, 161);
    let params = datasets::default_params();
    let (points, _run_report) = with_run_report("ablation_coalescing", |ctx| {
        let mut points = Vec::new();
        for &p in &[4usize, 8, 16] {
            let mut clusterings = Vec::new();
            for on in [false, true] {
                let cfg = MasterWorkerConfig {
                    batch: 64,
                    pending_cap: 4096,
                    coalesce: on.then(CoalescePolicy::default),
                };
                let arm = format!("p{p}_{}", if on { "on" } else { "off" });
                let report = ctx.scope(&arm, |_| cluster_parallel(&prepared.store, p, &params, &cfg));
                let point = Point {
                    p,
                    coalesced: on,
                    proto_wire_msgs: report.ranks.iter().map(proto_wire_msgs).sum(),
                    total_wire_msgs: report.ranks.iter().map(total_wire_msgs).sum(),
                    delivered_msgs: report.ranks.iter().map(delivered_msgs).sum(),
                    envelopes: report.ranks.iter().map(|r| r.counter(names::ENVELOPES_SENT)).sum(),
                    comm_seconds: report.ranks.iter().map(wire_seconds).sum(),
                };
                ctx.set(&format!("{arm}_proto_wire_msgs"), point.proto_wire_msgs);
                ctx.set(&format!("{arm}_total_wire_msgs"), point.total_wire_msgs);
                ctx.set(&format!("{arm}_envelopes"), point.envelopes);
                ctx.set(&format!("{arm}_modelled_comm_us"), (point.comm_seconds * 1e6) as u64);
                points.push(point);
                clusterings.push(report.clustering);
            }
            assert_eq!(clusterings[0], clusterings[1], "coalescing must not change the clustering (p = {p})");
        }
        points
    });
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            let base =
                points.iter().find(|q| q.p == pt.p && !q.coalesced).expect("uncoalesced baseline exists");
            vec![
                pt.p.to_string(),
                if pt.coalesced { "on" } else { "off" }.into(),
                fmt_count(pt.proto_wire_msgs),
                fmt_count(pt.total_wire_msgs),
                format!("{:.2}x", base.total_wire_msgs as f64 / pt.total_wire_msgs.max(1) as f64),
                fmt_count(pt.envelopes),
                fmt_secs(pt.comm_seconds),
            ]
        })
        .collect();
    print_table(
        "ABL5: protocol-message coalescing (modelled BG/L comm; clustering identical in both arms)",
        &["p", "coalescing", "bare proto msgs", "wire transfers", "reduction", "envelopes", "comm (a-b)"],
        &rows,
    );
    println!("note: four fine-grained protocol messages per round fold into two envelopes, so the");
    println!("      latency-dominated wire cost roughly halves while delivered messages are unchanged");

    // The tentpole's acceptance bar at p = 8.
    let off8 = points.iter().find(|q| q.p == 8 && !q.coalesced).unwrap();
    let on8 = points.iter().find(|q| q.p == 8 && q.coalesced).unwrap();
    assert!(
        off8.proto_wire_msgs as f64 >= 2.0 * on8.proto_wire_msgs.max(1) as f64,
        "coalescing must cut bare protocol wire messages >= 2x at p = 8: {} -> {}",
        off8.proto_wire_msgs,
        on8.proto_wire_msgs
    );
    assert!(
        on8.total_wire_msgs < off8.total_wire_msgs,
        "coalescing must reduce total wire transfers at p = 8: {} -> {}",
        off8.total_wire_msgs,
        on8.total_wire_msgs
    );
    assert!(
        on8.comm_seconds < off8.comm_seconds,
        "coalescing must reduce modelled comm seconds at p = 8: {} -> {}",
        off8.comm_seconds,
        on8.comm_seconds
    );
    points
}
