//! FIG5 — parallel GST construction run-times (paper Fig. 5).
//!
//! The paper builds the GST for 250M/500M bp maize inputs on 256–1024
//! BlueGene/L processors and plots the communication/computation
//! breakdown, both scaling roughly linearly with input size and
//! inversely with processor count. We run two inputs in the same 1:2
//! ratio on 1–8 simulated ranks, measure per-rank compute in thread-CPU
//! time, and model communication with the BlueGene/L α–β model.

use crate::datasets;
use crate::util::*;
use pgasm_core::parallel_gst::build_distributed_gst;
use pgasm_gst::GstConfig;
use pgasm_mpisim::CostModel;
use pgasm_telemetry::Span;

/// One measured point of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Input size label (preprocessed bp).
    pub input_bp: usize,
    /// Ranks.
    pub p: usize,
    /// Max per-rank compute seconds (thread CPU).
    pub compute: f64,
    /// Max per-rank modelled communication seconds (BG/L model).
    pub comm: f64,
}

fn point_span(input_bp: usize, p: usize) -> String {
    format!("{input_bp}bp_p{p}")
}

/// Run the experiment; returns the measured series.
pub fn run(scale: f64) -> Vec<Point> {
    let model = CostModel::BLUEGENE_L;
    let config = GstConfig { w: 11, psi: 20 };
    let sizes = [(250_000.0 * scale) as usize, (500_000.0 * scale) as usize];
    let ps = [1usize, 2, 4, 8];
    let (points, run_report) = with_run_report("fig5", |ctx| {
        let mut points = Vec::new();
        for (i, &raw_bp) in sizes.iter().enumerate() {
            let prepared = datasets::maize(raw_bp, 42 + i as u64);
            let ds = prepared.store.with_reverse_complements();
            let input_bp = prepared.total_bp();
            for &p in &ps {
                let report = build_distributed_gst(&ds, p, config);
                let compute = report.max_compute_seconds();
                let comm = report.max_modelled_comm_seconds(&model);
                // Both components are measured from rank-local clocks
                // (thread CPU + modelled α–β traffic), so the span is
                // recorded rather than wrapped around host wall time.
                ctx.record_span(Span {
                    name: point_span(input_bp, p),
                    wall_seconds: compute + comm,
                    cpu_seconds: compute,
                    children: vec![
                        Span {
                            name: "compute".into(),
                            wall_seconds: compute,
                            cpu_seconds: compute,
                            children: vec![],
                        },
                        Span {
                            name: "comm_modelled".into(),
                            wall_seconds: comm,
                            cpu_seconds: 0.0,
                            children: vec![],
                        },
                    ],
                });
                points.push(Point { input_bp, p, compute, comm });
            }
        }
        points
    });
    // Table rows read back off the folded run report's spans.
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            let root = point_span(pt.input_bp, pt.p);
            let compute = run_report.wall(&format!("{root}/compute"));
            let comm = run_report.wall(&format!("{root}/comm_modelled"));
            vec![
                fmt_mbp(pt.input_bp),
                pt.p.to_string(),
                fmt_secs(compute),
                fmt_secs(comm),
                fmt_secs(run_report.wall(&root)),
            ]
        })
        .collect();
    print_table(
        "FIG5: parallel GST construction (measured compute + modelled BG/L communication)",
        &["input", "ranks", "computation", "communication", "total"],
        &rows,
    );
    // The figure's headline property: time shrinks with p for a fixed
    // input and grows with input size for fixed p.
    println!("note: paper shows linear scaling with both processor and input size (Fig. 5a/5b)");
    points
}
