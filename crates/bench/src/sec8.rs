//! SEC8 — the maize assembly statistics quoted in §8 of the paper.
//!
//! Paper, for 1,607,364 preprocessed fragments: 149,548 non-singleton
//! clusters, 244,727 singletons, mean 9.00 fragments per cluster,
//! largest cluster 86,369 fragments (5.37% of input), and — after
//! running CAP3 per cluster at higher stringency — an average of 1.1
//! contigs per cluster (high clustering specificity).

use crate::datasets;
use crate::util::*;
use pgasm_assemble::AssemblyConfig;
use pgasm_core::cluster_serial;
use pgasm_core::pipeline::assemble_clusters;
use pgasm_core::validation::validate_clusters;
use pgasm_telemetry::names;

/// Experiment outcome.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    /// Fragments clustered.
    pub fragments: usize,
    /// Non-singleton clusters.
    pub clusters: usize,
    /// Singletons.
    pub singletons: usize,
    /// Mean fragments per non-singleton cluster.
    pub mean_size: f64,
    /// Largest cluster fraction of input.
    pub max_fraction: f64,
    /// Mean contigs per assembled cluster.
    pub contigs_per_cluster: f64,
    /// Ground-truth single-region specificity.
    pub specificity: f64,
}

/// Run the experiment.
pub fn run(scale: f64) -> Outcome {
    let prepared = datasets::maize((500_000.0 * scale) as usize, 88);
    let params = datasets::default_params();
    let (outcome, _run_report) = with_run_report("sec8", |ctx| {
        let (clustering, _stats) = ctx.scope("cluster", |_| cluster_serial(&prepared.store, &params));
        let assemblies = ctx.scope("assemble", |_| {
            assemble_clusters(&prepared.store, &clustering, &AssemblyConfig::default(), 2)
        });
        let contigs_per_cluster = if assemblies.is_empty() {
            0.0
        } else {
            assemblies.iter().map(|a| (a.num_contigs() + a.singletons.len()).max(1)).sum::<usize>() as f64
                / assemblies.len() as f64
        };
        let validation = validate_clusters(&clustering, &prepared.origin, &prepared.reads.provenance, 2_000);
        ctx.set(names::FRAGMENTS, prepared.store.num_fragments() as u64);
        ctx.set(names::NON_SINGLETON_CLUSTERS, clustering.num_non_singletons() as u64);
        ctx.set("singletons", clustering.num_singletons() as u64);
        ctx.set(names::CONTIGS, assemblies.iter().map(|a| a.num_contigs() as u64).sum());
        Outcome {
            fragments: prepared.store.num_fragments(),
            clusters: clustering.num_non_singletons(),
            singletons: clustering.num_singletons(),
            mean_size: clustering.mean_cluster_size(),
            max_fraction: clustering.max_cluster_fraction(),
            contigs_per_cluster,
            specificity: validation.specificity(),
        }
    });
    print_table(
        "SEC8: maize-like cluster-then-assemble summary",
        &["metric", "value", "paper"],
        &[
            vec!["fragments clustered".into(), fmt_count(outcome.fragments as u64), "1,607,364".into()],
            vec!["non-singleton clusters".into(), fmt_count(outcome.clusters as u64), "149,548".into()],
            vec!["singletons".into(), fmt_count(outcome.singletons as u64), "244,727".into()],
            vec!["mean fragments/cluster".into(), format!("{:.2}", outcome.mean_size), "9.00".into()],
            vec!["largest cluster (% input)".into(), fmt_pct(outcome.max_fraction), "5.37%".into()],
            vec!["contigs per cluster".into(), format!("{:.2}", outcome.contigs_per_cluster), "1.1".into()],
            vec!["single-region specificity".into(), fmt_pct(outcome.specificity), "—".into()],
        ],
    );
    outcome
}
