//! Ablations of the design decisions DESIGN.md calls out.

use crate::datasets;
use crate::util::*;
use pgasm_align::wmer::WmerTable;
use pgasm_core::clustering::{canonical_skip, same_fragment_skip, PairDecider};
use pgasm_core::{cluster_serial, UnionFind};
use pgasm_gst::{GenMode, Gst, PairGenerator, PromisingPair};
use pgasm_telemetry::names;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// SEC91a — repeat masking on/off (paper §9.1).
///
/// Paper: without masking, Drosophila clustering took 24 h instead of
/// 3.1 h (pairwise alignments forced by repeats) and "almost 50% of the
/// fragments were combined into one large cluster"; with masking the
/// largest cluster holds 6.76%.
pub fn masking(scale: f64) -> [(bool, f64, u64, u64, f64); 2] {
    let params = datasets::default_params();
    let (mut out, run_report) = with_run_report("ablation_masking", |ctx| {
        let mut out = [(false, 0.0, 0, 0, 0.0); 2];
        for (slot, mask) in [true, false].into_iter().enumerate() {
            let prepared = datasets::drosophila((80_000.0 * scale) as usize, 6.0, 21, mask);
            let arm = if mask { "masked" } else { "unmasked" };
            let (clustering, stats) = ctx.scope(arm, |_| cluster_serial(&prepared.store, &params));
            out[slot] = (mask, clustering.max_cluster_fraction(), stats.generated, stats.aligned, 0.0);
        }
        out
    });
    // Arm timings come from the folded run report's spans.
    for (mask, _, _, _, secs) in out.iter_mut() {
        *secs = run_report.wall(if *mask { "masked" } else { "unmasked" });
    }
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(mask, frac, generated, aligned, secs)| {
            vec![
                if *mask { "masked" } else { "unmasked" }.into(),
                fmt_pct(*frac),
                fmt_count(*generated),
                fmt_count(*aligned),
                fmt_secs(*secs),
            ]
        })
        .collect();
    print_table(
        "SEC91a: repeat-masking ablation (drosophila-like)",
        &["repeats", "largest cluster", "pairs generated", "pairs aligned", "time"],
        &rows,
    );
    println!("note: paper: largest cluster 6.76% masked vs ~50% unmasked; runtime 3.1 h vs 24 h");
    out
}

/// ABL1 — pair-ordering heuristic (paper §4).
///
/// The decreasing-maximal-match order front-loads likely merges, so
/// later pairs are skipped by the cluster check. Aligning the same pair
/// stream in reverse or shuffled order must give the *same clustering*
/// while computing more alignments.
pub fn ordering(scale: f64) -> [(String, u64); 3] {
    // Deep uniform coverage maximises pair redundancy per island, which
    // is where processing order matters most.
    let prepared = datasets::drosophila((60_000.0 * scale) as usize, 8.8, 55, true);
    let params = datasets::default_params();
    let ds = prepared.store.with_reverse_complements();
    let n = prepared.store.num_fragments();
    // Materialise the full pair stream once (sorted order).
    let gst = Gst::build(&ds, params.gst);
    let pairs: Vec<PromisingPair> =
        PairGenerator::new(gst, params.mode, |a, b| same_fragment_skip(a, b) || canonical_skip(a, b))
            .collect();
    let decider = PairDecider { store: &ds, params };
    let run_order = |pairs: &[PromisingPair]| -> (u64, Vec<Vec<u32>>) {
        let mut uf = UnionFind::new(n);
        let mut scratch = decider.new_scratch();
        let mut aligned = 0u64;
        for p in pairs {
            let (fa, fb) = decider.fragments_of(p);
            if uf.same(fa.0, fb.0) {
                continue;
            }
            aligned += 1;
            let r = decider.align_full(p, &mut scratch);
            if params.criteria.accepts(r.identity, r.overlap_len) {
                uf.union(fa.0, fb.0);
            }
        }
        (aligned, uf.sets())
    };
    let (out, _run_report) = with_run_report("ablation_ordering", |ctx| {
        let (sorted_aligned, sorted_sets) = ctx.scope("sorted", |_| run_order(&pairs));
        let mut reversed: Vec<PromisingPair> = pairs.iter().rev().copied().collect();
        let (reversed_aligned, reversed_sets) = ctx.scope("reversed", |_| run_order(&reversed));
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        reversed.shuffle(&mut rng);
        let (shuffled_aligned, shuffled_sets) = ctx.scope("shuffled", |_| run_order(&reversed));
        assert_eq!(sorted_sets, reversed_sets, "ordering must not change the clustering");
        assert_eq!(sorted_sets, shuffled_sets, "ordering must not change the clustering");
        ctx.set(names::PAIRS_GENERATED, pairs.len() as u64);
        ctx.set("aligned_sorted", sorted_aligned);
        ctx.set("aligned_reversed", reversed_aligned);
        ctx.set("aligned_shuffled", shuffled_aligned);
        [
            ("decreasing match length (paper)".to_string(), sorted_aligned),
            ("reversed".to_string(), reversed_aligned),
            ("shuffled".to_string(), shuffled_aligned),
        ]
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(name, aligned)| {
            vec![
                name.clone(),
                fmt_count(*aligned),
                fmt_count(pairs.len() as u64),
                fmt_pct(1.0 - *aligned as f64 / pairs.len().max(1) as f64),
            ]
        })
        .collect();
    print_table(
        "ABL1: pair-ordering heuristic (identical final clustering in all orders)",
        &["order", "aligned", "generated", "savings"],
        &rows,
    );
    out
}

/// ABL2 — duplicate elimination (paper §5).
///
/// Without duplicate elimination every maximal-match occurrence of a
/// pair is generated; with it, a pair is generated at most once per
/// node.
pub fn dup_elim(scale: f64) -> [(GenMode, u64); 2] {
    // Duplicate elimination pays off when one fragment holds several
    // *identical* copies of a region shared with another fragment (the
    // cross-product at that GST node then multiplies occurrences).
    // Build exactly that workload: an unmasked genome with exact
    // (identity 1.0) high-copy repeats, error-free reads.
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    let genome = Genome::generate(
        &GenomeSpec {
            length: (40_000.0 * scale) as usize,
            repeat_fraction: 0.5,
            repeat_families: 2,
            repeat_len: (60, 120),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        56,
    );
    let mut sampler = Sampler::new(&genome, SamplerConfig::clean(), 57);
    let store = sampler.wgs((genome.len() as f64 * 4.0 / 450.0) as usize).to_store();
    let params = datasets::default_params();
    let ds = store.with_reverse_complements();
    let (out, _run_report) = with_run_report("ablation_dupelim", |ctx| {
        let mut out = [(GenMode::AllMatches, 0u64); 2];
        for (slot, mode) in [GenMode::AllMatches, GenMode::DupElim].into_iter().enumerate() {
            let count = ctx.scope(&format!("{mode:?}"), |_| {
                let gst = Gst::build(&ds, params.gst);
                PairGenerator::new(gst, mode, |a, b| same_fragment_skip(a, b) || canonical_skip(a, b)).count()
            });
            ctx.set(&format!("pairs_{mode:?}"), count as u64);
            out[slot] = (mode, count as u64);
        }
        out
    });
    let rows: Vec<Vec<String>> =
        out.iter().map(|(mode, count)| vec![format!("{mode:?}"), fmt_count(*count)]).collect();
    print_table("ABL2: duplicate elimination in pair generation", &["mode", "pairs generated"], &rows);
    out
}

/// ABL4 — §10 extension: geometric resolution of inconsistent overlaps.
///
/// Compares base clustering against the geometry-checked engine on
/// unmasked repeat-bearing data: the resolved clustering should have an
/// equal-or-smaller largest cluster at the cost of aligning every
/// generated pair (the savings heuristic is incompatible with conflict
/// detection).
pub fn resolution(scale: f64) -> [(String, f64, u64, u64); 2] {
    // Exact (identity 1.0) repeat copies produce overlaps that *pass*
    // the identity test yet imply contradictory placements — the case
    // geometric resolution exists for.
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    let genome = Genome::generate(
        &GenomeSpec {
            length: (60_000.0 * scale) as usize,
            repeat_fraction: 0.35,
            repeat_families: 2,
            repeat_len: (250, 450),
            repeat_identity: 1.0,
            islands: 0,
            island_len: (1, 2),
        },
        77,
    );
    let mut sampler = Sampler::new(&genome, SamplerConfig::clean(), 78);
    let store = sampler.wgs((genome.len() as f64 * 5.0 / 450.0) as usize).to_store();
    struct P {
        store: pgasm_seq::FragmentStore,
    }
    let prepared = P { store };
    let base = datasets::default_params();
    let resolved = pgasm_core::ClusterParams { resolve_inconsistent: true, ..base };
    let (out, _run_report) = with_run_report("ablation_resolution", |ctx| {
        let mut out: [(String, f64, u64, u64); 2] = std::array::from_fn(|_| (String::new(), 0.0, 0, 0));
        for (slot, (name, span, params)) in
            [("baseline (paper)", "baseline", base), ("geometric resolution (§10)", "geometric", resolved)]
                .into_iter()
                .enumerate()
        {
            let (clustering, stats) = ctx.scope(span, |_| cluster_serial(&prepared.store, &params));
            ctx.set(&format!("{span}_aligned"), stats.aligned);
            ctx.set(&format!("{span}_inconsistent"), stats.inconsistent);
            out[slot] =
                (name.to_string(), clustering.max_cluster_fraction(), stats.aligned, stats.inconsistent);
        }
        out
    });
    let rows: Vec<Vec<String>> = out
        .iter()
        .map(|(name, frac, aligned, inconsistent)| {
            vec![name.clone(), fmt_pct(*frac), fmt_count(*aligned), fmt_count(*inconsistent)]
        })
        .collect();
    print_table(
        "ABL4: geometric inconsistent-overlap resolution (exact-repeat WGS, unmasked)",
        &["engine", "largest cluster", "pairs aligned", "edges dropped"],
        &rows,
    );
    println!("note: resolution detects and drops contradictory repeat overlaps; a cluster chained by a");
    println!("      single geometrically consistent bridge stays joined (single-linkage limit) — the");
    println!("      assembler's layout stage then rejects the bridge downstream, as in the paper's §4");
    assert!(out[1].1 <= out[0].1 + 1e-9, "resolution must not grow the largest cluster");
    out
}

/// ABL3 — maximal-match filter vs the fixed-w lookup-table baseline
/// (paper §2 vs §4).
///
/// A long exact match of length l appears as l − w + 1 separate w-mer
/// hits in the classical filter; the maximal-match generator emits it
/// once per distinct maximal match.
pub fn filter(scale: f64) -> (u64, u64, u64) {
    let prepared = datasets::maize((150_000.0 * scale) as usize, 57);
    let params = datasets::default_params();
    let ds = prepared.store.with_reverse_complements();
    let w = params.gst.w;
    // Baseline: w-mer lookup table over the same double-stranded store.
    let table = WmerTable::build(&ds, w);
    let skip = |a: pgasm_seq::SeqId, b: pgasm_seq::SeqId| {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        same_fragment_skip(lo, hi) || canonical_skip(lo, hi)
    };
    let ((wstats, ours), _run_report) = with_run_report("ablation_filter", |ctx| {
        let wstats = ctx.scope("wmer_table", |_| table.count_pairs(skip));
        let ours = ctx.scope("maximal_matches", |_| {
            let gst = Gst::build(&ds, params.gst);
            PairGenerator::new(gst, GenMode::DupElim, |a, b| same_fragment_skip(a, b) || canonical_skip(a, b))
                .count() as u64
        });
        ctx.set("wmer_pair_generations", wstats.pair_generations);
        ctx.set("wmer_distinct_pairs", wstats.distinct_pairs);
        ctx.set("maximal_match_pairs", ours);
        (wstats, ours)
    });
    print_table(
        "ABL3: candidate-pair filters (same w)",
        &["filter", "pair generations", "distinct pairs"],
        &[
            vec![
                format!("w-mer lookup table (w={w})"),
                fmt_count(wstats.pair_generations),
                fmt_count(wstats.distinct_pairs),
            ],
            vec![format!("maximal matches (psi={})", params.gst.psi), fmt_count(ours), "—".into()],
        ],
    );
    println!("note: the lookup table regenerates a length-l match l-w+1 times; psi additionally prunes short matches");
    (wstats.pair_generations, wstats.distinct_pairs, ours)
}
