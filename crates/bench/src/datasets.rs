//! Prepared (generated + preprocessed) datasets shared by experiments.

use pgasm_core::ClusterParams;
use pgasm_gst::{GenMode, GstConfig};
use pgasm_preprocess::{PreprocessConfig, PreprocessStats, Preprocessor, StatRepeatConfig};
use pgasm_seq::{DnaSeq, FragmentStore};
use pgasm_simgen::presets;
use pgasm_simgen::vector::VECTOR_SEQ;
use pgasm_simgen::{Genome, ReadSet};

/// A dataset after generation and preprocessing, ready for clustering.
pub struct Prepared {
    /// Human-readable name.
    pub name: String,
    /// Raw reads (pre-trim), for Table-2 style accounting.
    pub reads: ReadSet,
    /// Preprocessed (trimmed + masked) surviving fragments.
    pub store: FragmentStore,
    /// Fragment → original read index.
    pub origin: Vec<usize>,
    /// Source genomes (ground truth).
    pub genomes: Vec<Genome>,
    /// Preprocessing accounting.
    pub pp_stats: Option<PreprocessStats>,
}

impl Prepared {
    /// Total preprocessed bases.
    pub fn total_bp(&self) -> usize {
        self.store.total_len()
    }
}

/// The clustering parameters every experiment uses unless it is
/// explicitly ablating one of them: the paper's w = 11 bucketing, a
/// ψ = 20 promising-pair cutoff, duplicate elimination on, lenient
/// clustering acceptance.
pub fn default_params() -> ClusterParams {
    ClusterParams { gst: GstConfig { w: 11, psi: 20 }, mode: GenMode::DupElim, ..ClusterParams::default() }
}

fn preprocess(name: &str, reads: ReadSet, genomes: Vec<Genome>, stat: bool) -> Prepared {
    let known: Vec<DnaSeq> = genomes.iter().flat_map(|g| g.repeat_library.iter().cloned()).collect();
    let config = PreprocessConfig {
        stat_repeats: if stat { Some(StatRepeatConfig::default()) } else { None },
        ..PreprocessConfig::default()
    };
    let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &known);
    let out = pp.run(&reads);
    Prepared {
        name: name.to_string(),
        reads,
        store: out.store,
        origin: out.origin,
        genomes,
        pp_stats: Some(out.stats),
    }
}

/// Maize-like dataset scaled so raw reads total about `read_bp` bases.
///
/// Masking emulates the paper's §7.2 situation: the curated database
/// covers the *long* repeat families, while "numerous medium-sized
/// (≈100 bp) repeat elements … survived initial screening" — those leak
/// through, generate promising pairs, and are rejected at alignment
/// time (they sit mid-read, so the suffix–prefix alignment must cross
/// non-homologous flanks).
pub fn maize(read_bp: usize, seed: u64) -> Prepared {
    // Average raw read ≈ 500 bp (450 insert + vector); genome sized for
    // ≈ 1× overall coverage so gene enrichment concentrates islands.
    let n_reads = (read_bp / 500).max(20);
    let genome_len = read_bp.max(10_000);
    let d = presets::maize_like(genome_len, n_reads, seed);
    let known: Vec<DnaSeq> = d.genomes[0].repeat_library.iter().filter(|r| r.len() >= 300).cloned().collect();
    let config = PreprocessConfig {
        stat_repeats: None,
        // Reads whose longest clean stretch cannot seed a real overlap
        // are invalidated — the paper loses ~60-65% of shotgun reads here.
        min_unmasked_run: 100,
        ..PreprocessConfig::default()
    };
    let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &known);
    let out = pp.run(&d.reads);
    Prepared {
        name: format!("maize-like {} raw bp", read_bp),
        reads: d.reads,
        store: out.store,
        origin: out.origin,
        genomes: d.genomes,
        pp_stats: Some(out.stats),
    }
}

/// Drosophila-like WGS dataset; `mask_repeats = false` reproduces the
/// §9.1 no-masking ablation.
pub fn drosophila(genome_len: usize, coverage: f64, seed: u64, mask_repeats: bool) -> Prepared {
    let d = presets::drosophila_like(genome_len, coverage, seed);
    if mask_repeats {
        preprocess("drosophila-like", d.reads, d.genomes, true)
    } else {
        // Trim vectors/quality but skip all repeat masking.
        let config = PreprocessConfig { stat_repeats: None, ..PreprocessConfig::default() };
        let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &[]);
        let out = pp.run(&d.reads);
        Prepared {
            name: "drosophila-like (unmasked)".to_string(),
            reads: d.reads,
            store: out.store,
            origin: out.origin,
            genomes: d.genomes,
            pp_stats: Some(out.stats),
        }
    }
}

/// Sargasso-like environmental dataset.
pub fn sargasso(species: usize, n_reads: usize, seed: u64) -> Prepared {
    let d = presets::sargasso_like(species, n_reads, seed);
    preprocess("sargasso-like", d.reads, d.genomes, true)
}

/// Splitmix-style generator for the synthetic stores below (no external
/// RNG crates in the workspace).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_codes(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| (next_u64(state) & 3) as u8).collect()
}

/// Repeat-trap store for the alignment-kernel ablation: a workload
/// dominated by promising pairs that *fail* verification.
///
/// Every trap read is `short unique left flank (30–50 bp) + one exact
/// shared 60 bp repeat + long unique right flank (900–1400 bp)`. The
/// shared repeat seeds a promising pair between every two trap reads,
/// but the suffix–prefix alignment must then cross the long random
/// flanks, so the pair is always rejected — after the repeat the score
/// decays steeply and a score-bounded kernel can stop early, while a
/// full banded pass grinds through the entire right flank. A small
/// exactly-tiled backbone (reads sharing genuine 100 bp overlaps) rides
/// along so the run also exercises accepted pairs and produces a
/// non-trivial clustering to compare across kernels.
pub fn repeat_trap_store(n_trap: usize, seed: u64) -> FragmentStore {
    let mut rng = seed;
    let repeat = random_codes(&mut rng, 60);
    let mut store = FragmentStore::new();
    // Backbone: one 800 bp genome tiled by 200 bp reads at stride 100.
    let genome = random_codes(&mut rng, 800);
    for start in (0..=600).step_by(100) {
        store.push_codes(&genome[start..start + 200]);
    }
    // Trap reads.
    for _ in 0..n_trap {
        let left = 30 + (next_u64(&mut rng) % 21) as usize;
        let right = 900 + (next_u64(&mut rng) % 501) as usize;
        let mut codes = random_codes(&mut rng, left);
        codes.extend_from_slice(&repeat);
        codes.extend(random_codes(&mut rng, right));
        store.push_codes(&codes);
    }
    store
}

/// Accepted-pair-heavy store for the SIMD/X-drop ablation: 200 bp reads
/// tiling one genome at stride 140, so every adjacent pair shares a
/// genuine 60 bp dovetail and passes verification. This is the opposite
/// regime from [`repeat_trap_store`]: the early-exit bound almost never
/// fires (the pairs are real), so the win available to the kernel is
/// *per-row band shrinking* — under harsh scoring the completion
/// potential decays steeply off the true diagonal and the adaptive
/// X-drop band excludes most of the fixed band's width while still
/// computing every cell of the accepted alignment exactly.
pub fn overlap_heavy_store(n_reads: usize, seed: u64) -> FragmentStore {
    let mut rng = seed;
    let n_reads = n_reads.max(2);
    let genome = random_codes(&mut rng, 140 * (n_reads - 1) + 200);
    let mut store = FragmentStore::new();
    for r in 0..n_reads {
        let start = 140 * r;
        store.push_codes(&genome[start..start + 200]);
    }
    store
}

/// Heavy-tailed assembly workload for the load-balance ablation: one
/// dominant island tiled densely (the cluster that dominates §8's
/// per-processor assembly time) plus many small islands. Reads tile
/// each island exactly, so clustering recovers one cluster per island
/// and the per-cluster assembly cost profile is a textbook heavy tail —
/// the regime where largest-first (LPT) scheduling beats contiguous
/// chunking.
pub fn heavy_tailed_store(scale: f64, seed: u64) -> FragmentStore {
    let mut rng = seed;
    let mut store = FragmentStore::new();
    // Dominant island: ~4 kbp at scale 1, 200 bp reads every 60 bp.
    let giant_len = ((4000.0 * scale) as usize).max(1500);
    let giant = random_codes(&mut rng, giant_len);
    let mut at = 0;
    while at + 200 <= giant.len() {
        store.push_codes(&giant[at..at + 200]);
        at += 60;
    }
    // Small islands: 600 bp each, sparser tiling — a handful of reads
    // per cluster. At least 8 so p = 8 has work for every worker.
    let islands = ((8.0 * scale) as usize).max(8);
    for _ in 0..islands {
        let g = random_codes(&mut rng, 600);
        let mut at = 0;
        while at + 200 <= g.len() {
            store.push_codes(&g[at..at + 200]);
            at += 90;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maize_prepared_has_survivors() {
        let p = maize(40_000, 1);
        assert!(p.store.num_seqs() > 10, "{}", p.store.num_seqs());
        assert_eq!(p.origin.len(), p.store.num_seqs());
        assert!(p.pp_stats.is_some());
    }

    #[test]
    fn drosophila_masking_toggle() {
        let masked = drosophila(30_000, 4.0, 2, true);
        let unmasked = drosophila(30_000, 4.0, 2, false);
        // Without masking more bases survive (nothing is X-ed out or
        // invalidated by repeat content).
        assert!(unmasked.total_bp() >= masked.total_bp());
    }

    #[test]
    fn repeat_trap_store_shape() {
        let s = repeat_trap_store(12, 7);
        // 7 backbone reads + 12 traps.
        assert_eq!(s.num_seqs(), 19);
        // Trap reads carry the 60 bp repeat plus both flanks.
        assert!((7..19).all(|i| s.len_of(pgasm_seq::SeqId(i)) >= 60 + 30 + 900));
        // Deterministic for a fixed seed.
        let t = repeat_trap_store(12, 7);
        assert_eq!(s.get(pgasm_seq::SeqId(8)), t.get(pgasm_seq::SeqId(8)));
    }

    #[test]
    fn overlap_heavy_store_shape() {
        let s = overlap_heavy_store(10, 5);
        assert_eq!(s.num_seqs(), 10);
        // Adjacent reads share exactly 60 bp: read r covers
        // [140r, 140r + 200), read r+1 starts at 140(r+1).
        let a = s.get(pgasm_seq::SeqId(0));
        let b = s.get(pgasm_seq::SeqId(1));
        assert_eq!(&a[140..200], &b[..60]);
        let t = overlap_heavy_store(10, 5);
        assert_eq!(s.get(pgasm_seq::SeqId(4)), t.get(pgasm_seq::SeqId(4)));
    }

    #[test]
    fn heavy_tailed_store_shape() {
        let s = heavy_tailed_store(1.0, 11);
        // ~64 giant-island reads + 8 islands x 5 reads.
        assert!(s.num_seqs() > 60, "{}", s.num_seqs());
        // Deterministic for a fixed seed.
        let t = heavy_tailed_store(1.0, 11);
        assert_eq!(s.get(pgasm_seq::SeqId(3)), t.get(pgasm_seq::SeqId(3)));
    }

    #[test]
    fn default_params_match_paper_scale() {
        let p = default_params();
        assert_eq!(p.gst.w, 11);
        assert!(p.gst.psi >= p.gst.w);
    }
}
