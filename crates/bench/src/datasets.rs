//! Prepared (generated + preprocessed) datasets shared by experiments.

use pgasm_core::ClusterParams;
use pgasm_gst::{GenMode, GstConfig};
use pgasm_preprocess::{PreprocessConfig, PreprocessStats, Preprocessor, StatRepeatConfig};
use pgasm_seq::{DnaSeq, FragmentStore};
use pgasm_simgen::presets;
use pgasm_simgen::vector::VECTOR_SEQ;
use pgasm_simgen::{Genome, ReadSet};

/// A dataset after generation and preprocessing, ready for clustering.
pub struct Prepared {
    /// Human-readable name.
    pub name: String,
    /// Raw reads (pre-trim), for Table-2 style accounting.
    pub reads: ReadSet,
    /// Preprocessed (trimmed + masked) surviving fragments.
    pub store: FragmentStore,
    /// Fragment → original read index.
    pub origin: Vec<usize>,
    /// Source genomes (ground truth).
    pub genomes: Vec<Genome>,
    /// Preprocessing accounting.
    pub pp_stats: Option<PreprocessStats>,
}

impl Prepared {
    /// Total preprocessed bases.
    pub fn total_bp(&self) -> usize {
        self.store.total_len()
    }
}

/// The clustering parameters every experiment uses unless it is
/// explicitly ablating one of them: the paper's w = 11 bucketing, a
/// ψ = 20 promising-pair cutoff, duplicate elimination on, lenient
/// clustering acceptance.
pub fn default_params() -> ClusterParams {
    ClusterParams { gst: GstConfig { w: 11, psi: 20 }, mode: GenMode::DupElim, ..ClusterParams::default() }
}

fn preprocess(name: &str, reads: ReadSet, genomes: Vec<Genome>, stat: bool) -> Prepared {
    let known: Vec<DnaSeq> = genomes.iter().flat_map(|g| g.repeat_library.iter().cloned()).collect();
    let config = PreprocessConfig {
        stat_repeats: if stat { Some(StatRepeatConfig::default()) } else { None },
        ..PreprocessConfig::default()
    };
    let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &known);
    let out = pp.run(&reads);
    Prepared {
        name: name.to_string(),
        reads,
        store: out.store,
        origin: out.origin,
        genomes,
        pp_stats: Some(out.stats),
    }
}

/// Maize-like dataset scaled so raw reads total about `read_bp` bases.
///
/// Masking emulates the paper's §7.2 situation: the curated database
/// covers the *long* repeat families, while "numerous medium-sized
/// (≈100 bp) repeat elements … survived initial screening" — those leak
/// through, generate promising pairs, and are rejected at alignment
/// time (they sit mid-read, so the suffix–prefix alignment must cross
/// non-homologous flanks).
pub fn maize(read_bp: usize, seed: u64) -> Prepared {
    // Average raw read ≈ 500 bp (450 insert + vector); genome sized for
    // ≈ 1× overall coverage so gene enrichment concentrates islands.
    let n_reads = (read_bp / 500).max(20);
    let genome_len = read_bp.max(10_000);
    let d = presets::maize_like(genome_len, n_reads, seed);
    let known: Vec<DnaSeq> = d.genomes[0].repeat_library.iter().filter(|r| r.len() >= 300).cloned().collect();
    let config = PreprocessConfig {
        stat_repeats: None,
        // Reads whose longest clean stretch cannot seed a real overlap
        // are invalidated — the paper loses ~60-65% of shotgun reads here.
        min_unmasked_run: 100,
        ..PreprocessConfig::default()
    };
    let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &known);
    let out = pp.run(&d.reads);
    Prepared {
        name: format!("maize-like {} raw bp", read_bp),
        reads: d.reads,
        store: out.store,
        origin: out.origin,
        genomes: d.genomes,
        pp_stats: Some(out.stats),
    }
}

/// Drosophila-like WGS dataset; `mask_repeats = false` reproduces the
/// §9.1 no-masking ablation.
pub fn drosophila(genome_len: usize, coverage: f64, seed: u64, mask_repeats: bool) -> Prepared {
    let d = presets::drosophila_like(genome_len, coverage, seed);
    if mask_repeats {
        preprocess("drosophila-like", d.reads, d.genomes, true)
    } else {
        // Trim vectors/quality but skip all repeat masking.
        let config = PreprocessConfig { stat_repeats: None, ..PreprocessConfig::default() };
        let pp = Preprocessor::new(config, &[DnaSeq::from(VECTOR_SEQ)], &[]);
        let out = pp.run(&d.reads);
        Prepared {
            name: "drosophila-like (unmasked)".to_string(),
            reads: d.reads,
            store: out.store,
            origin: out.origin,
            genomes: d.genomes,
            pp_stats: Some(out.stats),
        }
    }
}

/// Sargasso-like environmental dataset.
pub fn sargasso(species: usize, n_reads: usize, seed: u64) -> Prepared {
    let d = presets::sargasso_like(species, n_reads, seed);
    preprocess("sargasso-like", d.reads, d.genomes, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maize_prepared_has_survivors() {
        let p = maize(40_000, 1);
        assert!(p.store.num_seqs() > 10, "{}", p.store.num_seqs());
        assert_eq!(p.origin.len(), p.store.num_seqs());
        assert!(p.pp_stats.is_some());
    }

    #[test]
    fn drosophila_masking_toggle() {
        let masked = drosophila(30_000, 4.0, 2, true);
        let unmasked = drosophila(30_000, 4.0, 2, false);
        // Without masking more bases survive (nothing is X-ed out or
        // invalidated by repeat content).
        assert!(unmasked.total_bp() >= masked.total_bp());
    }

    #[test]
    fn default_params_match_paper_scale() {
        let p = default_params();
        assert_eq!(p.gst.w, 11);
        assert!(p.gst.psi >= p.gst.w);
    }
}
