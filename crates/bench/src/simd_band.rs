//! ABL8 — SIMD/X-drop ablation: scalar two-phase kernel vs the
//! vectorised phase-1 kernel, with adaptive banding on and off.
//!
//! Two workloads bracket the kernel's regimes:
//!
//! - [`datasets::repeat_trap_store`] — rejection-heavy; the win is the
//!   vector pass itself (the early exit already bounds the cell count,
//!   so all kernels compute similar cells and the ns/cell ratio is the
//!   honest speedup).
//! - [`datasets::overlap_heavy_store`] — accepted-pair-heavy; the early
//!   exit almost never fires, and the adaptive X-drop shrink is what
//!   saves work: under harsh scoring the completion potential decays
//!   steeply off the true diagonal, so most of the fixed band prices
//!   below the acceptance floor and is never computed.
//!
//! Hard acceptance bars, checked on every run:
//!
//! - all four arms produce *identical clusterings* at every rank count
//!   (and match the serial run) — vectorisation is bit-exact and the
//!   adaptive shrink only skips provably-dead cells;
//! - the adaptive arm reports nonzero `cells_saved_adaptive` on the
//!   accepted-heavy store, and its computed + saved cells never exceed
//!   the fixed-band arm's computed cells;
//! - the vectorised arms beat the scalar two-phase kernel by ≥ 1.5× in
//!   ns per cell (interleaved best-of-N micro-probe; skipped in
//!   `force-scalar` builds where the lane width is 1).

use crate::datasets;
use crate::util::*;
use pgasm_align::{
    overlap_align_simd, overlap_align_two_phase, AcceptCriteria, AlignScratch, Scoring, SimdOpts,
};
use pgasm_core::{
    cluster_parallel, cluster_serial, AlignKernel, ClusterParams, ClusterStats, Clustering,
    MasterWorkerConfig,
};
use pgasm_seq::{FragmentStore, SeqId};

/// One measured clustering arm.
#[derive(Debug, Clone)]
pub struct Point {
    /// Workload name (`trap` or `overlap`).
    pub store: &'static str,
    /// Total ranks (1 = the serial engine).
    pub p: usize,
    /// Arm name (`two-phase`, `simd-scalar`, `simd-fixed`, `simd`).
    pub arm: &'static str,
    /// Pairs actually aligned.
    pub aligned: u64,
    /// Total DP cells computed (phase 1 + phase 2).
    pub cells: u64,
    /// Score-only forward-pass cells.
    pub cells_phase1: u64,
    /// Cells the adaptive shrink skipped.
    pub saved: u64,
    /// Rows whose live interior was narrower than the fixed band.
    pub rows_shrunk: u64,
}

/// (name, kernel, force_scalar, adaptive)
const ARMS: [(&str, AlignKernel, bool, bool); 4] = [
    ("two-phase", AlignKernel::TwoPhase, false, false),
    ("simd-scalar", AlignKernel::Simd, true, true),
    ("simd-fixed", AlignKernel::Simd, false, false),
    ("simd", AlignKernel::Simd, false, true),
];

fn arm_params(base: &ClusterParams, arm: &(&str, AlignKernel, bool, bool)) -> ClusterParams {
    let mut p = *base;
    p.kernel = arm.1;
    p.simd_force_scalar = arm.2;
    p.adaptive_band = arm.3;
    p
}

fn point(store: &'static str, p: usize, arm: &'static str, s: &ClusterStats) -> Point {
    Point {
        store,
        p,
        arm,
        aligned: s.aligned,
        cells: s.dp_cells,
        cells_phase1: s.dp_cells_phase1,
        saved: s.cells_saved_adaptive,
        rows_shrunk: s.band_rows_shrunk,
    }
}

/// Pull every promising-pair-shaped (a, b, diag) out of a store for the
/// throughput probe: all pairs of trap reads anchored at their shared
/// repeat, the same population the clustering arms verify.
fn probe_pairs(store: &FragmentStore) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let mut pairs = Vec::new();
    let n = store.num_seqs();
    // Trap reads start after the 7 backbone reads (see repeat_trap_store).
    for i in 7..n.min(27) {
        for j in (i + 1)..n.min(27) {
            let a = store.get(SeqId(i as u32)).to_vec();
            let b = store.get(SeqId(j as u32)).to_vec();
            pairs.push((a, b, 0));
        }
    }
    pairs
}

/// Interleaved best-of-N ns/cell for the scalar two-phase kernel and
/// both vector arms. Returns (ns/cell, cells) per arm in ARMS order
/// minus the simd-scalar arm: [two_phase, simd_fixed, simd_adaptive].
fn throughput_probe(
    pairs: &[(Vec<u8>, Vec<u8>, i64)],
    band: usize,
    scoring: &Scoring,
    criteria: &AcceptCriteria,
) -> [(f64, u64); 3] {
    let max_len = pairs.iter().map(|(a, b, _)| a.len().max(b.len())).max().unwrap_or(0);
    let mut scratch = AlignScratch::for_sequences(max_len, band);
    let mut best = [f64::MAX; 3];
    let mut cells = [0u64; 3];
    // Interleave the arms inside each rep so slow machine phases hit
    // all of them alike; best-of-N then discards contended reps.
    for _rep in 0..8 {
        for (arm, (b, c)) in best.iter_mut().zip(cells.iter_mut()).enumerate() {
            let t = std::time::Instant::now();
            let mut total = 0u64;
            for (a, bq, d) in pairs {
                let r = match arm {
                    0 => {
                        overlap_align_two_phase(a, bq, *d, band, scoring, Some(criteria), None, &mut scratch)
                    }
                    _ => overlap_align_simd(
                        a,
                        bq,
                        *d,
                        band,
                        scoring,
                        Some(criteria),
                        None,
                        &mut scratch,
                        SimdOpts { force_scalar: false, adaptive: arm == 2 },
                    ),
                };
                total += r.cells;
            }
            let dt = t.elapsed().as_secs_f64();
            if dt < *b {
                *b = dt;
            }
            *c = total;
        }
    }
    [0, 1, 2].map(|i| (best[i] * 1e9 / cells[i].max(1) as f64, cells[i]))
}

/// Run the ablation; see the module docs for the acceptance bars.
pub fn run(scale: f64) -> Vec<Point> {
    let n_trap = ((40.0 * scale.sqrt()).round() as usize).max(12);
    let trap = datasets::repeat_trap_store(n_trap, 977);
    let n_overlap = ((60.0 * scale) as usize).max(16);
    let overlap = datasets::overlap_heavy_store(n_overlap, 1311);
    let mut base = datasets::default_params();
    // Harsh verification scoring (see ablation_align_kernel): the floor
    // drops to ≈ 21 but off-homology scores decay at 5–7 per column, so
    // both the early exit and the X-drop shrink have bite.
    base.scoring = Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 };

    let (points, _run_report) = with_run_report("ablation_simd_band", |ctx| {
        let mut points = Vec::new();
        for (store_name, store) in [("trap", &trap), ("overlap", &overlap)] {
            let mut serial_clustering: Option<Clustering> = None;
            for &p in &[1usize, 4, 8] {
                let mut clusterings: Vec<Clustering> = Vec::new();
                for arm in &ARMS {
                    let params = arm_params(&base, arm);
                    let label = format!("{store_name}_p{p}_{}", arm.0);
                    let (clustering, stats) = if p == 1 {
                        ctx.scope(&label, |_| cluster_serial(store, &params))
                    } else {
                        let cfg = MasterWorkerConfig::default();
                        let report = ctx.scope(&label, |_| cluster_parallel(store, p, &params, &cfg));
                        (report.clustering, report.stats)
                    };
                    let pt = point(store_name, p, arm.0, &stats);
                    ctx.set(&format!("{label}_aligned"), pt.aligned);
                    ctx.set(&format!("{label}_dp_cells"), pt.cells);
                    ctx.set(&format!("{label}_cells_saved"), pt.saved);
                    ctx.set(&format!("{label}_rows_shrunk"), pt.rows_shrunk);
                    points.push(pt);
                    clusterings.push(clustering);
                }
                for (arm, c) in ARMS.iter().zip(&clusterings).skip(1) {
                    assert_eq!(
                        &clusterings[0], c,
                        "{store_name}: arm {} must produce the two-phase clustering (p = {p})",
                        arm.0
                    );
                }
                match &serial_clustering {
                    None => serial_clustering = Some(clusterings.pop().unwrap()),
                    Some(serial) => assert_eq!(
                        serial, &clusterings[3],
                        "{store_name}: parallel clustering must match serial (p = {p})"
                    ),
                }
            }
        }
        points
    });

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.store.into(),
                pt.p.to_string(),
                pt.arm.into(),
                fmt_count(pt.aligned),
                fmt_count(pt.cells),
                fmt_count(pt.saved),
                fmt_count(pt.rows_shrunk),
            ]
        })
        .collect();
    print_table(
        "ABL8: SIMD + adaptive X-drop band (clustering identical across all arms)",
        &["store", "p", "arm", "aligned", "dp cells", "cells saved", "rows shrunk"],
        &rows,
    );

    // Deterministic acceptance bars on the counter side.
    for &p in &[1usize, 4, 8] {
        for store in ["trap", "overlap"] {
            let by =
                |arm: &str| points.iter().find(|q| q.store == store && q.p == p && q.arm == arm).unwrap();
            let (two, fixed, adapt, forced) =
                (by("two-phase"), by("simd-fixed"), by("simd"), by("simd-scalar"));
            assert_eq!(two.saved, 0, "{store}: scalar two-phase never reports saved cells (p = {p})");
            assert_eq!(fixed.saved, 0, "{store}: fixed-band arm never reports saved cells (p = {p})");
            assert_eq!(
                fixed.cells_phase1, two.cells_phase1,
                "{store}: fixed-band vector arm computes the two-phase cell set (p = {p})"
            );
            assert_eq!(
                (forced.cells_phase1, forced.saved),
                (adapt.cells_phase1, adapt.saved),
                "{store}: force-scalar arm is bit-identical to the vector arm (p = {p})"
            );
            assert!(
                adapt.cells_phase1 + adapt.saved <= fixed.cells_phase1,
                "{store}: adaptive computed + saved must not exceed the fixed band (p = {p}): {} + {} > {}",
                adapt.cells_phase1,
                adapt.saved,
                fixed.cells_phase1
            );
        }
        let adapt = points.iter().find(|q| q.store == "overlap" && q.p == p && q.arm == "simd").unwrap();
        assert!(
            adapt.saved > 0 && adapt.rows_shrunk > 0,
            "overlap store: the X-drop shrink must engage on accepted-heavy work (p = {p}): {adapt:?}"
        );
    }

    // Throughput probe: ns/cell, vector arms vs the scalar two-phase
    // kernel, on the trap pair population.
    let pairs = probe_pairs(&trap);
    let band = base.band;
    let criteria = base.criteria;
    let probe = throughput_probe(&pairs, band, &base.scoring, &criteria);
    let lanes = pgasm_align::simd::effective_lanes();
    let speedup = |i: usize| probe[0].0 / probe[i].0;
    let probe_rows: Vec<Vec<String>> = [("two-phase", 0usize), ("simd-fixed", 1), ("simd", 2)]
        .iter()
        .map(|&(name, i)| {
            vec![
                name.into(),
                format!("{:.2} ns", probe[i].0),
                fmt_count(probe[i].1),
                format!("{:.2}x", speedup(i)),
            ]
        })
        .collect();
    print_table(
        &format!("ABL8 probe: phase-1 throughput ({lanes} lanes, best of 8 interleaved reps)"),
        &["arm", "ns/cell", "cells", "speedup"],
        &probe_rows,
    );
    if lanes > 1 {
        for (name, i) in [("simd-fixed", 1), ("simd", 2)] {
            assert!(
                speedup(i) >= 1.5,
                "{name} must beat the scalar two-phase kernel by >= 1.5x ns/cell: {:.2}x",
                speedup(i)
            );
        }
    } else {
        println!("note: force-scalar build (1 lane) — speedup bar skipped");
    }
    points
}
