//! TAB2 — fragment counts by sequencing strategy, before and after
//! preprocessing (paper Table 2).
//!
//! The paper's maize mix (MF 411k, HC 441k, BAC 1.13M, WGS 1.14M
//! fragments) loses ≈ 60–65% of the shotgun-derived fragments (BAC,
//! WGS) to repeat masking while the gene-enriched strategies (MF, HC)
//! are mostly preserved — gene space is repeat-poor. We generate the
//! same strategy mix over a 65%-repeat genome and run the same
//! preprocessing.

use crate::datasets;
use crate::util::*;

/// One strategy row: (label, frags before, bp before, frags after, bp after).
pub type Row = (String, usize, usize, usize, usize);

/// Run the experiment.
pub fn run(scale: f64) -> Vec<Row> {
    let (rows, _run_report) = with_run_report("table2", |ctx| {
        let prepared = ctx.scope("preprocess", |_| datasets::maize((600_000.0 * scale) as usize, 77));
        let stats = prepared.pp_stats.as_ref().expect("preprocessing ran");
        let rows = stats.table_rows();
        for (label, nb, bb, na, ba) in &rows {
            let key = label.to_lowercase().replace([' ', '-'], "_");
            ctx.set(&format!("{key}_frags_before"), *nb as u64);
            ctx.set(&format!("{key}_bp_before"), *bb as u64);
            ctx.set(&format!("{key}_frags_after"), *na as u64);
            ctx.set(&format!("{key}_bp_after"), *ba as u64);
        }
        rows
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(label, nb, bb, na, ba)| {
            vec![
                label.clone(),
                fmt_count(*nb as u64),
                fmt_mbp(*bb),
                fmt_count(*na as u64),
                fmt_mbp(*ba),
                fmt_pct(if *nb == 0 { 0.0 } else { *na as f64 / *nb as f64 }),
            ]
        })
        .collect();
    print_table(
        "TABLE2: fragments by strategy before/after preprocessing (maize-like)",
        &["type", "frags before", "bp before", "frags after", "bp after", "kept"],
        &table,
    );
    println!("note: paper keeps ~90% of MF, ~95% of HC, ~40% of BAC, ~32% of WGS fragments");
    rows
}
