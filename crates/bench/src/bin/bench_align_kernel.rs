//! Micro-benchmark for the overlap kernels: DP cells per pair and
//! nanoseconds per pair, legacy banded vs two-phase, on an accepted
//! (genuine dovetail) and a rejected (repeat-trap) pair population.
//!
//! The clustering-level ablation (`ablation_align_kernel`) measures the
//! end-to-end cell budget; this binary isolates the kernels themselves
//! so a regression in the per-pair constant factor is visible without
//! the pair-generation noise around it.

use pgasm_align::{banded_overlap_align, overlap_align_two_phase, AcceptCriteria, AlignScratch, Scoring};
use pgasm_bench::util::*;

/// Splitmix-style generator (mirrors `datasets::repeat_trap_store`).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_codes(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| (next_u64(state) & 3) as u8).collect()
}

/// Genuine dovetails: suffix of `a` equals prefix of `b` (overlap 200).
fn accepted_pairs(n: usize, rng: &mut u64) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    (0..n)
        .map(|_| {
            let genome = random_codes(rng, 800);
            let a = genome[..500].to_vec();
            let b = genome[300..].to_vec();
            (a, b, 300)
        })
        .collect()
}

/// Repeat traps: one shared exact 60-mer, unrelated flanks — every pair
/// is rejected after crossing the long right flank.
fn rejected_pairs(n: usize, rng: &mut u64) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let repeat = random_codes(rng, 60);
    let read = |rng: &mut u64| {
        let left = 30 + (next_u64(rng) % 21) as usize;
        let right = 900 + (next_u64(rng) % 501) as usize;
        let mut codes = random_codes(rng, left);
        codes.extend_from_slice(&repeat);
        codes.extend(random_codes(rng, right));
        (codes, left as i64)
    };
    (0..n)
        .map(|_| {
            let (a, la) = read(rng);
            let (b, lb) = read(rng);
            (a, b, la - lb)
        })
        .collect()
}

fn main() {
    let scale = env_scale();
    let n_pairs = ((400.0 * scale) as usize).max(50);
    let reps = 5usize;
    let band = 24usize;
    // Match the clustering-level ablation's scoring so the per-pair
    // numbers line up with its aggregate cell counts.
    let scoring = Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 };
    let criteria = AcceptCriteria::CLUSTERING;
    let mut rng = 4242u64;
    let populations =
        [("accepted", accepted_pairs(n_pairs, &mut rng)), ("rejected", rejected_pairs(n_pairs, &mut rng))];

    let (rows, report) = with_run_report("bench_align_kernel", |ctx| {
        let mut rows: Vec<(String, u64, u64)> = Vec::new();
        for (pop, pairs) in &populations {
            let max_len = pairs.iter().map(|(a, b, _)| a.len().max(b.len())).max().unwrap_or(0);
            for kernel in ["legacy", "two_phase"] {
                let arm = format!("{pop}_{kernel}");
                let mut scratch = AlignScratch::for_sequences(max_len, band);
                let mut cells = 0u64;
                let mut accepted = 0u64;
                ctx.scope(&arm, |_| {
                    for _ in 0..reps {
                        for (a, b, diag) in pairs {
                            let r = if kernel == "legacy" {
                                banded_overlap_align(a, b, *diag, band, &scoring)
                            } else {
                                overlap_align_two_phase(
                                    a,
                                    b,
                                    *diag,
                                    band,
                                    &scoring,
                                    Some(&criteria),
                                    None,
                                    &mut scratch,
                                )
                            };
                            cells += r.cells;
                            if criteria.accepts(r.identity, r.overlap_len) {
                                accepted += 1;
                            }
                        }
                    }
                });
                // Both kernels must agree on every accept/reject call.
                let expect = if *pop == "accepted" { (reps * pairs.len()) as u64 } else { 0 };
                assert_eq!(accepted, expect, "{arm}: unexpected accept count");
                assert_eq!(scratch.grow_events(), 0, "{arm}: scratch grew after pre-sizing");
                let n_align = (reps * pairs.len()) as u64;
                ctx.set(&format!("{arm}_cells_per_pair"), cells / n_align);
                rows.push((arm, cells / n_align, n_align));
            }
        }
        rows
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(arm, cells_per_pair, n_align)| {
            let ns_per_pair = report.wall(arm) * 1e9 / *n_align as f64;
            vec![arm.clone(), fmt_count(*cells_per_pair), format!("{ns_per_pair:.0} ns")]
        })
        .collect();
    print_table(
        "bench_align_kernel: per-pair kernel cost (band 24, harsh scoring)",
        &["population_kernel", "cells/pair", "time/pair"],
        &table,
    );
}
