//! Micro-benchmark for the overlap kernels: DP cells per pair,
//! nanoseconds per pair/cell and effective cells per sequence row,
//! legacy banded vs two-phase vs the vectorised phase-1 kernel, on an
//! accepted (genuine dovetail) and a rejected (repeat-trap) pair
//! population.
//!
//! The clustering-level ablations (`ablation_align_kernel`,
//! `ablation_simd_band`) measure the end-to-end cell budget; this
//! binary isolates the kernels themselves so a regression in the
//! per-pair constant factor is visible without the pair-generation
//! noise around it.
//!
//! Columns:
//! - `cells/pair` — DP cells actually computed, averaged over pairs.
//! - `cells/row`  — cells divided by total sequence rows (Σ (|a| + 1)):
//!   the *effective band width*, including rows the early exit never
//!   visited and cells the adaptive X-drop shrink excluded.
//! - `ns/pair`, `ns/cell` — wall time per pair and per computed cell.

use pgasm_align::{
    banded_overlap_align, overlap_align_simd, overlap_align_two_phase, AcceptCriteria, AlignScratch, Scoring,
    SimdOpts,
};
use pgasm_bench::util::*;

/// Splitmix-style generator (mirrors `datasets::repeat_trap_store`).
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_codes(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| (next_u64(state) & 3) as u8).collect()
}

/// Genuine dovetails: suffix of `a` equals prefix of `b` (overlap 200).
fn accepted_pairs(n: usize, rng: &mut u64) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    (0..n)
        .map(|_| {
            let genome = random_codes(rng, 800);
            let a = genome[..500].to_vec();
            let b = genome[300..].to_vec();
            (a, b, 300)
        })
        .collect()
}

/// Repeat traps: one shared exact 60-mer, unrelated flanks — every pair
/// is rejected after crossing the long right flank.
fn rejected_pairs(n: usize, rng: &mut u64) -> Vec<(Vec<u8>, Vec<u8>, i64)> {
    let repeat = random_codes(rng, 60);
    let read = |rng: &mut u64| {
        let left = 30 + (next_u64(rng) % 21) as usize;
        let right = 900 + (next_u64(rng) % 501) as usize;
        let mut codes = random_codes(rng, left);
        codes.extend_from_slice(&repeat);
        codes.extend(random_codes(rng, right));
        (codes, left as i64)
    };
    (0..n)
        .map(|_| {
            let (a, la) = read(rng);
            let (b, lb) = read(rng);
            (a, b, la - lb)
        })
        .collect()
}

const KERNELS: [&str; 5] = ["legacy", "two_phase", "simd_scalar", "simd_fixed", "simd"];

fn main() {
    let scale = env_scale();
    let n_pairs = ((400.0 * scale) as usize).max(50);
    let reps = 5usize;
    let band = 24usize;
    // Match the clustering-level ablation's scoring so the per-pair
    // numbers line up with its aggregate cell counts.
    let scoring = Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 };
    let criteria = AcceptCriteria::CLUSTERING;
    let mut rng = 4242u64;
    let populations =
        [("accepted", accepted_pairs(n_pairs, &mut rng)), ("rejected", rejected_pairs(n_pairs, &mut rng))];

    println!(
        "active lane width: {} (phase-1 inner loop; 1 = force-scalar build)",
        pgasm_align::simd::effective_lanes()
    );

    let (rows, report) = with_run_report("bench_align_kernel", |ctx| {
        let mut rows: Vec<(String, u64, u64, u64)> = Vec::new();
        for (pop, pairs) in &populations {
            let max_len = pairs.iter().map(|(a, b, _)| a.len().max(b.len())).max().unwrap_or(0);
            let seq_rows: u64 = pairs.iter().map(|(a, _, _)| a.len() as u64 + 1).sum();
            for kernel in KERNELS {
                let arm = format!("{pop}_{kernel}");
                let mut scratch = AlignScratch::for_sequences(max_len, band);
                let mut cells = 0u64;
                let mut accepted = 0u64;
                ctx.scope(&arm, |_| {
                    for _ in 0..reps {
                        for (a, b, diag) in pairs {
                            let r = match kernel {
                                "legacy" => banded_overlap_align(a, b, *diag, band, &scoring),
                                "two_phase" => overlap_align_two_phase(
                                    a,
                                    b,
                                    *diag,
                                    band,
                                    &scoring,
                                    Some(&criteria),
                                    None,
                                    &mut scratch,
                                ),
                                _ => overlap_align_simd(
                                    a,
                                    b,
                                    *diag,
                                    band,
                                    &scoring,
                                    Some(&criteria),
                                    None,
                                    &mut scratch,
                                    SimdOpts {
                                        force_scalar: kernel == "simd_scalar",
                                        adaptive: kernel != "simd_fixed",
                                    },
                                ),
                            };
                            cells += r.cells;
                            if criteria.accepts(r.identity, r.overlap_len) {
                                accepted += 1;
                            }
                        }
                    }
                });
                // All kernels must agree on every accept/reject call.
                let expect = if *pop == "accepted" { (reps * pairs.len()) as u64 } else { 0 };
                assert_eq!(accepted, expect, "{arm}: unexpected accept count");
                assert_eq!(scratch.grow_events(), 0, "{arm}: scratch grew after pre-sizing");
                let n_align = (reps * pairs.len()) as u64;
                ctx.set(&format!("{arm}_cells_per_pair"), cells / n_align);
                rows.push((arm, cells / n_align, n_align, cells.max(1) / (seq_rows * reps as u64)));
            }
        }
        rows
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(arm, cells_per_pair, n_align, cells_per_row)| {
            let wall = report.wall(arm);
            let total_cells = cells_per_pair * n_align;
            let ns_per_pair = wall * 1e9 / *n_align as f64;
            let ns_per_cell = wall * 1e9 / total_cells.max(1) as f64;
            vec![
                arm.clone(),
                fmt_count(*cells_per_pair),
                fmt_count(*cells_per_row),
                format!("{ns_per_pair:.0} ns"),
                format!("{ns_per_cell:.2} ns"),
            ]
        })
        .collect();
    print_table(
        "bench_align_kernel: per-pair kernel cost (band 24, harsh scoring)",
        &["population_kernel", "cells/pair", "cells/row", "ns/pair", "ns/cell"],
        &table,
    );
}
