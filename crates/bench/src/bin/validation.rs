//! Regenerates the §9.1 cluster-to-benchmark validation.
fn main() {
    pgasm_bench::validation_exp::run(pgasm_bench::util::env_scale());
}
