//! Runs the full experiment suite (the data behind EXPERIMENTS.md).
fn main() {
    let scale = pgasm_bench::util::env_scale();
    println!("pgasm experiment suite (scale = {scale})");
    pgasm_bench::fig5::run(scale);
    pgasm_bench::fig9::run(scale);
    pgasm_bench::table1::run(scale);
    pgasm_bench::table2::run(scale);
    pgasm_bench::table3::run(scale);
    pgasm_bench::sec8::run(scale);
    pgasm_bench::validation_exp::run(scale);
    pgasm_bench::ablations::masking(scale);
    pgasm_bench::ablations::ordering(scale);
    pgasm_bench::ablations::dup_elim(scale);
    pgasm_bench::ablations::filter(scale);
    pgasm_bench::ablations::resolution(scale);
    pgasm_bench::coalescing::run(scale);
    pgasm_bench::align_kernel::run(scale);
    pgasm_bench::simd_band::run(scale);
    pgasm_bench::assembly_balance::run(scale);
    println!("\nall experiments complete");
}
