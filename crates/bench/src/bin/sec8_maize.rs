//! Regenerates the §8 maize assembly statistics.
fn main() {
    pgasm_bench::sec8::run(pgasm_bench::util::env_scale());
}
