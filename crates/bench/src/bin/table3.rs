//! Regenerates paper Table 3: WGS + environmental clustering.
fn main() {
    pgasm_bench::table3::run(pgasm_bench::util::env_scale());
}
