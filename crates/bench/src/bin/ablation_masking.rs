//! §9.1 ablation: clustering with and without repeat masking.
fn main() {
    pgasm_bench::ablations::masking(pgasm_bench::util::env_scale());
}
