//! §10 extension ablation: geometric resolution of inconsistent overlaps.
fn main() {
    pgasm_bench::ablations::resolution(pgasm_bench::util::env_scale());
}
