//! §2/§4 ablation: maximal-match filter vs w-mer lookup table.
fn main() {
    pgasm_bench::ablations::filter(pgasm_bench::util::env_scale());
}
