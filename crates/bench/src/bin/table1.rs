//! Regenerates paper Table 1: promising pairs vs input size.
fn main() {
    pgasm_bench::table1::run(pgasm_bench::util::env_scale());
}
