//! `run_analyze` — CI bench for the critical-path analyzer.
//!
//! Runs a small traced clustering (p = 4, coalescing on), exports the
//! Chrome trace document exactly as `pgasm --trace-json` would, feeds
//! it back through [`pgasm_telemetry::analyze`], and writes
//! `BENCH_run_analyze.json` so `bench_diff` gates the analyzer's
//! structural outputs against `baselines/`:
//!
//! - `analyze_edges_unpaired_plus1` — baseline 1 (zero unpaired
//!   send→recv edges, offset so the only-increase gate engages); any
//!   mis-paired edge at least doubles it and fails the diff;
//! - `analyze_coverage_err_pct_plus1` — baseline 1 (zero percent
//!   attribution error, same offset trick); double-counted spans fail;
//! - `analyze_edges_paired` / `analyze_tracks` / `analyze_gauge_tracks`
//!   — coverage counters, gated against silent shrinkage of the traced
//!   surface... by the hard assertions below, since `bench_diff` only
//!   gates increases.
//!
//! The bin also asserts the analyzer's own invariants directly (a
//! non-empty critical path, ≤ 5% attribution error, zero unpaired
//! edges, zero dropped trace events), so a lossy or mis-paired trace
//! fails the bench before the diff ever runs.

use pgasm_bench::datasets;
use pgasm_bench::util::{env_scale, print_table, with_run_report};
use pgasm_core::{cluster_parallel_traced, MasterWorkerConfig};
use pgasm_mpisim::CoalescePolicy;
use pgasm_telemetry::analyze;
use pgasm_telemetry::trace::{Trace, TraceSpec};

fn main() {
    let scale = env_scale();
    let prepared = datasets::maize((200_000.0 * scale) as usize, 23);
    let params = datasets::default_params();
    let config =
        MasterWorkerConfig { batch: 64, pending_cap: 4096, coalesce: Some(CoalescePolicy::default()) };
    let p = 4;

    let (analysis, _report) = with_run_report("run_analyze", |ctx| {
        let report = ctx.scope("traced_cluster", |_| {
            cluster_parallel_traced(&prepared.store, p, &params, &config, TraceSpec::with_capacity(1 << 17))
        });
        let trace = Trace::with_series(report.traces.clone(), report.series.clone());
        assert_eq!(trace.dropped_events(), 0, "trace buffers must not overflow (raise the capacity)");
        let doc = trace.to_chrome_json();
        let analysis = ctx.scope("analyze", |_| {
            let tracks = analyze::parse_chrome_trace(&doc).expect("exported trace parses");
            analyze::analyze(&tracks, None, 5)
        });

        assert!(!analysis.critical_path.is_empty(), "critical path must be non-empty");
        assert!(
            analysis.max_coverage_error() <= 0.05,
            "attribution must cover wall time within 5% per rank (err {:.3})",
            analysis.max_coverage_error()
        );
        assert_eq!(analysis.edges_unpaired, 0, "every send must pair with a recv");

        ctx.set("analyze_tracks", analysis.ranks.len() as u64);
        ctx.set("analyze_edges_paired", analysis.edges_paired);
        ctx.set("analyze_edges_unpaired_plus1", analysis.edges_unpaired + 1);
        ctx.set("analyze_coverage_err_pct_plus1", (analysis.max_coverage_error() * 100.0).round() as u64 + 1);
        ctx.set("analyze_critical_path_nonempty", u64::from(!analysis.critical_path.is_empty()));
        ctx.set("analyze_gauge_tracks", report.series.iter().filter(|s| !s.is_empty()).count() as u64);
        analysis
    });

    let rows: Vec<Vec<String>> = analysis
        .ranks
        .iter()
        .map(|r| {
            vec![
                format!("{} ({})", r.rank, r.label),
                format!("{:.1}", r.wall_ns as f64 / 1e6),
                format!("{:.1}", r.compute_ns as f64 / 1e6),
                format!("{:.1}", r.wait_blocked_ns as f64 / 1e6),
                format!("{:.1}", r.barrier_ns as f64 / 1e6),
                format!("{:.1}", r.idle_unattributed_ns as f64 / 1e6),
            ]
        })
        .collect();
    print_table(
        "run_analyze: per-rank wall-time attribution (ms)",
        &["rank", "wall", "compute", "wait", "barrier", "unattrib"],
        &rows,
    );
    println!(
        "critical path: {} segment(s); {} edge(s) paired, {} unpaired; max coverage error {:.2}%",
        analysis.critical_path.len(),
        analysis.edges_paired,
        analysis.edges_unpaired,
        analysis.max_coverage_error() * 100.0
    );
}
