//! Tentpole ablation: protocol-message coalescing on/off at several
//! rank counts, priced by the α–β model.
fn main() {
    pgasm_bench::coalescing::run(pgasm_bench::util::env_scale());
}
