//! §4 ablation: pair-ordering heuristic vs reversed/shuffled order.
fn main() {
    pgasm_bench::ablations::ordering(pgasm_bench::util::env_scale());
}
