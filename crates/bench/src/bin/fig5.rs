//! Regenerates paper Fig. 5: parallel GST construction breakdown.
fn main() {
    pgasm_bench::fig5::run(pgasm_bench::util::env_scale());
}
