//! Regenerates paper Fig. 9: clustering time vs processors.
fn main() {
    pgasm_bench::fig9::run(pgasm_bench::util::env_scale());
}
