//! Assembly-phase load-balance ablation: LPT vs static chunking on the
//! engine-hosted distributed assembly stage.
fn main() {
    pgasm_bench::assembly_balance::run(pgasm_bench::util::env_scale());
}
