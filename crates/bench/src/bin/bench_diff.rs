//! `bench_diff` — regression gate over archived run reports.
//!
//! Compares fresh `BENCH_<id>.json` run reports (working directory by
//! default) against the committed baselines under `baselines/`, and
//! fails when a tracked metric regresses beyond tolerance:
//!
//! - wall seconds of every top-level span (machine-sensitive — gate
//!   with a loose `--wall-tol` on shared hardware);
//! - every baseline counter, plus modelled α–β communication seconds
//!   and wire bytes summed over ranks. Work counters (pairs, merges)
//!   are deterministic at a fixed scale; protocol traffic counts vary
//!   with thread scheduling, so `ci.sh` gates them with a wider
//!   `--comm-tol` than the 15% default.
//!
//! ```text
//! bench_diff [--baselines <dir>] [--fresh <dir>] [--wall-tol <f>] [--comm-tol <f>]
//! ```
//!
//! Tolerances are fractions (0.15 = +15%). Every baseline must have a
//! fresh counterpart — a missing report is itself a failure, so the
//! gate cannot silently pass by not running an experiment. The reverse
//! holds too: a fresh `BENCH_*.json` with no committed baseline fails
//! loudly instead of being skipped, so a new experiment cannot ride
//! through CI ungated until someone remembers to commit its baseline.

use pgasm_telemetry::RunReport;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default allowed fractional increase (0.15 = +15%).
const DEFAULT_TOL: f64 = 0.15;

/// Spans shorter than this in the baseline are timer noise; their wall
/// time is reported but not gated.
const MIN_GATED_WALL_SECONDS: f64 = 0.05;

struct Args {
    baselines: PathBuf,
    fresh: PathBuf,
    wall_tol: f64,
    comm_tol: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baselines: PathBuf::from("baselines"),
        fresh: PathBuf::from("."),
        wall_tol: DEFAULT_TOL,
        comm_tol: DEFAULT_TOL,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
        match argv[i].as_str() {
            "--baselines" => args.baselines = PathBuf::from(value),
            "--fresh" => args.fresh = PathBuf::from(value),
            "--wall-tol" => args.wall_tol = value.parse().map_err(|_| format!("bad --wall-tol '{value}'"))?,
            "--comm-tol" => args.comm_tol = value.parse().map_err(|_| format!("bad --comm-tol '{value}'"))?,
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    Ok(args)
}

fn load(path: &Path) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    RunReport::from_json_str(&text).map_err(|e| format!("parse {}: {}", path.display(), e.msg))
}

/// One metric comparison; pushes a line and returns whether it regressed.
fn check(failures: &mut Vec<String>, id: &str, metric: &str, base: f64, fresh: f64, tol: f64, gated: bool) {
    let delta = if base > 0.0 { (fresh - base) / base } else { 0.0 };
    let regressed = gated && base > 0.0 && fresh > base * (1.0 + tol);
    let verdict = if regressed {
        "REGRESSED"
    } else if gated {
        "ok"
    } else {
        "info"
    };
    println!("  {metric:<40} base {base:>12.6}  fresh {fresh:>12.6}  {:>+7.1}%  {verdict}", delta * 100.0);
    if regressed {
        failures.push(format!(
            "{id}: {metric} {base:.6} -> {fresh:.6} (+{:.1}% > +{:.1}%)",
            delta * 100.0,
            tol * 100.0
        ));
    }
}

fn diff_report(failures: &mut Vec<String>, id: &str, base: &RunReport, fresh: &RunReport, args: &Args) {
    println!("== {id} ==");
    for span in &base.spans {
        let gated = span.wall_seconds >= MIN_GATED_WALL_SECONDS;
        check(
            failures,
            id,
            &format!("wall[{}]", span.name),
            span.wall_seconds,
            fresh.wall(&span.name),
            args.wall_tol,
            gated,
        );
    }
    // Counters are deterministic at a fixed PGASM_SCALE (messages,
    // envelopes, modelled-comm microseconds, pairs), so any increase
    // beyond tolerance is a genuine regression, not timer noise.
    for (name, &base_v) in &base.counters {
        check(
            failures,
            id,
            &format!("counter[{name}]"),
            base_v as f64,
            fresh.counter(name) as f64,
            args.comm_tol,
            true,
        );
    }
    // Reports written by `pgasm --metrics-json` carry per-rank comm
    // rows; bench reports usually don't (zero baseline ⇒ not gated).
    let comm_secs = |r: &RunReport| r.ranks.iter().map(|k| k.modelled_comm_seconds()).sum::<f64>();
    let wire_bytes =
        |r: &RunReport| r.ranks.iter().flat_map(|k| k.comm.iter()).map(|t| t.bytes_sent).sum::<u64>() as f64;
    check(failures, id, "modelled_comm_seconds", comm_secs(base), comm_secs(fresh), args.comm_tol, true);
    check(failures, id, "wire_bytes_sent", wire_bytes(base), wire_bytes(fresh), args.comm_tol, true);
}

fn run() -> Result<Vec<String>, String> {
    let args = parse_args()?;
    let mut baseline_files: Vec<PathBuf> = std::fs::read_dir(&args.baselines)
        .map_err(|e| format!("read {}: {e} (commit baselines first)", args.baselines.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baseline_files.sort();
    if baseline_files.is_empty() {
        return Err(format!("no BENCH_*.json baselines under {}", args.baselines.display()));
    }
    let mut failures = Vec::new();
    for base_path in &baseline_files {
        let name = base_path.file_name().unwrap().to_str().unwrap();
        let id = name.trim_start_matches("BENCH_").trim_end_matches(".json");
        let fresh_path = args.fresh.join(name);
        if !fresh_path.exists() {
            failures
                .push(format!("{id}: fresh report {} missing (experiment not run?)", fresh_path.display()));
            continue;
        }
        let base = load(base_path)?;
        let fresh = load(&fresh_path)?;
        diff_report(&mut failures, id, &base, &fresh, &args);
    }
    // A fresh report with no committed baseline is not "nothing to
    // compare" — it is an ungated experiment, and skipping it would
    // let new benches pass CI with no regression gate at all.
    let mut fresh_files: Vec<PathBuf> = std::fs::read_dir(&args.fresh)
        .map_err(|e| format!("read {}: {e}", args.fresh.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    fresh_files.sort();
    for fresh_path in &fresh_files {
        let name = fresh_path.file_name().unwrap().to_str().unwrap();
        if !baseline_files.iter().any(|b| b.file_name().is_some_and(|bn| bn == name)) {
            let id = name.trim_start_matches("BENCH_").trim_end_matches(".json");
            failures.push(format!(
                "{id}: fresh report {} has no baseline under {} (commit one to gate it)",
                fresh_path.display(),
                args.baselines.display()
            ));
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    match run() {
        Ok(failures) if failures.is_empty() => {
            println!("bench_diff: no regressions");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("bench_diff: {} regression(s):", failures.len());
            for f in &failures {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_diff: error: {e}");
            ExitCode::FAILURE
        }
    }
}
