//! ABL9 — leased-task fault recovery: kill/drop/delay arms must
//! reproduce the clean partition bit-for-bit.
fn main() {
    pgasm_bench::fault_recovery::run(pgasm_bench::util::env_scale());
}
