//! Tentpole ablation: legacy banded kernel vs the two-phase gated
//! kernel on a rejection-heavy repeat-trap workload.
fn main() {
    pgasm_bench::align_kernel::run(pgasm_bench::util::env_scale());
}
