//! `trace_check` — structural validator for `pgasm --trace-json`
//! output, run by `ci.sh` after the traced smoke run.
//!
//! ```text
//! trace_check <trace.json> [--min-categories <n>] [--min-tracks <n>]
//!             [--max-dropped <n>] [--require <category>]...
//! ```
//!
//! Asserts the Chrome trace-event document is well-formed:
//!
//! - it parses, declares `schema_version`, and carries a `traceEvents`
//!   array of `B`/`E`/`i`/`C`/`M` events;
//! - timestamps are non-negative and non-decreasing per track (`tid`);
//! - every `B` has a matching `E` on the same track, category, and
//!   name — no dangling or crossing spans per (tid, cat, name);
//! - `C` counter samples carry an `args.value`;
//! - at least `--min-categories` distinct categories and
//!   `--min-tracks` distinct tracks appear (defaults 4 and 1);
//! - every `--require`d category (repeatable) appears at least once —
//!   `ci.sh` uses this to pin down phase coverage (e.g. the distributed
//!   assembly phase must emit `assemble` events);
//! - with `--max-dropped <n>`, no track's `dropped_events` metadata
//!   (event-buffer or gauge-sample overflow) exceeds `n` — `ci.sh`
//!   passes `--max-dropped 0` so a lossy trace fails loudly instead of
//!   silently skewing the critical-path analysis downstream.

use pgasm_telemetry::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn run() -> Result<String, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut min_categories = 4usize;
    let mut min_tracks = 1usize;
    let mut max_dropped: Option<u64> = None;
    let mut required: Vec<String> = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require" => {
                let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
                required.push(value.clone());
                i += 2;
            }
            "--min-categories" | "--min-tracks" => {
                let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
                let n: usize = value.parse().map_err(|_| format!("bad {} '{value}'", argv[i]))?;
                if argv[i] == "--min-categories" {
                    min_categories = n;
                } else {
                    min_tracks = n;
                }
                i += 2;
            }
            "--max-dropped" => {
                let value = argv.get(i + 1).ok_or_else(|| format!("{} needs a value", argv[i]))?;
                max_dropped = Some(value.parse().map_err(|_| format!("bad {} '{value}'", argv[i]))?);
                i += 2;
            }
            other if !other.starts_with("--") && path.is_none() => {
                path = Some(other.to_string());
                i += 1;
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let path = path.ok_or(
        "usage: trace_check <trace.json> [--min-categories n] [--min-tracks n] [--max-dropped n] [--require cat]...",
    )?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {}", e.msg))?;

    doc.get("schema_version").and_then(Json::as_u64).ok_or("missing schema_version")?;
    let events = doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;

    // Per-track timestamp order and per-(tid, cat, name) span pairing.
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut open: BTreeMap<(u64, String, String), u64> = BTreeMap::new();
    let mut categories: BTreeMap<String, u64> = BTreeMap::new();
    let mut tracks: BTreeMap<u64, u64> = BTreeMap::new();
    let mut timed = 0usize;
    let mut total_dropped = 0u64;
    for (n, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Json::as_str).ok_or(format!("event {n}: missing ph"))?;
        let tid = e.get("tid").and_then(Json::as_u64).ok_or(format!("event {n}: missing tid"))?;
        if ph == "M" {
            // thread_name metadata carries no timestamp, but does carry
            // the per-track overflow count that --max-dropped gates on.
            let dropped =
                e.get("args").and_then(|a| a.get("dropped_events")).and_then(Json::as_u64).unwrap_or(0);
            total_dropped += dropped;
            if let Some(cap) = max_dropped {
                if dropped > cap {
                    let label =
                        e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str).unwrap_or("?");
                    return Err(format!(
                        "track {tid} ('{label}') dropped {dropped} event(s), max allowed {cap}"
                    ));
                }
            }
            continue;
        }
        let ts = e.get("ts").and_then(Json::as_f64).ok_or(format!("event {n}: missing ts"))?;
        let cat = e.get("cat").and_then(Json::as_str).ok_or(format!("event {n}: missing cat"))?;
        let name = e.get("name").and_then(Json::as_str).ok_or(format!("event {n}: missing name"))?;
        if ts < 0.0 {
            return Err(format!("event {n}: negative ts {ts}"));
        }
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!("event {n}: ts {ts} < {prev} on track {tid} (not monotonic)"));
            }
        }
        last_ts.insert(tid, ts);
        *categories.entry(cat.to_string()).or_default() += 1;
        *tracks.entry(tid).or_default() += 1;
        timed += 1;
        let key = (tid, cat.to_string(), name.to_string());
        match ph {
            "B" => *open.entry(key).or_default() += 1,
            "E" => {
                let depth = open
                    .get_mut(&key)
                    .ok_or(format!("event {n}: E '{name}' ({cat}) on track {tid} without a matching B"))?;
                *depth -= 1;
                if *depth == 0 {
                    open.remove(&key);
                }
            }
            "i" => {
                if e.get("s").and_then(Json::as_str) != Some("t") {
                    return Err(format!("event {n}: instant '{name}' missing thread scope s=t"));
                }
            }
            "C" => {
                if e.get("args").and_then(|a| a.get("value")).and_then(Json::as_f64).is_none() {
                    return Err(format!("event {n}: counter '{name}' missing args.value"));
                }
            }
            other => return Err(format!("event {n}: unknown ph '{other}'")),
        }
    }
    if let Some(((tid, cat, name), depth)) = open.iter().next() {
        return Err(format!("unclosed span '{name}' ({cat}) on track {tid}, depth {depth}"));
    }
    if categories.len() < min_categories {
        return Err(format!(
            "only {} categories ({:?}), need >= {min_categories}",
            categories.len(),
            categories.keys().collect::<Vec<_>>()
        ));
    }
    if tracks.len() < min_tracks {
        return Err(format!("only {} tracks, need >= {min_tracks}", tracks.len()));
    }
    for cat in &required {
        if !categories.contains_key(cat) {
            return Err(format!(
                "required category '{cat}' absent (saw {:?})",
                categories.keys().collect::<Vec<_>>()
            ));
        }
    }
    Ok(format!(
        "{path}: {timed} events on {} track(s), {} categories ({}), all spans paired, timestamps monotonic, {total_dropped} dropped",
        tracks.len(),
        categories.len(),
        categories.keys().cloned().collect::<Vec<_>>().join(", ")
    ))
}

fn main() -> ExitCode {
    match run() {
        Ok(summary) => {
            println!("trace_check: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
