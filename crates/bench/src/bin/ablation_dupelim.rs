//! §5 ablation: duplicate elimination in pair generation.
fn main() {
    pgasm_bench::ablations::dup_elim(pgasm_bench::util::env_scale());
}
