//! Regenerates paper Table 2: preprocessing by sequencing strategy.
fn main() {
    pgasm_bench::table2::run(pgasm_bench::util::env_scale());
}
