//! Tentpole ablation: scalar two-phase kernel vs the vectorised phase-1
//! kernel, with adaptive X-drop banding on and off.
fn main() {
    pgasm_bench::simd_band::run(pgasm_bench::util::env_scale());
}
