//! ABL7 — alignment-kernel ablation: legacy single-pass banded kernel
//! vs the two-phase (score-only + gated traceback) kernel.
//!
//! The workload is deliberately rejection-heavy (see
//! [`datasets::repeat_trap_store`]): a shared 60 bp repeat seeds a
//! promising pair between every two trap reads, but each pair then has
//! to cross 600–1000 bp of unrelated sequence and fails the acceptance
//! criteria. Scoring is harsher than the pipeline default (mismatch −5,
//! gap −4) so the score upper bound decays fast once homology ends —
//! the regime the early-exit bound targets. The legacy kernel fills the
//! whole band for every pair; the two-phase kernel abandons a pair as
//! soon as no suffix of the band can still reach the acceptance floor,
//! and never runs the traceback pass for rejected pairs.
//!
//! The arms must produce *identical clusterings* at every rank count —
//! the early exit is conservative by construction (it only fires when
//! the score provably cannot reach the floor) — and the two-phase arm
//! must spend at least 2× fewer total DP cells.

use crate::datasets;
use crate::util::*;
use pgasm_align::Scoring;
use pgasm_core::{
    cluster_parallel, cluster_serial, AlignKernel, ClusterStats, Clustering, MasterWorkerConfig,
};

/// One measured arm.
#[derive(Debug, Clone)]
pub struct Point {
    /// Total ranks (1 = the serial engine, otherwise master + workers).
    pub p: usize,
    /// Which kernel decided the pairs.
    pub kernel: AlignKernel,
    /// Pairs actually aligned.
    pub aligned: u64,
    /// Total DP cells (phase 1 + phase 2).
    pub cells: u64,
    /// Score-only forward-pass cells.
    pub cells_phase1: u64,
    /// Traceback-window cells (0 for the legacy kernel).
    pub cells_phase2: u64,
    /// Pairs abandoned mid-band by the early-exit bound.
    pub early_exits: u64,
    /// Rejected pairs that skipped the traceback pass entirely.
    pub tracebacks_skipped: u64,
}

fn kernel_name(k: AlignKernel) -> &'static str {
    match k {
        AlignKernel::Legacy => "legacy",
        AlignKernel::TwoPhase => "two-phase",
        AlignKernel::Simd => "simd",
    }
}

fn point(p: usize, kernel: AlignKernel, s: &ClusterStats) -> Point {
    Point {
        p,
        kernel,
        aligned: s.aligned,
        cells: s.dp_cells,
        cells_phase1: s.dp_cells_phase1,
        cells_phase2: s.dp_cells_phase2,
        early_exits: s.early_exits,
        tracebacks_skipped: s.tracebacks_skipped,
    }
}

/// Run the ablation. Asserts that both kernels produce the same
/// clustering at every p (and that the parallel runs match the serial
/// one), and that the two-phase kernel spends ≥ 2× fewer DP cells.
pub fn run(scale: f64) -> Vec<Point> {
    let n_trap = ((40.0 * scale.sqrt()).round() as usize).max(12);
    let store = datasets::repeat_trap_store(n_trap, 977);
    let mut params = datasets::default_params();
    // Harsh scoring: with the default −2 mismatch the per-row score
    // decay through random sequence is too shallow for the bound to
    // fire early; −7/−5 models a verification pass that punishes
    // non-homology hard (the acceptance floor drops to ≈ 21, but the
    // in-band best score falls far faster than the bound's slack).
    params.scoring = Scoring { match_score: 1, mismatch: -7, gap_open: -8, gap_extend: -5 };

    let (points, _run_report) = with_run_report("ablation_align_kernel", |ctx| {
        let mut points = Vec::new();
        let mut serial_clustering: Option<Clustering> = None;
        for &p in &[1usize, 4, 8] {
            let mut arms: Vec<Clustering> = Vec::new();
            for kernel in [AlignKernel::Legacy, AlignKernel::TwoPhase] {
                params.kernel = kernel;
                let arm = format!("p{p}_{}", kernel_name(kernel));
                let (clustering, stats) = if p == 1 {
                    ctx.scope(&arm, |_| cluster_serial(&store, &params))
                } else {
                    let cfg = MasterWorkerConfig::default();
                    let report = ctx.scope(&arm, |_| cluster_parallel(&store, p, &params, &cfg));
                    (report.clustering, report.stats)
                };
                let pt = point(p, kernel, &stats);
                ctx.set(&format!("{arm}_aligned"), pt.aligned);
                ctx.set(&format!("{arm}_dp_cells"), pt.cells);
                ctx.set(&format!("{arm}_dp_cells_phase1"), pt.cells_phase1);
                ctx.set(&format!("{arm}_dp_cells_phase2"), pt.cells_phase2);
                ctx.set(&format!("{arm}_early_exits"), pt.early_exits);
                ctx.set(&format!("{arm}_tracebacks_skipped"), pt.tracebacks_skipped);
                points.push(pt);
                arms.push(clustering);
            }
            assert_eq!(arms[0], arms[1], "kernel choice must not change the clustering (p = {p})");
            match &serial_clustering {
                None => serial_clustering = Some(arms.pop().unwrap()),
                Some(serial) => {
                    assert_eq!(serial, &arms[1], "parallel clustering must match serial (p = {p})")
                }
            }
        }
        points
    });

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            let base = points
                .iter()
                .find(|q| q.p == pt.p && q.kernel == AlignKernel::Legacy)
                .expect("legacy baseline exists");
            vec![
                pt.p.to_string(),
                kernel_name(pt.kernel).into(),
                fmt_count(pt.aligned),
                fmt_count(pt.cells),
                fmt_count(pt.cells_phase1),
                fmt_count(pt.cells_phase2),
                format!("{:.2}x", base.cells as f64 / pt.cells.max(1) as f64),
                fmt_count(pt.early_exits),
                fmt_count(pt.tracebacks_skipped),
            ]
        })
        .collect();
    print_table(
        "ABL7: alignment kernel (repeat-trap workload; clustering identical in both arms)",
        &["p", "kernel", "aligned", "dp cells", "phase1", "phase2", "reduction", "early exits", "tb skipped"],
        &rows,
    );
    println!("note: every trap pair shares one exact 60 bp repeat but nothing else, so the two-phase");
    println!("      kernel abandons it once the score bound drops below the acceptance floor");

    // The tentpole's acceptance bar, at every rank count.
    for &p in &[1usize, 4, 8] {
        let legacy = points.iter().find(|q| q.p == p && q.kernel == AlignKernel::Legacy).unwrap();
        let two = points.iter().find(|q| q.p == p && q.kernel == AlignKernel::TwoPhase).unwrap();
        assert_eq!(legacy.aligned, two.aligned, "both kernels must align the same pairs (p = {p})");
        assert!(
            legacy.cells as f64 >= 2.0 * two.cells.max(1) as f64,
            "two-phase kernel must spend >= 2x fewer DP cells at p = {p}: {} -> {}",
            legacy.cells,
            two.cells
        );
        assert_eq!(legacy.cells_phase2, 0, "legacy kernel reports all work as phase 1");
        assert!(two.early_exits > 0, "trap pairs must trip the early-exit bound (p = {p})");
        assert!(
            two.tracebacks_skipped > two.aligned / 2,
            "most trap pairs must skip the traceback pass (p = {p}): {} of {}",
            two.tracebacks_skipped,
            two.aligned
        );
    }
    points
}
