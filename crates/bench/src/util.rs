//! Shared harness utilities: scale handling, run-report folding, table
//! printing, formatting.

use pgasm_telemetry::{RunContext, RunReport};

/// Run an experiment body under a fresh [`RunContext`] labelled `id`,
/// fold it into a [`RunReport`], write `BENCH_<id>.json` next to the
/// working directory, and return the body's output together with the
/// report. All bench timing flows through the context's spans — the
/// experiment modules hold no ad-hoc clocks.
pub fn with_run_report<T>(id: &str, f: impl FnOnce(&mut RunContext) -> T) -> (T, RunReport) {
    let mut ctx = RunContext::new(id);
    let out = f(&mut ctx);
    let report = ctx.finish();
    let path = format!("BENCH_{id}.json");
    match report.write_json(std::path::Path::new(&path)) {
        Ok(()) => println!("run report -> {path}"),
        Err(e) => eprintln!("run report not written ({path}): {e}"),
    }
    (out, report)
}

/// Workload scale factor from `PGASM_SCALE` (default 1.0).
pub fn env_scale() -> f64 {
    std::env::var("PGASM_SCALE").ok().and_then(|s| s.parse::<f64>().ok()).filter(|&s| s > 0.0).unwrap_or(1.0)
}

/// Print a fixed-width table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$} | ", c, width = widths.get(i).copied().unwrap_or(c.len())));
        }
        out
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", line(&header_cells));
    let sep: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
    println!("{}", "-".repeat(sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Humanised count (e.g. `12_345` → "12,345").
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0} s")
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1000.0)
    }
}

/// Percentage with one decimal.
pub fn fmt_pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Megabases with one decimal.
pub fn fmt_mbp(bases: usize) -> String {
    format!("{:.2} Mbp", bases as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(0.0123), "12.3 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(120.0), "120 s");
    }

    #[test]
    fn pct_and_mbp() {
        assert_eq!(fmt_pct(0.4371), "43.7%");
        assert_eq!(fmt_mbp(1_250_000), "1.25 Mbp");
    }

    #[test]
    fn scale_default() {
        // Unless someone exported PGASM_SCALE into the test env.
        if std::env::var("PGASM_SCALE").is_err() {
            assert_eq!(env_scale(), 1.0);
        }
    }
}
