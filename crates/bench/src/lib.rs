//! # pgasm-bench — experiment harness
//!
//! One module per table/figure of the paper's evaluation, each exposing
//! a `run(scale)` entry point that generates the workload, executes the
//! experiment, and prints the same rows/series the paper reports. The
//! binaries under `src/bin/` are thin wrappers; `all_experiments` runs
//! the full suite (the data source for `EXPERIMENTS.md`).
//!
//! Scale: workloads default to laptop-size inputs (see DESIGN.md's
//! scale note). Set `PGASM_SCALE` (e.g. `0.5` or `4.0`) to shrink or
//! grow every experiment proportionally.

pub mod ablations;
pub mod align_kernel;
pub mod assembly_balance;
pub mod coalescing;
pub mod datasets;
pub mod fault_recovery;
pub mod fig5;
pub mod fig9;
pub mod sec8;
pub mod simd_band;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod util;
pub mod validation_exp;
