//! TAB1 — promising pairs generated / aligned / accepted vs input size
//! (paper Table 1).
//!
//! The paper's maize inputs of 250/500/1000/1252 Mbp generate
//! 4.2/10.0/33.0/48.0 M promising pairs, align 2.0/4.6/14.8/21.6 M
//! (≈ 52–56% of generated pairs are *not* aligned thanks to the
//! decreasing-match-length heuristic) and accept a small fraction of
//! those (< 4% of aligned pairs cause merges — repeat-induced pairs
//! fail the overlap test). We run the same 250:500:1000:1252 size
//! ratio and report the same counters.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_serial, ClusterStats};

/// One row of the table.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Raw read bases generated.
    pub raw_bp: usize,
    /// Preprocessed fragments.
    pub fragments: usize,
    /// Preprocessed bp.
    pub input_bp: usize,
    /// Clustering statistics.
    pub stats: ClusterStats,
}

/// Run the experiment.
pub fn run(scale: f64) -> Vec<Row> {
    let sizes: Vec<usize> = [250_000.0, 500_000.0, 1_000_000.0, 1_252_000.0]
        .iter()
        .map(|s| (s * scale) as usize)
        .collect();
    let params = datasets::default_params();
    let mut rows = Vec::new();
    for (i, &raw_bp) in sizes.iter().enumerate() {
        let prepared = datasets::maize(raw_bp, 7 + i as u64);
        let (_, stats) = cluster_serial(&prepared.store, &params);
        rows.push(Row {
            raw_bp,
            fragments: prepared.store.num_fragments(),
            input_bp: prepared.total_bp(),
            stats,
        });
    }
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt_mbp(r.input_bp),
                fmt_count(r.fragments as u64),
                fmt_count(r.stats.generated),
                fmt_count(r.stats.aligned),
                fmt_count(r.stats.accepted),
                fmt_pct(r.stats.savings()),
                fmt_pct(if r.stats.aligned == 0 { 0.0 } else { r.stats.merges as f64 / r.stats.aligned as f64 }),
            ]
        })
        .collect();
    print_table(
        "TABLE1: promising pairs generated / aligned / accepted vs input size (maize-like)",
        &["input (post-pp)", "fragments", "generated", "aligned", "accepted", "savings", "merges/aligned"],
        &table,
    );
    println!("note: paper (1252 Mbp): 48.0 M generated, 21.6 M aligned (56% savings), <4% of aligned merge clusters");
    rows
}
