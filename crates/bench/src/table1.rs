//! TAB1 — promising pairs generated / aligned / accepted vs input size
//! (paper Table 1).
//!
//! The paper's maize inputs of 250/500/1000/1252 Mbp generate
//! 4.2/10.0/33.0/48.0 M promising pairs, align 2.0/4.6/14.8/21.6 M
//! (≈ 52–56% of generated pairs are *not* aligned thanks to the
//! decreasing-match-length heuristic) and accept a small fraction of
//! those (< 4% of aligned pairs cause merges — repeat-induced pairs
//! fail the overlap test). We run the same 250:500:1000:1252 size
//! ratio and report the same counters.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_serial, ClusterStats};

/// One row of the table.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Raw read bases generated.
    pub raw_bp: usize,
    /// Preprocessed fragments.
    pub fragments: usize,
    /// Preprocessed bp.
    pub input_bp: usize,
    /// Clustering statistics.
    pub stats: ClusterStats,
}

/// Run the experiment.
pub fn run(scale: f64) -> Vec<Row> {
    let sizes: Vec<usize> =
        [250_000.0, 500_000.0, 1_000_000.0, 1_252_000.0].iter().map(|s| (s * scale) as usize).collect();
    let params = datasets::default_params();
    let (rows, run_report) = with_run_report("table1", |ctx| {
        let mut rows = Vec::new();
        for (i, &raw_bp) in sizes.iter().enumerate() {
            let prepared = datasets::maize(raw_bp, 7 + i as u64);
            let input_bp = prepared.total_bp();
            let stats = ctx.scope(&format!("{input_bp}bp"), |_| cluster_serial(&prepared.store, &params).1);
            ctx.set(&format!("{input_bp}bp_fragments"), prepared.store.num_fragments() as u64);
            ctx.set(&format!("{input_bp}bp_generated"), stats.generated);
            ctx.set(&format!("{input_bp}bp_aligned"), stats.aligned);
            ctx.set(&format!("{input_bp}bp_accepted"), stats.accepted);
            ctx.set(&format!("{input_bp}bp_merges"), stats.merges);
            rows.push(Row { raw_bp, fragments: prepared.store.num_fragments(), input_bp, stats });
        }
        rows
    });
    // Table rows read back off the folded run report's counters.
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let c = |suffix: &str| run_report.counter(&format!("{}bp_{suffix}", r.input_bp));
            let (generated, aligned, accepted) = (c("generated"), c("aligned"), c("accepted"));
            vec![
                fmt_mbp(r.input_bp),
                fmt_count(c("fragments")),
                fmt_count(generated),
                fmt_count(aligned),
                fmt_count(accepted),
                fmt_pct(if generated == 0 { 0.0 } else { 1.0 - aligned as f64 / generated as f64 }),
                fmt_pct(if aligned == 0 { 0.0 } else { c("merges") as f64 / aligned as f64 }),
            ]
        })
        .collect();
    print_table(
        "TABLE1: promising pairs generated / aligned / accepted vs input size (maize-like)",
        &["input (post-pp)", "fragments", "generated", "aligned", "accepted", "savings", "merges/aligned"],
        &table,
    );
    println!("note: paper (1252 Mbp): 48.0 M generated, 21.6 M aligned (56% savings), <4% of aligned merge clusters");
    rows
}
