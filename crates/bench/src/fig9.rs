//! FIG9 — total clustering run-time vs processors (paper Fig. 9).
//!
//! The paper reports the master–worker clustering phase (excluding GST
//! construction) for the 250M and 500M bp inputs on 256–1024
//! processors, with relative speedups of 2.6× / 3.1× when quadrupling
//! processors and idle time growing from 9–16% to 16–26%.
//!
//! We run the real protocol on 1, 2, 4 and 8 workers and report the
//! *modelled* parallel time per configuration:
//! `T(p) = max over ranks of (thread-CPU seconds + modelled comm)`,
//! which is immune to host-core oversubscription (the ranks are threads
//! that may timeshare one core). Worker idle is reported as
//! `1 − cpu_w / T(p)` averaged over workers.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_parallel, MasterWorkerConfig};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Preprocessed input bp.
    pub input_bp: usize,
    /// Worker count (ranks − 1).
    pub workers: usize,
    /// Modelled clustering time (excl. GST construction).
    pub t_model: f64,
    /// Mean worker idle fraction under the model.
    pub idle: f64,
    /// Master availability estimate (1 − master cpu / T).
    pub master_avail: f64,
}

/// Run the experiment.
pub fn run(scale: f64) -> Vec<Point> {
    let sizes = [(250_000.0 * scale) as usize, (500_000.0 * scale) as usize];
    let worker_counts = [1usize, 2, 4, 8];
    let (points, _run_report) = with_run_report("fig9", |ctx| {
        let mut points = Vec::new();
        for (i, &raw_bp) in sizes.iter().enumerate() {
            let prepared = datasets::maize(raw_bp, 142 + i as u64);
            let input_bp = prepared.total_bp();
            for &w in &worker_counts {
                let params = datasets::default_params();
                let cfg = MasterWorkerConfig { batch: 64, pending_cap: 4096, ..Default::default() };
                let report = cluster_parallel(&prepared.store, w + 1, &params, &cfg);
                // Modelled time: slowest rank's CPU + its modelled
                // traffic, both read off the per-rank telemetry
                // channels. Only the protocol tags count (plus the
                // coalesced envelopes that carry them on the wire) —
                // the collective tags belong to GST construction, which
                // this figure excludes.
                let proto_comm = |r: &pgasm_telemetry::RankReport| {
                    r.comm
                        .iter()
                        .filter(|t| {
                            t.label.starts_with("w2m") || t.label.starts_with("m2w") || t.label == "coalesced"
                        })
                        .map(|t| t.modelled_seconds)
                        .sum::<f64>()
                };
                let t_model =
                    report.ranks.iter().map(|r| r.cpu_seconds + proto_comm(r)).fold(0.0, f64::max).max(1e-6);
                let idle = if w > 0 {
                    report.ranks[1..].iter().map(|r| (1.0 - r.cpu_seconds / t_model).max(0.0)).sum::<f64>()
                        / w as f64
                } else {
                    0.0
                };
                let master_avail = (1.0 - report.ranks[0].cpu_seconds / t_model).max(0.0);
                ctx.record_span(pgasm_telemetry::Span {
                    name: format!("{input_bp}bp_w{w}"),
                    wall_seconds: t_model,
                    cpu_seconds: report.ranks.iter().map(|r| r.cpu_seconds).sum(),
                    children: Vec::new(),
                });
                // Keep the last (largest) configuration's rank channels
                // as the report's parallel section.
                ctx.set_ranks(report.ranks);
                points.push(Point { input_bp, workers: w, t_model, idle, master_avail });
            }
        }
        points
    });
    let mut rows = Vec::new();
    for pt in &points {
        let base = points
            .iter()
            .find(|q| q.input_bp == pt.input_bp && q.workers == 1)
            .expect("baseline point exists");
        rows.push(vec![
            fmt_mbp(pt.input_bp),
            pt.workers.to_string(),
            fmt_secs(pt.t_model),
            format!("{:.2}x", base.t_model / pt.t_model),
            fmt_pct(pt.idle),
            fmt_pct(pt.master_avail),
        ]);
    }
    print_table(
        "FIG9: clustering time vs workers (modelled: thread-CPU + BG/L comm; excludes GST build)",
        &["input", "workers", "T(p)", "speedup", "worker idle", "master avail"],
        &rows,
    );
    println!(
        "note: paper reports 2.6x/3.1x speedups at 4x processors, idle 16%->26% (250M) and 9%->16% (500M),"
    );
    println!("      and master availability decreasing from ~90% to ~70% as workers grow");
    points
}
