//! ABL6 — LPT vs contiguous chunking for the distributed assembly
//! phase.
//!
//! §8 observes that per-cluster assembly times are heavy-tailed: one
//! dominant cluster sets the critical path, so how the master hands
//! clusters to workers decides the phase's balance. This ablation runs
//! the engine-hosted assembly phase under both policies at several rank
//! counts on a heavy-tailed workload:
//!
//! - *LPT* (largest processing time first): the master sorts clusters
//!   by the `k·(k−1)/2` pair-cost proxy and grants them one at a time,
//!   so the dominant cluster starts immediately and small clusters
//!   back-fill idle workers.
//! - *static*: clusters are dispatched in natural order in contiguous
//!   chunks of `⌈n/(p−1)⌉` — the "preassign everything" strawman, which
//!   strands the dominant cluster in a chunk with other work.
//!
//! Balance is measured with the deterministic per-worker
//! `asm_cost_units` counter (busy-seconds are scheduler noise at bench
//! scale); the assemblies themselves must be byte-identical across
//! every arm and to the threaded in-process path.

use crate::datasets;
use crate::util::*;
use pgasm_assemble::AssemblyConfig;
use pgasm_core::pipeline::assemble_clusters_q;
use pgasm_core::{assemble_parallel, cluster_serial, AssignPolicy};
use pgasm_telemetry::names;

/// One measured arm.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Total ranks (master + workers).
    pub p: usize,
    /// Cluster-dispatch policy.
    pub policy: AssignPolicy,
    /// Largest per-worker cost-unit total.
    pub max_cost: u64,
    /// Mean per-worker cost-unit total.
    pub mean_cost: f64,
    /// max / mean — 1.0 is a perfect balance.
    pub imbalance: f64,
    /// Wall seconds of the distributed phase.
    pub wall: f64,
}

fn policy_key(policy: AssignPolicy) -> &'static str {
    match policy {
        AssignPolicy::Lpt => "lpt",
        AssignPolicy::Static => "static",
    }
}

/// Run the ablation. Asserts byte-identical assemblies in every arm
/// and, at p = 8, that LPT's cost-unit imbalance is no worse than
/// static chunking's.
pub fn run(scale: f64) -> Vec<Point> {
    let store = datasets::heavy_tailed_store(scale, 11);
    let params = datasets::default_params();
    let (clustering, _) = cluster_serial(&store, &params);
    let cfg = AssemblyConfig::default();
    let reference = assemble_clusters_q(&store, None, &clustering, &cfg, 4);
    let (points, _run_report) = with_run_report("ablation_assembly_balance", |ctx| {
        let mut points = Vec::new();
        for &p in &[2usize, 4, 8] {
            for policy in [AssignPolicy::Static, AssignPolicy::Lpt] {
                let arm = format!("p{p}_{}", policy_key(policy));
                let report =
                    ctx.scope(&arm, |_| assemble_parallel(&store, None, &clustering, &cfg, p, policy));
                assert_eq!(
                    report.assemblies, reference,
                    "distributed assembly must match the threaded path (p = {p}, {policy:?})"
                );
                let worker_costs: Vec<u64> =
                    report.ranks[1..].iter().map(|r| r.counter(names::ASM_COST_UNITS)).collect();
                let max_cost = worker_costs.iter().copied().max().unwrap_or(0);
                let mean_cost = worker_costs.iter().sum::<u64>() as f64 / worker_costs.len().max(1) as f64;
                let imbalance = max_cost as f64 / mean_cost.max(1e-9);
                ctx.set(&format!("{arm}_max_cost_units"), max_cost);
                ctx.set(&format!("{arm}_imbalance_milli"), (imbalance * 1000.0) as u64);
                ctx.set(
                    &format!("{arm}_batches_dispatched"),
                    report.ranks[0].counter(names::ASM_BATCHES_DISPATCHED),
                );
                points.push(Point {
                    p,
                    policy,
                    max_cost,
                    mean_cost,
                    imbalance,
                    wall: report.assemble_seconds,
                });
            }
        }
        points
    });
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|pt| {
            vec![
                pt.p.to_string(),
                policy_key(pt.policy).into(),
                fmt_count(pt.max_cost),
                format!("{:.1}", pt.mean_cost),
                format!("{:.2}x", pt.imbalance),
                fmt_secs(pt.wall),
            ]
        })
        .collect();
    print_table(
        "ABL6: assembly load balance, LPT vs static chunking (cost units = cluster pair bound k(k-1)/2)",
        &["p", "policy", "max cost/worker", "mean cost/worker", "max/mean", "wall"],
        &rows,
    );
    println!("note: the dominant cluster bounds both policies from below; static chunking stacks");
    println!("      extra clusters on top of it while LPT leaves the tail to back-fill idle workers");

    // Acceptance bar at p = 8 (at p = 2 a single worker takes all the
    // work, so both policies are trivially identical).
    let lpt8 = points.iter().find(|q| q.p == 8 && q.policy == AssignPolicy::Lpt).unwrap();
    let stat8 = points.iter().find(|q| q.p == 8 && q.policy == AssignPolicy::Static).unwrap();
    assert!(
        lpt8.imbalance <= stat8.imbalance + 1e-9,
        "LPT must not balance worse than static chunking at p = 8: {:.3} vs {:.3}",
        lpt8.imbalance,
        stat8.imbalance
    );
    points
}
