//! TAB3 — whole-genome shotgun (Drosophila-like) and environmental
//! (Sargasso-like) clustering performance (paper Table 3).
//!
//! Paper: Drosophila (2.07M fragments, 1.37 Gbp) clusters in 3.1 h on
//! 1024 nodes — 13 min of GST construction — generating 320M promising
//! pairs of which 65% are never aligned; Sargasso (1.66M fragments)
//! generates 188M pairs with 57% savings. The savings asymmetry (WGS
//! saves more than environmental) is the shape to reproduce.

use crate::datasets;
use crate::util::*;
use pgasm_core::{cluster_serial, ClusterStats, Clustering};
use pgasm_gst::Gst;

/// One dataset row.
pub struct Row {
    /// Dataset label.
    pub name: String,
    /// Fragments clustered.
    pub fragments: usize,
    /// Total preprocessed bp.
    pub input_bp: usize,
    /// GST construction seconds (serial, measured).
    pub gst_seconds: f64,
    /// Total clustering seconds (serial, measured).
    pub total_seconds: f64,
    /// Work statistics.
    pub stats: ClusterStats,
    /// Resulting clustering.
    pub clustering: Clustering,
}

/// Run the experiment.
pub fn run(scale: f64) -> Vec<Row> {
    let params = datasets::default_params();
    // Drosophila-like WGS: genome at scale, paper's 8.8x coverage
    // trimmed to ~6.6x surviving (the paper's 1.37 of 1.81 Gbp).
    let dro = datasets::drosophila((150_000.0 * scale) as usize, 8.8, 11, true);
    // Sargasso-like: many species, power-law abundances.
    let sar = datasets::sargasso(((24.0 * scale) as usize).max(4), (2_500.0 * scale) as usize, 12);
    let (rows, run_report) = with_run_report("table3", |ctx| {
        let mut rows = Vec::new();
        for prepared in [dro, sar] {
            ctx.push(&prepared.name);
            let gst = ctx.scope("gst_build", |_| {
                let ds = prepared.store.with_reverse_complements();
                Gst::build(&ds, params.gst)
            });
            drop(gst);
            let (clustering, stats) = ctx.scope("cluster", |_| cluster_serial(&prepared.store, &params));
            ctx.pop();
            rows.push(Row {
                name: prepared.name.clone(),
                fragments: prepared.store.num_fragments(),
                input_bp: prepared.total_bp(),
                gst_seconds: 0.0, // filled from the run report below
                total_seconds: 0.0,
                stats,
                clustering,
            });
        }
        rows
    });
    // Timings come from the folded run report's spans, not ad-hoc
    // clocks.
    let rows: Vec<Row> = rows
        .into_iter()
        .map(|mut r| {
            let gst = run_report.wall(&format!("{}/gst_build", r.name));
            r.gst_seconds = gst;
            r.total_seconds = gst + run_report.wall(&format!("{}/cluster", r.name));
            r
        })
        .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_count(r.fragments as u64),
                fmt_mbp(r.input_bp),
                fmt_secs(r.gst_seconds),
                fmt_secs(r.total_seconds),
                fmt_count(r.stats.generated),
                fmt_count(r.stats.accepted),
                fmt_count(r.stats.aligned - r.stats.accepted),
                fmt_pct(r.stats.savings()),
                fmt_count(r.clustering.num_non_singletons() as u64),
                fmt_count(r.clustering.num_singletons() as u64),
            ]
        })
        .collect();
    print_table(
        "TABLE3: WGS and environmental clustering",
        &[
            "dataset",
            "fragments",
            "bp",
            "GST time",
            "total time",
            "pairs generated",
            "accepted",
            "rejected",
            "savings",
            "clusters",
            "singletons",
        ],
        &table,
    );
    println!(
        "note: paper savings: 65% (Drosophila WGS) vs 57% (Sargasso); Sargasso yields far more clusters"
    );
    rows
}
