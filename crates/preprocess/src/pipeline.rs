//! The combined preprocessing pipeline and its Table-2 accounting.

use crate::lucy::{Lucy, LucyConfig, TrimOutcome};
use crate::repeats::{RepeatLibrary, StatRepeatConfig};
use pgasm_seq::{DnaSeq, FragmentStore, QualityTrack};
use pgasm_simgen::{ReadKind, ReadSet};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreprocessConfig {
    /// Trimmer settings.
    pub lucy: LucyConfig,
    /// Statistical repeat discovery settings (None = known library only).
    pub stat_repeats: Option<StatRepeatConfig>,
    /// Masking k (must match any known library merged in).
    pub mask_k: usize,
    /// A fragment is invalidated when its longest unmasked run after
    /// masking falls below this (it can never form a ψ-length match).
    pub min_unmasked_run: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            lucy: LucyConfig::default(),
            stat_repeats: Some(StatRepeatConfig::default()),
            mask_k: 16,
            min_unmasked_run: 50,
        }
    }
}

/// Per-strategy before/after accounting (the paper's Table 2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// (fragments, bases) before preprocessing, by strategy label.
    pub before: HashMap<String, (usize, usize)>,
    /// (fragments, bases) surviving preprocessing, by strategy label.
    pub after: HashMap<String, (usize, usize)>,
    /// Fragments rejected by trimming.
    pub rejected_by_trim: usize,
    /// Fragments invalidated by repeat masking.
    pub rejected_by_mask: usize,
    /// Total bases masked in surviving fragments.
    pub masked_bases: usize,
}

impl PreprocessStats {
    /// Formatted rows `(label, n_before, bp_before, n_after, bp_after)`
    /// in the paper's MF/HC/BAC/WGS order, then any other labels.
    pub fn table_rows(&self) -> Vec<(String, usize, usize, usize, usize)> {
        let mut labels: Vec<&String> = self.before.keys().collect();
        let order = ["MF", "HC", "BAC", "WGS"];
        labels.sort_by_key(|l| order.iter().position(|o| o == l).unwrap_or(order.len()));
        labels
            .into_iter()
            .map(|l| {
                let (nb, bb) = self.before.get(l).copied().unwrap_or((0, 0));
                let (na, ba) = self.after.get(l).copied().unwrap_or((0, 0));
                (l.clone(), nb, bb, na, ba)
            })
            .collect()
    }
}

/// Output of preprocessing: the surviving masked fragments and the
/// mapping back to original read indices.
#[derive(Debug, Clone, PartialEq)]
pub struct PreprocessOutput {
    /// Trimmed, masked, surviving fragments — the *clustering* view
    /// (masked repeats cannot seed or extend matches).
    pub store: FragmentStore,
    /// The same fragments trimmed but *unmasked* — the *assembly* view
    /// (soft-masking: repeats steer clustering, but the assembler
    /// aligns the real bases, as CAP3 does with lowercase masking).
    pub store_unmasked: FragmentStore,
    /// Trimmed per-fragment quality tracks (index-parallel with the
    /// stores), for quality-aware assembly.
    pub quals: Vec<QualityTrack>,
    /// For each surviving fragment, the index of its original read.
    pub origin: Vec<usize>,
    /// Accounting.
    pub stats: PreprocessStats,
}

/// The preprocessing pipeline.
pub struct Preprocessor {
    config: PreprocessConfig,
    lucy: Lucy,
    known_repeats: RepeatLibrary,
}

impl Preprocessor {
    /// Build a preprocessor screening against `vectors` and masking
    /// `known_repeats` (e.g. a curated repeat database).
    pub fn new(config: PreprocessConfig, vectors: &[DnaSeq], known_repeats: &[DnaSeq]) -> Preprocessor {
        let lucy = Lucy::new(config.lucy.clone(), vectors);
        let known = RepeatLibrary::from_known(config.mask_k, known_repeats);
        Preprocessor { config, lucy, known_repeats: known }
    }

    /// Run the full pipeline over a read set.
    pub fn run(&self, reads: &ReadSet) -> PreprocessOutput {
        let mut stats = PreprocessStats::default();
        for (seq, prov) in reads.seqs.iter().zip(&reads.provenance) {
            let e = stats.before.entry(prov.kind.label().to_string()).or_default();
            e.0 += 1;
            e.1 += seq.len();
        }

        // Phase 1: trim.
        let mut trimmed: Vec<(usize, DnaSeq, QualityTrack, ReadKind)> = Vec::new();
        for (i, (seq, qual)) in reads.seqs.iter().zip(&reads.quals).enumerate() {
            match self.lucy.trim(seq, qual) {
                TrimOutcome::Keep { start, end } => {
                    trimmed.push((
                        i,
                        seq.slice(start, end),
                        qual.slice(start, end),
                        reads.provenance[i].kind,
                    ));
                }
                TrimOutcome::Reject => stats.rejected_by_trim += 1,
            }
        }

        // Phase 2: repeat library = known ∪ statistically discovered.
        let mut library = self.known_repeats.clone();
        if let Some(cfg) = &self.config.stat_repeats {
            let mut cfg = *cfg;
            cfg.k = self.config.mask_k;
            let seqs: Vec<DnaSeq> = trimmed.iter().map(|(_, s, _, _)| s.clone()).collect();
            let stat = RepeatLibrary::from_statistics(&seqs, &cfg);
            library.merge(&stat);
        }

        // Phase 3: mask and invalidate.
        let mut store = FragmentStore::new();
        let mut store_unmasked = FragmentStore::new();
        let mut quals = Vec::new();
        let mut origin = Vec::new();
        for (i, seq, qual, kind) in trimmed {
            let mut masked = seq.clone();
            stats.masked_bases += library.mask(&mut masked);
            if masked.longest_unmasked_run() < self.config.min_unmasked_run {
                stats.rejected_by_mask += 1;
                continue;
            }
            let e = stats.after.entry(kind.label().to_string()).or_default();
            e.0 += 1;
            e.1 += masked.len();
            store.push(&masked);
            store_unmasked.push(&seq);
            quals.push(qual);
            origin.push(i);
        }
        PreprocessOutput { store, store_unmasked, quals, origin, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgasm_seq::QualityTrack;
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    use pgasm_simgen::vector::VECTOR_SEQ;
    use pgasm_simgen::Provenance;

    fn tiny_readset(seqs: Vec<DnaSeq>, kind: ReadKind) -> ReadSet {
        let quals = seqs.iter().map(|s| QualityTrack::uniform(s.len(), 40)).collect();
        let provenance =
            seqs.iter().map(|_| Provenance { genome: 0, start: 0, end: 0, reverse: false, kind }).collect();
        ReadSet { seqs, quals, provenance }
    }

    #[test]
    fn passthrough_for_clean_unique_reads() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let seqs: Vec<DnaSeq> = (0..20).map(|_| pgasm_simgen::genome::random_dna(&mut rng, 300)).collect();
        let reads = tiny_readset(seqs, ReadKind::Wgs);
        let cfg = PreprocessConfig { stat_repeats: None, ..PreprocessConfig::default() };
        let pp = Preprocessor::new(cfg, &[DnaSeq::from(VECTOR_SEQ)], &[]);
        let out = pp.run(&reads);
        assert_eq!(out.store.num_seqs(), 20);
        assert_eq!(out.stats.rejected_by_trim, 0);
        assert_eq!(out.stats.rejected_by_mask, 0);
    }

    #[test]
    fn repeat_saturated_reads_invalidated() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2);
        let repeat = pgasm_simgen::genome::random_dna(&mut rng, 400);
        // Reads that are pure repeat + a few unique reads.
        let mut seqs: Vec<DnaSeq> = (0..30).map(|_| repeat.clone()).collect();
        for _ in 0..5 {
            seqs.push(pgasm_simgen::genome::random_dna(&mut rng, 400));
        }
        let reads = tiny_readset(seqs, ReadKind::Wgs);
        let cfg = PreprocessConfig { stat_repeats: None, ..PreprocessConfig::default() };
        let pp = Preprocessor::new(cfg, &[], std::slice::from_ref(&repeat));
        let out = pp.run(&reads);
        assert_eq!(out.stats.rejected_by_mask, 30, "pure-repeat reads must die");
        assert_eq!(out.store.num_seqs(), 5);
    }

    #[test]
    fn table_rows_order_and_counts() {
        let mut reads = tiny_readset(
            vec![DnaSeq::from_codes(vec![0; 300]), DnaSeq::from_codes(vec![1; 300])],
            ReadKind::Mf,
        );
        let more = tiny_readset(vec![DnaSeq::from_codes(vec![2; 300])], ReadKind::Wgs);
        reads.extend(more);
        let cfg = PreprocessConfig { stat_repeats: None, ..PreprocessConfig::default() };
        let pp = Preprocessor::new(cfg, &[], &[]);
        let out = pp.run(&reads);
        let rows = out.stats.table_rows();
        assert_eq!(rows[0].0, "MF");
        assert_eq!(rows[0].1, 2);
        assert_eq!(rows.last().unwrap().0, "WGS");
    }

    #[test]
    fn end_to_end_with_simulated_artifacts() {
        // Full realism: genome + repeats + vector + quality decay.
        let genome = Genome::generate(&GenomeSpec::small(), 3);
        let mut sampler = Sampler::new(&genome, SamplerConfig::default_scaled(), 4);
        let reads = sampler.wgs(120);
        let pp = Preprocessor::new(
            PreprocessConfig::default(),
            &[DnaSeq::from(VECTOR_SEQ)],
            &genome.repeat_library,
        );
        let out = pp.run(&reads);
        // Most reads survive, some repeat-heavy ones die, and bases were
        // actually masked (the genome is 30% repeat).
        assert!(out.store.num_seqs() > 30, "too few survivors: {}", out.store.num_seqs());
        assert!(out.store.num_seqs() < 120, "nothing was filtered");
        assert!(out.stats.masked_bases > 0);
        assert_eq!(out.origin.len(), out.store.num_seqs());
        // Origins index into the original read set.
        for &o in &out.origin {
            assert!(o < reads.len());
        }
    }

    #[test]
    fn statistical_masking_reduces_pair_workload() {
        // Without any known library, the statistical pass alone should
        // mask a heavily repeated element.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let repeat = pgasm_simgen::genome::random_dna(&mut rng, 200);
        let mut seqs = Vec::new();
        for _ in 0..60 {
            let mut r = pgasm_simgen::genome::random_dna(&mut rng, 150);
            r.extend_from(&repeat);
            r.extend_from(&pgasm_simgen::genome::random_dna(&mut rng, 150));
            seqs.push(r);
        }
        let reads = tiny_readset(seqs, ReadKind::Wgs);
        let cfg = PreprocessConfig {
            stat_repeats: Some(StatRepeatConfig {
                sample_fraction: 0.3,
                threshold_factor: 4.0,
                ..Default::default()
            }),
            ..PreprocessConfig::default()
        };
        let pp = Preprocessor::new(cfg, &[], &[]);
        let out = pp.run(&reads);
        assert!(out.stats.masked_bases > 60 * 100, "masked only {} bases", out.stats.masked_bases);
    }
}
