//! # pgasm-preprocess — fragment preprocessing (§8)
//!
//! "As with any assembler, the first step in our framework is to
//! preprocess the input fragments": remove cloning-vector contamination
//! and low-quality ends (the job of Lucy, reimplemented in [`lucy`]),
//! and mask repeats against a database of known and statistically
//! defined repeats ([`repeats`]). "An efficient masking procedure is
//! important because unmasked repeats cause spurious overlaps that
//! cannot be resolved" — the masking ablation experiment quantifies
//! exactly that.
//!
//! [`pipeline`] ties both into a single [`pipeline::Preprocessor`] that
//! produces the Table-2 style per-strategy accounting.

pub mod artifact;
pub mod lucy;
pub mod pipeline;
pub mod repeats;

pub use artifact::PREPROCESS_CODEC_SCHEMA;
pub use lucy::{LucyConfig, TrimOutcome};
pub use pipeline::{PreprocessConfig, PreprocessStats, Preprocessor};
pub use repeats::{RepeatLibrary, StatRepeatConfig};
