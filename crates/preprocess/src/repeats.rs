//! Repeat masking: known-library and statistically-defined repeats.
//!
//! §8: "we designed a database of known and statistically defined
//! repeats and screened all fragments against it. The matching portions
//! are masked with special symbols." §9.1 describes how the statistical
//! part is built for a new genome: "Repeats can be identified through
//! their statistical over-representation in a random sample. Because WGS
//! fragments themselves comprise a random sample, we used … randomly
//! chosen fragments (0.1× coverage) to predict high-copy sequences."

use pgasm_seq::{DnaSeq, KmerIter};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Parameters for statistical repeat discovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatRepeatConfig {
    /// k-mer length for frequency counting.
    pub k: usize,
    /// Fraction of reads sampled for counting (paper: 0.1× coverage).
    pub sample_fraction: f64,
    /// A k-mer is called repetitive when its count exceeds
    /// `threshold_factor ×` the mean count of observed k-mers.
    pub threshold_factor: f64,
    /// Seed for the read subsample.
    pub seed: u64,
}

impl Default for StatRepeatConfig {
    fn default() -> Self {
        // A larger sample separates the count distributions: unique
        // k-mers stay near the mean while high-copy k-mers scale with
        // their genome frequency, so a modest multiple of the mean
        // singles them out without touching unique sequence.
        StatRepeatConfig { k: 16, sample_fraction: 0.25, threshold_factor: 4.0, seed: 0xC0FFEE }
    }
}

/// An indexed repeat database: the set of k-mers to mask.
#[derive(Debug, Clone, Default)]
pub struct RepeatLibrary {
    k: usize,
    kmers: HashSet<u64>,
}

impl RepeatLibrary {
    /// Empty library with the given k.
    pub fn empty(k: usize) -> RepeatLibrary {
        RepeatLibrary { k, kmers: HashSet::new() }
    }

    /// Build from known repeat consensus sequences (both strands are
    /// indexed: repeats are found in either orientation).
    pub fn from_known(k: usize, repeats: &[DnaSeq]) -> RepeatLibrary {
        let mut lib = RepeatLibrary::empty(k);
        for r in repeats {
            lib.add_sequence(r);
            lib.add_sequence(&r.reverse_complement());
        }
        lib
    }

    /// Discover statistically over-represented k-mers in a random
    /// subsample of `reads` and build the library from them.
    pub fn from_statistics(reads: &[DnaSeq], config: &StatRepeatConfig) -> RepeatLibrary {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut idx: Vec<usize> = (0..reads.len()).collect();
        idx.shuffle(&mut rng);
        let take = ((reads.len() as f64 * config.sample_fraction).ceil() as usize).clamp(1, reads.len());
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for &i in idx.iter().take(take) {
            for (_, kmer) in KmerIter::new(reads[i].codes(), config.k) {
                *counts.entry(kmer).or_default() += 1;
            }
        }
        if counts.is_empty() {
            return RepeatLibrary::empty(config.k);
        }
        let mean = counts.values().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        let threshold = (mean * config.threshold_factor).max(2.0);
        let kmers: HashSet<u64> =
            counts.into_iter().filter(|&(_, c)| c as f64 > threshold).map(|(k, _)| k).collect();
        RepeatLibrary { k: config.k, kmers }
    }

    /// Add every k-mer of a sequence.
    pub fn add_sequence(&mut self, seq: &DnaSeq) {
        for (_, kmer) in KmerIter::new(seq.codes(), self.k) {
            self.kmers.insert(kmer);
        }
    }

    /// Merge another library (same k) into this one.
    pub fn merge(&mut self, other: &RepeatLibrary) {
        assert_eq!(self.k, other.k, "library k mismatch");
        self.kmers.extend(&other.kmers);
    }

    /// Number of indexed repetitive k-mers.
    pub fn len(&self) -> usize {
        self.kmers.len()
    }

    /// True when no repeats are indexed.
    pub fn is_empty(&self) -> bool {
        self.kmers.is_empty()
    }

    /// k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mask every position of `seq` covered by a library k-mer; returns
    /// the number of bases masked.
    pub fn mask(&self, seq: &mut DnaSeq) -> usize {
        if self.kmers.is_empty() || seq.len() < self.k {
            return 0;
        }
        let hits: Vec<usize> = KmerIter::new(seq.codes(), self.k)
            .filter(|(_, kmer)| self.kmers.contains(kmer))
            .map(|(pos, _)| pos)
            .collect();
        let mut masked = 0usize;
        let codes = seq.codes_mut();
        for pos in hits {
            for c in codes.iter_mut().skip(pos).take(self.k) {
                if pgasm_seq::is_base_code(*c) {
                    *c = pgasm_seq::MASK;
                    masked += 1;
                }
            }
        }
        masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_seq(rng: &mut impl Rng, len: usize) -> DnaSeq {
        DnaSeq::from_codes((0..len).map(|_| rng.gen_range(0..4u8)).collect())
    }

    #[test]
    fn known_library_masks_copies() {
        let repeat = DnaSeq::from("ACGTTGCAAGGCTTACGGATCGAT");
        let lib = RepeatLibrary::from_known(8, std::slice::from_ref(&repeat));
        let mut read = DnaSeq::from("TTTTTTTT");
        read.extend_from(&repeat);
        read.extend_from(&DnaSeq::from("GGGGGGGG"));
        let masked = lib.mask(&mut read);
        assert_eq!(masked, repeat.len());
        assert_eq!(read.slice(0, 8).to_ascii(), b"TTTTTTTT");
        assert!(read.slice(8, 8 + repeat.len()).codes().iter().all(|&c| c == pgasm_seq::MASK));
    }

    #[test]
    fn reverse_complement_copies_also_masked() {
        let repeat = DnaSeq::from("ACGTTGCAAGGCTTACGGATCGAT");
        let lib = RepeatLibrary::from_known(8, std::slice::from_ref(&repeat));
        let mut read = repeat.reverse_complement();
        let masked = lib.mask(&mut read);
        assert_eq!(masked, repeat.len());
    }

    #[test]
    fn statistical_discovery_finds_high_copy() {
        let mut rng = StdRng::seed_from_u64(42);
        let repeat = random_seq(&mut rng, 60);
        // 60 reads carrying the repeat + 40 unique reads.
        let mut reads = Vec::new();
        for _ in 0..60 {
            let mut r = random_seq(&mut rng, 40);
            r.extend_from(&repeat);
            r.extend_from(&random_seq(&mut rng, 40));
            reads.push(r);
        }
        for _ in 0..40 {
            reads.push(random_seq(&mut rng, 140));
        }
        let cfg = StatRepeatConfig { k: 12, sample_fraction: 0.5, threshold_factor: 4.0, seed: 7 };
        let lib = RepeatLibrary::from_statistics(&reads, &cfg);
        assert!(!lib.is_empty(), "no repeats discovered");
        // The repeat is masked in a fresh carrier read.
        let mut probe = random_seq(&mut rng, 30);
        probe.extend_from(&repeat);
        probe.extend_from(&random_seq(&mut rng, 30));
        let masked = lib.mask(&mut probe);
        assert!(masked >= 40, "only {masked} bases masked");
        // Unique sequence is not masked.
        let mut unique = random_seq(&mut rng, 150);
        let masked_unique = lib.mask(&mut unique);
        assert!(masked_unique < 24, "unique read over-masked: {masked_unique}");
    }

    #[test]
    fn empty_library_masks_nothing() {
        let lib = RepeatLibrary::empty(10);
        let mut read = DnaSeq::from("ACGTACGTACGTACGT");
        assert_eq!(lib.mask(&mut read), 0);
        assert_eq!(read.unmasked_len(), 16);
    }

    #[test]
    fn merge_unions_kmers() {
        let a = RepeatLibrary::from_known(8, &[DnaSeq::from("ACGTTGCAAGGCTTAC")]);
        let b = RepeatLibrary::from_known(8, &[DnaSeq::from("TTGGCCAATTGGCCAA")]);
        let mut m = a.clone();
        m.merge(&b);
        assert!(m.len() >= a.len().max(b.len()));
    }

    #[test]
    fn short_reads_unaffected() {
        let lib = RepeatLibrary::from_known(10, &[DnaSeq::from("ACGTTGCAAGGC")]);
        let mut read = DnaSeq::from("ACGTT");
        assert_eq!(lib.mask(&mut read), 0);
    }
}
