//! Lucy-style quality trimming and vector screening.
//!
//! Lucy (Chou & Holmes 2001) finds the high-quality, vector-free insert
//! region of a raw Sanger read. Our reimplementation does the same in
//! two passes: (1) mark read positions covered by exact k-mers of the
//! vector library, (2) find the longest quality-clean window that avoids
//! them, and reject reads whose surviving insert is too short.

use pgasm_seq::{pack_kmer, DnaSeq, KmerIter, QualityTrack};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Trimmer configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LucyConfig {
    /// k-mer length for vector matching.
    pub vector_k: usize,
    /// Sliding-window length for quality assessment.
    pub quality_window: usize,
    /// Minimum mean quality a window must reach.
    pub min_quality: f64,
    /// Minimum surviving insert length; shorter reads are rejected.
    pub min_len: usize,
}

impl Default for LucyConfig {
    fn default() -> Self {
        LucyConfig { vector_k: 12, quality_window: 20, min_quality: 15.0, min_len: 100 }
    }
}

/// Result of trimming one read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrimOutcome {
    /// Keep the half-open range of the original read.
    Keep {
        /// Insert start.
        start: usize,
        /// Insert end (exclusive).
        end: usize,
    },
    /// The read has no usable insert.
    Reject,
}

/// The trimmer, holding the indexed vector library.
pub struct Lucy {
    config: LucyConfig,
    vector_kmers: HashSet<u64>,
}

impl Lucy {
    /// Build a trimmer from the vector sequences to screen against.
    pub fn new(config: LucyConfig, vectors: &[DnaSeq]) -> Lucy {
        let mut vector_kmers = HashSet::new();
        for v in vectors {
            for (_, k) in KmerIter::new(v.codes(), config.vector_k) {
                vector_kmers.insert(k);
            }
        }
        Lucy { config, vector_kmers }
    }

    /// Trim one read.
    pub fn trim(&self, seq: &DnaSeq, qual: &QualityTrack) -> TrimOutcome {
        assert_eq!(seq.len(), qual.len(), "sequence/quality length mismatch");
        let k = self.config.vector_k;
        // Pass 1: vector mask.
        let mut is_vector = vec![false; seq.len()];
        if seq.len() >= k {
            for (pos, kmer) in KmerIter::new(seq.codes(), k) {
                if self.vector_kmers.contains(&kmer) {
                    for v in is_vector.iter_mut().skip(pos).take(k) {
                        *v = true;
                    }
                }
            }
        }
        // Pass 2: quality window, with vector positions forced to
        // quality 0 so the window search avoids them.
        let mut q = qual.values().to_vec();
        for (i, &v) in is_vector.iter().enumerate() {
            if v {
                q[i] = 0;
            }
        }
        let track = QualityTrack::from_values(q);
        match track.best_window(self.config.quality_window, self.config.min_quality) {
            Some((mut start, mut end)) => {
                // Shave any vector bases straddling the window boundary.
                while start < end && is_vector[start] {
                    start += 1;
                }
                while end > start && is_vector[end - 1] {
                    end -= 1;
                }
                if end - start >= self.config.min_len {
                    TrimOutcome::Keep { start, end }
                } else {
                    TrimOutcome::Reject
                }
            }
            None => TrimOutcome::Reject,
        }
    }

    /// Number of indexed vector k-mers (diagnostics).
    pub fn library_size(&self) -> usize {
        self.vector_kmers.len()
    }

    /// Is this exact k-mer part of the vector library?
    pub fn is_vector_kmer(&self, codes: &[u8]) -> bool {
        pack_kmer(codes).is_some_and(|k| self.vector_kmers.contains(&k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> LucyConfig {
        LucyConfig { vector_k: 8, quality_window: 10, min_quality: 15.0, min_len: 20 }
    }

    fn vector() -> DnaSeq {
        DnaSeq::from("GCTAGCCTGCAGGTCGACTCTAGAGGATCCCCGGGTACCGAGCTC")
    }

    #[test]
    fn clean_read_kept_whole() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let read = DnaSeq::from("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT");
        let qual = QualityTrack::uniform(read.len(), 40);
        match lucy.trim(&read, &qual) {
            TrimOutcome::Keep { start, end } => {
                assert_eq!((start, end), (0, read.len()));
            }
            TrimOutcome::Reject => panic!("clean read rejected"),
        }
    }

    #[test]
    fn vector_prefix_removed() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let v = vector();
        let mut read = v.slice(0, 20);
        let insert = DnaSeq::from("ACGTTGCAACGTTGCAACGTTGCAACGTTGCAACGTTGCA");
        read.extend_from(&insert);
        let qual = QualityTrack::uniform(read.len(), 40);
        match lucy.trim(&read, &qual) {
            TrimOutcome::Keep { start, end } => {
                assert!(start >= 13, "vector prefix not removed (start {start})");
                assert_eq!(end, read.len());
                assert!(end - start >= 20);
            }
            TrimOutcome::Reject => panic!("read with good insert rejected"),
        }
    }

    #[test]
    fn low_quality_read_rejected() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let read = DnaSeq::from("ACGTACGTACGTACGTACGTACGTACGTACGT");
        let qual = QualityTrack::uniform(read.len(), 5);
        assert_eq!(lucy.trim(&read, &qual), TrimOutcome::Reject);
    }

    #[test]
    fn short_insert_rejected() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let read = DnaSeq::from("ACGTACGTACGTAC"); // 14 < min_len 20
        let qual = QualityTrack::uniform(read.len(), 40);
        assert_eq!(lucy.trim(&read, &qual), TrimOutcome::Reject);
    }

    #[test]
    fn low_quality_ends_trimmed() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let read = DnaSeq::from_codes(vec![0; 60]);
        let mut q = vec![40u8; 60];
        for v in q.iter_mut().take(10) {
            *v = 3;
        }
        for v in q.iter_mut().skip(50) {
            *v = 3;
        }
        match lucy.trim(&read, &QualityTrack::from_values(q)) {
            TrimOutcome::Keep { start, end } => {
                // A passing window can include a few low bases at its
                // boundary, so the cut lands just inside the bad flanks.
                assert!(start >= 3 && end <= 57, "ends not trimmed: ({start},{end})");
                assert!(end - start >= 40);
            }
            TrimOutcome::Reject => panic!("rejected"),
        }
    }

    #[test]
    fn entirely_vector_read_rejected() {
        let lucy = Lucy::new(cfg(), &[vector()]);
        let v = vector();
        let qual = QualityTrack::uniform(v.len(), 40);
        assert_eq!(lucy.trim(&v, &qual), TrimOutcome::Reject);
    }
}
