//! On-disk serialization of a [`PreprocessOutput`] — the artifact the
//! cache persists so a repeated run skips trimming, repeat discovery,
//! and masking entirely.
//!
//! Uses the checked length-prefixed framing of [`pgasm_seq::wire`].
//! Decoding validates the cross-array invariants (stores, quality
//! tracks, and origin map are index-parallel) so a corrupt or truncated
//! frame reports an error — the cache treats that as a miss and
//! recomputes — instead of handing the pipeline an inconsistent output.

use crate::pipeline::{PreprocessOutput, PreprocessStats};
use pgasm_seq::wire::{checked_len, Reader, WireError, Writer};
use pgasm_seq::{FragmentStore, QualityTrack};
use std::collections::HashMap;

/// Bump when the encoding below changes shape — a cache entry written
/// by a different schema is rejected and rebuilt, never misparsed.
pub const PREPROCESS_CODEC_SCHEMA: u32 = 1;

fn put_label_map(w: &mut Writer, map: &HashMap<String, (usize, usize)>) {
    // HashMap iteration order is unstable; sort so equal outputs encode
    // to identical bytes (the cache digests payloads).
    let mut entries: Vec<(&String, &(usize, usize))> = map.iter().collect();
    entries.sort();
    w.put_u32(checked_len(entries.len()));
    for (label, &(n, bases)) in entries {
        w.put_str(label);
        w.put_u64(n as u64);
        w.put_u64(bases as u64);
    }
}

fn get_label_map(r: &mut Reader<'_>) -> Result<HashMap<String, (usize, usize)>, WireError> {
    let n = r.get_u32()? as usize;
    let mut map = HashMap::with_capacity(n.min(1024));
    for _ in 0..n {
        let label = r.get_str()?.to_string();
        let count = r.get_u64()? as usize;
        let bases = r.get_u64()? as usize;
        if map.insert(label, (count, bases)).is_some() {
            return Err(WireError::Malformed("duplicate strategy label"));
        }
    }
    Ok(map)
}

impl PreprocessOutput {
    /// Serialize into `w`. Inverse of [`PreprocessOutput::decode_from`].
    pub fn encode_into(&self, w: &mut Writer) {
        self.store.encode_into(w);
        self.store_unmasked.encode_into(w);
        w.put_u32(checked_len(self.quals.len()));
        for q in &self.quals {
            w.put_bytes(q.values());
        }
        w.put_u32(checked_len(self.origin.len()));
        for &o in &self.origin {
            w.put_u64(o as u64);
        }
        put_label_map(w, &self.stats.before);
        put_label_map(w, &self.stats.after);
        w.put_u64(self.stats.rejected_by_trim as u64);
        w.put_u64(self.stats.rejected_by_mask as u64);
        w.put_u64(self.stats.masked_bases as u64);
    }

    /// Decode an output previously written by
    /// [`PreprocessOutput::encode_into`].
    pub fn decode_from(r: &mut Reader<'_>) -> Result<PreprocessOutput, WireError> {
        let store = FragmentStore::decode_from(r)?;
        let store_unmasked = FragmentStore::decode_from(r)?;
        let num_quals = r.get_u32()? as usize;
        let mut quals = Vec::new();
        quals.try_reserve_exact(num_quals).map_err(|_| WireError::Malformed("quality count implausible"))?;
        for _ in 0..num_quals {
            quals.push(QualityTrack::from_values(r.get_bytes()?.to_vec()));
        }
        let num_origin = r.get_u32()? as usize;
        let mut origin = Vec::new();
        origin.try_reserve_exact(num_origin).map_err(|_| WireError::Malformed("origin count implausible"))?;
        for _ in 0..num_origin {
            origin.push(r.get_u64()? as usize);
        }
        let stats = PreprocessStats {
            before: get_label_map(r)?,
            after: get_label_map(r)?,
            rejected_by_trim: r.get_u64()? as usize,
            rejected_by_mask: r.get_u64()? as usize,
            masked_bases: r.get_u64()? as usize,
        };

        // The four collections are index-parallel by construction; a
        // frame that breaks that would panic downstream, so reject it.
        let n = store.num_seqs();
        if store_unmasked.num_seqs() != n {
            return Err(WireError::Malformed("masked/unmasked store sizes disagree"));
        }
        if quals.len() != n || origin.len() != n {
            return Err(WireError::Malformed("quality/origin arrays not index-parallel with store"));
        }
        for (i, qual) in quals.iter().enumerate() {
            let id = pgasm_seq::SeqId(i as u32);
            if store.len_of(id) != store_unmasked.len_of(id) || qual.len() != store.len_of(id) {
                return Err(WireError::Malformed("fragment/quality length mismatch"));
            }
        }

        Ok(PreprocessOutput { store, store_unmasked, quals, origin, stats })
    }

    /// Convenience: encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.store.total_len() * 2 + 256);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Convenience: decode a full buffer, requiring exact consumption.
    pub fn decode(buf: &[u8]) -> Result<PreprocessOutput, WireError> {
        let mut r = Reader::new(buf);
        let out = PreprocessOutput::decode_from(&mut r)?;
        r.expect_end()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{PreprocessConfig, Preprocessor};
    use pgasm_seq::DnaSeq;
    use pgasm_simgen::genome::{Genome, GenomeSpec};
    use pgasm_simgen::sampler::{Sampler, SamplerConfig};
    use pgasm_simgen::vector::VECTOR_SEQ;

    fn sample_output() -> PreprocessOutput {
        let genome = Genome::generate(&GenomeSpec::small(), 11);
        let mut sampler = Sampler::new(&genome, SamplerConfig::default_scaled(), 12);
        let reads = sampler.wgs(60);
        let pp = Preprocessor::new(
            PreprocessConfig::default(),
            &[DnaSeq::from(VECTOR_SEQ)],
            &genome.repeat_library,
        );
        pp.run(&reads)
    }

    #[test]
    fn round_trip_is_exact() {
        let out = sample_output();
        assert!(out.store.num_seqs() > 0, "fixture must produce survivors");
        let bytes = out.encode();
        let back = PreprocessOutput::decode(&bytes).expect("round trip");
        assert_eq!(back, out);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_output().encode();
        for cut in (0..bytes.len()).step_by(13) {
            assert!(PreprocessOutput::decode(&bytes[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn cross_array_corruption_rejected() {
        let out = sample_output();
        // Re-encode with one quality track dropped: frame parses but the
        // index-parallel invariant must catch it.
        let mut crippled = PreprocessOutput {
            store: out.store.clone(),
            store_unmasked: out.store_unmasked.clone(),
            quals: out.quals.clone(),
            origin: out.origin.clone(),
            stats: out.stats.clone(),
        };
        crippled.quals.pop();
        let bytes = crippled.encode();
        assert!(PreprocessOutput::decode(&bytes).is_err());
    }
}
