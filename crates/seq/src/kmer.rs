//! Packed k-mer encoding and rolling enumeration.
//!
//! The parallel GST construction (§6) buckets suffixes by their w-length
//! prefixes; the repeat-masking preprocessor counts k-mer frequencies on a
//! random sample. Both want a dense integer code for short words: 2 bits
//! per base packed into a `u64`, supporting k ≤ 31. A window containing a
//! masked base has no code.

use crate::alphabet::is_base_code;

/// Pack codes (`len ≤ 31`, all real bases) into a 2-bit-per-base integer,
/// first base in the most significant position so numeric order equals
/// lexicographic order. Returns `None` if any position is masked.
#[inline]
pub fn pack_kmer(codes: &[u8]) -> Option<u64> {
    debug_assert!(codes.len() <= 31);
    let mut v: u64 = 0;
    for &c in codes {
        if !is_base_code(c) {
            return None;
        }
        v = (v << 2) | c as u64;
    }
    Some(v)
}

/// Unpack a k-mer code back to base codes.
pub fn unpack_kmer(mut packed: u64, k: usize) -> Vec<u8> {
    let mut out = vec![0u8; k];
    for i in (0..k).rev() {
        out[i] = (packed & 3) as u8;
        packed >>= 2;
    }
    out
}

/// Rolling iterator over all k-mers of a code sequence, yielding
/// `(start_position, packed)` and skipping windows containing masked
/// bases in O(1) amortised per position.
pub struct KmerIter<'a> {
    codes: &'a [u8],
    k: usize,
    pos: usize,
    current: u64,
    valid: usize,
    mask: u64,
}

impl<'a> KmerIter<'a> {
    /// New iterator over `codes` with word length `k` (1 ≤ k ≤ 31).
    pub fn new(codes: &'a [u8], k: usize) -> Self {
        assert!((1..=31).contains(&k), "k must be in 1..=31");
        let mask = if k == 32 { u64::MAX } else { (1u64 << (2 * k)) - 1 };
        KmerIter { codes, k, pos: 0, current: 0, valid: 0, mask }
    }
}

impl Iterator for KmerIter<'_> {
    type Item = (usize, u64);

    fn next(&mut self) -> Option<(usize, u64)> {
        while self.pos < self.codes.len() {
            let c = self.codes[self.pos];
            self.pos += 1;
            if is_base_code(c) {
                self.current = ((self.current << 2) | c as u64) & self.mask;
                self.valid += 1;
                if self.valid >= self.k {
                    return Some((self.pos - self.k, self.current));
                }
            } else {
                self.valid = 0;
                self.current = 0;
            }
        }
        None
    }
}

/// Number of distinct k-mers (4^k), usable as a bucket count.
#[inline]
pub fn num_kmers(k: usize) -> u64 {
    1u64 << (2 * k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dna::DnaSeq;

    #[test]
    fn pack_unpack_roundtrip() {
        let s = DnaSeq::from("ACGTGCA");
        let packed = pack_kmer(s.codes()).unwrap();
        assert_eq!(unpack_kmer(packed, 7), s.codes());
    }

    #[test]
    fn pack_order_is_lexicographic() {
        let a = pack_kmer(DnaSeq::from("AAC").codes()).unwrap();
        let b = pack_kmer(DnaSeq::from("AAG").codes()).unwrap();
        let c = pack_kmer(DnaSeq::from("ACA").codes()).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn pack_rejects_masked() {
        let s = DnaSeq::from("ACNGT");
        assert_eq!(pack_kmer(s.codes()), None);
    }

    #[test]
    fn rolling_matches_naive() {
        let s = DnaSeq::from("ACGTACGTTGCA");
        let k = 4;
        let rolled: Vec<_> = KmerIter::new(s.codes(), k).collect();
        let naive: Vec<_> =
            (0..=s.len() - k).filter_map(|i| pack_kmer(&s.codes()[i..i + k]).map(|p| (i, p))).collect();
        assert_eq!(rolled, naive);
    }

    #[test]
    fn rolling_skips_masked_windows() {
        let s = DnaSeq::from("ACGNACGT");
        let k = 3;
        let rolled: Vec<_> = KmerIter::new(s.codes(), k).collect();
        // Windows overlapping the N at index 3 are skipped.
        let naive: Vec<_> =
            (0..=s.len() - k).filter_map(|i| pack_kmer(&s.codes()[i..i + k]).map(|p| (i, p))).collect();
        assert_eq!(rolled, naive);
        assert_eq!(rolled.len(), 3); // ACG, ACG, CGT
    }

    #[test]
    fn short_input_yields_nothing() {
        let s = DnaSeq::from("AC");
        assert_eq!(KmerIter::new(s.codes(), 3).count(), 0);
    }

    #[test]
    fn num_kmers_counts() {
        assert_eq!(num_kmers(1), 4);
        assert_eq!(num_kmers(11), 4_194_304);
    }
}
