//! Checked length-prefixed little-endian framing for persisted
//! artifacts.
//!
//! Same framing style as `pgasm_mpisim::codec` (scalars and
//! `u32`-length-prefixed slices, little-endian), with two differences
//! that matter for on-disk data:
//!
//! - **writes guard their length conversions** — a slice longer than
//!   `u32::MAX` panics with a clear message instead of silently
//!   truncating the prefix and corrupting the frame;
//! - **reads are fallible** — every accessor returns a [`WireError`]
//!   instead of panicking, so a truncated or garbage cache file
//!   degrades to a cache miss rather than aborting the run.

use std::fmt;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the announced content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The content was structurally invalid (bad magic, inconsistent
    /// lengths, out-of-range values).
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convert a slice length to the `u32` wire prefix, panicking with a
/// clear message when it cannot be represented (encoding it truncated
/// would produce a frame that decodes to garbage).
#[inline]
pub fn checked_len(len: usize) -> u32 {
    u32::try_from(len)
        .unwrap_or_else(|_| panic!("slice of {len} bytes exceeds the u32 length prefix (max {})", u32::MAX))
}

/// Append-only encoder over a plain byte vector.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// New empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// New writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(checked_len(v.len()));
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) -> &mut Self {
        self.put_u32(checked_len(v.len()));
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed `u64` slice.
    pub fn put_u64_slice(&mut self, v: &[u64]) -> &mut Self {
        self.put_u32(checked_len(v.len()));
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Fallible decoder over a received byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated { needed: n, have: self.buf.len() });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read exactly `n` raw (unprefixed) bytes — for fixed-size fields
    /// whose length is established out of band.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::Malformed("invalid UTF-8 string"))
    }

    /// Read a length-prefixed `u32` slice.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len.checked_mul(4).ok_or(WireError::Malformed("u32 slice length overflow"))?)?;
        Ok(raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Read a length-prefixed `u64` slice.
    pub fn get_u64_slice(&mut self) -> Result<Vec<u64>, WireError> {
        let len = self.get_u32()? as usize;
        let raw = self.take(len.checked_mul(8).ok_or(WireError::Malformed("u64 slice length overflow"))?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Assert full consumption — trailing bytes mean the frame and the
    /// decoder disagree about the schema.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after frame"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_slices() {
        let mut w = Writer::new();
        w.put_u8(7).put_u32(1 << 20).put_u64(1 << 40).put_bytes(b"payload").put_str("header");
        w.put_u32_slice(&[1, 2, 3]).put_u64_slice(&[u64::MAX, 0]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 1 << 20);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "header");
        assert_eq!(r.get_u32_slice().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64_slice().unwrap(), vec![u64::MAX, 0]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut w = Writer::new();
        w.put_bytes(b"hello").put_u32(9);
        let buf = w.finish();
        // Cut the frame at every possible point: each prefix must either
        // decode or error, never panic.
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let _ = r.get_bytes().and_then(|_| r.get_u32());
        }
        let mut r = Reader::new(&buf[..3]);
        assert_eq!(r.get_u32(), Err(WireError::Truncated { needed: 4, have: 3 }));
    }

    #[test]
    fn announced_length_beyond_buffer_errors() {
        // A corrupt length prefix claiming 1 GiB of content.
        let mut w = Writer::new();
        w.put_u32(1 << 30).put_u8(0);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u32(1).put_u32(2);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        r.get_u32().unwrap();
        assert_eq!(r.expect_end(), Err(WireError::Malformed("trailing bytes after frame")));
    }

    #[test]
    fn checked_len_boundary() {
        assert_eq!(checked_len(0), 0);
        assert_eq!(checked_len(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 length prefix")]
    fn checked_len_overflow_panics() {
        let _ = checked_len(u32::MAX as usize + 1);
    }

    #[test]
    fn bad_utf8_is_malformed() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_str(), Err(WireError::Malformed("invalid UTF-8 string")));
    }
}
