//! # pgasm-seq — sequence substrate
//!
//! Foundational sequence types for the `pgasm` parallel genome assembly
//! framework: the DNA alphabet and its encodings, owned DNA sequences,
//! a space-efficient [`FragmentStore`] holding millions of genomic
//! fragments in a single flat allocation (the paper's linear-space
//! requirement starts here), k-mer packing used by the suffix-tree
//! bucketing step, per-base quality tracks, and a small FASTA/FASTQ
//! reader/writer used by the examples.
//!
//! The paper (Kalyanaraman et al., JPDC 2007, §4) represents fragments as
//! strings over Σ = {A, C, G, T}; preprocessing (§8) additionally *masks*
//! repetitive regions with special symbols which must never participate in
//! exact matches. We encode that as a fifth code, [`alphabet::MASK`].

pub mod alphabet;
pub mod dna;
pub mod fasta;
pub mod fragment;
pub mod kmer;
pub mod quality;
pub mod wire;

pub use alphabet::{code_to_ascii, complement_code, is_base_code, Base, MASK};
pub use dna::DnaSeq;
pub use fragment::{FragId, FragmentStore, SeqId, Strand};
pub use kmer::{pack_kmer, KmerIter};
pub use quality::QualityTrack;
pub use wire::{Reader, WireError, Writer};
