//! Owned DNA sequences over the coded alphabet.

use crate::alphabet::{ascii_to_code, code_to_ascii, complement_code, is_base_code, Base, MASK};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned DNA sequence stored as one byte code per base
/// (see [`crate::alphabet`]). Positions are 0-based internally; the
/// paper's notation `s(i)` with 1-based positions maps to `&seq[i-1..]`.
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DnaSeq {
    codes: Vec<u8>,
}

impl DnaSeq {
    /// New empty sequence.
    pub fn new() -> Self {
        DnaSeq { codes: Vec::new() }
    }

    /// New empty sequence with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        DnaSeq { codes: Vec::with_capacity(cap) }
    }

    /// Build from raw codes. Any code above [`MASK`] is clamped to `MASK`.
    pub fn from_codes(codes: Vec<u8>) -> Self {
        let mut codes = codes;
        for c in &mut codes {
            if *c > MASK {
                *c = MASK;
            }
        }
        DnaSeq { codes }
    }

    /// Parse from ASCII (`ACGTacgt`; everything else becomes masked).
    pub fn from_ascii(ascii: &[u8]) -> Self {
        DnaSeq { codes: ascii.iter().map(|&b| ascii_to_code(b)).collect() }
    }

    /// Render to ASCII (`ACGT`, masked → `X`).
    pub fn to_ascii(&self) -> Vec<u8> {
        self.codes.iter().map(|&c| code_to_ascii(c)).collect()
    }

    /// Length in bases.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if the sequence has no bases.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Raw code slice.
    #[inline]
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Mutable raw code slice.
    #[inline]
    pub fn codes_mut(&mut self) -> &mut [u8] {
        &mut self.codes
    }

    /// Append one base.
    #[inline]
    pub fn push(&mut self, base: Base) {
        self.codes.push(base.code());
    }

    /// Append one raw code (clamped to `MASK` if invalid).
    #[inline]
    pub fn push_code(&mut self, code: u8) {
        self.codes.push(code.min(MASK));
    }

    /// Append another sequence.
    pub fn extend_from(&mut self, other: &DnaSeq) {
        self.codes.extend_from_slice(&other.codes);
    }

    /// Sub-sequence `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> DnaSeq {
        DnaSeq { codes: self.codes[start..end].to_vec() }
    }

    /// The reverse complement: reverse the sequence and complement each
    /// base (A↔T, C↔G); masked positions stay masked. DNA is
    /// double-stranded, and fragments may have been sequenced from either
    /// strand, so the assembly pipeline indexes both orientations (§5).
    pub fn reverse_complement(&self) -> DnaSeq {
        DnaSeq { codes: self.codes.iter().rev().map(|&c| complement_code(c)).collect() }
    }

    /// Mask positions `[start, end)`.
    pub fn mask_range(&mut self, start: usize, end: usize) {
        let end = end.min(self.codes.len());
        for c in &mut self.codes[start..end] {
            *c = MASK;
        }
    }

    /// Number of unmasked (real) bases.
    pub fn unmasked_len(&self) -> usize {
        self.codes.iter().filter(|&&c| is_base_code(c)).count()
    }

    /// Fraction of bases that are masked (0.0 for an empty sequence).
    pub fn masked_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        1.0 - self.unmasked_len() as f64 / self.codes.len() as f64
    }

    /// Longest run of consecutive unmasked bases.
    pub fn longest_unmasked_run(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for &c in &self.codes {
            if is_base_code(c) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }

    /// Iterator over maximal unmasked runs as `(start, end)` half-open
    /// ranges. Exact matches may never cross a masked base, so the suffix
    /// tree enumerates suffixes per-run (see `pgasm-gst`).
    pub fn unmasked_runs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        UnmaskedRuns { codes: &self.codes, pos: 0 }
    }
}

struct UnmaskedRuns<'a> {
    codes: &'a [u8],
    pos: usize,
}

impl Iterator for UnmaskedRuns<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.pos < self.codes.len() && !is_base_code(self.codes[self.pos]) {
            self.pos += 1;
        }
        if self.pos >= self.codes.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.codes.len() && is_base_code(self.codes[self.pos]) {
            self.pos += 1;
        }
        Some((start, self.pos))
    }
}

impl fmt::Debug for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ascii = self.to_ascii();
        let shown = if ascii.len() > 60 { &ascii[..60] } else { &ascii[..] };
        write!(
            f,
            "DnaSeq(len={}, {}{})",
            self.len(),
            String::from_utf8_lossy(shown),
            if ascii.len() > 60 { "…" } else { "" }
        )
    }
}

impl fmt::Display for DnaSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", String::from_utf8_lossy(&self.to_ascii()))
    }
}

impl std::ops::Index<usize> for DnaSeq {
    type Output = u8;

    #[inline]
    fn index(&self, i: usize) -> &u8 {
        &self.codes[i]
    }
}

impl FromIterator<Base> for DnaSeq {
    fn from_iter<I: IntoIterator<Item = Base>>(iter: I) -> Self {
        DnaSeq { codes: iter.into_iter().map(|b| b.code()).collect() }
    }
}

impl From<&str> for DnaSeq {
    fn from(s: &str) -> Self {
        DnaSeq::from_ascii(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_roundtrip() {
        let s = DnaSeq::from("ACGTACGT");
        assert_eq!(s.len(), 8);
        assert_eq!(s.to_ascii(), b"ACGTACGT");
    }

    #[test]
    fn revcomp_known() {
        let s = DnaSeq::from("AACGT");
        assert_eq!(s.reverse_complement().to_ascii(), b"ACGTT");
    }

    #[test]
    fn revcomp_involution() {
        let s = DnaSeq::from("ACGTTGCATTGACGATCG");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    fn revcomp_preserves_mask() {
        let mut s = DnaSeq::from("ACGTA");
        s.mask_range(1, 3);
        let rc = s.reverse_complement();
        // A C G T A with positions 1..3 masked is A X X T A; its
        // reverse complement is T A X X T.
        assert_eq!(rc.to_ascii(), b"TAXXT");
    }

    #[test]
    fn masking_statistics() {
        let mut s = DnaSeq::from("ACGTACGTAC");
        s.mask_range(2, 5);
        assert_eq!(s.unmasked_len(), 7);
        assert!((s.masked_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(s.longest_unmasked_run(), 5);
    }

    #[test]
    fn unmasked_runs_iteration() {
        let mut s = DnaSeq::from("ACGTACGTAC");
        s.mask_range(2, 4);
        s.mask_range(7, 8);
        let runs: Vec<_> = s.unmasked_runs().collect();
        assert_eq!(runs, vec![(0, 2), (4, 7), (8, 10)]);
    }

    #[test]
    fn unmasked_runs_edge_cases() {
        assert_eq!(DnaSeq::new().unmasked_runs().count(), 0);
        let mut all_masked = DnaSeq::from("ACG");
        all_masked.mask_range(0, 3);
        assert_eq!(all_masked.unmasked_runs().count(), 0);
        let clean = DnaSeq::from("ACGT");
        assert_eq!(clean.unmasked_runs().collect::<Vec<_>>(), vec![(0, 4)]);
    }

    #[test]
    fn n_becomes_masked() {
        let s = DnaSeq::from("ACNNGT");
        assert_eq!(s.unmasked_len(), 4);
        assert_eq!(s.to_ascii(), b"ACXXGT");
    }

    #[test]
    fn slice_and_extend() {
        let s = DnaSeq::from("ACGTAC");
        assert_eq!(s.slice(1, 4).to_ascii(), b"CGT");
        let mut t = s.slice(0, 2);
        t.extend_from(&s.slice(4, 6));
        assert_eq!(t.to_ascii(), b"ACAC");
    }

    #[test]
    fn from_codes_clamps() {
        let s = DnaSeq::from_codes(vec![0, 1, 9, 3]);
        assert_eq!(s.codes(), &[0, 1, MASK, 3]);
    }
}
