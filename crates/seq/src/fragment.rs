//! Space-efficient storage for large fragment sets.
//!
//! A sequencing project holds millions of fragments totalling billions of
//! bases; per-fragment allocations would waste both memory and locality.
//! [`FragmentStore`] keeps every fragment concatenated in one flat code
//! buffer with an offset table — O(N) space with a small constant, which
//! is the substrate the paper's linear-space guarantee builds on.

use crate::alphabet::{complement_code, MASK};
use crate::dna::DnaSeq;
use crate::wire::{Reader, WireError, Writer};
use serde::{Deserialize, Serialize};

/// Identifier of an *original* input fragment (strand-agnostic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FragId(pub u32);

/// Identifier of a stored sequence: a (fragment, strand) pair in a
/// double-stranded store, or just a fragment in a single-stranded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SeqId(pub u32);

/// Which strand of the original fragment a stored sequence represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strand {
    /// The fragment as sequenced.
    Forward,
    /// Its reverse complement.
    Reverse,
}

/// Flat, append-only storage for a set of DNA fragments.
///
/// In *single-stranded* form, sequence `i` is input fragment `i`. Calling
/// [`FragmentStore::with_reverse_complements`] produces a *double-stranded*
/// store in which sequence `2i` is fragment `i` forward and sequence
/// `2i + 1` is its reverse complement — the input the generalized suffix
/// tree is built over (§5: "the GST built on all input fragments and their
/// reverse complementary counterparts").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentStore {
    text: Vec<u8>,
    offsets: Vec<u64>,
    double_stranded: bool,
}

impl FragmentStore {
    /// New empty single-stranded store.
    pub fn new() -> Self {
        FragmentStore { text: Vec::new(), offsets: vec![0], double_stranded: false }
    }

    /// New empty store with reserved capacity for `total_bases` bases
    /// across `num_frags` fragments.
    pub fn with_capacity(num_frags: usize, total_bases: usize) -> Self {
        let mut offsets = Vec::with_capacity(num_frags + 1);
        offsets.push(0);
        FragmentStore { text: Vec::with_capacity(total_bases), offsets, double_stranded: false }
    }

    /// Build a store from owned sequences.
    pub fn from_seqs<I: IntoIterator<Item = DnaSeq>>(seqs: I) -> Self {
        let mut store = FragmentStore::new();
        for s in seqs {
            store.push(&s);
        }
        store
    }

    /// Append a fragment; returns its [`SeqId`].
    ///
    /// # Panics
    /// Panics if called on a double-stranded store (its layout pairs
    /// forward/reverse sequences and cannot be extended piecemeal).
    pub fn push(&mut self, seq: &DnaSeq) -> SeqId {
        assert!(!self.double_stranded, "cannot push into a double-stranded store");
        self.push_codes(seq.codes())
    }

    /// Append raw codes; returns the new [`SeqId`].
    pub fn push_codes(&mut self, codes: &[u8]) -> SeqId {
        let id = SeqId((self.offsets.len() - 1) as u32);
        self.text.extend_from_slice(codes);
        self.offsets.push(self.text.len() as u64);
        id
    }

    /// Number of stored sequences (2× the fragment count when
    /// double-stranded).
    #[inline]
    pub fn num_seqs(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of original fragments.
    #[inline]
    pub fn num_fragments(&self) -> usize {
        if self.double_stranded {
            self.num_seqs() / 2
        } else {
            self.num_seqs()
        }
    }

    /// Total stored bases N (counts both strands when double-stranded).
    #[inline]
    pub fn total_len(&self) -> usize {
        self.text.len()
    }

    /// Total bases over original fragments only.
    #[inline]
    pub fn total_fragment_len(&self) -> usize {
        if self.double_stranded {
            self.text.len() / 2
        } else {
            self.text.len()
        }
    }

    /// True if this store holds forward/reverse pairs.
    #[inline]
    pub fn is_double_stranded(&self) -> bool {
        self.double_stranded
    }

    /// Code slice of sequence `id`.
    #[inline]
    pub fn get(&self, id: SeqId) -> &[u8] {
        let i = id.0 as usize;
        &self.text[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Length of sequence `id`.
    #[inline]
    pub fn len_of(&self, id: SeqId) -> usize {
        let i = id.0 as usize;
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Owned copy of sequence `id`.
    pub fn get_seq(&self, id: SeqId) -> DnaSeq {
        DnaSeq::from_codes(self.get(id).to_vec())
    }

    /// Map a stored sequence to its original fragment and strand.
    #[inline]
    pub fn seq_to_fragment(&self, id: SeqId) -> (FragId, Strand) {
        if self.double_stranded {
            let frag = FragId(id.0 / 2);
            let strand = if id.0.is_multiple_of(2) { Strand::Forward } else { Strand::Reverse };
            (frag, strand)
        } else {
            (FragId(id.0), Strand::Forward)
        }
    }

    /// Map a fragment and strand to its stored sequence id.
    #[inline]
    pub fn fragment_to_seq(&self, frag: FragId, strand: Strand) -> SeqId {
        if self.double_stranded {
            SeqId(frag.0 * 2 + matches!(strand, Strand::Reverse) as u32)
        } else {
            assert!(matches!(strand, Strand::Forward), "single-stranded store");
            SeqId(frag.0)
        }
    }

    /// Iterate `(SeqId, codes)` over all stored sequences.
    pub fn iter(&self) -> impl Iterator<Item = (SeqId, &[u8])> {
        (0..self.num_seqs()).map(move |i| (SeqId(i as u32), self.get(SeqId(i as u32))))
    }

    /// Produce the double-stranded companion store: for each fragment `i`,
    /// sequence `2i` is the fragment and `2i + 1` its reverse complement.
    ///
    /// # Panics
    /// Panics if the store is already double-stranded.
    pub fn with_reverse_complements(&self) -> FragmentStore {
        assert!(!self.double_stranded, "store is already double-stranded");
        let mut out = FragmentStore {
            text: Vec::with_capacity(self.text.len() * 2),
            offsets: Vec::with_capacity(self.num_seqs() * 2 + 1),
            double_stranded: true,
        };
        out.offsets.push(0);
        for (_, codes) in self.iter() {
            out.text.extend_from_slice(codes);
            out.offsets.push(out.text.len() as u64);
            out.text.extend(codes.iter().rev().map(|&c| complement_code(c)));
            out.offsets.push(out.text.len() as u64);
        }
        out
    }

    /// Retain only the fragments for which `keep` returns true, returning
    /// the new store and the surviving original [`FragId`]s in order.
    /// Only valid on single-stranded stores.
    pub fn filter(&self, mut keep: impl FnMut(FragId, &[u8]) -> bool) -> (FragmentStore, Vec<FragId>) {
        assert!(!self.double_stranded, "filter operates on single-stranded stores");
        let mut out = FragmentStore::new();
        let mut kept = Vec::new();
        for (id, codes) in self.iter() {
            let frag = FragId(id.0);
            if keep(frag, codes) {
                out.push_codes(codes);
                kept.push(frag);
            }
        }
        (out, kept)
    }

    /// Serialize into `w` (checked length-prefixed framing; see
    /// [`crate::wire`]). The inverse is [`FragmentStore::decode_from`].
    pub fn encode_into(&self, w: &mut Writer) {
        w.put_u8(self.double_stranded as u8);
        w.put_bytes(&self.text);
        w.put_u64_slice(&self.offsets);
    }

    /// Decode a store previously written by
    /// [`FragmentStore::encode_into`]. Every structural invariant is
    /// re-checked so a corrupt frame errors instead of producing a store
    /// that panics later.
    pub fn decode_from(r: &mut Reader<'_>) -> Result<FragmentStore, WireError> {
        let double_stranded = match r.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(WireError::Malformed("strandedness flag out of range")),
        };
        let text = r.get_bytes()?.to_vec();
        let offsets = r.get_u64_slice()?;
        if offsets.first() != Some(&0) {
            return Err(WireError::Malformed("offset table must start at 0"));
        }
        if offsets.last() != Some(&(text.len() as u64)) {
            return Err(WireError::Malformed("offset table must end at text length"));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(WireError::Malformed("offset table not monotonic"));
        }
        if double_stranded && (offsets.len() - 1) % 2 != 0 {
            return Err(WireError::Malformed("double-stranded store with odd sequence count"));
        }
        if text.iter().any(|&c| c > MASK) {
            return Err(WireError::Malformed("base code out of range"));
        }
        Ok(FragmentStore { text, offsets, double_stranded })
    }

    /// Split fragments round-robin across `p` parts such that each part
    /// holds roughly `N / p` bases (the paper's initial distribution for
    /// parallel GST construction). Returns per-part fragment id lists.
    pub fn partition_by_bases(&self, p: usize) -> Vec<Vec<SeqId>> {
        assert!(p > 0);
        let target = (self.total_len() as f64 / p as f64).ceil();
        let mut parts: Vec<Vec<SeqId>> = vec![Vec::new(); p];
        let mut part = 0usize;
        let mut load = 0usize;
        for (id, codes) in self.iter() {
            // Move on when adding this fragment would overshoot the
            // target by more than half the fragment (keeps parts within
            // about half a fragment of each other).
            if part + 1 < p && load as f64 + codes.len() as f64 / 2.0 > target {
                part += 1;
                load = 0;
            }
            parts[part].push(id);
            load += codes.len();
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store3() -> FragmentStore {
        FragmentStore::from_seqs(vec![DnaSeq::from("ACGT"), DnaSeq::from("GGGTTT"), DnaSeq::from("A")])
    }

    #[test]
    fn basic_accessors() {
        let s = store3();
        assert_eq!(s.num_seqs(), 3);
        assert_eq!(s.num_fragments(), 3);
        assert_eq!(s.total_len(), 11);
        assert_eq!(s.get(SeqId(0)), DnaSeq::from("ACGT").codes());
        assert_eq!(s.len_of(SeqId(1)), 6);
        assert_eq!(s.get_seq(SeqId(2)).to_ascii(), b"A");
    }

    #[test]
    fn double_stranded_layout() {
        let ds = store3().with_reverse_complements();
        assert!(ds.is_double_stranded());
        assert_eq!(ds.num_seqs(), 6);
        assert_eq!(ds.num_fragments(), 3);
        assert_eq!(ds.total_fragment_len(), 11);
        assert_eq!(ds.get_seq(SeqId(0)).to_ascii(), b"ACGT");
        assert_eq!(ds.get_seq(SeqId(1)).to_ascii(), b"ACGT"); // ACGT is its own revcomp
        assert_eq!(ds.get_seq(SeqId(2)).to_ascii(), b"GGGTTT");
        assert_eq!(ds.get_seq(SeqId(3)).to_ascii(), b"AAACCC");
    }

    #[test]
    fn seq_fragment_mapping() {
        let ds = store3().with_reverse_complements();
        assert_eq!(ds.seq_to_fragment(SeqId(0)), (FragId(0), Strand::Forward));
        assert_eq!(ds.seq_to_fragment(SeqId(3)), (FragId(1), Strand::Reverse));
        assert_eq!(ds.fragment_to_seq(FragId(2), Strand::Forward), SeqId(4));
        assert_eq!(ds.fragment_to_seq(FragId(2), Strand::Reverse), SeqId(5));
    }

    #[test]
    fn filter_keeps_subset() {
        let s = store3();
        let (f, kept) = s.filter(|_, codes| codes.len() >= 4);
        assert_eq!(f.num_seqs(), 2);
        assert_eq!(kept, vec![FragId(0), FragId(1)]);
        assert_eq!(f.get_seq(SeqId(1)).to_ascii(), b"GGGTTT");
    }

    #[test]
    fn partition_balances_bases() {
        let mut s = FragmentStore::new();
        for _ in 0..100 {
            s.push(&DnaSeq::from("ACGTACGTAC"));
        }
        let parts = s.partition_by_bases(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
        for p in &parts {
            assert!(p.len() >= 20, "unbalanced partition: {}", p.len());
        }
    }

    #[test]
    fn partition_more_parts_than_fragments() {
        let s = FragmentStore::from_seqs(vec![DnaSeq::from("ACGT")]);
        let parts = s.partition_by_bases(3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 1);
    }

    #[test]
    #[should_panic(expected = "double-stranded")]
    fn push_into_double_stranded_panics() {
        let mut ds = store3().with_reverse_complements();
        ds.push(&DnaSeq::from("AC"));
    }

    #[test]
    fn codec_round_trip() {
        for store in [store3(), store3().with_reverse_complements(), FragmentStore::new()] {
            let mut w = Writer::new();
            store.encode_into(&mut w);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            let back = FragmentStore::decode_from(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, store);
        }
    }

    #[test]
    fn codec_rejects_corruption() {
        let mut w = Writer::new();
        store3().with_reverse_complements().encode_into(&mut w);
        let buf = w.finish();
        // Truncation at every prefix either errors or is never silently
        // accepted as the full store.
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(FragmentStore::decode_from(&mut r).is_err(), "cut at {cut} decoded");
        }
        // Flip the strandedness flag: sequence count parity check trips
        // only for odd counts, so corrupt an offset instead.
        let mut bad = buf.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF; // final offset no longer equals text length
        let mut r = Reader::new(&bad);
        assert!(FragmentStore::decode_from(&mut r).is_err());
    }
}
