//! Minimal FASTA / FASTQ-lite reading and writing.
//!
//! The examples and benchmark harness persist synthetic datasets as
//! standard FASTA so they can be inspected with ordinary bio tooling.
//! The "FASTQ-lite" variant carries the quality track the Lucy-style
//! trimmer needs.

use crate::dna::DnaSeq;
use crate::quality::QualityTrack;
use std::io::{self, BufRead, Write};

/// Largest phred value representable in phred+33 ASCII (`'~'` = 126).
/// Both directions clamp to this, so write→read is `min(q, MAX)` and
/// parsed records always round-trip exactly.
pub const MAX_FASTQ_QUAL: u8 = 126 - 33;

/// One FASTA record: a header line (without `>`) and a sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FastaRecord {
    /// Header text following `>`.
    pub header: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// One FASTQ record: header, sequence, and per-base quality.
#[derive(Debug, Clone, PartialEq)]
pub struct FastqRecord {
    /// Header text following `@`.
    pub header: String,
    /// The sequence.
    pub seq: DnaSeq,
    /// Phred qualities, one per base.
    pub qual: QualityTrack,
}

/// Read all FASTA records from a reader.
pub fn read_fasta<R: BufRead>(reader: R) -> io::Result<Vec<FastaRecord>> {
    let mut records = Vec::new();
    let mut header: Option<String> = None;
    let mut seq = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let line = line.trim_end();
        if let Some(h) = line.strip_prefix('>') {
            if let Some(prev) = header.take() {
                records.push(FastaRecord { header: prev, seq: DnaSeq::from_ascii(&seq) });
                seq.clear();
            }
            header = Some(h.to_string());
        } else if header.is_some() {
            seq.extend_from_slice(line.as_bytes());
        } else if !line.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "sequence data before first FASTA header",
            ));
        }
    }
    if let Some(prev) = header.take() {
        records.push(FastaRecord { header: prev, seq: DnaSeq::from_ascii(&seq) });
    }
    Ok(records)
}

/// Write FASTA records, wrapping sequence lines at `width` characters.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastaRecord], width: usize) -> io::Result<()> {
    let width = width.max(1);
    for r in records {
        writeln!(w, ">{}", r.header)?;
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(width) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Read FASTQ records (strict 4-line form).
pub fn read_fastq<R: BufRead>(reader: R) -> io::Result<Vec<FastqRecord>> {
    let mut lines = reader.lines();
    let mut records = Vec::new();
    while let Some(h) = lines.next() {
        let h = h?;
        if h.trim().is_empty() {
            continue;
        }
        let header = h
            .strip_prefix('@')
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "FASTQ record must start with @"))?
            .to_string();
        let seq_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "missing sequence line"))??;
        let plus =
            lines.next().ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "missing + line"))??;
        if !plus.starts_with('+') {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "expected + separator"));
        }
        let qual_line = lines
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "missing quality line"))??;
        if qual_line.len() != seq_line.len() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "quality/sequence length mismatch"));
        }
        let qual = QualityTrack::from_values(
            qual_line.bytes().map(|b| b.saturating_sub(33).min(MAX_FASTQ_QUAL)).collect(),
        );
        records.push(FastqRecord { header, seq: DnaSeq::from_ascii(seq_line.as_bytes()), qual });
    }
    Ok(records)
}

/// Write FASTQ records (phred+33).
pub fn write_fastq<W: Write>(mut w: W, records: &[FastqRecord]) -> io::Result<()> {
    for r in records {
        writeln!(w, "@{}", r.header)?;
        w.write_all(&r.seq.to_ascii())?;
        w.write_all(b"\n+\n")?;
        let q: Vec<u8> = r.qual.values().iter().map(|&v| v.min(MAX_FASTQ_QUAL) + 33).collect();
        w.write_all(&q)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn fasta_roundtrip() {
        let records = vec![
            FastaRecord { header: "frag1 test".into(), seq: DnaSeq::from("ACGTACGTACGT") },
            FastaRecord { header: "frag2".into(), seq: DnaSeq::from("GG") },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &records, 5).unwrap();
        let back = read_fasta(Cursor::new(buf)).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn fasta_multiline_sequences() {
        let text = ">a\nACG\nTAC\n>b\nGG\n";
        let recs = read_fasta(Cursor::new(text)).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq.to_ascii(), b"ACGTAC");
        assert_eq!(recs[1].header, "b");
    }

    #[test]
    fn fasta_rejects_headerless_data() {
        assert!(read_fasta(Cursor::new("ACGT\n")).is_err());
    }

    #[test]
    fn fastq_roundtrip() {
        let records = vec![FastqRecord {
            header: "r1".into(),
            seq: DnaSeq::from("ACGT"),
            qual: QualityTrack::from_values(vec![30, 31, 32, 33]),
        }];
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let back = read_fastq(Cursor::new(buf)).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn fastq_quality_round_trip_full_u8_range() {
        // Exhaustive property over every u8 quality value: one write +
        // read clamps to the representable phred+33 range, and a second
        // pass is the identity — qualities ≥ 94 used to come back as 93
        // from an unclamped parse while the writer had clamped, breaking
        // symmetry.
        let records: Vec<FastqRecord> = (0u16..=255)
            .map(|q| FastqRecord {
                header: format!("q{q}"),
                seq: DnaSeq::from("ACGT"),
                qual: QualityTrack::uniform(4, q as u8),
            })
            .collect();
        let mut buf = Vec::new();
        write_fastq(&mut buf, &records).unwrap();
        let once = read_fastq(Cursor::new(&buf)).unwrap();
        for (rec, q) in once.iter().zip(0u16..=255) {
            let expect = (q as u8).min(MAX_FASTQ_QUAL);
            assert!(rec.qual.values().iter().all(|&v| v == expect), "q={q} read back {:?}", rec.qual);
        }
        // Parsed records are inside the representable range, so a second
        // round-trip is exact.
        let mut buf2 = Vec::new();
        write_fastq(&mut buf2, &once).unwrap();
        let twice = read_fastq(Cursor::new(&buf2)).unwrap();
        assert_eq!(twice, once);
    }

    #[test]
    fn fastq_length_mismatch_rejected() {
        let text = "@r\nACGT\n+\n!!\n";
        assert!(read_fastq(Cursor::new(text)).is_err());
    }

    #[test]
    fn fastq_missing_plus_rejected() {
        let text = "@r\nACGT\nXXXX\n!!!!\n";
        assert!(read_fastq(Cursor::new(text)).is_err());
    }
}
