//! The DNA alphabet Σ = {A, C, G, T} and its byte encoding.
//!
//! Bases are stored as small integer *codes*: `A = 0`, `C = 1`, `G = 2`,
//! `T = 3`. Code [`MASK`] (= 4) marks bases hidden by repeat masking or
//! vector screening; a masked position never matches anything (not even
//! another masked position) in exact-match contexts, which is how the
//! paper prevents characterised repeats from inducing spurious overlaps.

use serde::{Deserialize, Serialize};

/// Number of real nucleotide codes (|Σ| = 4).
pub const SIGMA: usize = 4;

/// Code for a masked base (repeat-masked or quality-trimmed interior).
pub const MASK: u8 = 4;

/// A strongly-typed nucleotide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Base {
    /// Adenine (code 0).
    A = 0,
    /// Cytosine (code 1).
    C = 1,
    /// Guanine (code 2).
    G = 2,
    /// Thymine (code 3).
    T = 3,
}

impl Base {
    /// All four bases in code order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// The Watson–Crick complement (A↔T, C↔G).
    #[inline]
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::T => Base::A,
        }
    }

    /// Numeric code of this base (0..4).
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Base from a code in `0..4`; `None` otherwise.
    #[inline]
    pub fn from_code(code: u8) -> Option<Base> {
        match code {
            0 => Some(Base::A),
            1 => Some(Base::C),
            2 => Some(Base::G),
            3 => Some(Base::T),
            _ => None,
        }
    }

    /// Parse an ASCII nucleotide (case-insensitive). `None` for anything
    /// that is not `ACGTacgt`.
    #[inline]
    pub fn from_ascii(b: u8) -> Option<Base> {
        match b {
            b'A' | b'a' => Some(Base::A),
            b'C' | b'c' => Some(Base::C),
            b'G' | b'g' => Some(Base::G),
            b'T' | b't' => Some(Base::T),
            _ => None,
        }
    }

    /// Upper-case ASCII letter for this base.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        match self {
            Base::A => b'A',
            Base::C => b'C',
            Base::G => b'G',
            Base::T => b'T',
        }
    }
}

/// Is `code` one of the four real nucleotide codes?
#[inline]
pub fn is_base_code(code: u8) -> bool {
    code < SIGMA as u8
}

/// Complement of a code; [`MASK`] complements to itself so that
/// reverse-complementing a masked fragment keeps the masked region masked.
///
/// # Panics
/// Panics in debug builds if `code` is not a valid code (0..=4).
#[inline]
pub fn complement_code(code: u8) -> u8 {
    debug_assert!(code <= MASK, "invalid base code {code}");
    if code < SIGMA as u8 {
        3 - code
    } else {
        MASK
    }
}

/// ASCII rendering of a code; masked bases render as `'X'` following the
/// paper's "masked with special symbols" convention.
#[inline]
pub fn code_to_ascii(code: u8) -> u8 {
    match code {
        0 => b'A',
        1 => b'C',
        2 => b'G',
        3 => b'T',
        _ => b'X',
    }
}

/// Parse an ASCII character to a code: `ACGT` → 0..4, everything else
/// (including `N` ambiguity codes and `X`) → [`MASK`].
#[inline]
pub fn ascii_to_code(b: u8) -> u8 {
    match Base::from_ascii(b) {
        Some(base) => base.code(),
        None => MASK,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_is_involution() {
        for b in Base::ALL {
            assert_eq!(b.complement().complement(), b);
        }
    }

    #[test]
    fn complement_pairs() {
        assert_eq!(Base::A.complement(), Base::T);
        assert_eq!(Base::C.complement(), Base::G);
        assert_eq!(Base::G.complement(), Base::C);
        assert_eq!(Base::T.complement(), Base::A);
    }

    #[test]
    fn code_roundtrip() {
        for b in Base::ALL {
            assert_eq!(Base::from_code(b.code()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii()), Some(b));
            assert_eq!(Base::from_ascii(b.to_ascii().to_ascii_lowercase()), Some(b));
        }
        assert_eq!(Base::from_code(4), None);
        assert_eq!(Base::from_code(255), None);
    }

    #[test]
    fn mask_complements_to_mask() {
        assert_eq!(complement_code(MASK), MASK);
        assert_eq!(complement_code(0), 3);
        assert_eq!(complement_code(1), 2);
    }

    #[test]
    fn ascii_mapping() {
        assert_eq!(ascii_to_code(b'A'), 0);
        assert_eq!(ascii_to_code(b'g'), 2);
        assert_eq!(ascii_to_code(b'N'), MASK);
        assert_eq!(ascii_to_code(b'X'), MASK);
        assert_eq!(code_to_ascii(MASK), b'X');
        assert_eq!(code_to_ascii(3), b'T');
    }

    #[test]
    fn is_base_code_bounds() {
        for c in 0..4u8 {
            assert!(is_base_code(c));
        }
        assert!(!is_base_code(MASK));
        assert!(!is_base_code(200));
    }
}
