//! Per-base quality values.
//!
//! Sequencers emit a quality (phred-like) value per base; quality decays
//! toward the read ends. The Lucy-style trimmer in `pgasm-preprocess`
//! consumes these to find the high-quality insert region, matching the
//! paper's preprocessing stage (§8).

use serde::{Deserialize, Serialize};

/// Phred-scaled quality values for one fragment, one `u8` per base.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityTrack {
    values: Vec<u8>,
}

impl QualityTrack {
    /// Uniform quality `q` over `len` bases.
    pub fn uniform(len: usize, q: u8) -> Self {
        QualityTrack { values: vec![q; len] }
    }

    /// From raw values.
    pub fn from_values(values: Vec<u8>) -> Self {
        QualityTrack { values }
    }

    /// Raw values.
    #[inline]
    pub fn values(&self) -> &[u8] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [u8] {
        &mut self.values
    }

    /// Number of bases covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Mean quality over `[start, end)`; 0.0 for an empty window.
    pub fn mean(&self, start: usize, end: usize) -> f64 {
        let w = &self.values[start..end.min(self.values.len())];
        if w.is_empty() {
            return 0.0;
        }
        w.iter().map(|&q| q as f64).sum::<f64>() / w.len() as f64
    }

    /// The longest window whose *every* sliding `window`-mean is at least
    /// `min_mean`, returned as `(start, end)`. This is the core of
    /// Lucy-style quality trimming: it finds the maximal high-quality
    /// stretch of the read. Returns `None` when no window qualifies.
    pub fn best_window(&self, window: usize, min_mean: f64) -> Option<(usize, usize)> {
        if self.values.len() < window || window == 0 {
            return None;
        }
        let threshold = min_mean * window as f64;
        let mut sum: f64 = self.values[..window].iter().map(|&q| q as f64).sum();
        let mut best: Option<(usize, usize)> = None;
        let mut run_start: Option<usize> = None;
        let close_run = |run_start: &mut Option<usize>, end: usize, best: &mut Option<(usize, usize)>| {
            if let Some(s) = run_start.take() {
                let candidate = (s, end);
                if best.is_none_or(|(bs, be)| candidate.1 - candidate.0 > be - bs) {
                    *best = Some(candidate);
                }
            }
        };
        for i in 0..=self.values.len() - window {
            if i > 0 {
                sum += self.values[i + window - 1] as f64 - self.values[i - 1] as f64;
            }
            if sum + 1e-9 >= threshold {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else {
                close_run(&mut run_start, i + window - 1, &mut best);
            }
        }
        close_run(&mut run_start, self.values.len(), &mut best);
        best
    }

    /// Restrict to `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> QualityTrack {
        QualityTrack { values: self.values[start..end].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_mean() {
        let q = QualityTrack::uniform(10, 30);
        assert_eq!(q.len(), 10);
        assert!((q.mean(0, 10) - 30.0).abs() < 1e-12);
        assert_eq!(q.mean(5, 5), 0.0);
    }

    #[test]
    fn best_window_full_when_clean() {
        let q = QualityTrack::uniform(50, 40);
        assert_eq!(q.best_window(10, 20.0), Some((0, 50)));
    }

    #[test]
    fn best_window_trims_bad_ends() {
        let mut v = vec![40u8; 30];
        for q in v.iter_mut().take(5) {
            *q = 2;
        }
        for q in v.iter_mut().skip(25) {
            *q = 2;
        }
        let q = QualityTrack::from_values(v);
        let (s, e) = q.best_window(5, 30.0).unwrap();
        // A window whose mean clears the bar may still include one low
        // boundary base, so allow the run to start/end one base into the
        // bad flanks.
        assert!(s >= 4 && e <= 26, "window ({s},{e}) should exclude bad ends");
        assert!(e - s >= 18, "window too short: ({s},{e})");
    }

    #[test]
    fn best_window_none_when_all_bad() {
        let q = QualityTrack::uniform(30, 5);
        assert_eq!(q.best_window(10, 20.0), None);
    }

    #[test]
    fn best_window_too_short_input() {
        let q = QualityTrack::uniform(4, 40);
        assert_eq!(q.best_window(5, 20.0), None);
    }

    #[test]
    fn best_window_picks_longest_run() {
        // 10 good, 10 bad, 20 good: the second run should win.
        let mut v = Vec::new();
        v.extend(std::iter::repeat_n(40u8, 10));
        v.extend(std::iter::repeat_n(2u8, 10));
        v.extend(std::iter::repeat_n(40u8, 20));
        let q = QualityTrack::from_values(v);
        let (s, e) = q.best_window(5, 30.0).unwrap();
        // The window mean tolerates one low base at the boundary, so the
        // run may begin slightly inside the bad region.
        assert!(s >= 15 && e == 40, "expected the trailing run, got ({s},{e})");
    }

    #[test]
    fn slice_track() {
        let q = QualityTrack::from_values(vec![1, 2, 3, 4]);
        assert_eq!(q.slice(1, 3).values(), &[2, 3]);
    }
}
