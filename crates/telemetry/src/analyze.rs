//! Post-run critical-path and wall-time-attribution analysis.
//!
//! Consumes the artifacts a traced run already writes — the Chrome
//! trace-event JSON (`--trace-json`) and optionally the structured run
//! report (`--metrics-json`) — and answers the scaling question the
//! raw Perfetto dump leaves to the reader's eye: *which rank, phase,
//! and message class is the run actually waiting on?*
//!
//! Three derived products:
//!
//! - **Happens-before edges**: every `send` instant (args `tag`,
//!   `bytes`, `to`) is paired with the matching `recv` instant (args
//!   `tag`, `from`) by per-`(src, dst, tag)` FIFO order — exact,
//!   because the simulated transport preserves per-sender FIFO
//!   end-to-end, envelopes included.
//! - **Wall-time attribution** per rank: `{compute, wait_blocked,
//!   barrier, comm_modelled, idle_unattributed}`, built from span
//!   interval unions so the categories sum to the rank's measured wall
//!   time (the CI gate asserts the residual stays within tolerance —
//!   a sum drifting past it means mis-paired spans, i.e. a tracing
//!   bug, not noise).
//! - **The critical path**: a backward walk from the globally last
//!   event; compute segments run until the rank was last blocked, a
//!   `wait` hops along the matched send edge to the sending rank, a
//!   `barrier` hops to the last rank entering that barrier instance.
//!
//! Everything here is pure data analysis over parsed events — no
//! clocks, no I/O — so it unit-tests on synthetic traces.

use crate::json::Json;
use crate::report::RunReport;
use crate::trace::{RankTrace, TraceKind, COUNTER_TID_OFFSET};
use std::collections::BTreeMap;

/// Event shape in analyzer form (names/categories owned, since they
/// come back out of JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct AEvent {
    /// Nanoseconds since the run epoch.
    pub ts_ns: u64,
    /// Begin / End / Instant.
    pub kind: TraceKind,
    /// Category label (`"comm"`, `"master"`, …).
    pub cat: String,
    /// Event name (`"wait"`, `"send"`, …).
    pub name: String,
    /// Named numeric args (`tag`, `bytes`, `to`, `from`, …).
    pub args: BTreeMap<String, u64>,
}

impl AEvent {
    fn arg(&self, key: &str) -> Option<u64> {
        self.args.get(key).copied()
    }
}

/// One rank's event track in analyzer form.
#[derive(Debug, Clone, PartialEq)]
pub struct ATrack {
    /// Track id (the rank id of the export).
    pub rank: u64,
    /// Track label from the `thread_name` metadata.
    pub label: String,
    /// Events in timestamp order.
    pub events: Vec<AEvent>,
}

impl ATrack {
    /// Convert an in-memory [`RankTrace`] (for in-process analysis and
    /// tests; file-based callers use [`parse_chrome_trace`]).
    pub fn from_rank_trace(t: &RankTrace) -> ATrack {
        ATrack {
            rank: t.rank as u64,
            label: t.label.clone(),
            events: t
                .events
                .iter()
                .map(|e| AEvent {
                    ts_ns: e.ts_ns,
                    kind: e.kind,
                    cat: e.cat.label().to_string(),
                    name: e.name.to_string(),
                    args: e
                        .args
                        .iter()
                        .filter(|(k, _)| !k.is_empty())
                        .map(|&(k, v)| (k.to_string(), v))
                        .collect(),
                })
                .collect(),
        }
    }

    fn first_ts(&self) -> u64 {
        self.events.first().map(|e| e.ts_ns).unwrap_or(0)
    }

    fn last_ts(&self) -> u64 {
        self.events.last().map(|e| e.ts_ns).unwrap_or(0)
    }
}

/// Parse a Chrome trace-event document (as written by
/// [`crate::Trace::to_chrome_json`]) back into analyzer tracks.
/// Counter tracks (`ph: "C"`, offset tids) and metadata are folded in
/// as labels; span/instant events become [`AEvent`]s.
pub fn parse_chrome_trace(doc: &Json) -> Result<Vec<ATrack>, String> {
    let events = doc.get("traceEvents").and_then(Json::as_arr).ok_or("missing traceEvents array")?;
    let mut tracks: BTreeMap<u64, ATrack> = BTreeMap::new();
    for (n, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Json::as_str).ok_or(format!("event {n}: missing ph"))?;
        let tid = e.get("tid").and_then(Json::as_u64).ok_or(format!("event {n}: missing tid"))?;
        if tid >= COUNTER_TID_OFFSET as u64 {
            continue; // gauge counter tracks are not event timelines
        }
        let track = tracks.entry(tid).or_insert_with(|| ATrack {
            rank: tid,
            label: String::new(),
            events: Vec::new(),
        });
        if ph == "M" {
            if let Some(name) = e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str) {
                // "rank N · label" — keep the label part.
                track.label = name.rsplit(" · ").next().unwrap_or(name).to_string();
            }
            continue;
        }
        let kind = match ph {
            "B" => TraceKind::Begin,
            "E" => TraceKind::End,
            "i" => TraceKind::Instant,
            other => return Err(format!("event {n}: unknown ph '{other}'")),
        };
        let ts_us = e.get("ts").and_then(Json::as_f64).ok_or(format!("event {n}: missing ts"))?;
        let args = e
            .get("args")
            .and_then(Json::as_obj)
            .map(|obj| obj.iter().filter_map(|(k, v)| Some((k.clone(), v.as_u64()?))).collect())
            .unwrap_or_default();
        track.events.push(AEvent {
            ts_ns: (ts_us * 1e3).round() as u64,
            kind,
            cat: e.get("cat").and_then(Json::as_str).unwrap_or_default().to_string(),
            name: e.get("name").and_then(Json::as_str).unwrap_or_default().to_string(),
            args,
        });
    }
    Ok(tracks.into_values().filter(|t| !t.events.is_empty()).collect())
}

/// One reconstructed happens-before edge: a message observed leaving
/// `src` and arriving at `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbEdge {
    /// Sending rank.
    pub src: u64,
    /// Receiving rank.
    pub dst: u64,
    /// Message tag.
    pub tag: u64,
    /// Send timestamp on the source rank.
    pub send_ts_ns: u64,
    /// Receive timestamp on the destination rank.
    pub recv_ts_ns: u64,
}

/// Pair `send` and `recv` instants across tracks into happens-before
/// edges, FIFO per `(src, dst, tag)`. Returns the edges plus the count
/// of unpaired endpoints (sends whose recv was never traced or vice
/// versa — nonzero under ring-buffer overflow or a truncated run).
pub fn pair_edges(tracks: &[ATrack]) -> (Vec<HbEdge>, u64) {
    let mut queues: BTreeMap<(u64, u64, u64), Vec<(u64, u64)>> = BTreeMap::new(); // (send_ts, used=0/1)
    let mut sends = 0u64;
    for t in tracks {
        for e in &t.events {
            if e.kind == TraceKind::Instant && e.name == crate::names::EV_SEND {
                if let (Some(tag), Some(to)) = (e.arg("tag"), e.arg("to")) {
                    queues.entry((t.rank, to, tag)).or_default().push((e.ts_ns, 0));
                    sends += 1;
                }
            }
        }
    }
    let mut edges = Vec::new();
    let mut unpaired_recvs = 0u64;
    let mut cursors: BTreeMap<(u64, u64, u64), usize> = BTreeMap::new();
    for t in tracks {
        for e in &t.events {
            if e.kind == TraceKind::Instant && e.name == crate::names::EV_RECV {
                if let (Some(tag), Some(from)) = (e.arg("tag"), e.arg("from")) {
                    let key = (from, t.rank, tag);
                    let cursor = cursors.entry(key).or_insert(0);
                    match queues.get_mut(&key).and_then(|q| q.get_mut(*cursor)) {
                        Some(slot) => {
                            slot.1 = 1;
                            edges.push(HbEdge {
                                src: from,
                                dst: t.rank,
                                tag,
                                send_ts_ns: slot.0,
                                recv_ts_ns: e.ts_ns,
                            });
                            *cursor += 1;
                        }
                        None => unpaired_recvs += 1,
                    }
                }
            }
        }
    }
    let paired = edges.len() as u64;
    let unpaired = sends.saturating_sub(paired) + unpaired_recvs;
    edges.sort_by_key(|e| (e.recv_ts_ns, e.dst));
    (edges, unpaired)
}

/// Merge possibly-overlapping `(start, end)` intervals.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Length of `a − b` where both are merged interval lists.
fn subtract_len(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let mut total = 0u64;
    let mut bi = 0;
    for &(s, e) in a {
        let mut at = s;
        while bi < b.len() && b[bi].1 <= at {
            bi += 1;
        }
        let mut bj = bi;
        while at < e {
            match b.get(bj) {
                Some(&(bs, be)) if bs < e => {
                    if bs > at {
                        total += bs - at;
                    }
                    at = at.max(be);
                    bj += 1;
                }
                _ => {
                    total += e - at;
                    at = e;
                }
            }
        }
    }
    total
}

/// A blocked interval with its kind and, for waits, the tag awaited.
#[derive(Debug, Clone, PartialEq)]
struct Blocked {
    start_ns: u64,
    end_ns: u64,
    barrier: bool,
    /// Index of this barrier among the track's barriers (barrier only).
    barrier_index: usize,
    /// Tag of the first recv at/after the wait's end (wait only).
    awaited_tag: Option<u64>,
}

/// Extract wait/barrier blocked intervals from one track, annotating
/// waits with the tag of the recv that ended them.
fn blocked_spans(track: &ATrack) -> Vec<Blocked> {
    let mut out = Vec::new();
    let mut open_wait: Option<u64> = None;
    let mut open_barrier: Option<u64> = None;
    let mut barriers = 0usize;
    for (i, e) in track.events.iter().enumerate() {
        if e.cat != "comm" {
            continue;
        }
        match (e.name.as_str(), e.kind) {
            (crate::names::EV_WAIT, TraceKind::Begin) => open_wait = Some(e.ts_ns),
            (crate::names::EV_WAIT, TraceKind::End) => {
                if let Some(start) = open_wait.take() {
                    // The message that ended the wait is delivered (and
                    // its recv instant recorded) right after the span
                    // closes.
                    let awaited_tag = track.events[i..]
                        .iter()
                        .find(|n| n.kind == TraceKind::Instant && n.name == crate::names::EV_RECV)
                        .and_then(|n| n.arg("tag"));
                    out.push(Blocked {
                        start_ns: start,
                        end_ns: e.ts_ns,
                        barrier: false,
                        barrier_index: 0,
                        awaited_tag,
                    });
                }
            }
            (crate::names::EV_BARRIER, TraceKind::Begin) => open_barrier = Some(e.ts_ns),
            (crate::names::EV_BARRIER, TraceKind::End) => {
                if let Some(start) = open_barrier.take() {
                    out.push(Blocked {
                        start_ns: start,
                        end_ns: e.ts_ns,
                        barrier: true,
                        barrier_index: barriers,
                        awaited_tag: None,
                    });
                    barriers += 1;
                }
            }
            _ => {}
        }
    }
    out
}

/// Wall-time attribution for one rank, all in nanoseconds. The five
/// categories partition the rank's traced wall time; `coverage` is
/// their sum over the wall (≈ 1.0 unless span pairing broke).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RankAttribution {
    /// Rank / track id.
    pub rank: u64,
    /// Track label.
    pub label: String,
    /// Traced wall time: last event − first event.
    pub wall_ns: u64,
    /// Inside non-comm work spans and not blocked.
    pub compute_ns: u64,
    /// Blocked in `recv` waits.
    pub wait_blocked_ns: u64,
    /// Blocked in barriers.
    pub barrier_ns: u64,
    /// α–β modelled transfer cost from the metrics report (capped at
    /// the otherwise-unattributed residual; zero without metrics).
    pub comm_modelled_ns: u64,
    /// Residual wall time no category claims.
    pub idle_unattributed_ns: u64,
}

impl RankAttribution {
    /// Sum of the five categories over the wall time (1.0 = perfect).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            return 1.0;
        }
        (self.compute_ns
            + self.wait_blocked_ns
            + self.barrier_ns
            + self.comm_modelled_ns
            + self.idle_unattributed_ns) as f64
            / self.wall_ns as f64
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("label", Json::Str(self.label.clone())),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("compute_ns", Json::Num(self.compute_ns as f64)),
            ("wait_blocked_ns", Json::Num(self.wait_blocked_ns as f64)),
            ("barrier_ns", Json::Num(self.barrier_ns as f64)),
            ("comm_modelled_ns", Json::Num(self.comm_modelled_ns as f64)),
            ("idle_unattributed_ns", Json::Num(self.idle_unattributed_ns as f64)),
            ("coverage", Json::Num(self.coverage())),
        ])
    }
}

/// One segment of the reconstructed critical path, in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// Rank the segment runs on.
    pub rank: u64,
    /// `"compute"`, `"comm"` (a send→recv hop), or `"barrier"`.
    pub kind: String,
    /// Segment start, nanoseconds since epoch.
    pub start_ns: u64,
    /// Segment end.
    pub end_ns: u64,
    /// Deepest enclosing span name (compute) or the tag/label blamed
    /// (comm/barrier).
    pub label: String,
}

impl PathSegment {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("kind", Json::Str(self.kind.clone())),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("end_ns", Json::Num(self.end_ns as f64)),
            ("label", Json::Str(self.label.clone())),
        ])
    }
}

/// One ranked idle gap with the thing the rank was waiting for.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleGap {
    /// Rank that sat idle.
    pub rank: u64,
    /// Gap start, nanoseconds since epoch.
    pub start_ns: u64,
    /// Gap length.
    pub dur_ns: u64,
    /// `"barrier"` or the awaited message tag's label.
    pub blame: String,
}

impl IdleGap {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rank", Json::Num(self.rank as f64)),
            ("start_ns", Json::Num(self.start_ns as f64)),
            ("dur_ns", Json::Num(self.dur_ns as f64)),
            ("blame", Json::Str(self.blame.clone())),
        ])
    }
}

/// Per-stage attribution rollup (summed over the ranks active inside
/// each stage window of the pipeline track).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageAttribution {
    /// Stage name (`"preprocess"`, `"cluster"`, `"assemble"`).
    pub stage: String,
    /// Stage window on the pipeline track, nanoseconds.
    pub wall_ns: u64,
    /// Summed over ranks, clipped to the stage window.
    pub compute_ns: u64,
    /// Blocked in waits within the window, summed over ranks.
    pub wait_blocked_ns: u64,
    /// Blocked in barriers within the window, summed over ranks.
    pub barrier_ns: u64,
}

impl StageAttribution {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("stage", Json::Str(self.stage.clone())),
            ("wall_ns", Json::Num(self.wall_ns as f64)),
            ("compute_ns", Json::Num(self.compute_ns as f64)),
            ("wait_blocked_ns", Json::Num(self.wait_blocked_ns as f64)),
            ("barrier_ns", Json::Num(self.barrier_ns as f64)),
        ])
    }
}

/// The complete analysis: attribution, critical path, ranked gaps.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Analysis {
    /// Per-rank wall-time attribution, ascending by rank.
    pub ranks: Vec<RankAttribution>,
    /// Per-stage rollup (present when a pipeline track with stage
    /// spans was traced).
    pub stages: Vec<StageAttribution>,
    /// The critical path, in run order.
    pub critical_path: Vec<PathSegment>,
    /// Top idle gaps across ranks, longest first.
    pub top_gaps: Vec<IdleGap>,
    /// Happens-before edges successfully paired.
    pub edges_paired: u64,
    /// Send/recv endpoints with no partner.
    pub edges_unpaired: u64,
}

/// Map a numeric tag to the label the metrics report gave it (the
/// per-tag comm rows carry both), falling back to `tag N`.
fn tag_label(metrics: Option<&RunReport>, tag: u64) -> String {
    metrics
        .into_iter()
        .flat_map(|m| m.ranks.iter())
        .flat_map(|r| r.comm.iter())
        .find(|t| t.tag as u64 == tag)
        .map(|t| t.label.clone())
        .unwrap_or_else(|| format!("tag {tag}"))
}

/// Run the analysis over parsed tracks plus the optional metrics
/// report (for α–β modelled comm attribution and tag labels).
/// `top_k` bounds the ranked idle-gap list.
pub fn analyze(tracks: &[ATrack], metrics: Option<&RunReport>, top_k: usize) -> Analysis {
    let (edges, edges_unpaired) = pair_edges(tracks);
    let blocked: BTreeMap<u64, Vec<Blocked>> = tracks.iter().map(|t| (t.rank, blocked_spans(t))).collect();

    // ---- per-rank attribution ---------------------------------------
    let mut ranks = Vec::new();
    for t in tracks {
        let wall_ns = t.last_ts().saturating_sub(t.first_ts());
        let b = &blocked[&t.rank];
        let wait_blocked_ns: u64 = b.iter().filter(|x| !x.barrier).map(|x| x.end_ns - x.start_ns).sum();
        let barrier_ns: u64 = b.iter().filter(|x| x.barrier).map(|x| x.end_ns - x.start_ns).sum();
        // Union of non-comm span intervals = "inside traced work".
        let mut depth = 0i64;
        let mut open_at = 0u64;
        let mut work: Vec<(u64, u64)> = Vec::new();
        for e in &t.events {
            if e.cat == "comm" {
                continue;
            }
            match e.kind {
                TraceKind::Begin => {
                    if depth == 0 {
                        open_at = e.ts_ns;
                    }
                    depth += 1;
                }
                TraceKind::End => {
                    depth -= 1;
                    if depth == 0 {
                        work.push((open_at, e.ts_ns));
                    }
                }
                TraceKind::Instant => {}
            }
        }
        let work = merge_intervals(work);
        let blocked_iv = merge_intervals(b.iter().map(|x| (x.start_ns, x.end_ns)).collect());
        let compute_ns = subtract_len(&work, &blocked_iv);
        let attributed = compute_ns + wait_blocked_ns + barrier_ns;
        let residual = wall_ns.saturating_sub(attributed);
        // The α–β model prices this rank's sends; the transfer time is
        // real non-idle time the event stream cannot see (the simulator
        // doesn't sleep for it), so it claims residual first.
        let comm_modelled_ns = metrics
            .and_then(|m| m.ranks.iter().find(|r| r.rank as u64 == t.rank))
            .map(|r| (r.modelled_comm_seconds() * 1e9) as u64)
            .unwrap_or(0)
            .min(residual);
        ranks.push(RankAttribution {
            rank: t.rank,
            label: t.label.clone(),
            wall_ns,
            compute_ns,
            wait_blocked_ns,
            barrier_ns,
            comm_modelled_ns,
            idle_unattributed_ns: residual - comm_modelled_ns,
        });
    }
    ranks.sort_by_key(|r| r.rank);

    // ---- per-stage rollup -------------------------------------------
    let mut stages = Vec::new();
    if let Some(pipeline) = tracks.iter().find(|t| t.label == "pipeline") {
        let mut open: BTreeMap<&str, u64> = BTreeMap::new();
        for e in &pipeline.events {
            if e.cat != "stage" {
                continue;
            }
            match e.kind {
                TraceKind::Begin => {
                    open.insert(e.name.as_str(), e.ts_ns);
                }
                TraceKind::End => {
                    let Some(start) = open.remove(e.name.as_str()) else { continue };
                    let window = (start, e.ts_ns);
                    let clip = |s: u64, t: u64| -> u64 {
                        let (cs, ce) = (s.max(window.0), t.min(window.1));
                        ce.saturating_sub(cs)
                    };
                    let mut st = StageAttribution {
                        stage: e.name.clone(),
                        wall_ns: window.1 - window.0,
                        ..Default::default()
                    };
                    for t in tracks {
                        if t.label == "pipeline" {
                            continue;
                        }
                        for b in &blocked[&t.rank] {
                            let len = clip(b.start_ns, b.end_ns);
                            if b.barrier {
                                st.barrier_ns += len;
                            } else {
                                st.wait_blocked_ns += len;
                            }
                        }
                    }
                    for r in &ranks {
                        // Approximate per-stage compute by clipping the
                        // rank's active range to the window, minus its
                        // blocked time in the window.
                        let track = tracks.iter().find(|t| t.rank == r.rank).unwrap();
                        if track.label == "pipeline" {
                            continue;
                        }
                        let active = clip(track.first_ts(), track.last_ts());
                        let blocked_in: u64 =
                            blocked[&r.rank].iter().map(|b| clip(b.start_ns, b.end_ns)).sum();
                        st.compute_ns += active.saturating_sub(blocked_in);
                    }
                    stages.push(st);
                }
                TraceKind::Instant => {}
            }
        }
    }

    // ---- critical path ----------------------------------------------
    let critical_path = critical_path(tracks, &blocked, &edges, metrics);

    // ---- ranked idle gaps -------------------------------------------
    let mut top_gaps: Vec<IdleGap> = blocked
        .iter()
        .flat_map(|(&rank, list)| {
            list.iter().map(move |b| IdleGap {
                rank,
                start_ns: b.start_ns,
                dur_ns: b.end_ns - b.start_ns,
                blame: if b.barrier {
                    "barrier".to_string()
                } else {
                    match b.awaited_tag {
                        Some(tag) => tag_label(metrics, tag),
                        None => "unknown".to_string(),
                    }
                },
            })
        })
        .collect();
    top_gaps.sort_by_key(|g| std::cmp::Reverse(g.dur_ns));
    top_gaps.truncate(top_k);

    Analysis { ranks, stages, critical_path, top_gaps, edges_paired: edges.len() as u64, edges_unpaired }
}

/// Deepest non-comm span enclosing `ts` on the track (for labelling
/// compute segments).
fn enclosing_span(track: &ATrack, ts: u64) -> Option<String> {
    let mut stack: Vec<&str> = Vec::new();
    let mut best: Option<String> = None;
    for e in &track.events {
        if e.ts_ns > ts {
            break;
        }
        if e.cat == "comm" {
            continue;
        }
        match e.kind {
            TraceKind::Begin => stack.push(&e.name),
            TraceKind::End => {
                stack.pop();
            }
            TraceKind::Instant => {}
        }
        best = stack.last().map(|s| s.to_string()).or(best);
    }
    if stack.is_empty() {
        None
    } else {
        stack.last().map(|s| s.to_string())
    }
}

fn critical_path(
    tracks: &[ATrack],
    blocked: &BTreeMap<u64, Vec<Blocked>>,
    edges: &[HbEdge],
    metrics: Option<&RunReport>,
) -> Vec<PathSegment> {
    // Barrier matching: the k-th barrier of a track pairs with the k-th
    // barrier of every other track in the same communicator group.
    // Groups are phase worlds, identified by label: the assembly phase
    // tracks are "asm_*", the clustering phase's are the rest (the
    // pipeline track holds no barriers).
    let group_of = |label: &str| -> usize {
        if label.starts_with("asm_") {
            1
        } else {
            0
        }
    };
    // The path terminates on the latest-ending *protocol participant* —
    // a track with comm events or blocked intervals. An umbrella track
    // (the pipeline's, which wraps every stage and never blocks) would
    // otherwise absorb the whole path into one uninformative compute
    // segment. Fall back to the global latest when nothing qualifies.
    let participates = |t: &ATrack| {
        blocked.get(&t.rank).is_some_and(|b| !b.is_empty()) || t.events.iter().any(|e| e.cat == "comm")
    };
    let Some(end_track) = tracks
        .iter()
        .filter(|t| participates(t))
        .max_by_key(|t| t.last_ts())
        .or_else(|| tracks.iter().max_by_key(|t| t.last_ts()))
    else {
        return Vec::new();
    };
    let mut segments = Vec::new();
    let mut rank = end_track.rank;
    let mut cursor = end_track.last_ts();
    // Bounded by total blocked intervals; the strict-decrease guard
    // breaks cycles, this caps pathological traces.
    let max_hops = 2 + blocked.values().map(|b| b.len()).sum::<usize>();
    for _ in 0..max_hops {
        let track = match tracks.iter().find(|t| t.rank == rank) {
            Some(t) => t,
            None => break,
        };
        let first = track.first_ts();
        // Latest blocked interval on this rank ending at or before the
        // cursor.
        let prev = blocked[&rank].iter().filter(|b| b.end_ns <= cursor).max_by_key(|b| b.end_ns);
        let Some(b) = prev else {
            if cursor > first {
                segments.push(PathSegment {
                    rank,
                    kind: "compute".into(),
                    start_ns: first,
                    end_ns: cursor,
                    label: enclosing_span(track, first.midpoint(cursor)).unwrap_or_else(|| "run".into()),
                });
            }
            break;
        };
        if cursor > b.end_ns {
            segments.push(PathSegment {
                rank,
                kind: "compute".into(),
                start_ns: b.end_ns,
                end_ns: cursor,
                label: enclosing_span(track, b.end_ns.midpoint(cursor)).unwrap_or_else(|| "run".into()),
            });
        }
        let (next_rank, next_ts, seg) = if b.barrier {
            // Jump to the last rank entering this barrier instance.
            let grp = group_of(&track.label);
            let last_in = tracks
                .iter()
                .filter(|t| t.rank != rank && group_of(&t.label) == grp)
                .filter_map(|t| {
                    blocked[&t.rank]
                        .iter()
                        .filter(|x| x.barrier && x.barrier_index == b.barrier_index)
                        .map(|x| (t.rank, x.start_ns))
                        .next()
                })
                .max_by_key(|&(_, start)| start);
            match last_in {
                Some((r, start)) if start < b.end_ns => (
                    r,
                    start,
                    PathSegment {
                        rank,
                        kind: "barrier".into(),
                        start_ns: start,
                        end_ns: b.end_ns,
                        label: "barrier".into(),
                    },
                ),
                _ => (
                    rank,
                    b.start_ns,
                    PathSegment {
                        rank,
                        kind: "barrier".into(),
                        start_ns: b.start_ns,
                        end_ns: b.end_ns,
                        label: "barrier".into(),
                    },
                ),
            }
        } else {
            // Jump along the message that ended the wait: the first
            // recv at/after the wait's end, followed to its sender.
            let edge = track
                .events
                .iter()
                .find(|e| {
                    e.ts_ns >= b.end_ns && e.kind == TraceKind::Instant && e.name == crate::names::EV_RECV
                })
                .and_then(|recv| edges.iter().find(|ed| ed.dst == rank && ed.recv_ts_ns == recv.ts_ns));
            match edge {
                Some(ed) if ed.send_ts_ns < cursor => (
                    ed.src,
                    ed.send_ts_ns,
                    PathSegment {
                        rank,
                        kind: "comm".into(),
                        start_ns: ed.send_ts_ns,
                        end_ns: b.end_ns,
                        label: tag_label(metrics, ed.tag),
                    },
                ),
                _ => (
                    rank,
                    b.start_ns,
                    PathSegment {
                        rank,
                        kind: "comm".into(),
                        start_ns: b.start_ns,
                        end_ns: b.end_ns,
                        label: match b.awaited_tag {
                            Some(t) => tag_label(metrics, t),
                            None => "wait".into(),
                        },
                    },
                ),
            }
        };
        segments.push(seg);
        if next_ts >= cursor {
            break; // strict decrease or stop — no cycles
        }
        rank = next_rank;
        cursor = next_ts;
        if cursor == 0 {
            break;
        }
    }
    segments.reverse();
    // A hop landing exactly on a track's first event leaves a
    // zero-length compute stub at the boundary — drop it unless it is
    // all the path has.
    if segments.iter().any(|s| s.end_ns > s.start_ns) {
        segments.retain(|s| s.end_ns > s.start_ns);
    }
    segments
}

impl Analysis {
    /// Worst per-rank attribution error: `max |coverage − 1|`.
    pub fn max_coverage_error(&self) -> f64 {
        self.ranks.iter().map(|r| (r.coverage() - 1.0).abs()).fold(0.0, f64::max)
    }

    /// Machine JSON document (`pgasm.analysis` format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("format", Json::Str("pgasm.analysis".into())),
            ("schema_version", Json::Num(1.0)),
            ("ranks", Json::Arr(self.ranks.iter().map(RankAttribution::to_json).collect())),
            ("stages", Json::Arr(self.stages.iter().map(StageAttribution::to_json).collect())),
            ("critical_path", Json::Arr(self.critical_path.iter().map(PathSegment::to_json).collect())),
            ("top_gaps", Json::Arr(self.top_gaps.iter().map(IdleGap::to_json).collect())),
            ("edges_paired", Json::Num(self.edges_paired as f64)),
            ("edges_unpaired", Json::Num(self.edges_unpaired as f64)),
            ("max_coverage_error", Json::Num(self.max_coverage_error())),
        ])
    }

    /// Human-readable report: attribution table, critical path, top
    /// gaps.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        out.push_str("per-rank wall-time attribution (ms):\n");
        out.push_str(&format!(
            "  {:<4} {:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {:>5}\n",
            "rank", "role", "wall", "compute", "wait", "barrier", "comm", "idle", "cover"
        ));
        for r in &self.ranks {
            out.push_str(&format!(
                "  {:<4} {:<12} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {:>4.0}%\n",
                r.rank,
                r.label,
                ms(r.wall_ns),
                ms(r.compute_ns),
                ms(r.wait_blocked_ns),
                ms(r.barrier_ns),
                ms(r.comm_modelled_ns),
                ms(r.idle_unattributed_ns),
                r.coverage() * 100.0
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("per-stage rollup (ms, summed over ranks):\n");
            for s in &self.stages {
                out.push_str(&format!(
                    "  {:<12} wall {:>9.2}  compute {:>9.2}  wait {:>9.2}  barrier {:>9.2}\n",
                    s.stage,
                    ms(s.wall_ns),
                    ms(s.compute_ns),
                    ms(s.wait_blocked_ns),
                    ms(s.barrier_ns)
                ));
            }
        }
        out.push_str(&format!("critical path ({} segment(s)):\n", self.critical_path.len()));
        for seg in &self.critical_path {
            out.push_str(&format!(
                "  rank {:<3} {:<8} {:>9.2} ms  [{:.2}..{:.2}]  {}\n",
                seg.rank,
                seg.kind,
                ms(seg.end_ns - seg.start_ns),
                ms(seg.start_ns),
                ms(seg.end_ns),
                seg.label
            ));
        }
        out.push_str(&format!("top idle gaps (of {} edges paired):\n", self.edges_paired));
        for g in &self.top_gaps {
            out.push_str(&format!(
                "  rank {:<3} {:>9.2} ms at {:>9.2} ms  awaiting {}\n",
                g.rank,
                ms(g.dur_ns),
                ms(g.start_ns),
                g.blame
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::trace::{TraceCategory, TraceSpec};

    /// Build a synthetic two-rank track pair: rank 0 computes then
    /// sends to rank 1, which waited for it.
    fn synthetic_tracks() -> Vec<ATrack> {
        let ev = |ts, kind, cat: &str, name: &str, args: &[(&str, u64)]| AEvent {
            ts_ns: ts,
            kind,
            cat: cat.into(),
            name: name.into(),
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        let t0 = ATrack {
            rank: 0,
            label: "master".into(),
            events: vec![
                ev(0, TraceKind::Begin, "master", "dispatch", &[]),
                ev(900, TraceKind::Instant, "comm", "send", &[("tag", 4), ("bytes", 64), ("to", 1)]),
                ev(1_000, TraceKind::End, "master", "dispatch", &[]),
            ],
        };
        let t1 = ATrack {
            rank: 1,
            label: "worker".into(),
            events: vec![
                ev(0, TraceKind::Begin, "comm", "wait", &[]),
                ev(950, TraceKind::End, "comm", "wait", &[]),
                ev(960, TraceKind::Instant, "comm", "recv", &[("tag", 4), ("bytes", 64), ("from", 0)]),
                ev(1_000, TraceKind::Begin, "align", "align_batch", &[]),
                ev(2_000, TraceKind::End, "align", "align_batch", &[]),
            ],
        };
        vec![t0, t1]
    }

    #[test]
    fn sends_pair_with_recvs_fifo_per_src_dst_tag() {
        let (edges, unpaired) = pair_edges(&synthetic_tracks());
        assert_eq!(unpaired, 0);
        assert_eq!(edges, vec![HbEdge { src: 0, dst: 1, tag: 4, send_ts_ns: 900, recv_ts_ns: 960 }]);
    }

    #[test]
    fn fifo_pairing_keeps_order_and_counts_orphans() {
        let ev = |ts, name: &str, args: &[(&str, u64)]| AEvent {
            ts_ns: ts,
            kind: TraceKind::Instant,
            cat: "comm".into(),
            name: name.into(),
            args: args.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        };
        // Two sends same (src,dst,tag); only one recv traced (overflow
        // ate the other) plus one recv with no send at all.
        let t0 = ATrack {
            rank: 0,
            label: "a".into(),
            events: vec![ev(10, "send", &[("tag", 7), ("to", 1)]), ev(20, "send", &[("tag", 7), ("to", 1)])],
        };
        let t1 = ATrack {
            rank: 1,
            label: "b".into(),
            events: vec![
                ev(30, "recv", &[("tag", 7), ("from", 0)]),
                ev(40, "recv", &[("tag", 9), ("from", 5)]),
            ],
        };
        let (edges, unpaired) = pair_edges(&[t0, t1]);
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].send_ts_ns, 10, "FIFO: first send pairs first");
        assert_eq!(unpaired, 2, "one orphan send + one orphan recv");
    }

    #[test]
    fn attribution_partitions_wall_time() {
        let a = analyze(&synthetic_tracks(), None, 5);
        let r1 = &a.ranks[1];
        assert_eq!(r1.wall_ns, 2_000);
        assert_eq!(r1.wait_blocked_ns, 950);
        assert_eq!(r1.compute_ns, 1_000);
        assert_eq!(r1.barrier_ns, 0);
        assert_eq!(r1.idle_unattributed_ns, 50); // 950..1000 between wait end and batch
        assert!((r1.coverage() - 1.0).abs() < 1e-9);
        assert!(a.max_coverage_error() < 1e-9);
    }

    #[test]
    fn critical_path_crosses_the_send_edge() {
        let a = analyze(&synthetic_tracks(), None, 5);
        assert!(!a.critical_path.is_empty());
        // Path: compute on rank 0 (until the send), the comm hop, then
        // compute on rank 1 to the end.
        let kinds: Vec<(&str, u64)> = a.critical_path.iter().map(|s| (s.kind.as_str(), s.rank)).collect();
        assert_eq!(kinds, vec![("compute", 0), ("comm", 1), ("compute", 1)]);
        assert_eq!(a.critical_path[0].start_ns, 0);
        assert_eq!(a.critical_path[0].end_ns, 900);
        assert_eq!(a.critical_path[1].label, "tag 4");
        assert_eq!(a.critical_path[2].end_ns, 2_000);
        assert_eq!(a.critical_path[2].label, "align_batch");
    }

    #[test]
    fn gaps_are_blamed_on_the_awaited_tag() {
        let a = analyze(&synthetic_tracks(), None, 5);
        assert_eq!(a.top_gaps.len(), 1);
        assert_eq!(a.top_gaps[0].rank, 1);
        assert_eq!(a.top_gaps[0].dur_ns, 950);
        assert_eq!(a.top_gaps[0].blame, "tag 4");
    }

    #[test]
    fn barrier_hops_to_the_last_arriving_rank() {
        let ev = |ts, kind, cat: &str, name: &str| AEvent {
            ts_ns: ts,
            kind,
            cat: cat.into(),
            name: name.into(),
            args: BTreeMap::new(),
        };
        // Rank 0 enters its barrier at 100 and leaves at 1000; rank 1
        // computes until 990, enters, both leave ~1000. The path must
        // blame rank 1's compute, not rank 0's wait.
        let t0 = ATrack {
            rank: 0,
            label: "master".into(),
            events: vec![
                ev(0, TraceKind::Begin, "gst", "gst_build"),
                ev(100, TraceKind::End, "gst", "gst_build"),
                ev(100, TraceKind::Begin, "comm", "barrier"),
                ev(1_000, TraceKind::End, "comm", "barrier"),
                ev(1_000, TraceKind::Begin, "master", "dispatch"),
                ev(1_500, TraceKind::End, "master", "dispatch"),
            ],
        };
        let t1 = ATrack {
            rank: 1,
            label: "worker".into(),
            events: vec![
                ev(0, TraceKind::Begin, "gst", "gst_build"),
                ev(990, TraceKind::End, "gst", "gst_build"),
                ev(990, TraceKind::Begin, "comm", "barrier"),
                ev(1_000, TraceKind::End, "comm", "barrier"),
            ],
        };
        let a = analyze(&[t0, t1], None, 5);
        let kinds: Vec<(&str, u64)> = a.critical_path.iter().map(|s| (s.kind.as_str(), s.rank)).collect();
        assert_eq!(kinds, vec![("compute", 1), ("barrier", 0), ("compute", 0)]);
        assert_eq!(a.critical_path[0].end_ns, 990, "compute on the straggler until it arrives");
        assert_eq!(a.critical_path[0].label, "gst_build");
    }

    #[test]
    fn chrome_round_trip_preserves_analysis() {
        // Record with real tracers, export to Chrome JSON, parse back,
        // and check the analyzer sees the same edge.
        let spec = TraceSpec::with_capacity(64);
        let mut a = spec.tracer(0, "master");
        let mut b = spec.tracer(1, "worker");
        a.begin(TraceCategory::Master, names::EV_DISPATCH);
        a.instant_args3(TraceCategory::Comm, names::EV_SEND, ("tag", 2), ("bytes", 32), ("to", 1));
        a.end(TraceCategory::Master, names::EV_DISPATCH);
        b.begin(TraceCategory::Comm, names::EV_WAIT);
        b.end(TraceCategory::Comm, names::EV_WAIT);
        b.instant_args3(TraceCategory::Comm, names::EV_RECV, ("tag", 2), ("bytes", 32), ("from", 0));
        let doc = crate::trace::Trace::new(vec![a.finish(), b.finish()]);
        let parsed = Json::parse(&doc.to_chrome_json().pretty()).unwrap();
        let tracks = parse_chrome_trace(&parsed).unwrap();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].label, "master");
        let (edges, unpaired) = pair_edges(&tracks);
        assert_eq!(edges.len(), 1);
        assert_eq!(unpaired, 0);
        assert_eq!((edges[0].src, edges[0].dst, edges[0].tag), (0, 1, 2));
    }

    #[test]
    fn analysis_json_has_the_gated_shape() {
        let a = analyze(&synthetic_tracks(), None, 3);
        let doc = Json::parse(&a.to_json().pretty()).unwrap();
        assert_eq!(doc.get("format").and_then(Json::as_str), Some("pgasm.analysis"));
        assert_eq!(doc.get("edges_paired").and_then(Json::as_u64), Some(1));
        assert!(doc.get("ranks").and_then(Json::as_arr).is_some_and(|r| r.len() == 2));
        assert!(doc.get("critical_path").and_then(Json::as_arr).is_some_and(|p| !p.is_empty()));
        let rendered = a.render();
        assert!(rendered.contains("critical path"));
        assert!(rendered.contains("attribution"));
    }
}
