//! Structured run telemetry for the pgasm workspace.
//!
//! One run — a pipeline invocation, a benchmark, a CLI command —
//! threads a [`RunContext`] through its stages. The context records:
//!
//! - **spans**: nested wall + thread-CPU timers ([`Span`]), one per
//!   stage or sub-phase;
//! - **counters**: named `u64` totals (pairs generated / aligned /
//!   accepted, DP cells, …);
//! - **rank channels**: per-rank compute/idle time, rank-local
//!   counters, and per-tag communication rows ([`RankReport`],
//!   [`TagStat`]).
//!
//! [`RunContext::finish`] folds everything into a [`RunReport`], which
//! serializes to a stable JSON document (and parses back — reports are
//! artifacts, not just log lines). The JSON layer is in-tree
//! ([`json::Json`]) because the build environment has no registry
//! access; see `crates/compat/README.md`.

#![warn(missing_docs)]

pub mod analyze;
pub mod cpu;
pub mod json;
pub mod names;
pub mod report;
pub mod series;
pub mod span;
pub mod trace;

pub use cpu::thread_cpu_seconds;
pub use json::{Json, JsonError};
pub use report::{FaultSummary, RankReport, RunReport, TagStat, TraceSummary, SCHEMA_VERSION};
pub use series::{GaugeId, GaugeSampler, GaugeSeries, RankSeries};
pub use span::{RunContext, Span};
pub use trace::{
    IdleGapHistogram, RankTrace, Trace, TraceCategory, TraceEvent, TraceKind, TraceSpec, Tracer,
};
