//! Self-contained JSON value type with an emitter and a parser.
//!
//! The workspace builds offline, so report serialization cannot lean on
//! a registry serde stack; this module is the single JSON
//! implementation every report flows through. Objects preserve
//! insertion order, making emitted reports stable and diffable.
//!
//! Numbers are `f64`: integers round-trip exactly up to 2^53, far above
//! any counter this system produces in practice. Non-finite floats are
//! emitted as `null` (JSON has no representation for them).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (see module docs for integer fidelity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub msg: String,
    /// Byte offset in the input where it was detected.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object from key–value pairs (convenience constructor).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer value, if this is a whole number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact one-line serialization.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented serialization (two-space indent).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display for f64 is the shortest round-trippable form.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * step {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { msg: msg.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect "\uXXXX" low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                    char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("run \"x\"\n".into())),
            ("n", Json::Num(42.0)),
            ("pi", Json::Num(3.25)),
            ("neg", Json::Num(-1e-3)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty_obj", Json::Obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        assert_eq!(Json::parse(&v.emit()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\tbé😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\tbé😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "12x", "\"abc", "{\"a\" 1}", "[1 2]", "nul"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn u64_accessor_guards_range_and_fraction() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn non_finite_emits_null() {
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
        assert_eq!(Json::Num(f64::INFINITY).emit(), "null");
    }
}
